"""Tests of the Huray snowball model (extension)."""

import math

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.errors import ConfigurationError
from repro.models.huray import HurayModel, SnowballDeposit


class TestHuray:
    def _model(self):
        return HurayModel(
            tile_area_m2=(10 * UM) ** 2,
            deposits=(SnowballDeposit(radius_m=0.5 * UM, count=12.0),))

    def test_monotone_rising(self):
        f = np.linspace(0.5, 50, 60) * GHZ
        k = self._model().enhancement(f)
        assert np.all(np.diff(k) > 0)
        assert np.all(k >= 1.0)

    def test_saturation_value(self):
        model = self._model()
        k_inf = float(model.enhancement(np.array([1e18]))[0])
        assert k_inf == pytest.approx(model.saturation(), rel=1e-3)

    def test_saturation_formula(self):
        model = self._model()
        expected = 1 + 1.5 * 12 * 4 * math.pi * (0.5 * UM) ** 2 / (10 * UM) ** 2
        assert model.saturation() == pytest.approx(expected, rel=1e-12)

    def test_low_frequency_is_one(self):
        k = float(self._model().enhancement(np.array([1e4]))[0])
        assert k == pytest.approx(1.0, abs=1e-3)

    def test_cannonball_construction(self):
        model = HurayModel.cannonball(rz_m=6 * UM)
        dep = model.deposits[0]
        assert dep.radius_m == pytest.approx(1 * UM)
        assert dep.count == 14.0
        assert model.tile_area_m2 == pytest.approx(3 * (6 * UM) ** 2)

    def test_multiple_deposits_additive(self):
        one = HurayModel(tile_area_m2=1e-10,
                         deposits=(SnowballDeposit(0.5 * UM, 5.0),))
        two = HurayModel(tile_area_m2=1e-10,
                         deposits=(SnowballDeposit(0.5 * UM, 5.0),
                                   SnowballDeposit(0.5 * UM, 5.0)))
        f = np.array([10 * GHZ])
        assert float((two.enhancement(f) - 1)[0]) == pytest.approx(
            2 * float((one.enhancement(f) - 1)[0]), rel=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SnowballDeposit(radius_m=0.0, count=5.0)
        with pytest.raises(ConfigurationError):
            HurayModel(tile_area_m2=1e-10, deposits=())
        with pytest.raises(ConfigurationError):
            HurayModel.cannonball(rz_m=-1.0)
        with pytest.raises(ConfigurationError):
            self._model().enhancement(np.array([-1.0]))
