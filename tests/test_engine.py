"""Tests of the sweep-execution engine (spec/executors/cache/results).

The two acceptance properties of the subsystem are pinned here:

- ``ParallelExecutor`` results are numerically identical (<= 1e-12) to
  ``SerialExecutor`` for the same ``SweepSpec``;
- a repeated sweep against a warm on-disk cache performs **zero** SWM
  solves (asserted by making the solver raise).
"""

import json
import warnings

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import (
    DeterministicLossModel,
    StochasticLossConfig,
    StochasticLossModel,
)
from repro.engine import (
    DeterministicScenario,
    EstimatorSpec,
    Executor,
    ParallelExecutor,
    ProfileScenario,
    ResultCache,
    SerialExecutor,
    StochasticScenario,
    SweepSpec,
    content_hash,
    correlation_spec,
    engine_session,
    run_batch,
    run_sweep,
)
from repro.errors import ConfigurationError
from repro.stochastic.montecarlo import MonteCarloEstimator
from repro.surfaces import GaussianCorrelation, MaternCorrelation
from repro.swm.solver import SWMSolver3D

SMALL_CONFIG = StochasticLossConfig(points_per_side=8, max_modes=3)


def small_scenario(name="eta1", eta_um=1.0, **config_kwargs):
    cfg = SMALL_CONFIG if not config_kwargs else StochasticLossConfig(
        points_per_side=8, max_modes=3, **config_kwargs)
    return StochasticScenario(
        name, GaussianCorrelation(1 * UM, eta_um * UM), cfg)


def small_spec(frequencies=(2.0, 5.0), estimators=EstimatorSpec(order=1)):
    return SweepSpec(
        scenarios=[small_scenario("eta1", 1.0), small_scenario("eta2", 2.0)],
        frequencies_hz=np.asarray(frequencies) * GHZ,
        estimators=estimators)


class TestContentHash:
    def test_stable_across_equivalent_specs(self):
        a = small_scenario("x").key
        b = small_scenario("x").key
        assert a == b
        assert len(a) == 64

    def test_name_and_tags_do_not_affect_hash(self):
        assert small_scenario("a").key == small_scenario("b").key
        s1 = SweepSpec(small_scenario(), [5 * GHZ], tags={"scale": "quick"})
        s2 = SweepSpec(small_scenario(), [5 * GHZ], tags={"scale": "paper"})
        assert s1.key == s2.key

    def test_physics_inputs_change_hash(self):
        base = small_scenario()
        assert base.key != small_scenario(eta_um=2.0).key
        assert base.key != small_scenario(max_points_per_side=12).key
        base_job = SweepSpec(base, [5 * GHZ]).jobs()[0]
        other_freq = SweepSpec(base, [6 * GHZ]).jobs()[0]
        other_order = SweepSpec(base, [5 * GHZ],
                                EstimatorSpec(order=2)).jobs()[0]
        assert base_job.key != other_freq.key
        assert base_job.key != other_order.key

    def test_numpy_and_python_floats_hash_equal(self):
        assert content_hash({"f": 5.0}) == content_hash(
            {"f": np.float64(5.0)})

    def test_correlation_spec_extracts_parameters(self):
        spec = correlation_spec(MaternCorrelation(1 * UM, 2 * UM, nu=1.5))
        assert spec["type"] == "MaternCorrelation"
        assert spec["params"] == {"sigma": 1 * UM, "eta": 2 * UM, "nu": 1.5}

    def test_unhashable_object_raises(self):
        with pytest.raises(ConfigurationError):
            content_hash({"bad": object()})

    def test_correlation_array_parameter_hashes_by_content(self):
        class TabulatedCF(GaussianCorrelation):
            def __init__(self, weights):
                super().__init__(1 * UM, 1 * UM)
                self.weights = np.asarray(weights, dtype=np.float64)

        a = correlation_spec(TabulatedCF([1.0, 2.0]))
        b = correlation_spec(TabulatedCF([1.0, 3.0]))
        assert content_hash(a) != content_hash(b)

    def test_correlation_unhashable_attribute_raises(self):
        class BadCF(GaussianCorrelation):
            def __init__(self):
                super().__init__(1 * UM, 1 * UM)
                self.table = {"not": "hashed"}

        with pytest.raises(ConfigurationError, match="table"):
            correlation_spec(BadCF())

    def test_deterministic_scenario_hashes_heights(self):
        flat = np.zeros((8, 8))
        bump = flat.copy()
        bump[4, 4] = 1e-7
        a = DeterministicScenario("s", flat, 5 * UM)
        b = DeterministicScenario("s", bump, 5 * UM)
        assert a.key != b.key

    def test_check_finite_outside_content_hash(self):
        """check_finite cannot change payloads (it only turns a
        non-finite assembly into a clear error), so like batch_size it
        must not split engine/service cache entries."""
        from repro.swm.solver import SWMOptions
        from repro.swm.solver2d import SWM2DOptions

        assert (SWMOptions(check_finite=False).to_spec()
                == SWMOptions().to_spec())
        assert (SWM2DOptions(check_finite=False).to_spec()
                == SWM2DOptions().to_spec())
        s1 = StochasticScenario("m", GaussianCorrelation(1 * UM, 1 * UM),
                                SMALL_CONFIG, options=SWMOptions())
        s2 = StochasticScenario("m", GaussianCorrelation(1 * UM, 1 * UM),
                                SMALL_CONFIG,
                                options=SWMOptions(check_finite=False))
        assert s1.key == s2.key
        p1 = ProfileScenario("p", GaussianCorrelation(1.0, 1.0),
                             period_um=5.0, n=16, options=SWM2DOptions())
        p2 = ProfileScenario("p", GaussianCorrelation(1.0, 1.0),
                             period_um=5.0, n=16,
                             options=SWM2DOptions(check_finite=False))
        assert p1.key == p2.key
        # The numerics knobs still change the hash.
        from repro.swm.assembly2d import Assembly2DOptions

        p3 = ProfileScenario(
            "p", GaussianCorrelation(1.0, 1.0), period_um=5.0, n=16,
            options=SWM2DOptions(assembly=Assembly2DOptions(m_max=48)))
        assert p1.key != p3.key


class TestSweepSpec:
    def test_cartesian_product_order(self):
        spec = small_spec(frequencies=(2.0, 3.0, 4.0))
        jobs = spec.jobs()
        assert len(jobs) == 6
        assert [j.scenario.name for j in jobs] == ["eta1"] * 3 + ["eta2"] * 3
        assert [j.index for j in jobs] == list(range(6))

    def test_multiple_estimators_multiply(self):
        spec = SweepSpec(small_scenario(), [2 * GHZ, 5 * GHZ],
                         estimators=[EstimatorSpec(order=1),
                                     EstimatorSpec(order=2)])
        assert spec.n_jobs == 4

    def test_deterministic_scenario_ignores_estimators(self):
        spec = SweepSpec(
            DeterministicScenario("flat", np.zeros((8, 8)), 5 * UM),
            [2 * GHZ, 5 * GHZ],
            estimators=[EstimatorSpec(order=1), EstimatorSpec(order=2)])
        jobs = spec.jobs()
        assert len(jobs) == 2
        assert all(j.estimator is None for j in jobs)
        assert all(j.estimator_label == "solve" for j in jobs)

    def test_scalar_frequency_coerced(self):
        spec = SweepSpec(small_scenario(), 5 * GHZ)
        assert spec.frequencies_hz == (5 * GHZ,)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec([], [5 * GHZ])
        with pytest.raises(ConfigurationError):
            SweepSpec([small_scenario("a"), small_scenario("a")], [5 * GHZ])
        with pytest.raises(ConfigurationError):
            SweepSpec(small_scenario(), [-1.0])
        with pytest.raises(ConfigurationError):
            EstimatorSpec(kind="bogus")
        with pytest.raises(ConfigurationError):
            EstimatorSpec(kind="montecarlo", n_samples=1)

    def test_unseeded_montecarlo_not_cacheable(self):
        assert not EstimatorSpec(kind="montecarlo", n_samples=4,
                                 seed=None).cacheable
        assert EstimatorSpec(kind="montecarlo", n_samples=4,
                             seed=0).cacheable
        assert EstimatorSpec(kind="sscm").cacheable


class TestExecutorEquivalence:
    """Acceptance: parallel results identical to serial within 1e-12."""

    def test_parallel_matches_serial(self):
        spec = small_spec()
        serial = run_sweep(spec, executor=SerialExecutor(),
                           cache=ResultCache())
        parallel = run_sweep(spec, executor=ParallelExecutor(n_jobs=2),
                             cache=ResultCache())
        assert serial.cache_hits == 0 and parallel.cache_hits == 0
        for name in ("eta1", "eta2"):
            diff = np.abs(serial.mean_curve(name) -
                          parallel.mean_curve(name))
            assert np.max(diff) <= 1e-12
        for ps, pp in zip(serial.points, parallel.points):
            np.testing.assert_allclose(ps.values, pp.values, rtol=0,
                                       atol=1e-12)

    def test_progress_reaches_total_in_order(self):
        spec = small_spec()
        seen = []
        run_sweep(spec, executor=SerialExecutor(), cache=ResultCache(),
                  progress=lambda done, total: seen.append((done, total)))
        assert seen == [(i + 1, 4) for i in range(4)]

    def test_parallel_progress_counts_all_points(self):
        spec = small_spec()
        seen = []
        run_sweep(spec, executor=ParallelExecutor(n_jobs=2, chunksize=1),
                  cache=ResultCache(),
                  progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (4, 4)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_single_job_falls_back_to_serial(self):
        spec = SweepSpec(small_scenario(), 5 * GHZ)
        res = run_sweep(spec, executor=ParallelExecutor(n_jobs=4),
                        cache=ResultCache())
        assert res.points[0].mean > 1.0

    def test_chunking(self):
        ex = ParallelExecutor(n_jobs=2, chunksize=3)
        assert [len(c) for c in ex._chunks(list(range(8)))] == [3, 3, 2]
        auto = ParallelExecutor(n_jobs=2)
        assert sum(len(c) for c in auto._chunks(list(range(20)))) == 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(n_jobs=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(chunksize=0)

    def test_worker_error_propagates(self):
        ex = ParallelExecutor(n_jobs=2, chunksize=1)
        with pytest.raises(ZeroDivisionError):
            ex.run(_reciprocal, [1.0, 0.0, 2.0])

    def test_on_result_fires_with_item_indices(self):
        seen = {}
        ParallelExecutor(n_jobs=2, chunksize=2).run(
            _reciprocal, [1.0, 2.0, 4.0, 5.0],
            on_result=lambda i, r: seen.setdefault(i, r))
        assert seen == {0: 1.0, 1: 0.5, 2: 0.25, 3: 0.2}

    def test_on_result_fires_before_a_later_failure(self):
        seen = []
        with pytest.raises(ZeroDivisionError):
            SerialExecutor().run(_reciprocal, [2.0, 0.0],
                                 on_result=lambda i, r: seen.append(i))
        assert seen == [0]

    def test_parallel_failure_still_commits_finished_chunks(self):
        """A failing chunk must not discard results that completed on
        other workers before/while it failed."""
        seen = {}
        with pytest.raises(ZeroDivisionError):
            ParallelExecutor(n_jobs=2, chunksize=1).run(
                _slow_reciprocal, [0.0, 1.0, 2.0, 4.0],
                on_result=lambda i, r: seen.setdefault(i, r))
        # items 1-3 are sub-ms on the other worker while item 0 spends
        # 0.5 s before raising: their results must have been delivered.
        assert seen == {1: 1.0, 2: 0.5, 3: 0.25}


def _reciprocal(x):
    """Module-level so the process pool can pickle it."""
    return 1.0 / x


def _slow_reciprocal(x):
    if x == 0.0:
        import time
        time.sleep(0.5)
    return 1.0 / x


class TestResultCache:
    def payload(self, n=3):
        return {"mean": 1.5, "std": 0.1,
                "values": np.arange(n, dtype=np.float64),
                "n_evals": n, "seed": 7, "wall_time_s": 0.25, "pid": 1}

    def test_memory_round_trip_and_stats(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", self.payload())
        got = cache.get("k")
        np.testing.assert_array_equal(got["values"], np.arange(3.0))
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_lru_eviction(self):
        cache = ResultCache(max_memory_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, self.payload())
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        # touching "b" makes "c" the eviction victim
        cache.get("b")
        cache.put("d", self.payload())
        assert "c" not in cache and "b" in cache

    def test_disk_round_trip_exact(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        values = np.array([1.0 / 3.0, np.pi, 1e-300])
        payload = dict(self.payload(), values=values)
        cache.put("deadbeef", payload, metadata={"scenario": "s"})
        fresh = ResultCache(disk_dir=tmp_path)  # empty memory tier
        got = fresh.get("deadbeef")
        np.testing.assert_array_equal(got["values"], values)
        assert got["mean"] == payload["mean"]
        assert fresh.stats.disk_hits == 1
        record = json.loads((tmp_path / "deadbeef.json").read_text())
        assert record["metadata"]["scenario"] == "s"

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put("k", self.payload())
        (tmp_path / "k.json").write_text("{not json")
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get("k") is None

    def test_engine_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put("k", self.payload())
        record = json.loads((tmp_path / "k.json").read_text())
        record["engine_version"] = -1
        (tmp_path / "k.json").write_text(json.dumps(record))
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get("k") is None

    def test_zero_memory_entries_disables_memory_tier(self):
        cache = ResultCache(max_memory_entries=0)
        cache.put("k", self.payload())
        assert cache.get("k") is None


class TestCachedSweeps:
    """Acceptance: a warm on-disk cache performs zero SWM solves."""

    def test_warm_disk_cache_runs_zero_solves(self, tmp_path, monkeypatch):
        spec = small_spec()
        warm = run_sweep(spec, executor=SerialExecutor(),
                         cache=ResultCache(disk_dir=tmp_path))
        assert warm.cache_misses == 4 and warm.n_evals > 0

        def no_solves(self, *args, **kwargs):
            raise AssertionError("SWM solve performed on warm cache")

        monkeypatch.setattr(SWMSolver3D, "_solve_fields", no_solves)
        replay = run_sweep(spec, executor=SerialExecutor(),
                           cache=ResultCache(disk_dir=tmp_path))
        assert replay.cache_hits == 4
        assert replay.n_evals == 0
        for name in ("eta1", "eta2"):
            np.testing.assert_array_equal(replay.mean_curve(name),
                                          warm.mean_curve(name))

    def test_memory_cache_replay(self):
        spec = SweepSpec(small_scenario(), [2 * GHZ, 5 * GHZ])
        cache = ResultCache()
        first = run_sweep(spec, cache=cache)
        again = run_sweep(spec, cache=cache)
        assert first.cache_hits == 0
        assert again.cache_hits == 2
        np.testing.assert_array_equal(first.mean_curve("eta1"),
                                      again.mean_curve("eta1"))

    def test_progress_counts_cached_points(self):
        spec = SweepSpec(small_scenario(), [2 * GHZ, 5 * GHZ])
        cache = ResultCache()
        run_sweep(spec, cache=cache)
        seen = []
        run_sweep(spec, cache=cache,
                  progress=lambda done, total: seen.append((done, total)))
        assert seen == [(2, 2)]

    def test_interrupted_sweep_keeps_finished_points(self, tmp_path):
        """Each point commits as it finishes: a sweep that dies midway
        resumes from whatever completed."""
        from repro.errors import SolverError

        good = DeterministicScenario("good", np.zeros((8, 8)), 5 * UM)
        bad = DeterministicScenario("bad", np.full((8, 8), np.nan),
                                    5 * UM)
        spec = SweepSpec([good, bad], [2 * GHZ, 5 * GHZ])
        cache = ResultCache(disk_dir=tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(SolverError):
                run_sweep(spec, executor=SerialExecutor(), cache=cache)
        # The two 'good' points finished before the failure and persist.
        assert cache.stats.stores == 2
        assert len(list(tmp_path.glob("*.npz"))) == 2
        good_only = SweepSpec(good, [2 * GHZ, 5 * GHZ])
        replay = run_sweep(good_only, executor=SerialExecutor(),
                           cache=ResultCache(disk_dir=tmp_path))
        assert replay.cache_hits == 2 and replay.n_evals == 0

    def test_cached_values_are_isolated_from_mutation(self):
        spec = SweepSpec(small_scenario(), 2 * GHZ)
        cache = ResultCache()
        first = run_sweep(spec, cache=cache)
        baseline = first.points[0].values.copy()
        with pytest.raises(ValueError):
            # Cached arrays are read-only: corruption fails loudly.
            run_sweep(spec, cache=cache).points[0].values[:] = 0.0
        again = run_sweep(spec, cache=cache)
        np.testing.assert_array_equal(again.points[0].values, baseline)

    def test_unseeded_montecarlo_never_cached(self):
        spec = SweepSpec(small_scenario(), 2 * GHZ,
                         EstimatorSpec(kind="montecarlo", n_samples=2,
                                       seed=None))
        cache = ResultCache()
        run_sweep(spec, cache=cache)
        res = run_sweep(spec, cache=cache)
        assert cache.stats.stores == 0
        assert res.cache_hits == 0


class TestProfileScenario:
    """2D (y-uniform) profile processes as first-class engine jobs."""

    def profile(self, name="prof", n=16):
        return ProfileScenario(name, GaussianCorrelation(1.0, 1.0),
                               period_um=5.0, n=n, normalize=True)

    def test_matches_direct_generator_solver_loop(self):
        """Engine values are bit-identical to the hand-rolled Fig. 6
        loop: seeded white noise -> ProfileGenerator -> SWMSolver2D."""
        from repro.materials import PAPER_SYSTEM
        from repro.surfaces import ProfileGenerator
        from repro.swm.solver2d import SWMSolver2D

        scenario = self.profile()
        spec = SweepSpec(scenario, [2 * GHZ, 5 * GHZ],
                         EstimatorSpec(kind="montecarlo", n_samples=4,
                                       seed=7))
        res = run_sweep(spec, executor=SerialExecutor(),
                        cache=ResultCache())

        gen = ProfileGenerator(GaussianCorrelation(1.0, 1.0), period=5.0,
                               n=16, normalize=True)
        solver = SWMSolver2D(PAPER_SYSTEM)
        for f in (2 * GHZ, 5 * GHZ):
            def model(xi, f=f):
                profile = gen.from_white_noise(xi)
                return solver.solve_um(profile, 5.0, f).enhancement
            direct = MonteCarloEstimator(model, 16).run(4, seed=7)
            point = res.point("prof", f)
            np.testing.assert_array_equal(point.values, direct.samples)
            assert point.seed == 7

    def test_hash_covers_profile_parameters(self):
        base = self.profile()
        assert base.key == self.profile().key
        assert base.key != self.profile(n=24).key
        other_period = ProfileScenario(
            "prof", GaussianCorrelation(1.0, 1.0), period_um=6.0, n=16)
        assert base.key != other_period.key

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProfileScenario("p", GaussianCorrelation(1.0, 1.0),
                            period_um=-1.0, n=16)
        with pytest.raises(ConfigurationError):
            ProfileScenario("p", GaussianCorrelation(1.0, 1.0),
                            period_um=5.0, n=2)

    def test_cache_replay(self):
        spec = SweepSpec(self.profile(), 2 * GHZ,
                         EstimatorSpec(kind="montecarlo", n_samples=4,
                                       seed=1))
        cache = ResultCache()
        first = run_sweep(spec, cache=cache)
        again = run_sweep(spec, cache=cache)
        assert first.cache_hits == 0 and again.cache_hits == 1
        np.testing.assert_array_equal(first.points[0].values,
                                      again.points[0].values)


class TestEstimatorMap:
    """Per-scenario estimators: heterogeneous figures as one spec."""

    def spec(self):
        return SweepSpec(
            [small_scenario("sscm-side"),
             ProfileScenario("mc-side", GaussianCorrelation(1.0, 1.0),
                             period_um=5.0, n=16)],
            [2 * GHZ],
            estimators=EstimatorSpec(order=1),
            estimator_map={"mc-side": EstimatorSpec(
                kind="montecarlo", n_samples=4, seed=0)})

    def test_jobs_use_mapped_estimators(self):
        by_scenario = {j.scenario.name: j.estimator_label
                       for j in self.spec().jobs()}
        assert by_scenario == {"sscm-side": "sscm(order=1)",
                               "mc-side": "montecarlo(n=4, seed=0)"}

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            SweepSpec(small_scenario("a"), [2 * GHZ],
                      estimator_map={"b": EstimatorSpec(order=2)})

    def test_map_changes_spec_hash_only_when_present(self):
        plain = SweepSpec(small_scenario("a"), [2 * GHZ])
        plain_again = SweepSpec(small_scenario("a"), [2 * GHZ],
                                estimator_map={})
        mapped = SweepSpec(small_scenario("a"), [2 * GHZ],
                           estimator_map={"a": EstimatorSpec(order=2)})
        assert plain.key == plain_again.key
        assert plain.key != mapped.key

    def test_runs_end_to_end(self):
        res = run_sweep(self.spec(), cache=ResultCache())
        assert res.point("sscm-side").estimator == "sscm(order=1)"
        assert res.point("mc-side").n_evals == 4


class TestRunBatch:
    """Merged multi-sweep execution with cross-sweep deduplication."""

    def test_shared_jobs_computed_once(self):
        shared = small_scenario("shared")
        a = SweepSpec(shared, [2 * GHZ, 5 * GHZ])
        b = SweepSpec(shared, [2 * GHZ])  # subset of a's jobs
        cache = ResultCache()
        out = run_batch({"a": a, "b": b}, executor=SerialExecutor(),
                        cache=cache)
        # b's single point was deduplicated against a's first job.
        assert cache.stats.stores == 2
        assert out["b"].points[0].cache_hit is False
        np.testing.assert_array_equal(
            out["a"].point("shared", 2 * GHZ).values,
            out["b"].point("shared", 2 * GHZ).values)

    def test_results_match_individual_sweeps(self):
        a = SweepSpec(small_scenario("x"), [2 * GHZ])
        b = SweepSpec(small_scenario("y", eta_um=2.0), [5 * GHZ])
        batch = run_batch({"a": a, "b": b}, cache=ResultCache())
        alone_a = run_sweep(a, cache=ResultCache())
        alone_b = run_sweep(b, cache=ResultCache())
        np.testing.assert_array_equal(batch["a"].points[0].values,
                                      alone_a.points[0].values)
        np.testing.assert_array_equal(batch["b"].points[0].values,
                                      alone_b.points[0].values)

    def test_progress_spans_batch_and_attributes_per_sweep(self):
        a = SweepSpec(small_scenario("x"), [2 * GHZ, 5 * GHZ])
        b = SweepSpec(small_scenario("y", eta_um=2.0), [2 * GHZ])
        seen, attributed = [], []
        run_batch({"a": a, "b": b}, cache=ResultCache(),
                  progress=lambda done, total: seen.append((done, total)),
                  batch_progress=lambda name, done, total:
                  attributed.append((name, done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]
        assert ("a", 2, 2) in attributed and ("b", 1, 1) in attributed

    def test_cached_points_attributed_upfront(self):
        spec = SweepSpec(small_scenario("x"), [2 * GHZ])
        cache = ResultCache()
        run_batch({"a": spec}, cache=cache)
        attributed = []
        run_batch({"a": spec}, cache=cache,
                  batch_progress=lambda name, done, total:
                  attributed.append((name, done, total)))
        assert attributed == [("a", 1, 1)]

    def test_empty_batch(self):
        assert run_batch({}, cache=ResultCache()) == {}

    def test_progress_flows_from_executors_that_ignore_on_result(self):
        """A custom executor honoring only the progress callback still
        drives a live (slot-granularity) progress bar; the fallback
        commit loop finishes the exact count afterwards."""
        class ProgressOnlyExecutor(Executor):
            name = "progress-only"

            def run(self, fn, items, progress=None, on_result=None):
                out = []
                for i, item in enumerate(items):
                    out.append(fn(item))
                    if progress is not None:
                        progress(i + 1, len(items))
                return out

        spec = SweepSpec(small_scenario("x"), [2 * GHZ, 5 * GHZ])
        seen = []
        cache = ResultCache()
        run_batch({"a": spec}, executor=ProgressOnlyExecutor(),
                  cache=cache,
                  progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]
        assert cache.stats.stores == 2  # fallback loop still committed

    def test_run_sweep_rejects_non_spec(self):
        with pytest.raises(ConfigurationError, match="SweepSpec"):
            run_sweep([small_scenario("a")])


class TestPipelineRouting:
    """The high-level pipeline API routes through the engine."""

    @pytest.fixture(scope="class")
    def model(self):
        return StochasticLossModel(GaussianCorrelation(1 * UM, 1 * UM),
                                   SMALL_CONFIG)

    def test_montecarlo_matches_direct_estimator(self, model):
        routed = model.montecarlo(5 * GHZ, 8, seed=0, cache=ResultCache())
        direct = MonteCarloEstimator(model.enhancement_model(5 * GHZ),
                                     model.dimension).run(8, seed=0)
        np.testing.assert_array_equal(routed.samples, direct.samples)

    def test_sscm_matches_direct_and_replays_from_cache(self, model,
                                                        monkeypatch):
        cache = ResultCache()
        routed = model.sscm(5 * GHZ, order=1, cache=cache)
        model.solver.reset_tables()  # history-free, like engine jobs
        direct = model.sscm_direct(5 * GHZ, order=1)
        np.testing.assert_array_equal(routed.node_values,
                                      direct.node_values)
        np.testing.assert_array_equal(routed.coefficients,
                                      direct.coefficients)
        assert routed.mean == direct.mean

        def no_solves(self, *args, **kwargs):
            raise AssertionError("SWM solve performed on warm cache")

        monkeypatch.setattr(SWMSolver3D, "_solve_fields", no_solves)
        replay = model.sscm(5 * GHZ, order=1, cache=cache)
        np.testing.assert_array_equal(replay.node_values,
                                      routed.node_values)

    def test_mean_enhancement_parallel_matches_serial(self, model):
        freqs = np.array([2.0, 5.0]) * GHZ
        serial = model.mean_enhancement(freqs, order=1, cache=ResultCache())
        parallel = model.mean_enhancement(freqs, order=1,
                                          executor=ParallelExecutor(2),
                                          cache=ResultCache())
        assert np.max(np.abs(serial - parallel)) <= 1e-12

    def test_deterministic_enhancement_routed(self):
        dm = DeterministicLossModel()
        cache = ResultCache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            vals = dm.enhancement(np.zeros((8, 8)), 5 * UM,
                                  np.array([2.0, 5.0]) * GHZ, cache=cache)
        np.testing.assert_allclose(vals, 1.0, atol=0.03)
        assert cache.stats.stores == 2

    def test_engine_session_scopes_defaults(self, model):
        session_cache = ResultCache()
        with engine_session(cache=session_cache):
            model.mean_enhancement(np.array([2.0]) * GHZ, order=1)
        assert session_cache.stats.stores == 1

    def test_nested_session_inherits_outer_cache(self, model):
        outer_cache = ResultCache()
        with engine_session(cache=outer_cache):
            with engine_session(n_jobs=1):  # sets executor only
                model.mean_enhancement(np.array([5.0]) * GHZ, order=1)
        assert outer_cache.stats.stores == 1

    def test_numpy_tags_survive_disk_metadata(self, tmp_path):
        spec = SweepSpec(small_scenario(), 2 * GHZ,
                         tags={"n": np.int64(5), "arr": np.array([1.0])})
        res = run_sweep(spec, cache=ResultCache(disk_dir=tmp_path))
        assert res.cache_misses == 1
        record = json.loads(
            (tmp_path / f"{res.points[0].key}.json").read_text())
        assert record["metadata"]["tags"] == {"n": 5, "arr": [1.0]}

    def test_provenance_fields(self, model):
        res = run_sweep(SweepSpec(model.scenario("m"), 2 * GHZ),
                        cache=ResultCache())
        point = res.point("m", 2 * GHZ)
        assert point.estimator == "sscm(order=1)"
        assert point.seed is None
        assert point.n_evals == point.values.size > model.dimension
        assert point.wall_time_s > 0.0
        assert point.cache_hit is False
        assert point.pid is not None
        assert res.summary().endswith("s")

    def test_result_selectors(self, model):
        spec = SweepSpec([model.scenario("a"),
                          small_scenario("b", eta_um=2.0)],
                         [2 * GHZ, 5 * GHZ])
        res = run_sweep(spec, cache=ResultCache())
        with pytest.raises(ConfigurationError):
            res.mean_curve()  # ambiguous scenario
        with pytest.raises(ConfigurationError):
            res.curve("a", statistic="median")
        assert res.scenario_names == ["a", "b"]
        assert res.mean_curve("a").shape == (2,)


class TestSessionIsolation:
    """engine_session is context-local: concurrent threads cannot
    redirect each other's sweeps (the threaded-HTTP-service regression
    of PR 3)."""

    def test_threads_see_their_own_session(self):
        import threading

        from repro.engine.api import _resolve

        n = 4
        caches = [ResultCache() for _ in range(n)]
        barrier = threading.Barrier(n)
        seen: dict[int, ResultCache] = {}
        errors: list[BaseException] = []

        def worker(i: int) -> None:
            try:
                with engine_session(cache=caches[i]):
                    barrier.wait(timeout=10)  # all sessions active at once
                    _, cache = _resolve(None, None)
                    seen[i] = cache
                    barrier.wait(timeout=10)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert all(seen[i] is caches[i] for i in range(n))

    def test_thread_does_not_inherit_callers_session(self):
        import threading

        from repro.engine import default_cache
        from repro.engine.api import _resolve

        found = []

        def probe() -> None:
            _, cache = _resolve(None, None)
            found.append(cache)

        outer = ResultCache()
        with engine_session(cache=outer):
            t = threading.Thread(target=probe)
            t.start()
            t.join(10)
        # a fresh thread starts from the no-session default, not from
        # whatever session happened to be active on the spawning thread
        assert found[0] is default_cache()

    def test_nested_sessions_inherit_within_a_thread(self):
        from repro.engine.api import _resolve

        outer_cache = ResultCache()
        inner_executor = SerialExecutor()
        with engine_session(cache=outer_cache):
            with engine_session(executor=inner_executor):
                executor, cache = _resolve(None, None)
                assert executor is inner_executor
                assert cache is outer_cache
            _, cache = _resolve(None, None)
            assert cache is outer_cache


class TestDiskCacheGC:
    """max_disk_bytes LRU eviction and the purge/manifest helpers."""

    @staticmethod
    def _payload(i: int) -> dict:
        return {"mean": float(i), "std": 0.0,
                "values": np.full(64, float(i)), "n_evals": 1,
                "seed": None, "wall_time_s": 0.0, "pid": None}

    @staticmethod
    def _entry_bytes(tmp_path) -> int:
        probe = ResultCache(disk_dir=tmp_path / "probe")
        probe.put("k", {"mean": 0.0, "std": 0.0,
                        "values": np.full(64, 0.0), "n_evals": 1,
                        "seed": None, "wall_time_s": 0.0, "pid": None})
        return probe.disk_size_bytes()

    def test_lru_eviction_by_recency(self, tmp_path):
        import os

        entry = self._entry_bytes(tmp_path)
        cache = ResultCache(max_memory_entries=0,
                            disk_dir=tmp_path / "store",
                            max_disk_bytes=3 * entry + entry // 2)
        # mtime granularity can be coarse; pin each write to its own tick
        now = [1_000_000.0]

        def put(key, i):
            cache.put(key, self._payload(i))
            for p in cache._disk_paths(key):
                os.utime(p, times=(now[0], now[0]))
            now[0] += 10.0

        put("aa", 0)
        put("bb", 1)
        put("cc", 2)
        assert {e["key"] for e in cache.manifest()} == {"aa", "bb", "cc"}
        # touch "aa" (disk hit refreshes its LRU stamp)
        assert cache.get("aa") is not None
        for p in cache._disk_paths("aa"):
            os.utime(p, times=(now[0], now[0]))
        now[0] += 10.0
        # a fourth entry busts the budget: "bb" (oldest mtime) goes
        put("dd", 3)
        keys = {e["key"] for e in cache.manifest()}
        assert "bb" not in keys
        assert {"aa", "cc", "dd"} <= keys
        assert cache.stats.disk_evictions >= 1
        assert cache.disk_size_bytes() <= cache.max_disk_bytes

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="max_disk_bytes"):
            ResultCache(disk_dir=tmp_path, max_disk_bytes=0)

    def test_purge_by_age(self, tmp_path):
        import os
        import time as time_module

        cache = ResultCache(disk_dir=tmp_path / "store")
        cache.put("old1", self._payload(0))
        cache.put("old2", self._payload(1))
        cache.put("new", self._payload(2))
        stale = time_module.time() - 3600.0
        for key in ("old1", "old2"):
            for p in cache._disk_paths(key):
                os.utime(p, times=(stale, stale))
        assert cache.purge(older_than_s=600.0) == 2
        assert {e["key"] for e in cache.manifest()} == {"new"}
        assert cache.purge(older_than_s=600.0) == 0
        with pytest.raises(ConfigurationError):
            cache.purge(older_than_s=-1.0)

    def test_purge_memory_only_cache_is_noop(self):
        assert ResultCache().purge(older_than_s=0.0) == 0

    def test_get_record_read_path(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store")
        payload = self._payload(7)
        cache.put("deadbeef", payload, metadata={"scenario": "m",
                                                 "tags": {"scale": "quick"}})
        record = cache.get_record("deadbeef")
        assert record["key"] == "deadbeef"
        assert record["metadata"]["scenario"] == "m"
        assert record["payload"]["mean"] == 7.0
        np.testing.assert_array_equal(record["payload"]["values"],
                                      payload["values"])
        assert cache.get_record("feedface") is None

    def test_get_record_memory_fallback(self):
        cache = ResultCache()
        cache.put("aa", self._payload(3))
        record = cache.get_record("aa")
        assert record["payload"]["mean"] == 3.0
        assert record["metadata"] == {}


class TestCacheSplit:
    """The hit/pending split the async service schedules from."""

    def test_split_matches_cache_state(self):
        spec = small_spec(frequencies=(2.0,))
        cache = ResultCache()
        from repro.engine import cache_split

        hits, pending = cache_split(spec, cache)
        assert hits == {} and len(pending) == spec.n_jobs
        run_sweep(spec, cache=cache)
        hits, pending = cache_split(spec, cache)
        assert pending == [] and sorted(hits) == list(range(spec.n_jobs))
        assert all(p["n_evals"] > 0 for p in hits.values())

    def test_uncacheable_jobs_always_pending(self):
        from repro.engine import cache_split

        spec = SweepSpec(small_scenario("m"), [2 * GHZ],
                         EstimatorSpec(kind="montecarlo", n_samples=4,
                                       seed=None))
        cache = ResultCache()
        run_sweep(spec, cache=cache)
        hits, pending = cache_split(spec, cache)
        assert hits == {} and len(pending) == 1
