"""Tests of the empirical roughness formulas (the paper's eq. (1) etc.)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import GHZ, UM
from repro.errors import ConfigurationError
from repro.materials import Conductor
from repro.models.empirical import (
    groiss_enhancement,
    hammerstad_enhancement,
    hemispherical_area_limit,
    morgan_enhancement,
)


class TestHammerstad:
    def test_low_frequency_limit_is_one(self):
        k = hammerstad_enhancement(np.array([1e3]), 1 * UM)
        assert float(k[0]) == pytest.approx(1.0, abs=1e-6)

    def test_saturates_at_two(self):
        k = hammerstad_enhancement(np.array([1e14]), 1 * UM)
        assert float(k[0]) == pytest.approx(2.0, abs=1e-3)

    def test_monotone_in_frequency(self):
        f = np.linspace(0.1, 50, 200) * GHZ
        k = hammerstad_enhancement(f, 1 * UM)
        assert np.all(np.diff(k) > 0)

    def test_paper_formula_value(self):
        """Direct check of eq. (1): K = 1 + (2/pi) atan(1.4 (sigma/delta)^2)."""
        f, sigma = 5 * GHZ, 1 * UM
        delta = Conductor().skin_depth(f)
        expected = 1 + (2 / np.pi) * np.arctan(1.4 * (sigma / delta) ** 2)
        got = float(hammerstad_enhancement(np.array([f]), sigma)[0])
        assert got == pytest.approx(expected, rel=1e-12)

    def test_depends_only_on_sigma_over_delta(self):
        """The paper's criticism: eq. (1) cannot see the correlation
        length — identical output for any surface with equal sigma."""
        f = np.array([3.0]) * GHZ
        assert hammerstad_enhancement(f, 1 * UM) == pytest.approx(
            hammerstad_enhancement(f, 1 * UM))

    def test_morgan_alias(self):
        assert morgan_enhancement is hammerstad_enhancement

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hammerstad_enhancement(np.array([1 * GHZ]), -1 * UM)
        with pytest.raises(ConfigurationError):
            hammerstad_enhancement(np.array([-1.0]), 1 * UM)

    @given(st.floats(0.05, 5.0), st.floats(0.1, 40.0))
    @settings(max_examples=50, deadline=None)
    def test_bounded_between_one_and_two(self, sigma_um, f_ghz):
        k = float(hammerstad_enhancement(np.array([f_ghz * GHZ]),
                                         sigma_um * UM)[0])
        assert 1.0 <= k <= 2.0


class TestGroiss:
    def test_limits(self):
        assert float(groiss_enhancement(np.array([1e3]), 1 * UM)[0]) == \
            pytest.approx(1.0, abs=1e-3)
        assert float(groiss_enhancement(np.array([1e14]), 1 * UM)[0]) == \
            pytest.approx(2.0, abs=1e-2)

    def test_monotone(self):
        f = np.linspace(0.1, 50, 100) * GHZ
        k = groiss_enhancement(f, 0.5 * UM)
        assert np.all(np.diff(k) > 0)


class TestAreaLimit:
    def test_zero_slope_is_one(self):
        assert hemispherical_area_limit(0.0) == 1.0

    def test_matches_monte_carlo(self):
        """E[sqrt(1 + |grad f|^2)] for Gaussian slopes, checked by MC."""
        s = 2.0  # total RMS slope
        rng = np.random.default_rng(0)
        gx = rng.normal(0, s / np.sqrt(2), 200000)
        gy = rng.normal(0, s / np.sqrt(2), 200000)
        mc = np.mean(np.sqrt(1 + gx ** 2 + gy ** 2))
        got = hemispherical_area_limit(s)
        assert got == pytest.approx(mc, rel=5e-3)

    def test_monotone_in_slope(self):
        vals = [hemispherical_area_limit(s) for s in (0.5, 1.0, 2.0, 4.0)]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hemispherical_area_limit(-0.1)
