"""Tests of the roughness-statistics extraction (the paper's Section II
'extract parameters from measured surface heights' workflow)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.surfaces import (
    GaussianCorrelation,
    SurfaceGenerator,
    autocorrelation_1d,
    autocorrelation_2d,
    estimate_correlation_length,
    estimate_sigma,
    extract_statistics,
    radial_psd,
    rms_slope_2d,
)


class TestSigma:
    def test_exact_on_known_field(self):
        rng = np.random.default_rng(0)
        h = rng.normal(3.0, 2.0, size=(64, 64))
        est = estimate_sigma(h)
        assert est == pytest.approx(h.std(), rel=1e-12)

    def test_mean_removed(self):
        h = np.full((16, 16), 7.5)
        assert estimate_sigma(h) == 0.0


class TestAutocorrelation:
    def test_zero_lag_equals_variance(self):
        rng = np.random.default_rng(1)
        h = rng.standard_normal((32, 32))
        lags, corr = autocorrelation_2d(h, 5.0)
        assert corr[0] == pytest.approx(h.var(), rel=1e-9)
        assert lags[0] == 0.0

    def test_pure_cosine_profile(self):
        """ACF of cos(2 pi x / L) is (A^2/2) cos(2 pi d / L)."""
        n, period, amp = 128, 4.0, 0.7
        x = np.arange(n) * period / n
        prof = amp * np.cos(2 * np.pi * x / period)
        lags, corr = autocorrelation_1d(prof, period)
        expected = (amp ** 2 / 2) * np.cos(2 * np.pi * lags / period)
        np.testing.assert_allclose(corr, expected, atol=1e-10)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            autocorrelation_2d(np.zeros((4, 5)), 1.0)
        with pytest.raises(ConfigurationError):
            autocorrelation_1d(np.zeros((4, 4)), 1.0)


class TestCorrelationLength:
    def test_exact_gaussian_curve(self):
        """On the exact C(d) = exp(-d^2/eta^2), the 1/e crossing is eta."""
        eta = 1.3
        lags = np.linspace(0.0, 5.0, 400)
        corr = np.exp(-(lags / eta) ** 2)
        assert estimate_correlation_length(lags, corr) == pytest.approx(
            eta, rel=1e-3)

    def test_uncorrelated_window_edge(self):
        lags = np.linspace(0.0, 2.0, 50)
        corr = np.ones_like(lags)  # never decays
        assert estimate_correlation_length(lags, corr) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_correlation_length(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            estimate_correlation_length(np.array([0.0, 1.0]),
                                        np.array([-1.0, 0.5]))


class TestSlope:
    def test_cosine_surface_slope(self):
        """f = A cos(w x): <f_x^2> = A^2 w^2 / 2, f_y = 0."""
        n, period, amp, m = 64, 5.0, 0.3, 2
        x = np.arange(n) * period / n
        h = amp * np.cos(2 * np.pi * m * x / period)
        hh = np.repeat(h[:, None], n, axis=1)
        w = 2 * np.pi * m / period
        expected = amp * w / np.sqrt(2)
        assert rms_slope_2d(hh, period) == pytest.approx(expected, rel=1e-9)


class TestRadialPSD:
    def test_total_power_matches_variance(self):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = SurfaceGenerator(cf, 8.0, 32)
        h = gen.sample(4).heights
        k, w = radial_psd(h, 8.0)
        # sum W(k) dk^2 over all modes ~ ring-count-weighted radial sum;
        # instead check the peak location is near the spectrum's peak and
        # values are nonnegative.
        assert np.all(w >= 0.0)
        assert k[int(np.argmax(w * k))] < 6.0  # energy at low k

    def test_matches_target_spectrum_in_ensemble(self):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = SurfaceGenerator(cf, 8.0, 32)
        rng = np.random.default_rng(5)
        acc = None
        for _ in range(50):
            k, w = radial_psd(gen.sample(rng).heights, 8.0)
            acc = w if acc is None else acc + w
        acc = acc / 50
        target = cf.spectrum_2d(k)
        mask = (k > 0.5) & (k < 4.0)
        np.testing.assert_allclose(acc[mask], target[mask], rtol=0.35)


class TestExtractStatistics:
    def test_round_trip_on_synthesized_surface(self):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = SurfaceGenerator(cf, 8.0, 40, normalize=True)
        rng = np.random.default_rng(6)
        stats = [extract_statistics(gen.sample(rng).heights, 8.0)
                 for _ in range(12)]
        sigma = np.mean([s.sigma for s in stats])
        eta = np.mean([s.correlation_length for s in stats])
        slope = np.mean([s.rms_slope for s in stats])
        assert sigma == pytest.approx(1.0, rel=0.1)
        assert eta == pytest.approx(1.0, rel=0.2)
        assert slope == pytest.approx(2.0, rel=0.15)

    def test_skin_depth_ratio(self):
        st = extract_statistics(np.random.default_rng(0).standard_normal(
            (16, 16)), 5.0)
        assert st.skin_depth_ratio(2.0) == pytest.approx(st.sigma / 2.0)
