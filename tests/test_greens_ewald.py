"""Tests of the doubly-periodic Ewald Green's function."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.greens.ewald import (
    EwaldConfig,
    periodic_green,
    periodic_green_direct,
    periodic_green_gradient,
)
from repro.greens.freespace import green3d

L = 5.0
K2 = (1 + 1j) / 0.92  # copper-like at ~5 GHz (1/um)
K1 = 2.02e-4 + 0j     # SiO2 at ~5 GHz (1/um)


@pytest.fixture(scope="module")
def separations():
    rng = np.random.default_rng(0)
    dx = rng.uniform(-2, 2, 12)
    dy = rng.uniform(-2, 2, 12)
    dz = rng.uniform(-2.5, 2.5, 12)
    return dx, dy, dz


class TestAgainstDirectSum:
    def test_lossy_medium_matches_brute_force(self, separations):
        dx, dy, dz = separations
        cfg = EwaldConfig(period=L)
        got = periodic_green(dx, dy, dz, K2, cfg)
        ref = periodic_green_direct(dx, dy, dz, K2, L, n_images=30)
        np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_exclude_primary_matches_brute_force(self, separations):
        dx, dy, dz = separations
        cfg = EwaldConfig(period=L)
        got = periodic_green(dx, dy, dz, K2, cfg, exclude_primary=True)
        r = np.sqrt(dx**2 + dy**2 + dz**2)
        ref = (periodic_green_direct(dx, dy, dz, K2, L, n_images=30)
               - green3d(r, K2))
        np.testing.assert_allclose(got, ref, rtol=1e-8)

    def test_direct_sum_requires_loss(self, separations):
        dx, dy, dz = separations
        with pytest.raises(ConfigurationError):
            periodic_green_direct(dx, dy, dz, 1.0 + 0j, L)


class TestSplitInvariance:
    """The defining property of Ewald: independence of the splitting E."""

    @pytest.mark.parametrize("k", [K1, K2, 0.5 + 0.2j])
    def test_result_independent_of_split(self, separations, k):
        dx, dy, dz = separations
        base = periodic_green(
            dx, dy, dz, k, EwaldConfig(period=L, n_images=4, n_modes=4))
        for factor in (0.5, 1.5, 2.0):
            split = factor * np.sqrt(np.pi) / L
            cfg = EwaldConfig(period=L, split=split, n_images=5, n_modes=5)
            other = periodic_green(dx, dy, dz, k, cfg)
            np.testing.assert_allclose(other, base, rtol=1e-7, atol=1e-10)


class TestTruncation:
    def test_default_truncation_converged(self, separations):
        dx, dy, dz = separations
        coarse = periodic_green(dx, dy, dz, K2,
                                EwaldConfig(period=L, n_images=2, n_modes=2))
        fine = periodic_green(dx, dy, dz, K2,
                              EwaldConfig(period=L, n_images=4, n_modes=4))
        np.testing.assert_allclose(coarse, fine, rtol=2e-5, atol=1e-9)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EwaldConfig(period=-1.0)
        with pytest.raises(ConfigurationError):
            EwaldConfig(period=L, n_images=0)
        with pytest.raises(ConfigurationError):
            EwaldConfig(period=L, split=-0.1)


class TestGradient:
    @pytest.mark.parametrize("k", [K1, K2])
    def test_matches_finite_differences(self, separations, k):
        # For the quasi-static medium (K1) the kernel carries a huge
        # constant specular term (~1/(k1 L^2)), so central differences
        # need a larger step to beat cancellation noise; the kernel is
        # smooth on the scale of L, making h = 1e-3 safely in-range.
        dx, dy, dz = separations
        cfg = EwaldConfig(period=L)
        gx, gy, gz = periodic_green_gradient(dx, dy, dz, k, cfg)
        h = 1e-3
        fx = (periodic_green(dx + h, dy, dz, k, cfg)
              - periodic_green(dx - h, dy, dz, k, cfg)) / (2 * h)
        fy = (periodic_green(dx, dy + h, dz, k, cfg)
              - periodic_green(dx, dy - h, dz, k, cfg)) / (2 * h)
        fz = (periodic_green(dx, dy, dz + h, k, cfg)
              - periodic_green(dx, dy, dz - h, k, cfg)) / (2 * h)
        scale = np.max(np.abs(gx)) + np.max(np.abs(gz)) + 1e-12
        np.testing.assert_allclose(gx, fx, rtol=2e-4, atol=3e-6 * scale)
        np.testing.assert_allclose(gy, fy, rtol=2e-4, atol=3e-6 * scale)
        np.testing.assert_allclose(gz, fz, rtol=2e-4, atol=3e-6 * scale)


class TestPeriodicity:
    def test_periodic_in_both_lattice_directions(self, separations):
        # Exact periodicity holds for the infinite sums; with a truncated
        # image window the shifted evaluation loses the outermost ring,
        # so use a wider window and a matching tolerance.
        dx, dy, dz = separations
        cfg = EwaldConfig(period=L, n_images=5, n_modes=5)
        base = periodic_green(dx, dy, dz, K2, cfg)
        shifted = periodic_green(dx + L, dy - 2 * L, dz, K2, cfg)
        np.testing.assert_allclose(shifted, base, rtol=1e-6, atol=1e-10)


class TestSelfLimit:
    def test_regularized_value_continuous_at_zero(self):
        cfg = EwaldConfig(period=L)
        z = np.array([0.0])
        at0 = periodic_green(z, z, z, K2, cfg, exclude_primary=True)
        near = periodic_green(np.array([1e-5]), z, z, K2, cfg,
                              exclude_primary=True)
        np.testing.assert_allclose(at0, near, rtol=1e-4)

    def test_zero_separation_without_exclusion_raises(self):
        cfg = EwaldConfig(period=L)
        z = np.array([0.0])
        with pytest.raises(ConfigurationError):
            periodic_green(z, z, z, K2, cfg)
