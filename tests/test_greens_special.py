"""Tests of the complex-erfc machinery behind the Ewald method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import erfc as erfc_real

from repro.greens.special import (
    erfc_complex,
    erfc_scaled_pair,
    erfc_scaled_pair_derivative,
    ewald_spectral_bracket,
    ewald_spectral_bracket_minus,
)


class TestErfcComplex:
    def test_matches_scipy_on_real_axis(self):
        x = np.linspace(-5, 5, 41)
        got = erfc_complex(x.astype(complex))
        np.testing.assert_allclose(got.real, erfc_real(x), rtol=1e-12,
                                   atol=1e-300)
        np.testing.assert_allclose(got.imag, 0.0, atol=1e-12)

    def test_known_value(self):
        # erfc(1 + 1j) from standard tables.
        got = complex(erfc_complex(np.array(1.0 + 1.0j)))
        assert got == pytest.approx(-0.31615128169795 - 0.190453469237835j,
                                    rel=1e-10)

    @given(st.floats(-8, 8), st.floats(-8, 8))
    @settings(max_examples=60, deadline=None)
    def test_reflection_identity(self, re, im):
        z = complex(re, im)
        a = complex(erfc_complex(np.array(z)))
        b = complex(erfc_complex(np.array(-z)))
        # erfc(z) + erfc(-z) = 2 whenever both are finite.
        if np.isfinite(a) and np.isfinite(b):
            scale = max(1.0, abs(a), abs(b))
            assert abs(a + b - 2.0) / scale < 1e-9

    def test_scalar_shape_preserved(self):
        out = erfc_complex(np.array(0.5 + 0.5j))
        assert out.shape == ()


class TestSpatialBracket:
    """bracket(r) = e^{jkr} erfc(rE + jk/2E) + e^{-jkr} erfc(rE - jk/2E)."""

    def _direct(self, r, k, e):
        cp = lambda z: complex(erfc_complex(np.array(z)))
        return (np.exp(1j * k * r) * cp(r * e + 1j * k / (2 * e))
                + np.exp(-1j * k * r) * cp(r * e - 1j * k / (2 * e)))

    @pytest.mark.parametrize("k", [0.8 + 0.0j, (1 + 1j) / 0.9, 2.0 + 0.3j])
    def test_matches_direct_formula(self, k):
        e = 0.4
        r = np.linspace(0.05, 4.0, 17)
        got = erfc_scaled_pair(r, k, e)
        want = np.array([self._direct(ri, k, e) for ri in r])
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_value_at_zero_is_two(self):
        # bracket(0) = erfc(c) + erfc(-c) = 2.
        got = complex(erfc_scaled_pair(np.array(0.0), (1 + 1j) / 1.3, 0.35))
        assert got == pytest.approx(2.0, abs=1e-10)

    def test_derivative_matches_finite_difference(self):
        k = (1 + 1j) / 0.7
        e = 0.5
        r = np.linspace(0.1, 3.0, 9)
        h = 1e-6
        fd = (erfc_scaled_pair(r + h, k, e)
              - erfc_scaled_pair(r - h, k, e)) / (2 * h)
        got = erfc_scaled_pair_derivative(r, k, e)
        np.testing.assert_allclose(got, fd, rtol=1e-6)

    def test_large_lossy_r_no_overflow(self):
        # Individually enormous terms must combine to a finite value.
        k = (1 + 1j) / 0.1
        got = erfc_scaled_pair(np.array([50.0]), k, 0.35)
        assert np.all(np.isfinite(got))


class TestSpectralBracket:
    def test_limit_large_split_gives_exact_kernel(self):
        """E -> infinity: bracket -> 2 exp(j q |x|) (O(1/E) approach)."""
        q = 1.5 + 0.8j
        x = np.linspace(-2, 2, 11)
        got = ewald_spectral_bracket(x, q, split=2.0e4)
        want = 2.0 * np.exp(1j * q * np.abs(x))
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=1e-6)

    def test_limit_small_split_vanishes(self):
        """E -> 0: the spectral part vanishes for Im(q^2) decaying modes.

        (q with Re(q^2) < 0, i.e. evanescent-dominated — the only regime
        small splits are used in; see the Ewald module notes.)
        """
        q = 0.5 + 1.2j
        x = np.linspace(-2, 2, 11)
        got = ewald_spectral_bracket(x, q, split=0.05)
        np.testing.assert_allclose(got, 0.0, atol=1e-12)

    def test_even_in_x(self):
        q = 0.9 + 1.1j
        x = np.linspace(0.1, 2.0, 7)
        a = ewald_spectral_bracket(x, q, 0.5)
        b = ewald_spectral_bracket(-x, q, 0.5)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_minus_is_derivative_over_jq(self):
        """d/dx bracket = j q * bracket_minus (closed-form gradient)."""
        q = 1.2 + 0.6j
        x = np.linspace(-1.5, 1.5, 13)
        h = 1e-6
        fd = (ewald_spectral_bracket(x + h, q, 0.45)
              - ewald_spectral_bracket(x - h, q, 0.45)) / (2 * h)
        got = 1j * q * ewald_spectral_bracket_minus(x, q, 0.45)
        np.testing.assert_allclose(got, fd, rtol=1e-5, atol=1e-8)

    def test_evanescent_mode_decays(self):
        """Strongly evanescent gamma: the exact kernel limit decays in |x|.

        At a large split the bracket approaches ``2 e^{j q |x|}``, which
        for q = 8j is ``2 e^{-8 |x|}``.
        """
        q = 8.0j
        vals = np.abs(ewald_spectral_bracket(np.array([0.0, 1.0, 2.0]),
                                             q, 50.0))
        assert vals[1] < vals[0] * 1e-2
        assert vals[2] < vals[1]
