"""Tests of the Monte-Carlo and SSCM estimators."""

import numpy as np
import pytest

from repro.errors import StochasticError
from repro.stochastic.montecarlo import MonteCarloEstimator
from repro.stochastic.sscm import SSCMEstimator


def quadratic_model(xi: np.ndarray) -> float:
    """A model that is exactly order-2 chaos: SSCM(2) must be exact."""
    return (2.0 + 0.5 * xi[0] - 0.3 * xi[1] + 0.2 * (xi[0] ** 2 - 1)
            + 0.1 * xi[0] * xi[1])


QUAD_MEAN = 2.0
QUAD_VAR = 0.5 ** 2 + 0.3 ** 2 + 0.2 ** 2 * 2 + 0.1 ** 2


class TestMonteCarlo:
    def test_mean_and_ci_on_known_model(self):
        est = MonteCarloEstimator(quadratic_model, 2)
        res = est.run(4000, seed=0)
        lo, hi = res.confidence_interval()
        assert lo < QUAD_MEAN < hi
        assert res.std == pytest.approx(np.sqrt(QUAD_VAR), rel=0.1)

    def test_seed_reproducibility(self):
        est = MonteCarloEstimator(quadratic_model, 2)
        a = est.run(50, seed=7).samples
        b = est.run(50, seed=7).samples
        np.testing.assert_array_equal(a, b)

    def test_cdf_monotone_and_normalized(self):
        res = MonteCarloEstimator(quadratic_model, 2).run(200, seed=1)
        x, f = res.cdf()
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(f) > 0)
        assert f[-1] == pytest.approx(1.0)

    def test_quantiles_ordered(self):
        res = MonteCarloEstimator(quadratic_model, 2).run(500, seed=2)
        assert res.quantile(0.1) <= res.quantile(0.5) <= res.quantile(0.9)

    def test_run_until_hits_target(self):
        est = MonteCarloEstimator(quadratic_model, 2)
        res = est.run_until(rel_stderr=0.02, batch=64, seed=3)
        assert res.stderr / abs(res.mean) < 0.02

    def test_validation(self):
        with pytest.raises(StochasticError):
            MonteCarloEstimator(quadratic_model, 0)
        est = MonteCarloEstimator(quadratic_model, 2)
        with pytest.raises(StochasticError):
            est.run(1)
        with pytest.raises(StochasticError):
            est.run(100, seed=0).quantile(1.5)
        with pytest.raises(StochasticError):
            est.run_until(rel_stderr=-0.1)


class TestSSCM:
    def test_exact_recovery_of_quadratic(self):
        """An order-2 model is reproduced exactly by order-2 SSCM."""
        est = SSCMEstimator(quadratic_model, 2, order=2)
        res = est.run()
        assert res.mean == pytest.approx(QUAD_MEAN, abs=1e-10)
        assert res.variance == pytest.approx(QUAD_VAR, abs=1e-10)
        # Surrogate reproduces the model pointwise.
        rng = np.random.default_rng(0)
        xi = rng.standard_normal((50, 2))
        direct = np.array([quadratic_model(x) for x in xi])
        np.testing.assert_allclose(res.evaluate(xi), direct, atol=1e-10)

    def test_order1_misses_quadratic_variance(self):
        res1 = SSCMEstimator(quadratic_model, 2, order=1).run()
        # Mean of the quadratic part is still captured (level-1 grids
        # integrate degree-3 exactly), but the quadratic variance is not.
        assert res1.mean == pytest.approx(QUAD_MEAN, abs=1e-10)
        assert res1.variance < QUAD_VAR

    def test_node_count_matches_sparse_grid(self):
        res = SSCMEstimator(quadratic_model, 5, order=1).run()
        assert res.n_samples == 11  # 2M + 1

    def test_smooth_nonpolynomial_model_converges_to_mc(self):
        def model(xi):
            return float(np.exp(0.3 * xi[0] - 0.2 * xi[1]))
        mc = MonteCarloEstimator(model, 2).run(20000, seed=4)
        ss = SSCMEstimator(model, 2, order=2).run()
        assert ss.mean == pytest.approx(mc.mean, abs=4 * mc.stderr + 1e-3)

    def test_cdf_shape(self):
        res = SSCMEstimator(quadratic_model, 2, order=2).run()
        x, f = res.cdf(n_samples=5000, seed=0)
        assert np.all(np.diff(f) > 0)
        assert x.shape == f.shape

    def test_project_validates_shape(self):
        est = SSCMEstimator(quadratic_model, 2, order=1)
        from repro.stochastic.sparsegrid import smolyak_grid
        grid = smolyak_grid(2, 1)
        with pytest.raises(StochasticError):
            est.project(grid, np.zeros(grid.n_points + 2))

    def test_validation(self):
        with pytest.raises(StochasticError):
            SSCMEstimator(quadratic_model, 2, order=0)
        with pytest.raises(StochasticError):
            SSCMEstimator(quadratic_model, 0, order=1)
