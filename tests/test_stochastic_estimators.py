"""Tests of the Monte-Carlo and SSCM estimators."""

import numpy as np
import pytest

from repro.errors import StochasticError
from repro.stochastic.montecarlo import MonteCarloEstimator, MonteCarloResult
from repro.stochastic.sscm import SSCMEstimator


def quadratic_model(xi: np.ndarray) -> float:
    """A model that is exactly order-2 chaos: SSCM(2) must be exact."""
    return (2.0 + 0.5 * xi[0] - 0.3 * xi[1] + 0.2 * (xi[0] ** 2 - 1)
            + 0.1 * xi[0] * xi[1])


def quadratic_batch_model(xi: np.ndarray) -> np.ndarray:
    """Vectorized :func:`quadratic_model` over an (S, 2) block.

    Written with the exact same per-element operations so batched values
    are bit-identical to the scalar path.
    """
    return (2.0 + 0.5 * xi[:, 0] - 0.3 * xi[:, 1]
            + 0.2 * (xi[:, 0] ** 2 - 1) + 0.1 * xi[:, 0] * xi[:, 1])


QUAD_MEAN = 2.0
QUAD_VAR = 0.5 ** 2 + 0.3 ** 2 + 0.2 ** 2 * 2 + 0.1 ** 2


class TestMonteCarlo:
    def test_mean_and_ci_on_known_model(self):
        est = MonteCarloEstimator(quadratic_model, 2)
        res = est.run(4000, seed=0)
        lo, hi = res.confidence_interval()
        assert lo < QUAD_MEAN < hi
        assert res.std == pytest.approx(np.sqrt(QUAD_VAR), rel=0.1)

    def test_seed_reproducibility(self):
        est = MonteCarloEstimator(quadratic_model, 2)
        a = est.run(50, seed=7).samples
        b = est.run(50, seed=7).samples
        np.testing.assert_array_equal(a, b)

    def test_cdf_monotone_and_normalized(self):
        res = MonteCarloEstimator(quadratic_model, 2).run(200, seed=1)
        x, f = res.cdf()
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(f) > 0)
        assert f[-1] == pytest.approx(1.0)

    def test_quantiles_ordered(self):
        res = MonteCarloEstimator(quadratic_model, 2).run(500, seed=2)
        assert res.quantile(0.1) <= res.quantile(0.5) <= res.quantile(0.9)

    def test_run_until_hits_target(self):
        est = MonteCarloEstimator(quadratic_model, 2)
        res = est.run_until(rel_stderr=0.02, batch=64, seed=3)
        assert res.stderr / abs(res.mean) < 0.02

    def test_validation(self):
        with pytest.raises(StochasticError):
            MonteCarloEstimator(quadratic_model, 0)
        est = MonteCarloEstimator(quadratic_model, 2)
        with pytest.raises(StochasticError):
            est.run(1)
        with pytest.raises(StochasticError):
            est.run(100, seed=0).quantile(1.5)
        with pytest.raises(StochasticError):
            est.run_until(rel_stderr=-0.1)


class TestMonteCarloResultValidation:
    """`std`/`stderr` use ddof=1: below two samples they were silent
    NaNs (e.g. a result rebuilt from a single-sample engine payload);
    construction must reject that instead."""

    def test_rejects_single_sample(self):
        with pytest.raises(StochasticError):
            MonteCarloResult(samples=np.array([1.0]), seed=0)

    def test_rejects_empty_and_non_1d(self):
        with pytest.raises(StochasticError):
            MonteCarloResult(samples=np.array([]), seed=0)
        with pytest.raises(StochasticError):
            MonteCarloResult(samples=np.zeros((4, 2)), seed=0)

    def test_two_samples_have_finite_statistics(self):
        res = MonteCarloResult(samples=np.array([1.0, 2.0]), seed=None)
        assert np.isfinite(res.std) and np.isfinite(res.stderr)
        lo, hi = res.confidence_interval()
        assert np.isfinite(lo) and np.isfinite(hi)


class TestMonteCarloBatched:
    """The vectorized-model protocol: run(batch_size=...) through an
    (S, M) -> (S,) callable is bit-identical to the per-sample loop
    (same xi bit stream, same values)."""

    def _estimator(self):
        return MonteCarloEstimator(quadratic_model, 2,
                                   batch_model=quadratic_batch_model)

    def test_batched_bit_identical(self):
        ref = MonteCarloEstimator(quadratic_model, 2).run(100, seed=9)
        bat = self._estimator().run(100, seed=9, batch_size=16)
        np.testing.assert_array_equal(ref.samples, bat.samples)

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 100, 512])
    def test_batch_size_edge_cases(self, batch_size):
        """1, non-divisors of S, == S, and > S all chunk correctly."""
        ref = MonteCarloEstimator(quadratic_model, 2).run(10, seed=4)
        bat = self._estimator().run(10, seed=4, batch_size=batch_size)
        np.testing.assert_array_equal(ref.samples, bat.samples)

    def test_batch_size_without_batch_model_falls_back(self):
        ref = MonteCarloEstimator(quadratic_model, 2).run(20, seed=5)
        got = MonteCarloEstimator(quadratic_model, 2).run(20, seed=5,
                                                          batch_size=8)
        np.testing.assert_array_equal(ref.samples, got.samples)

    def test_progress_counts_samples(self):
        seen = []
        self._estimator().run(10, seed=0, batch_size=4,
                              progress=lambda d, t: seen.append((d, t)))
        assert seen == [(4, 10), (8, 10), (10, 10)]

    def test_invalid_batch_size(self):
        with pytest.raises(StochasticError):
            self._estimator().run(10, seed=0, batch_size=0)

    def test_bad_batch_model_shape_raises(self):
        est = MonteCarloEstimator(quadratic_model, 2,
                                  batch_model=lambda xi: np.zeros(3))
        with pytest.raises(StochasticError):
            est.run(10, seed=0, batch_size=5)


class TestRunUntil:
    """Regression tests: the adaptive loop must clamp the final batch to
    max_samples (it used to overshoot by up to batch - 1) and track
    convergence with running moments."""

    def test_never_exceeds_max_samples(self):
        calls = []

        def model(xi):
            calls.append(1)
            return float(xi[0])  # zero-mean: never converges

        res = MonteCarloEstimator(model, 1).run_until(
            rel_stderr=1e-9, batch=32, max_samples=50, seed=0)
        assert res.n_samples == 50
        assert len(calls) == 50

    def test_cap_not_multiple_of_batch(self):
        res = MonteCarloEstimator(quadratic_model, 2).run_until(
            rel_stderr=1e-12, batch=64, max_samples=100, seed=1)
        assert res.n_samples == 100

    def test_converged_run_unchanged_sample_stream(self):
        """For runs that stop before the cap, the drawn xi stream (and
        hence the samples) matches the per-sample reference draws."""
        res = MonteCarloEstimator(quadratic_model, 2).run_until(
            rel_stderr=0.05, batch=16, seed=7)
        rng = np.random.default_rng(7)
        ref = np.array([quadratic_model(rng.standard_normal(2))
                        for _ in range(res.n_samples)])
        np.testing.assert_array_equal(res.samples, ref)

    def test_batched_run_until_bit_identical(self):
        ref = MonteCarloEstimator(quadratic_model, 2).run_until(
            rel_stderr=0.05, batch=16, seed=3)
        bat = MonteCarloEstimator(
            quadratic_model, 2,
            batch_model=quadratic_batch_model).run_until(
            rel_stderr=0.05, batch=16, seed=3)
        np.testing.assert_array_equal(ref.samples, bat.samples)

    def test_validation(self):
        est = MonteCarloEstimator(quadratic_model, 2)
        with pytest.raises(StochasticError):
            est.run_until(rel_stderr=0.1, batch=0)
        with pytest.raises(StochasticError):
            est.run_until(rel_stderr=0.1, max_samples=1)


class TestSSCMBatched:
    def _estimator(self, order=2):
        return SSCMEstimator(quadratic_model, 2, order=order,
                             batch_model=quadratic_batch_model)

    def test_batched_bit_identical(self):
        ref = SSCMEstimator(quadratic_model, 2, order=2).run()
        bat = self._estimator().run(batch_size=4)
        np.testing.assert_array_equal(ref.node_values, bat.node_values)
        np.testing.assert_array_equal(ref.coefficients, bat.coefficients)

    @pytest.mark.parametrize("batch_size", [1, 3, 1000])
    def test_batch_size_edge_cases(self, batch_size):
        ref = SSCMEstimator(quadratic_model, 2, order=1).run()
        bat = self._estimator(order=1).run(batch_size=batch_size)
        np.testing.assert_array_equal(ref.node_values, bat.node_values)

    def test_progress_counts_nodes(self):
        seen = []
        self._estimator(order=1).run(batch_size=2,
                                     progress=lambda d, t: seen.append(d))
        assert seen[-1] == 5  # level-1 grid in 2D: 2M + 1 nodes
        assert seen == sorted(seen)

    def test_invalid_batch_size(self):
        with pytest.raises(StochasticError):
            self._estimator().run(batch_size=0)

    def test_bad_batch_model_shape_raises(self):
        est = SSCMEstimator(quadratic_model, 2, order=1,
                            batch_model=lambda xi: np.zeros((2, 2)))
        with pytest.raises(StochasticError):
            est.run(batch_size=3)


class TestSSCM:
    def test_exact_recovery_of_quadratic(self):
        """An order-2 model is reproduced exactly by order-2 SSCM."""
        est = SSCMEstimator(quadratic_model, 2, order=2)
        res = est.run()
        assert res.mean == pytest.approx(QUAD_MEAN, abs=1e-10)
        assert res.variance == pytest.approx(QUAD_VAR, abs=1e-10)
        # Surrogate reproduces the model pointwise.
        rng = np.random.default_rng(0)
        xi = rng.standard_normal((50, 2))
        direct = np.array([quadratic_model(x) for x in xi])
        np.testing.assert_allclose(res.evaluate(xi), direct, atol=1e-10)

    def test_order1_misses_quadratic_variance(self):
        res1 = SSCMEstimator(quadratic_model, 2, order=1).run()
        # Mean of the quadratic part is still captured (level-1 grids
        # integrate degree-3 exactly), but the quadratic variance is not.
        assert res1.mean == pytest.approx(QUAD_MEAN, abs=1e-10)
        assert res1.variance < QUAD_VAR

    def test_node_count_matches_sparse_grid(self):
        res = SSCMEstimator(quadratic_model, 5, order=1).run()
        assert res.n_samples == 11  # 2M + 1

    def test_smooth_nonpolynomial_model_converges_to_mc(self):
        def model(xi):
            return float(np.exp(0.3 * xi[0] - 0.2 * xi[1]))
        mc = MonteCarloEstimator(model, 2).run(20000, seed=4)
        ss = SSCMEstimator(model, 2, order=2).run()
        assert ss.mean == pytest.approx(mc.mean, abs=4 * mc.stderr + 1e-3)

    def test_cdf_shape(self):
        res = SSCMEstimator(quadratic_model, 2, order=2).run()
        x, f = res.cdf(n_samples=5000, seed=0)
        assert np.all(np.diff(f) > 0)
        assert x.shape == f.shape

    def test_project_validates_shape(self):
        est = SSCMEstimator(quadratic_model, 2, order=1)
        from repro.stochastic.sparsegrid import smolyak_grid
        grid = smolyak_grid(2, 1)
        with pytest.raises(StochasticError):
            est.project(grid, np.zeros(grid.n_points + 2))

    def test_validation(self):
        with pytest.raises(StochasticError):
            SSCMEstimator(quadratic_model, 2, order=0)
        with pytest.raises(StochasticError):
            SSCMEstimator(quadratic_model, 0, order=1)
