"""Tests of the batched sample-solve path (solver, engine, hashes).

The contract under test everywhere: batching is a *pure performance*
knob — batched solves are bit-identical to the sequential per-sample
path (same kernel-table reuse policy, same LAPACK factorizations, same
seed stream), and ``batch_size`` never enters a content hash.
"""

import warnings

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig, StochasticLossModel
from repro.engine.runtime import clear_memo, execute_job
from repro.engine.spec import (
    DeterministicScenario,
    EstimatorSpec,
    Job,
    ProfileScenario,
    StochasticScenario,
)
from repro.errors import ConfigurationError, MeshError
from repro.surfaces import GaussianCorrelation
from repro.swm.assembly import assemble_medium, assemble_medium_many
from repro.swm.fastkernel import KernelTables
from repro.swm.geometry import build_mesh_3d
from repro.swm.solver import SWMOptions, SWMSolver3D
from repro.swm.solver2d import SWM2DOptions, SWMSolver2D

FREQ = 20 * GHZ


def _random_heights(b: int, n: int, seed: int = 42,
                    scale: float = 0.3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, scale, (b, n, n))


class TestSolver3DBatchedParity:
    def test_bit_identical_to_per_sample(self):
        heights = _random_heights(6, 8)
        heights[3] *= 4.0  # force a kernel-table rebuild mid-batch
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            ref = SWMSolver3D()
            serial = [ref.solve_um(h, 5.0, FREQ) for h in heights]
            bat = SWMSolver3D().solve_many_um(heights, 5.0, FREQ)
        assert len(bat) == len(serial)
        for a, b in zip(serial, bat):
            assert a.enhancement == b.enhancement
            np.testing.assert_array_equal(a.psi, b.psi)
            np.testing.assert_array_equal(a.v, b.v)
            assert a.absorbed_power == b.absorbed_power
            assert a.smooth_power == b.smooth_power

    def test_chunked_stacking_matches_full_batch(self):
        heights = _random_heights(5, 8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            full = SWMSolver3D().solve_many_um(heights, 5.0, FREQ)
            chunked = SWMSolver3D(
                options=SWMOptions(batch_size=2)
            ).solve_many_um(heights, 5.0, FREQ)
        for a, b in zip(full, chunked):
            assert a.enhancement == b.enhancement

    def test_solve_many_si_units(self):
        heights = _random_heights(3, 8) * UM
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = SWMSolver3D()
            many = solver.solve_many(heights, 5 * UM, FREQ)
            one = SWMSolver3D().solve(heights[0], 5 * UM, FREQ)
        assert many[0].enhancement == one.enhancement

    def test_single_sample_batch_matches_solve_um(self):
        heights = _random_heights(1, 8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            one = SWMSolver3D().solve_um(heights[0], 5.0, FREQ)
            bat = SWMSolver3D().solve_many_um(heights, 5.0, FREQ)
        assert bat[0].enhancement == one.enhancement

    def test_validates_input_shape(self):
        with pytest.raises(ConfigurationError):
            SWMSolver3D().solve_many_um(np.zeros((8, 8)), 5.0, FREQ)

    def test_rejects_empty_batch(self):
        with pytest.raises(ConfigurationError):
            SWMSolver3D().solve_mesh_many([], FREQ)

    def test_rejects_mismatched_grids(self):
        m1 = build_mesh_3d(np.zeros((8, 8)), 5.0)
        m2 = build_mesh_3d(np.zeros((12, 12)), 5.0)
        with pytest.raises(ConfigurationError):
            SWMSolver3D().solve_mesh_many([m1, m2], FREQ)


class TestSolver2DBatchedParity:
    def test_bit_identical_to_per_sample(self):
        rng = np.random.default_rng(7)
        profiles = rng.normal(0.0, 0.3, (6, 16))
        solver = SWMSolver2D()
        serial = [solver.solve_um(p, 5.0, FREQ) for p in profiles]
        bat = solver.solve_many_um(profiles, 5.0, FREQ)
        for a, b in zip(serial, bat):
            assert a.enhancement == b.enhancement
            np.testing.assert_array_equal(a.psi, b.psi)
            np.testing.assert_array_equal(a.v, b.v)

    def test_chunked_stacking_matches_full_batch(self):
        rng = np.random.default_rng(8)
        profiles = rng.normal(0.0, 0.3, (5, 16))
        full = SWMSolver2D().solve_many_um(profiles, 5.0, FREQ)
        chunked = SWMSolver2D(
            options=SWM2DOptions(batch_size=2)
        ).solve_many_um(profiles, 5.0, FREQ)
        for a, b in zip(full, chunked):
            assert a.enhancement == b.enhancement

    def test_validates_input_shape(self):
        with pytest.raises(ConfigurationError):
            SWMSolver2D().solve_many_um(np.zeros(16), 5.0, FREQ)


class TestBatchedAssembly:
    def test_matches_per_mesh_assembly(self):
        heights = _random_heights(3, 8)
        meshes = [build_mesh_3d(h, 5.0) for h in heights]
        solver = SWMSolver3D()
        k1, _ = solver._wavenumbers_um(FREQ)
        tables = solver._get_tables(1, k1, FREQ, meshes[0])
        opts = solver.options.assembly
        d_many, s_many = assemble_medium_many(meshes, k1, opts,
                                              tables=tables)
        for i, mesh in enumerate(meshes):
            d_one, s_one = assemble_medium(mesh, k1, opts, tables=tables)
            np.testing.assert_array_equal(d_many[i], d_one)
            np.testing.assert_array_equal(s_many[i], s_one)

    def test_rejects_mismatched_meshes(self):
        m1 = build_mesh_3d(np.zeros((8, 8)), 5.0)
        m2 = build_mesh_3d(np.zeros((8, 8)), 6.0)
        with pytest.raises(MeshError):
            assemble_medium_many([m1, m2], 1.0 + 0.1j)

    def test_exact_path_falls_back_per_mesh(self):
        from repro.swm.assembly import AssemblyOptions

        heights = _random_heights(2, 8)
        meshes = [build_mesh_3d(h, 5.0) for h in heights]
        opts = AssemblyOptions(use_tables=False)
        k = 0.5 + 0.3j
        d_many, s_many = assemble_medium_many(meshes, k, opts, tables=None)
        d_one, s_one = assemble_medium(meshes[1], k, opts, tables=None)
        np.testing.assert_array_equal(d_many[1], d_one)
        np.testing.assert_array_equal(s_many[1], s_one)


class TestKernelTablesCovers:
    def test_covers_reports_tabulated_range(self):
        from repro.swm.assembly import AssemblyOptions

        cfg = AssemblyOptions().ewald_config(5.0)
        tables = KernelTables(0.5 + 0.2j, cfg, z_extent=2.0)
        assert tables.covers(1.0)
        assert tables.covers(2.0)
        assert not tables.covers(3.0)

    def test_solver_reuses_covering_tables(self):
        solver = SWMSolver3D()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            heights = _random_heights(1, 8)[0]
            solver.solve_um(heights, 5.0, FREQ)
            tables = dict(solver._tables)
            solver.solve_um(0.5 * heights, 5.0, FREQ)  # smaller extent
        assert dict(solver._tables) == tables  # reused, not rebuilt


class TestWarningAttribution:
    """The skin-depth warning must point at the *user's* call site for
    every public entry point (solve, solve_um, solve_mesh, and the
    batched variants), not at a solver-internal frame."""

    # 8 points over 5 um at 50 GHz: spacing 0.625 um >> 1.5 * delta.
    FREQ_COARSE = 50 * GHZ

    def _assert_warns_here(self, trigger):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            trigger()
        rt = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert rt, "expected the skin-depth resolution warning"
        assert rt[0].filename == __file__

    def test_solve_points_at_caller(self):
        solver = SWMSolver3D()
        self._assert_warns_here(
            lambda: solver.solve(np.zeros((8, 8)), 5 * UM, self.FREQ_COARSE))

    def test_solve_um_points_at_caller(self):
        solver = SWMSolver3D()
        self._assert_warns_here(
            lambda: solver.solve_um(np.zeros((8, 8)), 5.0, self.FREQ_COARSE))

    def test_solve_mesh_points_at_caller(self):
        solver = SWMSolver3D()
        mesh = build_mesh_3d(np.zeros((8, 8)), 5.0)
        self._assert_warns_here(
            lambda: solver.solve_mesh(mesh, self.FREQ_COARSE))

    def test_solve_many_um_points_at_caller(self):
        solver = SWMSolver3D()
        self._assert_warns_here(
            lambda: solver.solve_many_um(np.zeros((2, 8, 8)), 5.0,
                                         self.FREQ_COARSE))

    def test_solve_many_points_at_caller(self):
        solver = SWMSolver3D()
        self._assert_warns_here(
            lambda: solver.solve_many(np.zeros((2, 8, 8)) * UM, 5 * UM,
                                      self.FREQ_COARSE))

    def test_solve_mesh_many_points_at_caller(self):
        solver = SWMSolver3D()
        meshes = [build_mesh_3d(np.zeros((8, 8)), 5.0)]
        self._assert_warns_here(
            lambda: solver.solve_mesh_many(meshes, self.FREQ_COARSE))


class TestWarningAttribution2D(TestWarningAttribution):
    """The 2D solver now carries the same skin-depth check as the 3D
    one (it historically had none), with the same stacklevel threading:
    every public entry point attributes the warning to the caller."""

    def test_solve_points_at_caller(self):
        solver = SWMSolver2D()
        self._assert_warns_here(
            lambda: solver.solve(np.zeros(8), 5 * UM, self.FREQ_COARSE))

    def test_solve_um_points_at_caller(self):
        solver = SWMSolver2D()
        self._assert_warns_here(
            lambda: solver.solve_um(np.zeros(8), 5.0, self.FREQ_COARSE))

    def test_solve_mesh_points_at_caller(self):
        from repro.swm.geometry import build_mesh_2d

        solver = SWMSolver2D()
        mesh = build_mesh_2d(np.zeros(8), 5.0)
        self._assert_warns_here(
            lambda: solver.solve_mesh(mesh, self.FREQ_COARSE))

    def test_solve_many_um_points_at_caller(self):
        solver = SWMSolver2D()
        self._assert_warns_here(
            lambda: solver.solve_many_um(np.zeros((2, 8)), 5.0,
                                         self.FREQ_COARSE))

    def test_solve_many_points_at_caller(self):
        solver = SWMSolver2D()
        self._assert_warns_here(
            lambda: solver.solve_many(np.zeros((2, 8)) * UM, 5 * UM,
                                      self.FREQ_COARSE))

    def test_solve_mesh_many_points_at_caller(self):
        from repro.swm.geometry import build_mesh_2d

        solver = SWMSolver2D()
        meshes = [build_mesh_2d(np.zeros(8), 5.0)]
        self._assert_warns_here(
            lambda: solver.solve_mesh_many(meshes, self.FREQ_COARSE))

    def test_fine_mesh_does_not_warn(self):
        solver = SWMSolver2D()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solver.solve_um(np.zeros(96), 5.0, self.FREQ_COARSE)
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]


# ----------------------------------------------------------------------
# Engine-level parity: every scenario kind, batched vs per-sample.
# ----------------------------------------------------------------------

CORR_3D = GaussianCorrelation(sigma=1 * UM, eta=1 * UM)
CONFIG_3D = StochasticLossConfig(points_per_side=8, max_modes=4)
CORR_2D = GaussianCorrelation(sigma=1.0, eta=1.0)  # profile scenarios: um


def _run_job(scenario, estimator, frequency_hz=5 * GHZ):
    clear_memo()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return execute_job(Job(scenario, frequency_hz, estimator, 0))


class TestEngineBatchedParity:
    def test_stochastic_montecarlo(self):
        base = EstimatorSpec(kind="montecarlo", n_samples=10, seed=3)
        for bs in (1, 4, 64):
            scen = StochasticScenario("m", CORR_3D, CONFIG_3D)
            a = _run_job(scen, base)
            b = _run_job(StochasticScenario("m", CORR_3D, CONFIG_3D),
                         EstimatorSpec(kind="montecarlo", n_samples=10,
                                       seed=3, batch_size=bs))
            np.testing.assert_array_equal(a["values"], b["values"])
            assert a["mean"] == b["mean"] and a["std"] == b["std"]

    def test_stochastic_sscm(self):
        scen = StochasticScenario("m", CORR_3D, CONFIG_3D)
        a = _run_job(scen, EstimatorSpec(kind="sscm", order=1))
        b = _run_job(StochasticScenario("m", CORR_3D, CONFIG_3D),
                     EstimatorSpec(kind="sscm", order=1, batch_size=4))
        np.testing.assert_array_equal(a["values"], b["values"])

    def test_profile_montecarlo(self):
        scen = ProfileScenario("p", CORR_2D, period_um=5.0, n=16)
        a = _run_job(scen, EstimatorSpec(kind="montecarlo", n_samples=9,
                                         seed=1))
        b = _run_job(ProfileScenario("p", CORR_2D, period_um=5.0, n=16),
                     EstimatorSpec(kind="montecarlo", n_samples=9, seed=1,
                                   batch_size=4))
        np.testing.assert_array_equal(a["values"], b["values"])

    def test_deterministic_matches_batched_solver(self):
        heights = _random_heights(1, 8, seed=5)[0] * UM
        scen = DeterministicScenario("d", heights, 5 * UM)
        payload = _run_job(scen, None, frequency_hz=FREQ)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            batched = SWMSolver3D().solve_many(heights[None, :, :], 5 * UM,
                                               FREQ)
        assert payload["values"][0] == batched[0].enhancement

    def test_options_batch_size_is_worker_default(self):
        # batch_size via SWMOptions (no estimator knob) must hit the
        # same bit-identical path.
        opts = SWMOptions(batch_size=4)
        a = _run_job(StochasticScenario("m", CORR_3D, CONFIG_3D),
                     EstimatorSpec(kind="montecarlo", n_samples=8, seed=2))
        b = _run_job(
            StochasticScenario("m", CORR_3D, CONFIG_3D, options=opts),
            EstimatorSpec(kind="montecarlo", n_samples=8, seed=2))
        np.testing.assert_array_equal(a["values"], b["values"])

    def test_pipeline_montecarlo_batch_size(self):
        from repro.engine import ResultCache

        # Fresh caches: the second run must *compute* through the
        # batched path, not replay the first run's cache entry.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            model = StochasticLossModel(CORR_3D, CONFIG_3D)
            a = model.montecarlo(5 * GHZ, 8, seed=11, cache=ResultCache())
            model2 = StochasticLossModel(CORR_3D, CONFIG_3D)
            b = model2.montecarlo(5 * GHZ, 8, seed=11, batch_size=3,
                                  cache=ResultCache())
        np.testing.assert_array_equal(a.samples, b.samples)


class TestBatchSizeOutsideContentHash:
    def test_estimator_spec_excludes_batch_size(self):
        a = EstimatorSpec(kind="montecarlo", n_samples=10, seed=3)
        b = EstimatorSpec(kind="montecarlo", n_samples=10, seed=3,
                          batch_size=16)
        assert a.to_spec() == b.to_spec()

    def test_job_key_invariant(self):
        scen = StochasticScenario("m", CORR_3D, CONFIG_3D)
        j1 = Job(scen, 5 * GHZ, EstimatorSpec(kind="sscm", order=1), 0)
        j2 = Job(scen, 5 * GHZ,
                 EstimatorSpec(kind="sscm", order=1, batch_size=8), 0)
        assert j1.key == j2.key

    def test_swm_options_exclude_batch_size(self):
        assert SWMOptions().to_spec() == SWMOptions(batch_size=16).to_spec()
        assert (SWM2DOptions().to_spec()
                == SWM2DOptions(batch_size=16).to_spec())

    def test_scenario_key_invariant_under_options_batch_size(self):
        s1 = StochasticScenario("m", CORR_3D, CONFIG_3D,
                                options=SWMOptions())
        s2 = StochasticScenario("m", CORR_3D, CONFIG_3D,
                                options=SWMOptions(batch_size=16))
        assert s1.key == s2.key
        p1 = ProfileScenario("p", CORR_2D, period_um=5.0, n=16,
                             options=SWM2DOptions())
        p2 = ProfileScenario("p", CORR_2D, period_um=5.0, n=16,
                             options=SWM2DOptions(batch_size=16))
        assert p1.key == p2.key

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            EstimatorSpec(kind="sscm", batch_size=0)
        with pytest.raises(ConfigurationError):
            SWMOptions(batch_size=0)
        with pytest.raises(ConfigurationError):
            SWM2DOptions(batch_size=-1)

    def test_wire_round_trip_preserves_batch_size_and_hash(self):
        from repro.service.wire import dumps, loads

        scen = StochasticScenario("m", CORR_3D, CONFIG_3D)
        job = Job(scen, 5 * GHZ,
                  EstimatorSpec(kind="montecarlo", n_samples=10, seed=3,
                                batch_size=8), 0)
        back = loads(dumps(job))
        assert back.estimator.batch_size == 8
        assert back.key == job.key
