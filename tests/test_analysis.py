"""Tests of :mod:`repro.analysis` — the invariant linter.

One positive and one negative fixture per rule (compiled from strings,
never from repo files), the suppression-comment contract, the JSON
reporter schema, configuration loading (including the Python 3.10
minimal-TOML fallback), CLI exit codes, and the self-hosting check
that the repo's own ``src/`` tree is clean under the repo's own
``pyproject.toml`` configuration.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    load_config,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.config import _parse_minimal_toml, config_from_mapping
from repro.analysis.report import render_json
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parent.parent

KERNEL_PATH = "src/repro/greens/freespace.py"
WIRE_PATH = "src/repro/service/wire.py"


def run(source: str, rule: str, path: str = "src/repro/mod.py"):
    """Analyze a dedented snippet under one rule."""
    return analyze_source(textwrap.dedent(source), path=path,
                          config=AnalysisConfig(), select=[rule])


def active(findings):
    return [f for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# Framework
# ----------------------------------------------------------------------

class TestFramework:
    def test_registry_ships_the_documented_rules(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        assert {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                "RPR006", "RPR007", "RPR008", "RPR009"} <= set(ids)

    def test_get_rule_unknown_id(self):
        with pytest.raises(ConfigurationError, match="unknown rule"):
            get_rule("RPR999")

    def test_syntax_error_is_reported_not_raised(self):
        findings = analyze_source("def broken(:\n", path="x.py")
        assert len(findings) == 1
        assert findings[0].rule == "RPR000"
        assert "syntax error" in findings[0].message

    def test_finding_str_is_path_line_col(self):
        f = run("import warnings\nwarnings.warn('x')\n", "RPR005")[0]
        assert str(f).startswith("src/repro/mod.py:2:1: RPR005 ")


# ----------------------------------------------------------------------
# RPR001 — lock discipline
# ----------------------------------------------------------------------

RPR001_POSITIVE = """
class Scheduler:
    def status(self):
        return self._active_workers_locked()
"""

RPR001_NEGATIVE = """
class Scheduler:
    def status(self):
        with self._lock:
            return self._active_workers_locked()

    def _reclaim_expired_locked(self):
        return self._active_workers_locked()
"""

RPR001_REACQUIRE = """
class Scheduler:
    def _commit_slot_locked(self, slot_id):
        with self._lock:
            pass
"""

RPR001_CLOSURE = """
class Scheduler:
    def status(self):
        with self._lock:
            def later():
                return self._active_workers_locked()
            return later
"""


class TestLockDiscipline:
    def test_unguarded_call_flags(self):
        findings = run(RPR001_POSITIVE, "RPR001")
        assert len(findings) == 1
        assert "_active_workers_locked" in findings[0].message

    def test_with_block_and_locked_caller_pass(self):
        assert run(RPR001_NEGATIVE, "RPR001") == []

    def test_reacquire_inside_locked_body_flags(self):
        findings = run(RPR001_REACQUIRE, "RPR001")
        assert len(findings) == 1
        assert "re-acquires" in findings[0].message

    def test_with_block_does_not_cover_a_closure(self):
        # The closure runs later, when the with block is long gone.
        findings = run(RPR001_CLOSURE, "RPR001")
        assert len(findings) == 1

    def test_other_receivers_need_their_own_lock(self):
        src = """
        def drain(sched):
            with sched._lock:
                sched._reclaim_expired_locked()
            sched._reclaim_expired_locked()
        """
        findings = run(src, "RPR001")
        assert len(findings) == 1
        assert findings[0].line == 5


# ----------------------------------------------------------------------
# RPR002 — complex in-place arithmetic in kernels
# ----------------------------------------------------------------------

#: The exact pre-PR-5 freespace.py pattern: the 0.25j multiply lands
#: directly on hankel1's freshly returned buffer.
RPR002_PRE_PR5 = """
import numpy as np
from scipy.special import hankel1

def green2d(r, k):
    r = np.asarray(r, dtype=np.float64)
    return 0.25j * hankel1(0, k * r)
"""

RPR002_FIXED = """
import numpy as np
from scipy.special import hankel1

def green2d(r, k):
    r = np.asarray(r, dtype=np.float64)
    h0 = hankel1(0, k * r)
    return 0.25j * h0
"""


class TestComplexInplace:
    def test_flags_the_pre_pr5_freespace_pattern(self):
        findings = run(RPR002_PRE_PR5, "RPR002", path=KERNEL_PATH)
        assert len(findings) == 1
        assert findings[0].rule == "RPR002"
        assert "elide" in findings[0].message

    def test_materialized_form_passes(self):
        assert run(RPR002_FIXED, "RPR002", path=KERNEL_PATH) == []

    def test_augmented_complex_multiply_flags(self):
        src = "def f(out):\n    out *= 0.25j\n    return out\n"
        findings = run(src, "RPR002", path=KERNEL_PATH)
        assert len(findings) == 1
        assert "*=" in findings[0].message

    def test_augmented_add_is_allowed(self):
        # Elementwise complex accumulation is exact; only the
        # multiplicative ops carry the compound-rounding hazard.
        src = "def f(out, term):\n    out += term\n    return out\n"
        assert run(src, "RPR002", path=KERNEL_PATH) == []

    def test_rule_is_scoped_to_kernel_modules(self):
        findings = run(RPR002_PRE_PR5, "RPR002",
                       path="src/repro/service/server.py")
        assert findings == []

    def test_imag_inside_call_args_does_not_flag(self):
        # exp(...) * wofz(1j*b): the constant multiplies inside wofz's
        # argument, not against the returned buffer.
        src = """
        import numpy as np
        from scipy.special import wofz

        def f(a, b):
            return np.exp(a) * wofz(1j * b)
        """
        assert run(src, "RPR002", path=KERNEL_PATH) == []


# ----------------------------------------------------------------------
# RPR003 — hash purity
# ----------------------------------------------------------------------

RPR003_POSITIVE = """
from dataclasses import dataclass

@dataclass(frozen=True)
class SolverOptions:
    tolerance: float = 1e-9
    check_finite: bool = True

    def to_spec(self):
        return {"tolerance": self.tolerance}
"""

RPR003_NEGATIVE = """
from dataclasses import dataclass

@dataclass(frozen=True)
class SolverOptions:
    HASH_EXCLUDED = frozenset({"check_finite"})

    tolerance: float = 1e-9
    check_finite: bool = True

    def to_spec(self):
        return {"tolerance": self.tolerance}
"""


class TestHashPurity:
    def test_unhashed_unexcluded_field_flags(self):
        findings = run(RPR003_POSITIVE, "RPR003")
        assert len(findings) == 1
        assert "check_finite" in findings[0].message

    def test_documented_exclusion_passes(self):
        assert run(RPR003_NEGATIVE, "RPR003") == []

    def test_asdict_with_pop_matches_exclusions(self):
        src = """
        import dataclasses
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SolverOptions:
            HASH_EXCLUDED = frozenset({"batch_size"})

            order: int = 1
            batch_size: int | None = None

            def to_spec(self):
                spec = dataclasses.asdict(self)
                spec.pop("batch_size")
                return spec
        """
        assert run(src, "RPR003") == []

    def test_contradictory_exclusion_flags(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SolverOptions:
            HASH_EXCLUDED = frozenset({"tolerance"})

            tolerance: float = 1e-9

            def to_spec(self):
                return {"tolerance": self.tolerance}
        """
        findings = run(src, "RPR003")
        assert len(findings) == 1
        assert "lie" in findings[0].message

    def test_stale_exclusion_flags(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SolverOptions:
            HASH_EXCLUDED = frozenset({"gone"})

            tolerance: float = 1e-9

            def to_spec(self):
                return {"tolerance": self.tolerance}
        """
        findings = run(src, "RPR003")
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_classes_without_to_spec_are_skipped(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class SweepOptions:
            anything: int = 0
        """
        assert run(src, "RPR003") == []


# ----------------------------------------------------------------------
# RPR004 — wire compatibility
# ----------------------------------------------------------------------

RPR004_DATACLASS_POSITIVE = """
from dataclasses import dataclass, field

@dataclass(frozen=True)
class WorkerResult:
    slot: str
    token: str
    worker: str
    key: str
    retries: int
    payload: dict | None = None
    error: str | None = None
    meta: dict = field(default_factory=dict)
"""

RPR004_DECODER_POSITIVE = """
def _decode_worker_result(doc):
    return doc["payload"]

_DECODERS = {"WorkerResult": _decode_worker_result}
"""

RPR004_DECODER_NEGATIVE = """
def _decode_worker_result(doc):
    slot, token, worker, key = _expect(doc, "slot", "token",
                                       "worker", "key")
    return (slot, token, worker, key, doc.get("payload"))

_DECODERS = {"WorkerResult": _decode_worker_result}
"""


class TestWireCompat:
    def test_new_field_without_default_flags(self):
        findings = run(RPR004_DATACLASS_POSITIVE, "RPR004",
                       path=WIRE_PATH)
        assert any("retries" in f.message and "no default" in f.message
                   for f in findings)

    def test_optional_fields_with_defaults_pass(self):
        src = RPR004_DATACLASS_POSITIVE.replace(
            "    retries: int\n", "")
        findings = run(src, "RPR004", path=WIRE_PATH)
        assert not any("WorkerResult" in f.message and "default"
                       in f.message for f in findings)

    def test_hard_subscript_of_optional_field_flags(self):
        findings = run(RPR004_DECODER_POSITIVE, "RPR004",
                       path=WIRE_PATH)
        assert any("hard-reads" in f.message and "'payload'"
                   in f.message for f in findings)

    def test_expect_of_required_fields_passes(self):
        findings = run(RPR004_DECODER_NEGATIVE, "RPR004",
                       path=WIRE_PATH)
        assert not any("payload" in f.message for f in findings)

    def test_missing_decoder_for_baseline_tag_flags(self):
        findings = run(RPR004_DECODER_POSITIVE, "RPR004",
                       path=WIRE_PATH)
        assert any("'WorkerClaim'" in f.message
                   and "no decoder" in f.message for f in findings)

    def test_rule_is_scoped_to_wire_modules(self):
        findings = run(RPR004_DATACLASS_POSITIVE, "RPR004",
                       path="src/repro/engine/spec.py")
        assert findings == []


# ----------------------------------------------------------------------
# RPR005 — warn stacklevel
# ----------------------------------------------------------------------

class TestWarnStacklevel:
    def test_missing_stacklevel_flags(self):
        src = "import warnings\nwarnings.warn('drift')\n"
        findings = run(src, "RPR005")
        assert len(findings) == 1
        assert "stacklevel" in findings[0].message

    def test_explicit_stacklevel_passes(self):
        src = ("import warnings\n"
               "warnings.warn('drift', stacklevel=2)\n")
        assert run(src, "RPR005") == []

    def test_from_import_is_recognized(self):
        src = "from warnings import warn\nwarn('drift')\n"
        assert len(run(src, "RPR005")) == 1

    def test_unrelated_warn_methods_pass(self):
        src = "log = get_logger()\nlog.warn('fine')\n"
        assert run(src, "RPR005") == []


# ----------------------------------------------------------------------
# RPR006 — monotonic durations
# ----------------------------------------------------------------------

RPR006_POSITIVE = """
import time

def timed(fn):
    start = time.time()
    fn()
    return time.time() - start
"""

RPR006_NEGATIVE = """
import time

def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
"""

RPR006_ATTRS = """
import time

class Ticket:
    def __init__(self):
        self.created_unix = time.time()

    def finish(self):
        self.finished_unix = time.time()
        return self.finished_unix - self.created_unix
"""


class TestMonotonicDuration:
    def test_wall_clock_pair_flags(self):
        findings = run(RPR006_POSITIVE, "RPR006")
        assert len(findings) == 1
        assert "monotonic" in findings[0].message

    def test_perf_counter_pair_passes(self):
        assert run(RPR006_NEGATIVE, "RPR006") == []

    def test_tainted_attributes_flag(self):
        findings = run(RPR006_ATTRS, "RPR006")
        assert len(findings) == 1
        assert findings[0].line == 10

    def test_deadline_arithmetic_does_not_flag(self):
        # One wall-clock operand is fine: cutoffs and deadlines are
        # timestamps, not durations.
        src = """
        import time

        def expired(older_than_s):
            cutoff = time.time() - older_than_s
            return cutoff
        """
        assert run(src, "RPR006") == []

    def test_keyword_fed_attributes_flag(self):
        src = """
        import time

        def admit(make):
            t = make(created_unix=time.time())
            return time.time() - t.created_unix
        """
        assert len(run(src, "RPR006")) == 1


# ----------------------------------------------------------------------
# RPR007 — broad except
# ----------------------------------------------------------------------

class TestBroadExcept:
    def test_bare_broad_except_flags(self):
        src = ("def f():\n"
               "    try:\n"
               "        risky()\n"
               "    except Exception:\n"
               "        pass\n")
        findings = run(src, "RPR007")
        assert len(findings) == 1
        assert "BLE001" in findings[0].message

    def test_justified_broad_except_passes(self):
        src = ("def f():\n"
               "    try:\n"
               "        risky()\n"
               "    except Exception as exc:"
               "  # noqa: BLE001 — crash containment at the boundary\n"
               "        report(exc)\n")
        assert run(src, "RPR007") == []

    def test_noqa_without_reason_still_flags(self):
        src = ("def f():\n"
               "    try:\n"
               "        risky()\n"
               "    except Exception:  # noqa: BLE001\n"
               "        pass\n")
        findings = run(src, "RPR007")
        assert len(findings) == 1
        assert "no reason" in findings[0].message

    def test_narrow_excepts_pass(self):
        src = ("def f():\n"
               "    try:\n"
               "        risky()\n"
               "    except (ValueError, KeyError):\n"
               "        pass\n")
        assert run(src, "RPR007") == []


# ----------------------------------------------------------------------
# RPR008 — telemetry no-op discipline
# ----------------------------------------------------------------------

TELEMETRY_PATH = "src/repro/engine/runtime.py"

RPR008_POSITIVE = """
from repro.telemetry import span

def execute(job):
    with span("job", key=compute_key(job)):
        return run(job)
"""

RPR008_NEGATIVE = """
from repro.telemetry import span

def execute(job):
    with span("job", key=job.key, n=len(job.items),
              freq=float(job.frequency_hz)):
        return run(job)
"""

RPR008_GUARDED = """
from repro import telemetry

def publish(slots):
    if telemetry.enabled():
        _M_QUEUE_DEPTH.set(sum(1 for s in slots if s.queued))
"""

RPR008_EARLY_RETURN = """
from repro import telemetry

def publish(slots):
    \"\"\"Docstrings must not defeat the leading-guard detection.\"\"\"
    if not telemetry.enabled():
        return
    _M_QUEUE_DEPTH.set(sum(1 for s in slots if s.queued))
"""


class TestTelemetryNoopDiscipline:
    def test_eager_call_in_span_argument_flags(self):
        findings = run(RPR008_POSITIVE, "RPR008", path=TELEMETRY_PATH)
        assert len(findings) == 1
        assert "compute_key" in findings[0].message

    def test_cheap_arguments_pass(self):
        assert run(RPR008_NEGATIVE, "RPR008", path=TELEMETRY_PATH) == []

    def test_metric_call_with_fstring_flags(self):
        src = ("def f(route):\n"
               "    _M_REQUESTS.inc(route=f'/api/{route}')\n")
        findings = run(src, "RPR008", path=TELEMETRY_PATH)
        assert len(findings) == 1
        assert "f-string" in findings[0].message

    def test_metric_call_with_comprehension_flags(self):
        src = ("def f(slots):\n"
               "    _M_QUEUE_DEPTH.set(sum(1 for s in slots))\n")
        findings = run(src, "RPR008", path=TELEMETRY_PATH)
        assert len(findings) == 1

    def test_enabled_guard_passes(self):
        assert run(RPR008_GUARDED, "RPR008", path=TELEMETRY_PATH) == []

    def test_leading_early_return_guard_passes(self):
        assert run(RPR008_EARLY_RETURN, "RPR008",
                   path=TELEMETRY_PATH) == []

    def test_monotonic_clock_reads_pass(self):
        src = ("import time\n"
               "def f(start):\n"
               "    _M_ROUND.observe(time.perf_counter() - start)\n")
        assert run(src, "RPR008", path=TELEMETRY_PATH) == []

    def test_non_metric_receivers_pass(self):
        src = ("def f(self, kind, cost, wall):\n"
               "    self.calibrator.observe(kind, cost, float(wall))\n"
               "    self._stop.set()\n"
               "    _SESSION.set(make_defaults())\n")
        assert run(src, "RPR008", path=TELEMETRY_PATH) == []

    def test_rule_is_scoped_to_telemetry_modules(self):
        assert run(RPR008_POSITIVE, "RPR008",
                   path="src/repro/stochastic/montecarlo.py") == []


# ----------------------------------------------------------------------
# RPR009 — wire-baseline freshness
# ----------------------------------------------------------------------

RPR009_UNRECORDED_GET = """
def _decode_worker_result(doc):
    slot, token, worker, key = _expect(doc, "slot", "token",
                                       "worker", "key")
    return (slot, token, worker, key, doc.get("payload"),
            doc.get("error"), doc.get("meta"), doc.get("retries"))

_DECODERS = {"WorkerResult": _decode_worker_result}
"""

RPR009_FRESH = """
def _decode_worker_result(doc):
    slot, token, worker, key = _expect(doc, "slot", "token",
                                       "worker", "key")
    return (slot, token, worker, key, doc.get("payload"),
            doc.get("error"), doc.get("meta"))

_DECODERS = {"WorkerResult": _decode_worker_result}
"""

RPR009_STALE_OPTIONAL = """
def _decode_worker_result(doc):
    slot, token, worker, key = _expect(doc, "slot", "token",
                                       "worker", "key")
    return (slot, token, worker, key, doc.get("payload"),
            doc.get("error"))

_DECODERS = {"WorkerResult": _decode_worker_result}
"""

RPR009_STRIP_STYLE = """
def _decode_point(doc):
    return PointResult(**_strip(doc))

_DECODERS = {"PointResult": _decode_point}
"""


class TestWireBaselineFreshness:
    def test_unrecorded_get_read_flags(self):
        findings = run(RPR009_UNRECORDED_GET, "RPR009", path=WIRE_PATH)
        assert any("'retries'" in f.message
                   and "does not record" in f.message for f in findings)

    def test_reads_matching_the_baseline_pass(self):
        assert run(RPR009_FRESH, "RPR009", path=WIRE_PATH) == []

    def test_stale_optional_entry_flags(self):
        findings = run(RPR009_STALE_OPTIONAL, "RPR009", path=WIRE_PATH)
        assert any("'meta'" in f.message and "stale" in f.message
                   for f in findings)

    def test_strip_style_decoders_are_exempt_from_staleness(self):
        # PointResult lists optional fields (pid, spans) but decodes via
        # _strip -> constructor with no by-name reads; that is the
        # documented pattern, not a stale table entry.
        assert run(RPR009_STRIP_STYLE, "RPR009", path=WIRE_PATH) == []

    def test_rule_is_scoped_to_wire_modules(self):
        assert run(RPR009_UNRECORDED_GET, "RPR009",
                   path="src/repro/engine/spec.py") == []


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------

class TestSuppression:
    SRC = ("import warnings\n"
           "warnings.warn('x')  "
           "# repro: ignore[RPR005] exercised by the suppression tests\n")

    def test_suppression_with_reason(self):
        findings = analyze_source(self.SRC, select=["RPR005"])
        assert len(findings) == 1
        assert findings[0].suppressed
        assert (findings[0].suppression_reason
                == "exercised by the suppression tests")

    def test_suppression_without_reason_does_not_silence(self):
        src = ("import warnings\n"
               "warnings.warn('x')  # repro: ignore[RPR005]\n")
        findings = analyze_source(src, select=["RPR005"])
        assert len(findings) == 1
        assert not findings[0].suppressed
        assert "no reason" in findings[0].message

    def test_suppression_for_other_rule_does_not_apply(self):
        src = ("import warnings\n"
               "warnings.warn('x')  # repro: ignore[RPR001] wrong id\n")
        findings = analyze_source(src, select=["RPR005"])
        assert len(findings) == 1
        assert not findings[0].suppressed

    def test_comment_line_covers_the_next_line(self):
        src = ("import warnings\n"
               "# repro: ignore[RPR005] carried above a long call\n"
               "warnings.warn('x')\n")
        findings = analyze_source(src, select=["RPR005"])
        assert len(findings) == 1
        assert findings[0].suppressed

    def test_multiple_rule_ids_in_one_comment(self):
        src = ("import warnings\n"
               "warnings.warn('x')  "
               "# repro: ignore[RPR001, RPR005] both silenced\n")
        findings = analyze_source(src, select=["RPR005"])
        assert findings[0].suppressed


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------

class TestJsonReport:
    def test_schema(self):
        findings = analyze_source(
            "import warnings\nwarnings.warn('x')\n",
            path="src/repro/mod.py", select=["RPR005"])
        doc = render_json(findings, files_scanned=1)
        assert doc["format"] == "repro-analysis"
        assert doc["version"] == 1
        assert doc["files_scanned"] == 1
        assert doc["summary"] == {
            "findings": 1, "suppressed": 0, "by_rule": {"RPR005": 1}}
        (entry,) = doc["findings"]
        assert set(entry) == {"rule", "path", "line", "col", "message",
                              "suppressed", "suppression_reason"}
        assert entry["rule"] == "RPR005"
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_suppressed_findings_ride_along_but_do_not_count(self):
        findings = analyze_source(TestSuppression.SRC, select=["RPR005"])
        doc = render_json(findings, files_scanned=1)
        assert doc["summary"] == {
            "findings": 0, "suppressed": 1, "by_rule": {}}
        assert doc["findings"][0]["suppressed"] is True


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

class TestConfig:
    def test_dash_and_underscore_keys(self):
        cfg = config_from_mapping({"kernel-globs": ["*/k/*.py"],
                                   "lock_attr": "_mutex"})
        assert cfg.kernel_globs == ("*/k/*.py",)
        assert cfg.lock_attr == "_mutex"

    def test_unknown_key_is_an_error(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            config_from_mapping({"rules": []})

    def test_bad_type_is_an_error(self):
        with pytest.raises(ConfigurationError, match="list of strings"):
            config_from_mapping({"paths": "src"})

    def test_minimal_toml_fallback_parses_the_repo_section(self):
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        table = _parse_minimal_toml(text)
        cfg = config_from_mapping(table)
        assert cfg.paths == ("src",)
        assert "*/greens/*.py" in cfg.kernel_globs
        assert cfg.lock_attr == "_lock"

    def test_minimal_toml_multiline_lists(self):
        table = _parse_minimal_toml(
            '[tool.repro.analysis]\n'
            'exclude = [\n    "a/*.py",\n    "b/*.py",\n]\n'
            'lock-attr = "_guard"\n'
            '[tool.other]\nexclude = ["ignored"]\n')
        assert table["exclude"] == ["a/*.py", "b/*.py"]
        assert table["lock-attr"] == "_guard"

    def test_load_config_reads_the_repo_pyproject(self):
        cfg = load_config(pyproject=REPO_ROOT / "pyproject.toml")
        assert cfg.paths == ("src",)
        assert cfg.wire_globs == ("*/service/wire.py",
                                  "*/engine/results.py")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("import warnings\nwarnings.warn('x')\n",
                       encoding="utf-8")
        assert lint_main([str(bad), "--select", "RPR005"]) == 1
        out = capsys.readouterr().out
        assert "RPR005" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        good = tmp_path / "mod.py"
        good.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_zero_when_all_findings_suppressed(self, tmp_path,
                                                    capsys):
        src = ("import warnings\n"
               "warnings.warn('x')  # repro: ignore[RPR005] fixture\n")
        f = tmp_path / "mod.py"
        f.write_text(src, encoding="utf-8")
        assert lint_main([str(f), "--select", "RPR005"]) == 0

    def test_json_format(self, tmp_path, capsys):
        f = tmp_path / "mod.py"
        f.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(f), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-analysis"

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/there"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR007" in out

    def test_runner_lint_subcommand_delegates(self, tmp_path, capsys):
        from repro.experiments.runner import main as runner_main
        f = tmp_path / "mod.py"
        f.write_text("x = 1\n", encoding="utf-8")
        assert runner_main(["lint", str(f)]) == 0
        assert "clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Self-hosting
# ----------------------------------------------------------------------

class TestSelfHosting:
    def test_repo_src_tree_is_clean(self):
        """The analyzer's own acceptance gate: zero unsuppressed
        findings over src/ under the repo's configuration, and every
        suppression that does exist carries a reason."""
        cfg = load_config(pyproject=REPO_ROOT / "pyproject.toml")
        findings, files_scanned = analyze_paths(
            [REPO_ROOT / "src"], cfg)
        assert files_scanned > 50
        unsuppressed = active(findings)
        assert unsuppressed == [], "\n".join(map(str, unsuppressed))
        for f in findings:
            assert f.suppressed and f.suppression_reason
