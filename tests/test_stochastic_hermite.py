"""Tests of the Hermite chaos basis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StochasticError
from repro.stochastic.hermite import (
    chaos_basis_matrix,
    hermite_he,
    hermite_he_normalized,
    total_degree_indices,
)
from repro.stochastic.quadrature import gauss_hermite_rule


class TestHermitePolynomials:
    def test_explicit_low_orders(self):
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(hermite_he(0, x), 1.0)
        np.testing.assert_allclose(hermite_he(1, x), x)
        np.testing.assert_allclose(hermite_he(2, x), x ** 2 - 1)
        np.testing.assert_allclose(hermite_he(3, x), x ** 3 - 3 * x)
        np.testing.assert_allclose(hermite_he(4, x),
                                   x ** 4 - 6 * x ** 2 + 3)

    def test_orthonormality_under_gaussian_measure(self):
        nodes, weights = gauss_hermite_rule(20)
        for m in range(6):
            for n in range(6):
                val = np.sum(weights * hermite_he_normalized(m, nodes)
                             * hermite_he_normalized(n, nodes))
                assert val == pytest.approx(1.0 if m == n else 0.0,
                                            abs=1e-10)

    @given(st.integers(0, 10), st.floats(-4, 4))
    @settings(max_examples=60, deadline=None)
    def test_recurrence_consistency(self, n, x):
        """He_{n+1} = x He_n - n He_{n-1}."""
        xa = np.array([x])
        lhs = hermite_he(n + 1, xa)
        rhs = x * hermite_he(n, xa) - (n * hermite_he(n - 1, xa)
                                       if n >= 1 else 0.0)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)

    def test_rejects_negative_order(self):
        with pytest.raises(StochasticError):
            hermite_he(-1, np.zeros(3))


class TestIndexSets:
    def test_counts(self):
        """|{alpha: |alpha| <= p}| = C(M + p, p)."""
        assert len(total_degree_indices(3, 2)) == math.comb(5, 2)
        assert len(total_degree_indices(16, 1)) == 17
        assert len(total_degree_indices(5, 3)) == math.comb(8, 3)

    def test_first_index_is_constant(self):
        idx = total_degree_indices(4, 2)
        assert idx[0] == (0, 0, 0, 0)

    def test_unique_and_within_order(self):
        idx = total_degree_indices(4, 3)
        assert len(set(idx)) == len(idx)
        assert all(sum(a) <= 3 for a in idx)

    def test_validation(self):
        with pytest.raises(StochasticError):
            total_degree_indices(0, 2)
        with pytest.raises(StochasticError):
            total_degree_indices(2, -1)


class TestBasisMatrix:
    def test_orthonormal_gram_matrix(self):
        """Psi^T W Psi = I on a quadrature grid that is exact for the
        products involved."""
        from repro.stochastic.sparsegrid import smolyak_grid
        grid = smolyak_grid(3, 3)
        idx = total_degree_indices(3, 2)
        psi = chaos_basis_matrix(idx, grid.nodes)
        gram = psi.T @ (grid.weights[:, None] * psi)
        np.testing.assert_allclose(gram, np.eye(len(idx)), atol=1e-10)

    def test_shape(self):
        idx = total_degree_indices(2, 2)
        psi = chaos_basis_matrix(idx, np.zeros((5, 2)))
        assert psi.shape == (5, len(idx))

    def test_dimension_mismatch(self):
        idx = total_degree_indices(3, 1)
        with pytest.raises(StochasticError):
            chaos_basis_matrix(idx, np.zeros((4, 2)))
