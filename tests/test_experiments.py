"""Smoke + shape tests for every paper-figure reproduction.

Each experiment encodes the qualitative claims of its figure as named
checks; here we run the quick presets and require every check to pass.
The standard/paper scales are exercised by the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    QUICK,
    Scale,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    scale_from_env,
    table1,
)
from repro.errors import ConfigurationError

#: A minimal scale for CI smoke: same resolution logic as QUICK (the
#: experiments are only meaningful with a resolved mesh) but fewer
#: frequencies, modes and samples.
TINY = Scale(name="quick", grid_n=8, spacing_divisor=4.0, grid_cap=22,
             f_max_ghz=4.0, spheroid_grid_n=20, fig5_f_max_ghz=4.0,
             n_frequencies=3, max_modes=6, mc_samples=16,
             surrogate_samples=5000)


class TestPresets:
    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "standard")
        assert scale_from_env().name == "standard"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ConfigurationError):
            scale_from_env()

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            Scale(name="x", grid_n=2, spacing_divisor=4.0, grid_cap=22,
                  f_max_ghz=5.0, spheroid_grid_n=8, fig5_f_max_ghz=5.0,
                  n_frequencies=3, max_modes=4, mc_samples=16,
                  surrogate_samples=100)

    def test_points_for_resolves_skin_depth(self):
        from repro.constants import GHZ
        # Surface-limited: step = eta/4 regardless of patch size.
        assert QUICK.points_for(5.0, 1.0, 1 * GHZ) == 20
        # Skin-depth-limited: raising the top frequency shrinks the step
        # until the cost cap binds.
        n_low_f = QUICK.points_for(15.0, 3.0, 1 * GHZ)
        n_high_f = QUICK.points_for(15.0, 3.0, 9 * GHZ)
        assert n_high_f > n_low_f
        assert n_high_f == QUICK.grid_cap  # cap binds at 9 GHz

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1"}


class TestFig2:
    def test_statistics_round_trip(self):
        res = fig2.run(TINY)
        assert res.all_checks_pass(), res.checks
        assert "C_target" in res.series and "C_recovered" in res.series


class TestFig3:
    @pytest.mark.slow
    def test_shape_checks(self):
        res = fig3.run(TINY)
        assert res.all_checks_pass(), res.checks

    def test_table_renders(self):
        res = fig2.run(TINY)
        text = res.format_table()
        assert "Fig. 2" in text
        assert "PASS" in text


class TestFig4:
    @pytest.mark.slow
    def test_swm_tracks_spm2_for_extracted_cf(self):
        res = fig4.run(TINY)
        assert res.all_checks_pass(), res.checks


class TestFig5:
    @pytest.mark.slow
    def test_hbm_comparison(self):
        res = fig5.run(TINY)
        assert res.checks["hbm_rises"], res.notes
        assert res.checks["swm_rises"], res.notes
        assert res.checks["swm_tracks_hbm"], res.notes
        assert res.checks["spm2_out_of_regime"], res.notes


class TestFig6:
    @pytest.mark.slow
    def test_dimensionality_claim(self):
        res = fig6.run(TINY)
        assert res.all_checks_pass(), res.checks


class TestFig7:
    @pytest.mark.slow
    def test_sscm_vs_mc(self):
        res = fig7.run(TINY, seed=3)
        assert res.checks["sscm2_matches_mc"], res.notes
        assert res.checks["means_agree"], res.notes


class TestTable1:
    def test_sampling_counts(self):
        res = table1.run(TINY)
        assert res.all_checks_pass(), res.checks
        assert np.all(res.series["SSCM_1st"] == 2 * res.series["M_kl"] + 1)
