"""Tests of the 3D MOM assembly (exact vs tabulated kernels, self terms)."""

import numpy as np
import pytest

from repro.constants import GHZ, METER_TO_UM
from repro.materials import PAPER_SYSTEM
from repro.swm.assembly import (
    AssemblyOptions,
    assemble_medium,
    rectangle_inverse_distance_integral,
)
from repro.swm.fastkernel import KernelTables, tables_for_mesh
from repro.swm.geometry import build_mesh_3d
from repro.errors import MeshError


def _rough_mesh(n=8, period=5.0, amp=0.5, seed=0):
    rng = np.random.default_rng(seed)
    # Smooth random surface (bandlimited) to keep slopes moderate.
    x = np.arange(n) * period / n
    xx, yy = np.meshgrid(x, x, indexing="ij")
    w = 2 * np.pi / period
    h = amp * (np.cos(w * xx + 1.0) * np.cos(w * yy)
               + 0.5 * np.sin(2 * w * xx) * np.cos(w * yy + 0.3))
    return build_mesh_3d(h, period)


K2 = PAPER_SYSTEM.k2(5 * GHZ) / METER_TO_UM
K1 = PAPER_SYSTEM.k1(5 * GHZ) / METER_TO_UM


class TestRectangleIntegral:
    def test_square_closed_form(self):
        # integral of 1/r over a d x d square = 4 d asinh(1).
        d = 0.7
        got = rectangle_inverse_distance_integral(d, d)
        assert got == pytest.approx(4 * d * np.arcsinh(1.0), rel=1e-12)

    def test_matches_numeric_quadrature(self):
        a, b = 0.5, 0.3
        xs = (np.arange(4000) + 0.5) / 4000 * a - a / 2
        ys = (np.arange(4000) + 0.5) / 4000 * b - b / 2
        xx, yy = np.meshgrid(xs, ys, indexing="ij")
        numeric = np.mean(1.0 / np.hypot(xx, yy)) * a * b
        got = rectangle_inverse_distance_integral(a, b)
        assert got == pytest.approx(numeric, rel=1e-3)

    def test_validation(self):
        with pytest.raises(MeshError):
            rectangle_inverse_distance_integral(-1.0, 1.0)


class TestFastKernelAgainstExact:
    @pytest.mark.parametrize("k", [K1, K2])
    def test_matrices_match(self, k):
        mesh = _rough_mesh()
        exact_opts = AssemblyOptions(use_tables=False)
        fast_opts = AssemblyOptions(use_tables=True)
        d_e, s_e = assemble_medium(mesh, k, exact_opts)
        d_f, s_f = assemble_medium(mesh, k, fast_opts)
        scale_s = np.max(np.abs(s_e))
        scale_d = np.max(np.abs(d_e))
        np.testing.assert_allclose(s_f, s_e, atol=2e-6 * scale_s)
        np.testing.assert_allclose(d_f, d_e, atol=2e-6 * scale_d)

    def test_prebuilt_tables_reused(self):
        mesh = _rough_mesh()
        opts = AssemblyOptions()
        cfg = opts.ewald_config(mesh.period)
        tables = tables_for_mesh(K2, mesh, cfg)
        d_a, s_a = assemble_medium(mesh, K2, opts, tables=tables)
        d_b, s_b = assemble_medium(mesh, K2, opts)
        np.testing.assert_allclose(s_a, s_b, rtol=1e-10)
        np.testing.assert_allclose(d_a, d_b, rtol=1e-10)

    def test_tables_reject_out_of_range_dz(self):
        mesh = _rough_mesh(amp=0.2)
        cfg = AssemblyOptions().ewald_config(mesh.period)
        tables = KernelTables(K2, cfg, z_extent=0.1)
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            tables.green_and_gradient(np.array([0.5]), np.array([0.0]),
                                      np.array([5.0]))


class TestFlatRowSums:
    """On a flat surface, sum_j S_ij ~ integral of G over the patch =
    j/(2k) (only the specular spectral mode survives)."""

    @pytest.mark.parametrize("k", [K2])
    def test_single_layer_row_sum(self, k):
        mesh = build_mesh_3d(np.zeros((12, 12)), 5.0)
        _, s = assemble_medium(mesh, k, AssemblyOptions())
        row_sums = s.sum(axis=1)
        expected = 1j / (2 * k)
        np.testing.assert_allclose(row_sums, expected, rtol=2e-2)

    def test_double_layer_vanishes_on_flat(self):
        mesh = build_mesh_3d(np.zeros((10, 10)), 5.0)
        d, _ = assemble_medium(mesh, K2, AssemblyOptions())
        assert np.max(np.abs(d)) < 1e-8


class TestStructure:
    def test_kernel_symmetry_far_pairs(self):
        """G(r_i, r_j) = G(r_j, r_i) wherever the midpoint rule is used.

        Near pairs use source-cell tangent-plane quadrature, which is
        deliberately asymmetric (collocation); the reciprocity of the
        underlying kernel shows up on the far pairs.
        """
        mesh = _rough_mesh()
        opts = AssemblyOptions()
        _, s = assemble_medium(mesh, K2, opts)
        w = mesh.jac * mesh.cell_area
        g = s / w[None, :]

        def wrap(d):
            return d - mesh.period * np.round(d / mesh.period)

        dx = wrap(mesh.x[:, None] - mesh.x[None, :])
        dy = wrap(mesh.y[:, None] - mesh.y[None, :])
        far = np.hypot(dx, dy) > (opts.near_radius_cells + 0.1) * mesh.spacing
        asym = np.abs(g - g.T)[far]
        assert asym.max() < 1e-8 * np.abs(g).max()

    def test_no_nans(self):
        mesh = _rough_mesh(amp=1.2)
        for k in (K1, K2):
            d, s = assemble_medium(mesh, k, AssemblyOptions())
            assert np.all(np.isfinite(d))
            assert np.all(np.isfinite(s))
