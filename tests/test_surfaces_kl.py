"""Tests of the Karhunen-Loeve expansion."""

import numpy as np
import pytest

from repro.errors import StochasticError
from repro.surfaces import GaussianCorrelation, build_kl, kl_from_correlation


def _grid_points(n: int, period: float) -> np.ndarray:
    c = np.arange(n) * period / n
    xx, yy = np.meshgrid(c, c, indexing="ij")
    return np.column_stack([xx.ravel(), yy.ravel()])


class TestBuildKL:
    def test_diagonal_covariance(self):
        cov = np.diag([4.0, 1.0, 0.25])
        kl = build_kl(cov, energy_fraction=0.9)
        assert kl.eigenvalues[0] == pytest.approx(4.0)
        assert kl.dimension == 2  # 5/5.25 = 95% captured by two modes
        assert kl.total_variance == pytest.approx(5.25)

    def test_modes_orthonormal(self):
        cf = GaussianCorrelation(1.0, 1.0)
        cov = cf.periodic_covariance_matrix(_grid_points(10, 5.0), 5.0)
        kl = build_kl(cov, energy_fraction=0.9)
        gram = kl.modes.T @ kl.modes
        np.testing.assert_allclose(gram, np.eye(kl.dimension), atol=1e-10)

    def test_energy_fraction_monotone_in_modes(self):
        cf = GaussianCorrelation(1.0, 1.0)
        cov = cf.periodic_covariance_matrix(_grid_points(10, 5.0), 5.0)
        k1 = build_kl(cov, energy_fraction=0.5)
        k2 = build_kl(cov, energy_fraction=0.95)
        assert k2.dimension >= k1.dimension
        assert k2.captured_fraction >= 0.95

    def test_max_modes_cap(self):
        cf = GaussianCorrelation(1.0, 1.0)
        cov = cf.periodic_covariance_matrix(_grid_points(10, 5.0), 5.0)
        kl = build_kl(cov, energy_fraction=0.999, max_modes=5)
        assert kl.dimension == 5

    def test_realize_variance(self):
        """Ensemble variance of realizations matches the truncated
        covariance trace."""
        cf = GaussianCorrelation(1.0, 1.0)
        cov = cf.periodic_covariance_matrix(_grid_points(8, 5.0), 5.0)
        kl = build_kl(cov, energy_fraction=0.95)
        rng = np.random.default_rng(0)
        total = 0.0
        n_s = 400
        for _ in range(n_s):
            f = kl.realize(rng.standard_normal(kl.dimension))
            total += np.sum(f ** 2)
        got = total / n_s
        assert got == pytest.approx(np.sum(kl.eigenvalues), rel=0.1)

    def test_realize_many_matches_loop(self):
        cf = GaussianCorrelation(1.0, 1.0)
        cov = cf.periodic_covariance_matrix(_grid_points(6, 5.0), 5.0)
        kl = build_kl(cov)
        xi = np.random.default_rng(1).standard_normal((5, kl.dimension))
        batch = kl.realize_many(xi)
        for s in range(5):
            np.testing.assert_allclose(batch[s], kl.realize(xi[s]),
                                       rtol=1e-12)

    def test_validation(self):
        with pytest.raises(StochasticError):
            build_kl(np.zeros((3, 4)))
        with pytest.raises(StochasticError):
            build_kl(np.eye(3), energy_fraction=0.0)
        asym = np.array([[1.0, 0.5], [0.0, 1.0]])
        with pytest.raises(StochasticError):
            build_kl(asym)
        with pytest.raises(StochasticError):
            build_kl(np.zeros((3, 3)))  # no variance

    def test_realize_rejects_wrong_length(self):
        kl = build_kl(np.eye(4))
        with pytest.raises(StochasticError):
            kl.realize(np.zeros(kl.dimension + 1))


class TestKLFromCorrelation:
    def test_periodic_path(self):
        cf = GaussianCorrelation(1.0, 1.0)
        pts = _grid_points(8, 5.0)
        kl = kl_from_correlation(cf, pts, period=5.0)
        # total variance = N * sigma^2
        assert kl.total_variance == pytest.approx(64 * 1.0, rel=1e-9)

    def test_eigenvalue_decay(self):
        """Smooth (Gaussian) CF => fast eigenvalue decay: the premise of
        the SSCM dimensionality reduction."""
        cf = GaussianCorrelation(1.0, 1.0)
        kl = kl_from_correlation(cf, _grid_points(12, 5.0), period=5.0,
                                 energy_fraction=0.999, max_modes=60)
        ev = kl.eigenvalues
        assert np.all(np.diff(ev) <= 1e-12)  # sorted descending
        assert ev[30] < ev[0] * 3e-2
        assert ev[-1] < ev[0] * 2e-2
