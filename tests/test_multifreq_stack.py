"""Parity suite for frequency-stacked (multi-k) execution.

The tentpole contract: executing one mesh batch at many frequencies
through the k-independent :class:`AssemblyPlan`
(``solve_mesh_many_multi_k``) — and, one layer up, executing a
frequency stack of engine jobs through ``execute_job_group`` — is a
*pure performance* move. Every value must be bit-identical to the
per-frequency / per-job paths.

Grid sizes mirror ``TestLargeGridParity`` (test_fused_kernel2d.py):
the elided in-place complex multiply that motivated it only disagreed
at fig6 scale (n = 96), not at the n = 16 grids the original parity
tests used. The same buffer-alignment hazard applies to the plan's
reused geometry blocks, so the stacked-vs-serial comparisons here run
at elision scale too: n = 96 profiles for the 2D path, and for the 3D
path a 12 x 12 stochastic-size grid (N = 144 unknowns) and a 24 x 24
deterministic grid (N = 576 unknowns).
"""

import numpy as np

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig
from repro.engine import (
    DeterministicScenario,
    EstimatorSpec,
    ProfileScenario,
    StochasticScenario,
    SweepSpec,
)
from repro.engine.runtime import execute_job, execute_job_group
from repro.surfaces import GaussianCorrelation, ProfileGenerator
from repro.swm.geometry import build_mesh_2d, build_mesh_3d
from repro.swm.solver import SWMSolver3D
from repro.swm.solver2d import SWMSolver2D

L = 5.0
FREQS = [2 * GHZ, 5 * GHZ, 8 * GHZ]


def _assert_results_equal(a, b):
    assert a.enhancement == b.enhancement
    np.testing.assert_array_equal(a.psi, b.psi)
    np.testing.assert_array_equal(a.v, b.v)
    assert a.absorbed_power == b.absorbed_power
    assert a.smooth_power == b.smooth_power


class TestLargeGridMultiKParity:
    """solve_mesh_many_multi_k vs per-frequency solves, elision scale."""

    def test_profile_fig6_grid_bit_identical(self):
        """n = 96 profiles (the grid that exposed the elided multiply),
        three frequencies stacked vs solved one k at a time."""
        gen = ProfileGenerator(GaussianCorrelation(sigma=1.0, eta=1.0),
                               period=L, n=96, normalize=True)
        rng = np.random.default_rng(0)
        meshes = [build_mesh_2d(gen.from_white_noise(
            rng.standard_normal(96)), L) for _ in range(2)]

        stacked = SWMSolver2D().solve_mesh_many_multi_k(meshes, FREQS)
        assert len(stacked) == len(FREQS)
        ref_solver = SWMSolver2D()
        for freq, row in zip(FREQS, stacked):
            assert len(row) == len(meshes)
            for mesh, got in zip(meshes, row):
                _assert_results_equal(got, ref_solver.solve_mesh(mesh,
                                                                 freq))

    def test_stochastic_size_grid_bit_identical(self):
        """12 x 12 height maps (N = 144, the stochastic pipeline's
        elision-scale mesh) through the 3D plan."""
        rng = np.random.default_rng(1)
        meshes = [build_mesh_3d(rng.normal(0.0, 0.2, (12, 12)), L)
                  for _ in range(2)]

        solver = SWMSolver3D()
        stacked = solver.solve_mesh_many_multi_k(meshes, FREQS)
        ref_solver = SWMSolver3D()
        for freq, row in zip(FREQS, stacked):
            for mesh, got in zip(meshes, row):
                _assert_results_equal(got, ref_solver.solve_mesh(mesh,
                                                                 freq))

    def test_deterministic_grid_bit_identical(self):
        """One 24 x 24 deterministic surface (N = 576 unknowns) — the
        largest dense system in the tier-1 suite."""
        x = np.linspace(0.0, 2 * np.pi, 24, endpoint=False)
        heights = 0.3 * np.outer(np.sin(x), np.cos(x))
        mesh = build_mesh_3d(heights, L)

        stacked = SWMSolver3D().solve_mesh_many_multi_k([mesh], FREQS)
        ref_solver = SWMSolver3D()
        for freq, row in zip(FREQS, stacked):
            _assert_results_equal(row[0], ref_solver.solve_mesh(mesh,
                                                                freq))


def _payload_fields(payload):
    return {k: payload[k] for k in ("mean", "std", "n_evals", "seed")}


def _assert_payloads_match(grouped, serial):
    assert len(grouped) == len(serial)
    for g, s in zip(grouped, serial):
        assert _payload_fields(g) == _payload_fields(s)
        np.testing.assert_array_equal(g["values"], s["values"])


class TestGroupedExecutionParity:
    """execute_job_group vs per-job execute_job, all scenario kinds."""

    def _jobs(self, scenario, estimator=None):
        if estimator is None:
            return SweepSpec(scenario, FREQS).jobs()
        return SweepSpec(scenario, FREQS, estimator).jobs()

    def test_stochastic_sscm_stack_matches_per_job(self):
        scenario = StochasticScenario(
            "rough", GaussianCorrelation(1 * UM, 1 * UM),
            StochasticLossConfig(points_per_side=8, max_modes=3))
        jobs = self._jobs(scenario, EstimatorSpec(order=1))
        _assert_payloads_match(execute_job_group(jobs),
                               [execute_job(j) for j in jobs])

    def test_stochastic_montecarlo_stack_matches_per_job(self):
        scenario = StochasticScenario(
            "rough-mc", GaussianCorrelation(1 * UM, 1 * UM),
            StochasticLossConfig(points_per_side=8, max_modes=3))
        # batch_size 2 does not divide n_samples 5: the stacked path
        # must replicate the estimator's exact rng block shapes.
        jobs = self._jobs(scenario, EstimatorSpec(
            kind="montecarlo", n_samples=5, seed=3, batch_size=2))
        _assert_payloads_match(execute_job_group(jobs),
                               [execute_job(j) for j in jobs])

    def test_profile_stack_matches_per_job(self):
        scenario = ProfileScenario("prof", GaussianCorrelation(1.0, 1.0),
                                   period_um=L, n=16, normalize=True)
        jobs = self._jobs(scenario, EstimatorSpec(
            kind="montecarlo", n_samples=4, seed=7))
        _assert_payloads_match(execute_job_group(jobs),
                               [execute_job(j) for j in jobs])

    def test_deterministic_stack_matches_per_job(self):
        scenario = DeterministicScenario(
            "bump", np.full((8, 8), 0.2) * UM, 5 * UM)
        jobs = self._jobs(scenario)
        _assert_payloads_match(execute_job_group(jobs),
                               [execute_job(j) for j in jobs])

    def test_ungroupable_jobs_fall_back_per_job(self):
        """Jobs with different scenarios share no plan; the group call
        must still return one payload per job, in order."""
        a = DeterministicScenario("flat", np.zeros((8, 8)), 5 * UM)
        b = DeterministicScenario("bump", np.full((8, 8), 0.2 * 1e-6),
                                  5 * UM)
        jobs = (SweepSpec(a, [2 * GHZ]).jobs()
                + SweepSpec(b, [2 * GHZ]).jobs())
        _assert_payloads_match(execute_job_group(jobs),
                               [execute_job(j) for j in jobs])

    def test_grouped_wall_time_attribution_sums_to_total(self):
        scenario = DeterministicScenario(
            "walls", np.full((8, 8), 0.1) * UM, 5 * UM)
        jobs = self._jobs(scenario)
        payloads = execute_job_group(jobs)
        walls = [p["wall_time_s"] for p in payloads]
        assert all(w >= 0.0 for w in walls)
        # Per-job shares are cost-weighted fractions of one measured
        # group wall; they must reconstitute it (same-cost jobs here,
        # so equal shares).
        np.testing.assert_allclose(walls, walls[0])
