"""Tests of the 1D Gauss-Hermite rules and the level -> size map."""

import math

import numpy as np
import pytest

from repro.errors import StochasticError
from repro.stochastic.quadrature import (
    gauss_hermite_rule,
    level_to_size,
    rule_for_level,
)


def gaussian_moment(n: int) -> float:
    """E[Z^n] for Z ~ N(0, 1): 0 for odd, (n-1)!! for even."""
    if n % 2:
        return 0.0
    return float(math.prod(range(1, n, 2))) if n > 0 else 1.0


class TestGaussHermite:
    def test_weights_sum_to_one(self):
        for n in (1, 3, 5, 9, 17):
            _, w = gauss_hermite_rule(n)
            assert w.sum() == pytest.approx(1.0, rel=1e-12)

    @pytest.mark.parametrize("n_points", [1, 2, 3, 5, 8])
    def test_polynomial_exactness(self, n_points):
        """Exact for monomials up to degree 2n - 1."""
        nodes, weights = gauss_hermite_rule(n_points)
        for deg in range(2 * n_points):
            got = np.sum(weights * nodes ** deg)
            assert got == pytest.approx(gaussian_moment(deg), abs=1e-9)

    def test_single_point_rule_is_mean(self):
        nodes, weights = gauss_hermite_rule(1)
        assert nodes[0] == 0.0
        assert weights[0] == 1.0

    def test_nodes_symmetric(self):
        nodes, _ = gauss_hermite_rule(7)
        np.testing.assert_allclose(np.sort(nodes), -np.sort(-nodes)[::-1])

    def test_validation(self):
        with pytest.raises(StochasticError):
            gauss_hermite_rule(0)


class TestLevels:
    def test_growth_rule(self):
        assert [level_to_size(l) for l in (1, 2, 3, 4)] == [1, 3, 5, 9]

    def test_rule_for_level(self):
        nodes, _ = rule_for_level(2)
        assert nodes.size == 3

    def test_validation(self):
        with pytest.raises(StochasticError):
            level_to_size(0)
