"""Tests of the transmission-line application layer."""

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.errors import ConfigurationError
from repro.interconnects import (
    EnhancementTable,
    Microstrip,
    RLGC,
    abcd_line,
    abcd_to_s,
    cascade,
    constant,
    extra_loss_db,
    insertion_loss_db,
    return_loss_db,
    smooth_factor,
)

FREQS = np.linspace(0.5, 20, 16) * GHZ


@pytest.fixture(scope="module")
def line50():
    """A nominally 50-ohm microstrip."""
    return Microstrip(width_m=200e-6, height_m=100e-6, eps_r=4.1,
                      loss_tangent=0.015)


class TestMicrostrip:
    def test_z0_near_50(self, line50):
        assert line50.characteristic_impedance() == pytest.approx(50.0,
                                                                  rel=0.05)

    def test_eps_eff_between_one_and_eps_r(self, line50):
        e = line50.effective_permittivity()
        assert 1.0 < e < line50.eps_r

    def test_wider_trace_lower_impedance(self):
        narrow = Microstrip(width_m=100e-6, height_m=100e-6)
        wide = Microstrip(width_m=400e-6, height_m=100e-6)
        assert (wide.characteristic_impedance()
                < narrow.characteristic_impedance())

    def test_lc_consistent_with_z0(self, line50):
        z0 = np.sqrt(line50.inductance_per_m() / line50.capacitance_per_m())
        assert z0 == pytest.approx(line50.characteristic_impedance(),
                                   rel=1e-9)

    def test_resistance_has_dc_floor_and_sqrt_f_growth(self, line50):
        r = line50.resistance_per_m(FREQS)
        assert np.all(np.diff(r) > 0)
        r_dc = line50.conductor.resistivity / (200e-6 * 35e-6)
        assert r[0] > r_dc
        # At high f, R ~ sqrt(f).
        ratio = r[-1] / line50.resistance_per_m(FREQS / 4)[-1]
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Microstrip(width_m=-1e-6, height_m=1e-4)
        with pytest.raises(ConfigurationError):
            Microstrip(width_m=1e-4, height_m=1e-4, eps_r=0.5)


class TestRLGCNetwork:
    def _rlgc(self, line, factor=None):
        return line.rlgc(roughness_factor=factor)

    def test_gamma_positive_attenuation(self, line50):
        g = self._rlgc(line50).gamma(FREQS)
        assert np.all(g.real > 0)
        assert np.all(g.imag > 0)

    def test_reciprocity(self, line50):
        s = abcd_to_s(abcd_line(self._rlgc(line50), 0.05, FREQS))
        np.testing.assert_allclose(s[:, 0, 1], s[:, 1, 0], rtol=1e-10)

    def test_passivity(self, line50):
        s = abcd_to_s(abcd_line(self._rlgc(line50), 0.05, FREQS))
        for i in range(FREQS.size):
            sv = np.linalg.svd(s[i], compute_uv=False)
            assert sv.max() <= 1.0 + 1e-9

    def test_longer_line_lossier(self, line50):
        rlgc = self._rlgc(line50)
        il_short = insertion_loss_db(abcd_to_s(abcd_line(rlgc, 0.02, FREQS)))
        il_long = insertion_loss_db(abcd_to_s(abcd_line(rlgc, 0.10, FREQS)))
        assert np.all(il_long > il_short)

    def test_cascade_equals_single_segment(self, line50):
        rlgc = self._rlgc(line50)
        whole = abcd_line(rlgc, 0.1, FREQS)
        halves = cascade(abcd_line(rlgc, 0.05, FREQS),
                         abcd_line(rlgc, 0.05, FREQS))
        np.testing.assert_allclose(halves, whole, rtol=1e-9)

    def test_roughness_increases_loss(self, line50):
        table = EnhancementTable(np.array([1, 10, 20]) * GHZ,
                                 np.array([1.2, 1.6, 1.8]))
        smooth = insertion_loss_db(abcd_to_s(
            abcd_line(self._rlgc(line50), 0.1, FREQS)))
        rough = insertion_loss_db(abcd_to_s(
            abcd_line(self._rlgc(line50, table), 0.1, FREQS)))
        assert np.all(extra_loss_db(rough, smooth) > 0)

    def test_smooth_factor_is_identity(self, line50):
        a = insertion_loss_db(abcd_to_s(
            abcd_line(self._rlgc(line50), 0.1, FREQS)))
        b = insertion_loss_db(abcd_to_s(
            abcd_line(self._rlgc(line50, smooth_factor()), 0.1, FREQS)))
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_attenuation_db_conversion(self, line50):
        rlgc = self._rlgc(line50)
        np.testing.assert_allclose(
            rlgc.attenuation_db_per_m(FREQS),
            rlgc.attenuation_np_per_m(FREQS) * 20 / np.log(10), rtol=1e-12)

    def test_return_loss_positive(self, line50):
        s = abcd_to_s(abcd_line(self._rlgc(line50), 0.05, FREQS))
        assert np.all(return_loss_db(s) > 0)

    def test_matched_line_low_reflection(self):
        """A line whose Z0 equals the reference shows tiny |S11|."""
        rlgc = RLGC(resistance=constant(0.0), inductance=constant(2.5e-7),
                    conductance=constant(0.0), capacitance=constant(1e-10))
        z0 = np.sqrt(2.5e-7 / 1e-10)
        s = abcd_to_s(abcd_line(rlgc, 0.1, FREQS), z_ref=z0)
        assert np.max(np.abs(s[:, 0, 0])) < 1e-10

    def test_validation(self):
        rlgc = RLGC(constant(1.0), constant(1e-7), constant(0.0),
                    constant(1e-10))
        with pytest.raises(ConfigurationError):
            abcd_line(rlgc, -0.1, FREQS)
        with pytest.raises(ConfigurationError):
            abcd_to_s(abcd_line(rlgc, 0.1, FREQS), z_ref=-50.0)
        with pytest.raises(ConfigurationError):
            cascade()


class TestEnhancementTable:
    def test_interpolation_and_extension(self):
        t = EnhancementTable(np.array([1, 2, 4]) * GHZ,
                             np.array([1.1, 1.3, 1.5]))
        f = np.array([0.5, 1.5, 8.0]) * GHZ
        k = t(f)
        assert k[0] == pytest.approx(1.1)   # held below
        assert k[1] == pytest.approx(1.2)   # linear midpoint
        assert k[2] == pytest.approx(1.5)   # held above

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnhancementTable(np.array([2, 1]) * GHZ, np.array([1.0, 1.1]))
        with pytest.raises(ConfigurationError):
            EnhancementTable(np.array([1, 2]) * GHZ, np.array([1.0, -1.1]))
        with pytest.raises(ConfigurationError):
            EnhancementTable(np.array([1]) * GHZ, np.array([1.0]))
