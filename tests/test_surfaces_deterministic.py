"""Tests of the deterministic test-surface generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.surfaces.deterministic import (
    boss_array,
    cosine_profile,
    cosine_ridges,
    egg_carton,
    extruded_profile,
    flat,
    gaussian_bump,
    half_spheroid,
)


class TestHalfSpheroid:
    def test_peak_height_and_footprint(self):
        h = half_spheroid(64, 16.0, height=5.8, base_diameter=9.4)
        assert h.max() == pytest.approx(5.8, rel=2e-2)
        assert h.min() == 0.0
        # Footprint area ~ pi a^2.
        cell = (16.0 / 64) ** 2
        footprint = np.sum(h > 0) * cell
        assert footprint == pytest.approx(np.pi * 4.7 ** 2, rel=0.1)

    def test_profile_is_ellipse(self):
        n, period = 128, 16.0
        h = half_spheroid(n, period, 5.8, 9.4)
        # Along the center row: f(x) = h sqrt(1 - ((x-c)/a)^2).
        row = h[:, n // 2]
        x = np.arange(n) * period / n
        inside = np.abs(x - period / 2) < 4.7
        expected = 5.8 * np.sqrt(np.maximum(
            0.0, 1.0 - ((x - period / 2) / 4.7) ** 2))
        np.testing.assert_allclose(row[inside], expected[inside], atol=1e-9)

    def test_rejects_oversized_boss(self):
        with pytest.raises(ConfigurationError):
            half_spheroid(32, 8.0, 5.0, 9.0)


class TestRidgesAndProfiles:
    def test_ridges_uniform_along_other_axis(self):
        h = cosine_ridges(32, 5.0, amplitude=0.5, n_ridges=2, along="x")
        assert np.all(np.ptp(h, axis=1) < 1e-12)  # constant along y

    def test_ridge_amplitude(self):
        h = cosine_ridges(64, 5.0, amplitude=0.5, n_ridges=1)
        assert h.max() == pytest.approx(0.5, rel=1e-9)
        assert h.min() == pytest.approx(-0.5, rel=1e-9)

    def test_extruded_profile_matches_ridges(self):
        p = cosine_profile(32, 5.0, amplitude=0.5, n_ridges=2)
        h = extruded_profile(p)
        expected = cosine_ridges(32, 5.0, amplitude=0.5, n_ridges=2)
        np.testing.assert_allclose(h, expected, atol=1e-12)

    def test_extrusion_validation(self):
        with pytest.raises(ConfigurationError):
            extruded_profile(np.zeros((4, 4)))


class TestOtherShapes:
    def test_flat_is_zero(self):
        assert np.all(flat(8, 5.0) == 0.0)

    def test_gaussian_bump_peak(self):
        h = gaussian_bump(64, 10.0, height=1.5, width=2.0)
        assert h.max() == pytest.approx(1.5, rel=1e-2)

    def test_egg_carton_zero_mean(self):
        h = egg_carton(32, 5.0, amplitude=1.0, n_cells=2)
        assert abs(h.mean()) < 1e-12

    def test_boss_array_count(self):
        h = boss_array(64, 16.0, height=1.0, base_diameter=3.0, per_side=2)
        # Four bosses, each footprint pi a^2.
        cell = (16.0 / 64) ** 2
        footprint = np.sum(h > 0) * cell
        assert footprint == pytest.approx(4 * np.pi * 1.5 ** 2, rel=0.15)

    def test_boss_array_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            boss_array(32, 8.0, height=1.0, base_diameter=5.0, per_side=2)

    def test_common_validation(self):
        with pytest.raises(ConfigurationError):
            flat(2, 5.0)
        with pytest.raises(ConfigurationError):
            cosine_ridges(16, 5.0, amplitude=-1.0)
        with pytest.raises(ConfigurationError):
            cosine_ridges(16, 5.0, amplitude=1.0, along="z")
