"""Tests of the end-to-end stochastic pipeline."""

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import (
    DeterministicLossModel,
    StochasticLossConfig,
    StochasticLossModel,
)
from repro.errors import ConfigurationError
from repro.surfaces import GaussianCorrelation


SMALL_CONFIG = StochasticLossConfig(points_per_side=8, max_modes=5)


@pytest.fixture(scope="module")
def model():
    return StochasticLossModel(GaussianCorrelation(1 * UM, 1 * UM),
                               SMALL_CONFIG)


class TestConfig:
    def test_defaults_follow_paper_geometry(self):
        cfg = StochasticLossConfig(max_points_per_side=100)
        period, n = cfg.resolve(GaussianCorrelation(1 * UM, 1 * UM))
        assert period == pytest.approx(5 * UM)
        assert n == 40  # L / (eta / 8)

    def test_cap_applies(self):
        cfg = StochasticLossConfig(max_points_per_side=16)
        _, n = cfg.resolve(GaussianCorrelation(1 * UM, 1 * UM))
        assert n == 16

    def test_explicit_overrides(self):
        cfg = StochasticLossConfig(period_m=8 * UM, points_per_side=12)
        period, n = cfg.resolve(GaussianCorrelation(1 * UM, 1 * UM))
        assert period == pytest.approx(8 * UM)
        assert n == 12

    def test_validation(self):
        cfg = StochasticLossConfig(period_m=-1.0)
        with pytest.raises(ConfigurationError):
            cfg.resolve(GaussianCorrelation(1 * UM, 1 * UM))


class TestKLSetup:
    def test_dimension_capped(self, model):
        assert model.dimension == 5

    def test_surface_shape_and_units(self, model):
        xi = np.zeros(model.dimension)
        h = model.surface_from_xi(xi)
        assert h.shape == (8, 8)
        np.testing.assert_allclose(h, 0.0)

    def test_surface_scales_linearly_with_xi(self, model):
        xi = np.zeros(model.dimension)
        xi[0] = 1.0
        h1 = model.surface_from_xi(xi)
        h2 = model.surface_from_xi(2 * xi)
        np.testing.assert_allclose(h2, 2 * h1, rtol=1e-12)

    def test_mean_mode_removed(self):
        """With remove_mean_mode the retained KL modes are orthogonal to
        the constant vector (no stochastic dimension wasted on offsets)."""
        m = StochasticLossModel(GaussianCorrelation(1 * UM, 1 * UM),
                                StochasticLossConfig(points_per_side=8,
                                                     max_modes=5,
                                                     remove_mean_mode=True))
        means = np.abs(m.kl.modes.sum(axis=0))
        assert np.max(means) < 1e-8

    def test_mean_mode_kept_when_disabled(self):
        m = StochasticLossModel(GaussianCorrelation(1 * UM, 1 * UM),
                                StochasticLossConfig(points_per_side=8,
                                                     max_modes=5,
                                                     remove_mean_mode=False))
        means = np.abs(m.kl.modes.sum(axis=0))
        assert np.max(means) > 1e-3


class TestStatistics:
    def test_sscm_mean_physical(self, model):
        res = model.sscm(5 * GHZ, order=1)
        assert 1.0 < res.mean < 2.0
        assert res.n_samples == 2 * model.dimension + 1

    def test_mc_agrees_with_sscm(self, model):
        mc = model.montecarlo(5 * GHZ, 24, seed=0)
        ss = model.sscm(5 * GHZ, order=1)
        assert ss.mean == pytest.approx(mc.mean, abs=4 * mc.stderr + 0.02)

    def test_mean_enhancement_sweep(self, model):
        freqs = np.array([2.0, 6.0]) * GHZ
        means = model.mean_enhancement(freqs, order=1)
        assert means.shape == (2,)
        assert means[1] > means[0]


class TestDeterministicModel:
    def test_flat_sweep_is_unity(self):
        dm = DeterministicLossModel()
        freqs = np.array([2.0, 5.0]) * GHZ
        vals = dm.enhancement(np.zeros((8, 8)), 5 * UM, freqs)
        np.testing.assert_allclose(vals, 1.0, atol=0.03)
