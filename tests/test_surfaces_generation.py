"""Tests of the periodic spectral surface synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.surfaces import (
    GaussianCorrelation,
    ProfileGenerator,
    SurfaceGenerator,
)
from repro.surfaces.statistics import autocorrelation_2d


class TestSurfaceGenerator:
    def test_shapes_and_metadata(self):
        gen = SurfaceGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 24)
        s = gen.sample(0)
        assert s.heights.shape == (24, 24)
        assert s.period == 5.0
        assert s.n == 24
        assert s.spacing == pytest.approx(5.0 / 24)

    def test_zero_mean(self):
        gen = SurfaceGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 32)
        s = gen.sample(1)
        assert abs(s.heights.mean()) < 1e-12

    def test_seeded_determinism(self):
        gen = SurfaceGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 16)
        a = gen.sample(42).heights
        b = gen.sample(42).heights
        np.testing.assert_array_equal(a, b)
        c = gen.sample(43).heights
        assert not np.array_equal(a, c)

    def test_ensemble_variance_matches_grid_variance(self):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = SurfaceGenerator(cf, 5.0, 24)
        rng = np.random.default_rng(7)
        var = np.mean([gen.sample(rng).heights.var() for _ in range(60)])
        assert var == pytest.approx(gen.discrete_variance(), rel=0.12)

    def test_normalize_pins_sigma(self):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = SurfaceGenerator(cf, 5.0, 24, normalize=True)
        rng = np.random.default_rng(8)
        var = np.mean([gen.sample(rng).heights.var() for _ in range(60)])
        assert var == pytest.approx(1.0, rel=0.12)

    def test_ensemble_autocorrelation_matches_target(self):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = SurfaceGenerator(cf, 8.0, 32)
        rng = np.random.default_rng(9)
        acc = None
        n_real = 40
        for _ in range(n_real):
            lags, corr = autocorrelation_2d(gen.sample(rng).heights, 8.0)
            acc = corr if acc is None else acc + corr
        acc = acc / n_real
        target = cf(lags)
        # Compare over the first correlation length where signal is strong.
        mask = lags < 1.5
        np.testing.assert_allclose(acc[mask], target[mask], atol=0.12)

    def test_from_white_noise_is_linear(self):
        """The xi -> surface map must be linear (SSCM relies on it)."""
        gen = SurfaceGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 16)
        rng = np.random.default_rng(10)
        w1 = rng.standard_normal((16, 16))
        w2 = rng.standard_normal((16, 16))
        h1 = gen.from_white_noise(w1).heights
        h2 = gen.from_white_noise(w2).heights
        h12 = gen.from_white_noise(2.0 * w1 - 0.5 * w2).heights
        np.testing.assert_allclose(h12, 2.0 * h1 - 0.5 * h2,
                                   rtol=1e-10, atol=1e-12)

    def test_validation(self):
        cf = GaussianCorrelation(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            SurfaceGenerator(cf, -5.0, 16)
        with pytest.raises(ConfigurationError):
            SurfaceGenerator(cf, 5.0, 2)
        gen = SurfaceGenerator(cf, 5.0, 16)
        with pytest.raises(ConfigurationError):
            gen.from_white_noise(np.zeros((8, 8)))

    @given(st.integers(8, 40), st.floats(0.3, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_discrete_variance_bounded_by_sigma2(self, n, sigma):
        cf = GaussianCorrelation(sigma, 1.0)
        gen = SurfaceGenerator(cf, 5.0, n)
        assert 0.0 < gen.discrete_variance() <= sigma ** 2 * (1 + 1e-9)


class TestProfileGenerator:
    def test_shape_and_mean(self):
        gen = ProfileGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 64)
        p = gen.sample(0)
        assert p.shape == (64,)
        assert abs(p.mean()) < 1e-12

    def test_variance(self):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = ProfileGenerator(cf, 10.0, 128)
        rng = np.random.default_rng(11)
        var = np.mean([gen.sample(rng).var() for _ in range(200)])
        assert var == pytest.approx(gen.discrete_variance(), rel=0.1)

    def test_1d_grid_variance_larger_window_closer_to_sigma(self):
        cf = GaussianCorrelation(1.0, 1.0)
        small = ProfileGenerator(cf, 5.0, 64).discrete_variance()
        large = ProfileGenerator(cf, 20.0, 256).discrete_variance()
        assert large > small
        # The zeroed DC bin costs ~W1(0) * dk; with L = 20 um that is
        # ~9% of the variance, shrinking with the window.
        assert large == pytest.approx(1.0, rel=0.12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProfileGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 1)
