"""Tests of the material models and derived EM quantities."""

import math

import numpy as np
import pytest

from repro.constants import COPPER_RESISTIVITY, EPS_0, GHZ, MU_0, SIO2_EPS_R
from repro.errors import ConfigurationError
from repro.materials import (
    PAPER_SYSTEM,
    Conductor,
    Dielectric,
    TwoMediumSystem,
    skin_depth,
)


class TestSkinDepth:
    def test_copper_at_1ghz(self):
        # delta = sqrt(rho/(pi f mu)) ~ 2.06 um for rho = 1.67 uOhm cm.
        delta = skin_depth(1 * GHZ, COPPER_RESISTIVITY)
        assert delta == pytest.approx(2.057e-6, rel=1e-3)

    def test_scales_as_inverse_sqrt_f(self):
        d1 = skin_depth(1 * GHZ, COPPER_RESISTIVITY)
        d4 = skin_depth(4 * GHZ, COPPER_RESISTIVITY)
        assert d1 / d4 == pytest.approx(2.0, rel=1e-12)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            skin_depth(0.0, COPPER_RESISTIVITY)
        with pytest.raises(ConfigurationError):
            skin_depth(-1.0, COPPER_RESISTIVITY)

    def test_rejects_nonpositive_resistivity(self):
        with pytest.raises(ConfigurationError):
            skin_depth(1 * GHZ, 0.0)


class TestConductor:
    def test_wavenumber_is_one_plus_j_over_delta(self):
        cu = Conductor()
        f = 5 * GHZ
        k2 = cu.wavenumber(f)
        delta = cu.skin_depth(f)
        assert k2 == pytest.approx((1 + 1j) / delta, rel=1e-12)

    def test_surface_resistance(self):
        cu = Conductor()
        f = 5 * GHZ
        assert cu.surface_resistance(f) == pytest.approx(
            cu.resistivity / cu.skin_depth(f), rel=1e-12)

    def test_rejects_bad_resistivity(self):
        with pytest.raises(ConfigurationError):
            Conductor(resistivity=-1.0)


class TestDielectric:
    def test_wavenumber(self):
        d = Dielectric(eps_r=SIO2_EPS_R)
        f = 5 * GHZ
        expected = 2 * math.pi * f * math.sqrt(MU_0 * SIO2_EPS_R * EPS_0)
        assert d.wavenumber(f) == pytest.approx(expected, rel=1e-12)

    def test_rejects_sub_vacuum_permittivity(self):
        with pytest.raises(ConfigurationError):
            Dielectric(eps_r=0.5)


class TestTwoMediumSystem:
    def test_beta_formula(self):
        f = 5 * GHZ
        sys = PAPER_SYSTEM
        omega = 2 * math.pi * f
        expected = -1j * omega * SIO2_EPS_R * EPS_0 * COPPER_RESISTIVITY
        assert sys.beta(f) == pytest.approx(expected, rel=1e-12)

    def test_beta_k2_squared_equals_k1_squared(self):
        """The identity beta * k2^2 = k1^2 that simplifies SPM2."""
        sys = PAPER_SYSTEM
        for f in (0.5 * GHZ, 5 * GHZ, 20 * GHZ):
            lhs = sys.beta(f) * sys.k2(f) ** 2
            rhs = sys.k1(f) ** 2
            assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_flat_transmission_near_two(self):
        """Magnetic-field doubling at a good conductor: T0 ~ 2."""
        t0 = PAPER_SYSTEM.flat_transmission(5 * GHZ)
        assert abs(t0 - 2.0) < 1e-3

    def test_flat_reflection_energy(self):
        """|R0| slightly below 1; 1 - |R0|^2 equals the absorbed fraction."""
        f = 5 * GHZ
        sys = PAPER_SYSTEM
        r0 = sys.flat_reflection(f)
        assert 0.0 < 1.0 - abs(r0) ** 2 < 1e-2

    def test_flat_bc_consistency(self):
        """1 + R0 = T0 and k1 (1 - R0) = beta k2 T0."""
        f = 3 * GHZ
        sys = PAPER_SYSTEM
        r0, t0 = sys.flat_reflection(f), sys.flat_transmission(f)
        assert 1 + r0 == pytest.approx(t0, rel=1e-12)
        assert sys.k1(f) * (1 - r0) == pytest.approx(
            sys.beta(f) * sys.k2(f) * t0, rel=1e-10)

    def test_smooth_power_density(self):
        f = 5 * GHZ
        sys = PAPER_SYSTEM
        expected = abs(sys.flat_transmission(f)) ** 2 / (2 * sys.delta(f))
        assert sys.smooth_power_per_area(f) == pytest.approx(expected)

    def test_flat_energy_conservation_scalar_flux(self):
        """Scalar flux balance: k1(1-|R0|^2)/2 = omega eps1 rho |T0|^2/(2 delta)."""
        f = 5 * GHZ
        sys = PAPER_SYSTEM
        lhs = 0.5 * sys.k1(f).real * (1 - abs(sys.flat_reflection(f)) ** 2)
        omega = 2 * math.pi * f
        scale = omega * sys.dielectric.permittivity * sys.conductor.resistivity
        rhs = scale * abs(sys.flat_transmission(f)) ** 2 / (2 * sys.delta(f))
        assert lhs == pytest.approx(rhs, rel=1e-9)
