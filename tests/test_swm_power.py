"""Tests of the power bookkeeping helpers."""

import numpy as np
import pytest

from repro.constants import GHZ
from repro.errors import ConfigurationError
from repro.surfaces.deterministic import cosine_profile, egg_carton
from repro.swm.geometry import build_mesh_2d, build_mesh_3d
from repro.swm.power import (
    absorbed_power_2d,
    absorbed_power_3d,
    absorbed_power_density_3d,
    area_ratio_2d,
    area_ratio_3d,
)
from repro.swm.solver import SWMSolver3D
from repro.swm.solver2d import SWMSolver2D


class TestPowerHelpers:
    def test_matches_solver_3d(self):
        h = egg_carton(10, 5.0, amplitude=0.6)
        res = SWMSolver3D().solve_um(h, 5.0, 5 * GHZ)
        assert absorbed_power_3d(res.psi, res.v, res.mesh) == pytest.approx(
            res.absorbed_power, rel=1e-12)

    def test_density_sums_to_total(self):
        h = egg_carton(10, 5.0, amplitude=0.6)
        res = SWMSolver3D().solve_um(h, 5.0, 5 * GHZ)
        dens = absorbed_power_density_3d(res.psi, res.v, res.mesh)
        assert dens.shape == (10, 10)
        total = np.sum(dens) * res.mesh.cell_area
        assert total == pytest.approx(res.absorbed_power, rel=1e-12)

    def test_matches_solver_2d(self):
        p = cosine_profile(64, 5.0, 0.6, 1)
        res = SWMSolver2D().solve_um(p, 5.0, 5 * GHZ)
        assert absorbed_power_2d(res.psi, res.v, res.mesh) == pytest.approx(
            res.absorbed_power, rel=1e-12)

    def test_area_ratios(self):
        mesh3 = build_mesh_3d(egg_carton(16, 5.0, 0.8), 5.0)
        assert area_ratio_3d(mesh3) > 1.0
        mesh2 = build_mesh_2d(cosine_profile(64, 5.0, 0.8, 1), 5.0)
        assert area_ratio_2d(mesh2) > 1.0
        flat3 = build_mesh_3d(np.zeros((8, 8)), 5.0)
        assert area_ratio_3d(flat3) == pytest.approx(1.0)

    def test_validation(self):
        mesh = build_mesh_3d(np.zeros((8, 8)), 5.0)
        with pytest.raises(ConfigurationError):
            absorbed_power_3d(np.zeros(10), np.zeros(10), mesh)
