"""Tests of the correlation functions and their spectra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.surfaces import (
    ExponentialCorrelation,
    ExtractedCorrelation,
    GaussianCorrelation,
    MaternCorrelation,
)

ALL_CFS = [
    GaussianCorrelation(1.0, 1.0),
    GaussianCorrelation(0.5, 2.0),
    ExponentialCorrelation(1.0, 1.5),
    ExtractedCorrelation(1.0, 1.4, 0.53),
    MaternCorrelation(1.0, 1.0, nu=1.5),
    MaternCorrelation(0.7, 2.0, nu=2.5),
]


@pytest.mark.parametrize("cf", ALL_CFS, ids=lambda c: repr(c))
class TestCommonProperties:
    def test_zero_lag_is_variance(self, cf):
        assert float(cf(np.array(0.0))) == pytest.approx(cf.sigma ** 2,
                                                         rel=1e-9)

    def test_bounded_by_variance(self, cf):
        d = np.linspace(0.0, 20.0 * cf.reference_length, 200)
        assert np.all(cf(d) <= cf.sigma ** 2 + 1e-12)

    def test_decays_to_zero(self, cf):
        far = float(cf(np.array(30.0 * cf.reference_length)))
        assert abs(far) < 1e-3 * cf.sigma ** 2

    def test_spectrum_2d_nonnegative(self, cf):
        k = np.linspace(0.0, 30.0 / cf.reference_length, 300)
        assert np.all(cf.spectrum_2d(k) >= -1e-12 * cf.sigma ** 2)

    def test_spectrum_2d_normalization(self, cf):
        """integral W2 d^2k = sigma^2 (heavy-tailed CFs converge slowly,
        hence the 2.5% window-truncation allowance)."""
        k = np.linspace(0.0, 80.0 / cf.reference_length, 30000)
        total = np.trapezoid(2.0 * np.pi * k * cf.spectrum_2d(k), k)
        assert total == pytest.approx(cf.sigma ** 2, rel=2.5e-2)

    def test_spectrum_1d_normalization(self, cf):
        k = np.linspace(0.0, 80.0 / cf.reference_length, 30000)
        total = 2.0 * np.trapezoid(cf.spectrum_1d(k), k)
        assert total == pytest.approx(cf.sigma ** 2, rel=2.5e-2)

    def test_covariance_matrix_symmetric_psd(self, cf):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 4 * cf.reference_length, size=(25, 2))
        c = cf.covariance_matrix(pts)
        np.testing.assert_allclose(c, c.T, rtol=1e-12)
        evals = np.linalg.eigvalsh(c)
        assert evals.min() > -1e-8 * cf.sigma ** 2


class TestGaussian:
    def test_analytic_spectrum_matches_numeric(self):
        cf = GaussianCorrelation(1.3, 0.8)
        k = np.linspace(0.0, 10.0, 50)
        scale2 = float(np.max(cf.spectrum_2d(k)))
        np.testing.assert_allclose(cf.spectrum_2d(k),
                                   cf._numeric_spectrum_2d(k),
                                   atol=5e-5 * scale2)
        scale1 = float(np.max(cf.spectrum_1d(k)))
        np.testing.assert_allclose(cf.spectrum_1d(k),
                                   cf._numeric_spectrum_1d(k),
                                   atol=5e-5 * scale1)

    def test_slope_variance_closed_forms(self):
        cf = GaussianCorrelation(1.0, 2.0)
        assert cf.slope_variance_2d() == pytest.approx(4.0 / 4.0)
        assert cf.slope_variance_1d() == pytest.approx(2.0 / 4.0)

    @given(st.floats(0.1, 3.0), st.floats(0.2, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_slope_variance_matches_spectral_integral(self, sigma, eta):
        cf = GaussianCorrelation(sigma, eta)
        k = np.linspace(0.0, 40.0 / eta, 20000)
        spectral = np.trapezoid(k ** 3 * cf.spectrum_2d(k), k) * 2 * np.pi
        assert spectral == pytest.approx(cf.slope_variance_2d(), rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianCorrelation(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            GaussianCorrelation(1.0, 0.0)


class TestExtracted:
    def test_paper_parameters_short_range_gaussian_like(self):
        """Near d = 0 the CF behaves like exp(-d^2/(eta1 eta2))."""
        cf = ExtractedCorrelation(1.0, 1.4, 0.53)
        d = np.array([0.01, 0.05, 0.1])
        approx = np.exp(-d ** 2 / (1.4 * 0.53))
        np.testing.assert_allclose(cf(d), approx, rtol=5e-2)

    def test_spectrum_cache_consistent(self):
        cf = ExtractedCorrelation(1.0, 1.4, 0.53)
        k = np.linspace(0.0, 5.0, 20)
        a = cf.spectrum_2d(k)
        b = cf.spectrum_2d(k)  # cached path
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExtractedCorrelation(1.0, -1.4, 0.53)


class TestPeriodicCovariance:
    def test_minimum_image_wrapping(self):
        cf = GaussianCorrelation(1.0, 1.0)
        period = 5.0
        pts = np.array([[0.1, 0.0], [4.9, 0.0]])  # 0.2 apart through wrap
        c = cf.periodic_covariance_matrix(pts, period)
        direct = float(cf(np.array(0.2)))
        assert c[0, 1] == pytest.approx(direct, rel=1e-12)

    def test_reduces_to_plain_for_central_points(self):
        cf = GaussianCorrelation(1.0, 0.5)
        pts = np.array([[2.0, 2.0], [2.3, 2.1]])
        plain = cf.covariance_matrix(pts)
        wrapped = cf.periodic_covariance_matrix(pts, 10.0)
        np.testing.assert_allclose(plain, wrapped, rtol=1e-12)


class TestMatern:
    def test_nu_half_matches_exponential(self):
        """Matern(nu=1/2) has the exponential CF's shape (with the
        sqrt(2 nu)/eta = 1/eta' scaling)."""
        eta = 1.0
        m = MaternCorrelation(1.0, eta, nu=0.5)
        d = np.linspace(0.01, 4.0, 50)
        expected = np.exp(-np.sqrt(2 * 0.5) * d / eta)
        np.testing.assert_allclose(m(d), expected, rtol=1e-6)

    def test_spectrum_normalization_tight(self):
        m = MaternCorrelation(1.0, 1.0, nu=1.5)
        k = np.linspace(0.0, 400.0, 400000)
        total = np.trapezoid(2 * np.pi * k * m.spectrum_2d(k), k)
        assert total == pytest.approx(1.0, rel=2e-2)
