"""Tests of the 3D SWM solver — the paper's central machinery."""

import warnings

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.errors import ConfigurationError
from repro.materials import PAPER_SYSTEM
from repro.surfaces import GaussianCorrelation, SurfaceGenerator
from repro.surfaces.deterministic import egg_carton
from repro.swm.solver import SWMSolver3D, enhancement_sweep


@pytest.fixture(scope="module")
def solver():
    return SWMSolver3D()


class TestFlatSurface:
    """The closed-loop validation: a flat patch must reproduce the
    analytic flat-interface solution."""

    def test_enhancement_is_unity(self, solver):
        res = solver.solve_um(np.zeros((12, 12)), 5.0, 5 * GHZ)
        assert res.enhancement == pytest.approx(1.0, abs=0.01)

    def test_surface_field_is_t0(self, solver):
        f = 3 * GHZ
        res = solver.solve_um(np.zeros((10, 10)), 5.0, f)
        t0 = PAPER_SYSTEM.flat_transmission(f)
        np.testing.assert_allclose(res.psi, t0, rtol=5e-3)

    def test_normal_derivative_is_minus_jk2_t0(self, solver):
        f = 3 * GHZ
        res = solver.solve_um(np.zeros((14, 14)), 5.0, f)
        k2_um = PAPER_SYSTEM.k2(f) * 1e-6
        expected = -1j * k2_um * PAPER_SYSTEM.flat_transmission(f)
        np.testing.assert_allclose(res.v, expected, rtol=2e-2)

    def test_converges_with_refinement(self, solver):
        errs = []
        for n in (8, 16):
            res = solver.solve_um(np.zeros((n, n)), 5.0, 5 * GHZ)
            errs.append(abs(res.enhancement - 1.0))
        assert errs[1] < errs[0]

    def test_frequency_independent(self, solver):
        for f in (1 * GHZ, 9 * GHZ):
            res = solver.solve_um(np.zeros((12, 12)), 5.0, f)
            assert res.enhancement == pytest.approx(1.0, abs=0.02)


class TestRoughSurface:
    def test_rough_absorbs_more_at_high_frequency(self, solver):
        cf = GaussianCorrelation(1.0, 1.0)
        gen = SurfaceGenerator(cf, 5.0, 14, normalize=True)
        h = gen.sample(3).heights
        res = solver.solve_um(h, 5.0, 7 * GHZ)
        assert res.enhancement > 1.15

    def test_enhancement_rises_with_frequency(self, solver):
        cf = GaussianCorrelation(1.0, 1.0)
        h = SurfaceGenerator(cf, 5.0, 12, normalize=True).sample(5).heights
        freqs = np.array([1.0, 4.0, 8.0]) * GHZ
        vals = [solver.solve_um(h, 5.0, float(f)).enhancement for f in freqs]
        assert vals[2] > vals[1] > vals[0] - 0.02

    def test_absorbed_power_positive(self, solver):
        h = egg_carton(12, 5.0, amplitude=0.8)
        res = solver.solve_um(h, 5.0, 5 * GHZ)
        assert res.absorbed_power > 0.0

    def test_deeper_roughness_is_lossier(self, solver):
        f = 6 * GHZ
        shallow = egg_carton(12, 5.0, amplitude=0.3)
        deep = egg_carton(12, 5.0, amplitude=1.0)
        e_shallow = solver.solve_um(shallow, 5.0, f).enhancement
        e_deep = solver.solve_um(deep, 5.0, f).enhancement
        assert e_deep > e_shallow

    def test_translation_invariance(self, solver):
        """Shifting the surface heights by a constant must not change
        the loss factor (rigid offset of the patch)."""
        h = egg_carton(10, 5.0, amplitude=0.6)
        a = solver.solve_um(h, 5.0, 5 * GHZ).enhancement
        b = solver.solve_um(h + 2.0, 5.0, 5 * GHZ).enhancement
        assert a == pytest.approx(b, rel=1e-6)

    def test_si_and_um_paths_agree(self, solver):
        h_um = egg_carton(8, 5.0, amplitude=0.5)
        a = solver.solve_um(h_um, 5.0, 5 * GHZ).enhancement
        b = solver.solve(h_um * UM, 5.0 * UM, 5 * GHZ).enhancement
        assert a == pytest.approx(b, rel=1e-12)


class TestDiagnostics:
    def test_resolution_warning(self, solver):
        with pytest.warns(RuntimeWarning, match="skin depth"):
            solver.solve_um(np.zeros((6, 6)), 20.0, 20 * GHZ)

    def test_smooth_power_validation(self, solver):
        with pytest.raises(ConfigurationError):
            solver.smooth_power(-5.0, 5 * GHZ)

    def test_sweep_helper(self, solver):
        h = egg_carton(8, 5.0, amplitude=0.4) * UM
        freqs = np.array([2.0, 6.0]) * GHZ
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            vals = enhancement_sweep(solver, h, 5.0 * UM, freqs)
        assert vals.shape == (2,)
        assert np.all(np.isfinite(vals))

    def test_table_cache_reused_across_samples(self):
        solver = SWMSolver3D()
        h1 = egg_carton(8, 5.0, amplitude=0.4)
        h2 = egg_carton(8, 5.0, amplitude=0.35)
        solver.solve_um(h1, 5.0, 5 * GHZ)
        n_tables = len(solver._tables)
        solver.solve_um(h2, 5.0, 5 * GHZ)
        assert len(solver._tables) == n_tables  # reused, not rebuilt
