"""Tests of the async sweep service (``repro.service``).

Four layers, four test groups:

- the wire format round-trips every engine object — in particular,
  every registered experiment's planned spec keeps its content hash
  through ``to_wire -> json -> from_wire`` at quick *and* paper scale;
- the scheduler answers cache hits immediately and deduplicates
  concurrent overlapping submissions to one execution per unique
  content hash, ordered longest-first by the dense-solve cost model;
- the HTTP server + client produce results bit-identical to the
  in-process engine path (the ``smoke`` marker selects the fig3
  version CI runs as its service smoke job);
- the remote executor behaves as a drop-in engine tier.
"""

import json
import threading
import time
import urllib.request
import warnings

import numpy as np
import pytest

import repro.api
from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig
from repro.engine import (
    DeterministicScenario,
    EstimatorSpec,
    Job,
    ProfileScenario,
    ResultCache,
    SerialExecutor,
    StochasticScenario,
    SweepSpec,
    engine_session,
    run_sweep,
)
from repro.engine.results import PointResult, SweepResult
from repro.errors import ConfigurationError
from repro.experiments.presets import PAPER, QUICK
from repro import telemetry
from repro.service import wire
from repro.service.client import RemoteExecutor, ServiceClient
from repro.service.scheduler import (
    SweepScheduler,
    estimate_job_cost,
    job_kind,
)
from repro.service.server import make_server
from repro.surfaces import (
    ExtractedCorrelation,
    GaussianCorrelation,
    MaternCorrelation,
)


def _tiny_spec(freqs=(1.0, 3.0), name="m", seed_tag=None):
    """A fast two-point stochastic sweep (8x8 grid, 2 KL modes)."""
    tags = {"suite": "service"} if seed_tag is None else {"seed": seed_tag}
    return SweepSpec(
        scenarios=[StochasticScenario(
            name, GaussianCorrelation(1 * UM, 1 * UM),
            StochasticLossConfig(points_per_side=8, max_modes=2))],
        frequencies_hz=[f * GHZ for f in freqs],
        estimators=EstimatorSpec(kind="sscm", order=1),
        tags=tags)


import contextlib


@contextlib.contextmanager
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


@pytest.fixture(autouse=True)
def _restore_telemetry():
    """make_server enables telemetry process-wide; don't leak it."""
    was = telemetry.enabled()
    yield
    (telemetry.enable if was else telemetry.disable)()


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

class TestWireRoundTrip:
    @pytest.mark.parametrize("scale", [QUICK, PAPER],
                             ids=["quick", "paper"])
    def test_every_experiment_plan_keeps_its_hash(self, scale):
        """The satellite guarantee: any planned spec crosses the wire
        (through actual JSON text) with an identical content hash."""
        for name in repro.api.experiments():
            spec = repro.api.plan(name, scale=scale)
            if spec is None:
                continue
            restored = wire.loads(wire.dumps(spec))
            assert isinstance(restored, SweepSpec), name
            assert restored.key == spec.key, name
            assert restored.n_jobs == spec.n_jobs, name
            assert restored.tags == spec.tags, name
            # per-job hashes (the cache keys) survive too
            for a, b in zip(spec.jobs(), restored.jobs()):
                assert a.key == b.key, name

    def test_estimator_map_round_trips(self):
        spec = SweepSpec(
            scenarios=[
                StochasticScenario(
                    "a", GaussianCorrelation(1 * UM, 1 * UM),
                    StochasticLossConfig(points_per_side=8, max_modes=2)),
                ProfileScenario("b", GaussianCorrelation(1.0, 1.0),
                                period_um=5.0, n=8),
            ],
            frequencies_hz=[1 * GHZ],
            estimators=EstimatorSpec(kind="sscm", order=1),
            estimator_map={"b": EstimatorSpec(kind="montecarlo",
                                              n_samples=16, seed=7)})
        restored = wire.loads(wire.dumps(spec))
        assert restored.key == spec.key
        assert restored.estimator_map["b"][0].n_samples == 16
        assert restored.estimator_map["b"][0].seed == 7

    def test_deterministic_scenario_heights_bit_identical(self):
        rng = np.random.default_rng(0)
        heights = rng.normal(scale=1e-6, size=(9, 9))
        spec = SweepSpec(
            scenarios=DeterministicScenario("s", heights, period_m=5e-6),
            frequencies_hz=[2 * GHZ])
        restored = wire.loads(wire.dumps(spec))
        assert restored.key == spec.key
        restored_heights = restored.scenarios[0].heights_m
        assert np.array_equal(restored_heights, heights)
        assert restored_heights.dtype == np.float64

    def test_correlation_family_round_trips(self):
        for cf in (GaussianCorrelation(1 * UM, 2 * UM),
                   ExtractedCorrelation(1 * UM, 1.4 * UM, 0.53 * UM),
                   MaternCorrelation(1 * UM, 1 * UM, nu=2.5)):
            doc = wire.to_wire(StochasticScenario(
                "x", cf, StochasticLossConfig(points_per_side=8,
                                              max_modes=2)))
            restored = wire.from_wire(json.loads(json.dumps(doc)))
            assert type(restored.correlation) is type(cf)
            assert restored.key == StochasticScenario(
                "x", cf, StochasticLossConfig(points_per_side=8,
                                              max_modes=2)).key

    def test_unregistered_correlation_rejected(self):
        class Custom(GaussianCorrelation):
            pass

        spec = SweepSpec(
            scenarios=StochasticScenario(
                "c", Custom(1.0, 1.0),
                StochasticLossConfig(points_per_side=8, max_modes=2)),
            frequencies_hz=[1 * GHZ])
        with pytest.raises(wire.WireError, match="not wire-registered"):
            wire.dumps(spec)
        wire.register_correlation(Custom)
        try:
            restored = wire.loads(wire.dumps(spec))
            assert restored.key == spec.key
        finally:
            wire._CORRELATIONS.pop("Custom")

    def test_job_round_trip(self):
        job = _tiny_spec().jobs()[1]
        restored = wire.loads(wire.dumps(job))
        assert isinstance(restored, Job)
        assert restored.key == job.key
        assert restored.index == job.index

    def test_spec_and_job_hooks(self):
        spec = _tiny_spec()
        assert SweepSpec.from_wire(spec.to_wire()).key == spec.key
        job = spec.jobs()[0]
        assert Job.from_wire(job.to_wire()).key == job.key
        with pytest.raises(ConfigurationError, match="not SweepSpec"):
            SweepSpec.from_wire(job.to_wire())

    def test_sweep_result_round_trip_bit_identical(self):
        points = tuple(
            PointResult(scenario="m", frequency_hz=f, estimator="e",
                        key=f"k{i}", mean=1.5 + i, std=0.25,
                        values=np.linspace(0, 1, 5) * (i + 1),
                        n_evals=5, seed=None, wall_time_s=0.1,
                        cache_hit=bool(i), pid=123)
            for i, f in enumerate((1e9, 2e9)))
        result = SweepResult(frequencies_hz=(1e9, 2e9), points=points,
                             tags={"scale": "quick"}, executor="serial",
                             wall_time_s=1.25)
        restored = wire.loads(wire.dumps(result))
        assert isinstance(restored, SweepResult)
        assert restored.frequencies_hz == result.frequencies_hz
        assert restored.tags == dict(result.tags)
        for a, b in zip(result.points, restored.points):
            assert a.mean == b.mean and a.std == b.std
            assert np.array_equal(a.values, b.values)
            assert a.cache_hit == b.cache_hit

    def test_envelope_versioning(self):
        doc = json.loads(wire.dumps(_tiny_spec()))
        assert doc["wire_version"] == wire.WIRE_VERSION
        doc["wire_version"] = 999
        with pytest.raises(wire.WireError, match="unsupported"):
            wire.loads(json.dumps(doc))
        with pytest.raises(wire.WireError, match="not a repro wire"):
            wire.loads(json.dumps({"body": {}}))
        with pytest.raises(wire.WireError, match="valid JSON"):
            wire.loads("{nope")

    def test_unknown_tag_rejected(self):
        with pytest.raises(wire.WireError, match="unknown wire document"):
            wire.from_wire({"$type": "FluxCapacitor"})

    def test_numpy_scalars_in_config_fields_encode(self):
        """Engine-legal numpy scalars in dataclass fields must cross
        the wire (as plain JSON numbers) with the hash preserved."""
        spec = SweepSpec(
            scenarios=StochasticScenario(
                "m", GaussianCorrelation(1 * UM, 1 * UM),
                StochasticLossConfig(points_per_side=np.int64(8),
                                     max_modes=np.int64(2))),
            frequencies_hz=[1 * GHZ],
            estimators=EstimatorSpec(kind="sscm", order=1))
        restored = wire.loads(wire.dumps(spec))
        assert restored.key == spec.key

    def test_unencodable_object_is_wire_error(self):
        spec = _tiny_spec()
        spec.tags["weird"] = object()
        with pytest.raises(wire.WireError):
            wire.dumps(spec)

    def test_corrupt_array_rejected(self):
        doc = wire.to_wire(np.arange(4.0))
        doc["data"] = "!!!not-base64!!!"
        with pytest.raises(wire.WireError, match="corrupt ndarray"):
            wire.from_wire(doc)


# ----------------------------------------------------------------------
# Cost model + scheduler
# ----------------------------------------------------------------------

class _CountingExecutor(SerialExecutor):
    """Serial execution that records every job key it actually runs.

    Scheduler dispatch items are scenario groups (lists of jobs), so
    the record flattens them in dispatch order.
    """

    def __init__(self):
        self.executed = []
        self.lock = threading.Lock()

    def run(self, fn, items, progress=None, on_result=None):
        with self.lock:
            for group in items:
                self.executed.extend(job.key for job in group)
        with _quiet():
            return super().run(fn, items, progress=progress,
                               on_result=on_result)


class TestCostModel:
    def test_bigger_grid_costs_more(self):
        small = _tiny_spec().jobs()[0]
        big = SweepSpec(
            scenarios=StochasticScenario(
                "m", GaussianCorrelation(1 * UM, 1 * UM),
                StochasticLossConfig(points_per_side=16, max_modes=2)),
            frequencies_hz=[1 * GHZ],
            estimators=EstimatorSpec(kind="sscm", order=1)).jobs()[0]
        assert estimate_job_cost(big) > estimate_job_cost(small)

    def test_montecarlo_scales_with_samples(self):
        def mc_job(n):
            return SweepSpec(
                scenarios=StochasticScenario(
                    "m", GaussianCorrelation(1 * UM, 1 * UM),
                    StochasticLossConfig(points_per_side=8, max_modes=2)),
                frequencies_hz=[1 * GHZ],
                estimators=EstimatorSpec(kind="montecarlo",
                                         n_samples=n, seed=0)).jobs()[0]
        assert estimate_job_cost(mc_job(100)) == pytest.approx(
            10 * estimate_job_cost(mc_job(10)))

    def test_deterministic_solve_is_single_eval(self):
        job = SweepSpec(
            scenarios=DeterministicScenario("s", np.zeros((8, 8)),
                                            period_m=5e-6),
            frequencies_hz=[1 * GHZ]).jobs()[0]
        assert estimate_job_cost(job) == pytest.approx(float(8 * 8) ** 3)


class TestScheduler:
    def test_submit_wait_result_matches_engine(self):
        spec = _tiny_spec()
        with _quiet():
            reference = run_sweep(spec, executor=SerialExecutor(),
                                  cache=ResultCache())
        scheduler = SweepScheduler(cache=ResultCache())
        try:
            ticket = scheduler.submit(spec)
            assert scheduler.wait(ticket, timeout=120)
            result = scheduler.result(ticket)
        finally:
            scheduler.shutdown()
        assert np.array_equal(reference.mean_curve("m"),
                              result.mean_curve("m"))
        for a, b in zip(reference.points, result.points):
            assert np.array_equal(np.asarray(a.values),
                                  np.asarray(b.values))

    def test_warm_cache_completes_in_submit(self):
        spec = _tiny_spec()
        cache = ResultCache()
        with _quiet():
            run_sweep(spec, executor=SerialExecutor(), cache=cache)
        counting = _CountingExecutor()
        scheduler = SweepScheduler(executor=counting, cache=cache)
        try:
            ticket = scheduler.submit(spec)
            status = scheduler.status(ticket)
            assert status["state"] == "complete"
            assert status["cache_hits"] == status["total"]
            assert counting.executed == []
            result = scheduler.result(ticket)
            assert result.cache_hits == result.n_points
        finally:
            scheduler.shutdown()

    def test_concurrent_overlapping_submissions_dedup(self):
        """The acceptance criterion: two concurrent submissions of
        overlapping specs execute each unique content hash once."""
        spec_a = _tiny_spec(freqs=(1.0, 3.0))
        spec_b = _tiny_spec(freqs=(3.0, 5.0))  # shares the 3 GHz job
        counting = _CountingExecutor()
        scheduler = SweepScheduler(executor=counting, cache=ResultCache())
        tickets = {}

        def submit(name, spec):
            tickets[name] = scheduler.submit(spec)

        try:
            threads = [threading.Thread(target=submit, args=(n, s))
                       for n, s in (("a", spec_a), ("b", spec_b))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert scheduler.wait(tickets["a"], timeout=120)
            assert scheduler.wait(tickets["b"], timeout=120)
            res_a = scheduler.result(tickets["a"])
            res_b = scheduler.result(tickets["b"])
        finally:
            scheduler.shutdown()
        unique = {j.key for j in spec_a.jobs()} | {j.key
                                                   for j in spec_b.jobs()}
        assert len(unique) == 3
        assert sorted(counting.executed) == sorted(unique)
        # the shared 3 GHz point is numerically the same object stream
        shared = [j.key for j in spec_a.jobs()
                  if j.key in {k.key for k in spec_b.jobs()}]
        assert len(shared) == 1
        a_point = next(p for p in res_a.points if p.key == shared[0])
        b_point = next(p for p in res_b.points if p.key == shared[0])
        assert np.array_equal(np.asarray(a_point.values),
                              np.asarray(b_point.values))

    def test_longest_first_dispatch(self):
        """Jobs of one round start in descending cost order."""
        small = _tiny_spec(freqs=(1.0,), name="small")
        big = SweepSpec(
            scenarios=StochasticScenario(
                "big", GaussianCorrelation(1 * UM, 1 * UM),
                StochasticLossConfig(points_per_side=12, max_modes=2)),
            frequencies_hz=[1 * GHZ],
            estimators=EstimatorSpec(kind="sscm", order=1))
        counting = _CountingExecutor()
        scheduler = SweepScheduler(executor=counting, cache=ResultCache())
        try:
            # stop the dispatcher from racing ahead: submit both before
            # it can take a round by holding the lock
            with scheduler._lock:
                pass
            a = scheduler.submit(small)
            b = scheduler.submit(big)
            assert scheduler.wait(a, timeout=120)
            assert scheduler.wait(b, timeout=120)
        finally:
            scheduler.shutdown()
        big_key = big.jobs()[0].key
        small_key = small.jobs()[0].key
        # Whatever the round split, the big job never queues behind the
        # small one within a round; with a single round it runs first.
        if counting.executed[0] != big_key:
            assert counting.executed == [small_key, big_key]

    def test_events_and_status_progression(self):
        spec = _tiny_spec()
        scheduler = SweepScheduler(cache=ResultCache())
        try:
            with _quiet():
                ticket = scheduler.submit(spec)
                assert scheduler.wait(ticket, timeout=120)
            events, finished = scheduler.events(ticket)
            assert finished
            kinds = [e["event"] for e in events]
            assert kinds[0] == "submitted"
            assert kinds[-1] == "complete"
            assert kinds.count("point") == spec.n_jobs
            seqs = [e["seq"] for e in events]
            assert seqs == list(range(len(events)))
            # incremental read
            later, finished = scheduler.events(ticket, since=len(events))
            assert later == [] and finished
        finally:
            scheduler.shutdown()

    def test_job_failure_is_isolated_per_slot(self, monkeypatch):
        """A failing job fails only the tickets waiting on it — other
        clients' jobs in the same dispatch round are unaffected."""
        import repro.service.scheduler as scheduler_module

        real = scheduler_module.execute_job

        def flaky(job):
            if job.scenario.name == "bad":
                raise RuntimeError("synthetic solver failure")
            return real(job)

        monkeypatch.setattr(scheduler_module, "execute_job", flaky)
        # Different frequencies: scenario *names* are excluded from
        # content hashes, so same-physics specs would dedup into one
        # slot and the "bad" job would never actually run. The bad
        # scenario also differs physically (eta), otherwise the two
        # jobs would fuse into one frequency-stacked group and bypass
        # the per-job execution path this test instruments.
        good = _tiny_spec(freqs=(1.0,), name="good")
        bad = SweepSpec(
            scenarios=[StochasticScenario(
                "bad", GaussianCorrelation(1 * UM, 2 * UM),
                StochasticLossConfig(points_per_side=8, max_modes=2))],
            frequencies_hz=[2.0 * GHZ],
            estimators=EstimatorSpec(kind="sscm", order=1),
            tags={"suite": "service"})
        scheduler = SweepScheduler(cache=ResultCache())
        try:
            with _quiet():
                good_id = scheduler.submit(good)
                bad_id = scheduler.submit(bad)
                assert scheduler.wait(good_id, timeout=120)
                assert scheduler.wait(bad_id, timeout=120)
            assert scheduler.status(good_id)["state"] == "complete"
            status = scheduler.status(bad_id)
            assert status["state"] == "failed"
            assert "synthetic solver failure" in status["error"]
            result = scheduler.result(good_id)
            assert result.n_points == 1
        finally:
            scheduler.shutdown()

    def test_failed_job_fails_ticket(self):
        class Exploding(SerialExecutor):
            def run(self, fn, items, progress=None, on_result=None):
                raise RuntimeError("worker exploded")

        scheduler = SweepScheduler(executor=Exploding(),
                                   cache=ResultCache())
        try:
            ticket = scheduler.submit(_tiny_spec())
            assert scheduler.wait(ticket, timeout=120)
            status = scheduler.status(ticket)
            assert status["state"] == "failed"
            assert status["error"]
            with pytest.raises(ConfigurationError, match="failed"):
                scheduler.result(ticket)
            events, finished = scheduler.events(ticket)
            assert finished
            assert events[-1]["event"] == "failed"
        finally:
            scheduler.shutdown()

    def test_submit_jobs_payload_order(self):
        jobs = _tiny_spec().jobs()
        scheduler = SweepScheduler(cache=ResultCache())
        try:
            ticket = scheduler.submit_jobs(jobs)
            assert scheduler.wait(ticket, timeout=120)
            payloads = scheduler.payloads(ticket)
            with pytest.raises(ConfigurationError, match="raw job batch"):
                scheduler.result(ticket)
        finally:
            scheduler.shutdown()
        assert len(payloads) == len(jobs)
        assert all(p["n_evals"] > 0 for p in payloads)

    def test_validation(self):
        scheduler = SweepScheduler(cache=ResultCache())
        try:
            with pytest.raises(ConfigurationError, match="SweepSpec"):
                scheduler.submit("nope")
            with pytest.raises(ConfigurationError, match="at least one"):
                scheduler.submit_jobs([])
            with pytest.raises(KeyError):
                scheduler.status("missing")
        finally:
            scheduler.shutdown()
        with pytest.raises(ConfigurationError, match="shut down"):
            scheduler.submit(_tiny_spec())


# ----------------------------------------------------------------------
# HTTP server + client
# ----------------------------------------------------------------------

@pytest.fixture()
def service_url():
    server = make_server(port=0, cache=ResultCache())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.service.shutdown()
        server.shutdown()
        thread.join(5)


class TestHTTPService:
    def test_submit_poll_result_bit_identical(self, service_url):
        spec = _tiny_spec()
        with _quiet():
            reference = run_sweep(spec, executor=SerialExecutor(),
                                  cache=ResultCache())
        client = ServiceClient(service_url, poll_interval=0.02)
        assert client.healthy()
        remote = client.run_sweep(spec, timeout=120)
        assert np.array_equal(reference.mean_curve("m"),
                              remote.mean_curve("m"))
        for a, b in zip(reference.points, remote.points):
            assert np.array_equal(np.asarray(a.values),
                                  np.asarray(b.values))
            assert a.mean == b.mean and a.std == b.std
        # second submission replays from the server cache
        warm = client.run_sweep(spec, timeout=30)
        assert warm.cache_hits == warm.n_points
        assert np.array_equal(reference.mean_curve("m"),
                              warm.mean_curve("m"))

    def test_ndjson_event_stream(self, service_url):
        client = ServiceClient(service_url, poll_interval=0.02)
        spec = _tiny_spec()
        ticket = client.submit(spec)
        seen = []
        events = client.events(ticket, on_event=seen.append)
        assert events == seen
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted" and kinds[-1] == "complete"
        assert kinds.count("point") == spec.n_jobs

    def test_experiments_listing_and_job_read_path(self, service_url):
        client = ServiceClient(service_url, poll_interval=0.02)
        names = [e["name"] for e in client.experiments()]
        assert names == repro.api.experiments()
        spec = _tiny_spec()
        result = client.run_sweep(spec, timeout=120)
        record = client.job_record(result.points[0].key)
        payload = record["payload"]
        assert payload["mean"] == result.points[0].mean
        assert np.array_equal(np.asarray(payload["values"]),
                              np.asarray(result.points[0].values))
        with pytest.raises(ConfigurationError, match="HTTP 404"):
            client.job_record("0" * 64)
        info = client.cache_info()
        assert info["stats"]["stores"] >= spec.n_jobs

    def test_solve_free_experiment_runs_inline(self, service_url):
        client = ServiceClient(service_url, poll_interval=0.02)
        with _quiet():
            doc = client.run_experiment("table1", scale="quick",
                                        timeout=120)
        assert doc["experiment"] == "Table I"
        assert doc["all_checks_pass"] is True

    def test_http_errors_are_decoded(self, service_url):
        client = ServiceClient(service_url)
        with pytest.raises(ConfigurationError, match="HTTP 404"):
            client.status("nope")
        with pytest.raises(ConfigurationError, match="HTTP 400"):
            client._post("/v1/sweeps", b"{not json")
        with pytest.raises(ConfigurationError, match="HTTP 404"):
            client._get("/v1/teapot")

    def test_bad_since_parameter_is_400(self, service_url):
        client = ServiceClient(service_url, poll_interval=0.02)
        ticket = client.submit(_tiny_spec())
        client.wait(ticket, timeout=120)
        with pytest.raises(ConfigurationError, match="HTTP 400"):
            client._get(f"/v1/sweeps/{ticket}/events?since=abc")

    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        assert not client.healthy()

    def test_remote_executor_is_drop_in_tier(self, service_url):
        spec = _tiny_spec()
        with _quiet():
            reference = run_sweep(spec, executor=SerialExecutor(),
                                  cache=ResultCache())
        local_cache = ResultCache()
        executor = RemoteExecutor(ServiceClient(service_url,
                                                poll_interval=0.02))
        with engine_session(executor=executor, cache=local_cache):
            remote = run_sweep(spec)
        assert remote.executor == "remote"
        assert np.array_equal(reference.mean_curve("m"),
                              remote.mean_curve("m"))
        # payloads were committed to the LOCAL cache: replay is free
        with engine_session(executor=executor, cache=local_cache):
            replay = run_sweep(spec)
        assert replay.cache_hits == replay.n_points

    def test_remote_executor_rejects_non_jobs(self, service_url):
        executor = RemoteExecutor(service_url)
        with pytest.raises(ConfigurationError, match="engine Jobs"):
            executor.run(str, [1, 2, 3])


@pytest.mark.smoke
@pytest.mark.slow
@pytest.mark.skipif("REPRO_SERVICE_SMOKE" not in __import__("os").environ,
                    reason="full fig3 smoke is minutes-scale; CI's "
                           "service-smoke job sets REPRO_SERVICE_SMOKE=1 "
                           "(the fast HTTP bit-identity tests above run "
                           "everywhere)")
def test_service_smoke_fig3_http_matches_inprocess(tmp_path):
    """The CI service smoke: a quick fig3 sweep over HTTP against a
    warm cache is bit-for-bit the in-process `repro.api` path."""
    spec = repro.api.plan("fig3", scale="quick")
    cache = ResultCache(disk_dir=tmp_path / "store")
    with _quiet():
        reference = run_sweep(spec, executor=SerialExecutor(),
                              cache=cache)
    server = make_server(port=0, cache=cache)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        client = ServiceClient(f"http://{host}:{port}",
                               poll_interval=0.05)
        start = time.perf_counter()
        remote = client.run_sweep(spec, timeout=300)
        elapsed = time.perf_counter() - start
    finally:
        server.service.shutdown()
        server.shutdown()
        thread.join(5)
    assert remote.cache_hits == remote.n_points, "warm cache must serve all"
    for scenario in reference.scenario_names:
        assert np.array_equal(reference.mean_curve(scenario),
                              remote.mean_curve(scenario)), scenario
    for a, b in zip(reference.points, remote.points):
        assert np.array_equal(np.asarray(a.values), np.asarray(b.values))
    assert elapsed < 60.0, f"warm HTTP replay took {elapsed:.1f}s"


# ----------------------------------------------------------------------
# Telemetry across the service stack (PR 6)
# ----------------------------------------------------------------------

def _profile_spec(freqs=(1.0,), n=12, name="p"):
    return SweepSpec(
        scenarios=ProfileScenario(name, GaussianCorrelation(1.0, 1.0),
                                  period_um=20.0, n=n),
        frequencies_hz=[f * GHZ for f in freqs],
        estimators=EstimatorSpec(kind="sscm", order=1))


class TestPerKindCostModel:
    def test_job_kind_mapping(self):
        assert job_kind(_tiny_spec().jobs()[0]) == "stochastic"
        assert job_kind(_profile_spec().jobs()[0]) == "profile"
        det = SweepSpec(
            scenarios=DeterministicScenario("s", np.zeros((8, 8)),
                                            period_m=5e-6),
            frequencies_hz=[1 * GHZ]).jobs()[0]
        assert job_kind(det) == "deterministic"

    def test_profile_jobs_have_their_own_cost_form(self):
        """2D jobs solve 2n x 2n systems with O(n^2) assembly on top —
        the naive ``evals * n^3`` form would undersell them badly."""
        n = 16
        job = _profile_spec(n=n).jobs()[0]
        evals = 1 + 2 * n  # sscm order 1 in dimension n
        naive = float(evals) * float(n) ** 3
        cost = estimate_job_cost(job)
        assert cost > naive  # never cheaper than the naive LU count
        assert cost >= float(evals) * 8.0 * float(n) ** 3  # (2n)^3 LU

    def test_profile_cost_still_orders_by_size(self):
        small = estimate_job_cost(_profile_spec(n=8).jobs()[0])
        big = estimate_job_cost(_profile_spec(n=32).jobs()[0])
        assert big > small


class TestWireV2:
    def test_point_result_spans_round_trip(self):
        spans = [{"name": "factor", "start_unix": 1.5,
                  "duration_s": 0.25, "pid": 7, "tid": 1,
                  "meta": {"n": 64}}]
        point = PointResult(
            scenario="m", frequency_hz=1e9, estimator="sscm(order=1)",
            key="k", mean=1.0, std=0.0, values=np.arange(3.0),
            n_evals=3, seed=None, wall_time_s=0.3, cache_hit=False,
            pid=7, spans=spans)
        restored = wire.from_wire(wire.to_wire(point))
        assert restored.spans == spans
        bare = PointResult(
            scenario="m", frequency_hz=1e9, estimator="sscm(order=1)",
            key="k", mean=1.0, std=0.0, values=np.arange(3.0),
            n_evals=3, seed=None, wall_time_s=0.3, cache_hit=True)
        assert wire.from_wire(wire.to_wire(bare)).spans is None

    def test_old_envelopes_still_decode(self):
        """v2/v3/v4 only *added* fields and message types; v1–v3
        documents (no spans, fleet, or telemetry messages) must keep
        decoding."""
        doc = json.loads(wire.dumps(_tiny_spec()))
        assert doc["wire_version"] == wire.WIRE_VERSION == 4
        for old in (1, 2, 3):
            doc["wire_version"] = old
            restored = wire.loads(json.dumps(doc))
            assert restored.key == _tiny_spec().key
        # v1 PointResult documents lack the spans key entirely
        point_doc = wire.to_wire(PointResult(
            scenario="m", frequency_hz=1e9, estimator="e", key="k",
            mean=1.0, std=0.0, values=np.zeros(1), n_evals=1,
            seed=None, wall_time_s=0.1, cache_hit=False))
        del point_doc["spans"]
        assert wire.from_wire(point_doc).spans is None


class _GatedExecutor(SerialExecutor):
    """Blocks each dispatch round until released (ETA-while-pending)."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.started = threading.Event()

    def run(self, fn, items, progress=None, on_result=None):
        self.started.set()
        assert self.release.wait(timeout=60)
        with _quiet():
            return super().run(fn, items, progress=progress,
                               on_result=on_result)


class TestSchedulerTelemetry:
    def test_cache_hits_are_tagged_and_never_calibrated(self):
        """Satellite 1: replayed payloads carry ``cached: True`` and
        their (original) wall times never reach the calibrator."""
        spec = _tiny_spec()
        scheduler = SweepScheduler(cache=ResultCache())
        try:
            with _quiet():
                cold = scheduler.submit_jobs(spec.jobs())
                assert scheduler.wait(cold, timeout=120)
            kind = job_kind(spec.jobs()[0])
            n_obs = scheduler.calibrator.observations(kind)
            assert n_obs == spec.n_jobs
            assert not any(p.get("cached")
                           for p in scheduler.payloads(cold))
            warm = scheduler.submit_jobs(spec.jobs())
            assert scheduler.wait(warm, timeout=10)
            replayed = scheduler.payloads(warm)
            assert all(p.get("cached") is True for p in replayed)
            # warm replay contributed zero observations
            assert scheduler.calibrator.observations(kind) == n_obs
        finally:
            scheduler.shutdown()

    def test_eta_is_none_then_finite_then_zero(self):
        executor = _GatedExecutor()
        scheduler = SweepScheduler(executor=executor, cache=ResultCache())
        spec = _tiny_spec()
        try:
            ticket = scheduler.submit(spec)
            assert executor.started.wait(timeout=30)
            # No observations of this kind yet: an honest None.
            assert scheduler.status(ticket)["eta_s"] is None
            job = spec.jobs()[0]
            scheduler.calibrator.observe(job_kind(job),
                                         estimate_job_cost(job), 0.5)
            eta = scheduler.status(ticket)["eta_s"]
            assert eta == pytest.approx(spec.n_jobs * 0.5)
            executor.release.set()
            assert scheduler.wait(ticket, timeout=120)
            assert scheduler.status(ticket)["eta_s"] == 0.0
        finally:
            executor.release.set()
            scheduler.shutdown()

    def test_calibrator_learns_from_committed_jobs(self):
        scheduler = SweepScheduler(cache=ResultCache())
        try:
            with _quiet():
                ticket = scheduler.submit(_tiny_spec())
                assert scheduler.wait(ticket, timeout=120)
            snap = scheduler.telemetry_snapshot()
            fit = snap["calibration"]["stochastic"]
            assert fit["n"] == 2
            assert fit["mean_wall_s"] > 0.0
            # A same-kind prediction is now finite and positive.
            job = _tiny_spec(freqs=(7.0,)).jobs()[0]
            pred = scheduler.calibrator.predict(
                "stochastic", estimate_job_cost(job))
            assert pred is not None and pred > 0.0
        finally:
            scheduler.shutdown()


class TestServiceTelemetryHTTP:
    def _submit_and_wait(self, service_url, spec):
        client = ServiceClient(service_url, poll_interval=0.02)
        with _quiet():
            ticket = client.submit(spec)
            client.wait(ticket, timeout=180)
        return client, ticket

    @staticmethod
    def _series(text, prefix):
        """Value of the first sample line starting with ``prefix``."""
        for line in text.splitlines():
            if line.startswith(prefix):
                return float(line.rsplit(" ", 1)[1])
        raise AssertionError(f"no series {prefix!r} in scrape")

    def test_metrics_endpoint_is_prometheus_text(self, service_url):
        client, _ = self._submit_and_wait(service_url, _tiny_spec())
        text = client.metrics_text()
        assert "# TYPE repro_scheduler_jobs_total counter" in text
        # the registry is process-global, so earlier tests may have
        # contributed — assert at least this sweep's two solves
        assert self._series(
            text, 'repro_scheduler_jobs_total{kind="stochastic",'
                  'outcome="computed"}') >= 2
        assert "# TYPE repro_cache_stats gauge" in text
        assert 'repro_cache_stats{counter="misses"}' in text
        assert "# TYPE repro_scheduler_round_seconds histogram" in text
        assert 'repro_scheduler_round_seconds_bucket{le="+Inf"}' in text
        assert "repro_scheduler_queue_wait_seconds_count" in text
        assert "repro_scheduler_queue_depth 0" in text
        assert "repro_scheduler_jobs_in_flight 0" in text
        # request latencies label by normalized route, not ticket id
        assert ('repro_http_request_seconds_count{method="GET",'
                'route="/v1/sweeps/*"}') in text
        assert "# TYPE repro_http_requests_total counter" in text

    def test_trace_events_interleave_with_points(self, service_url):
        client, ticket = self._submit_and_wait(service_url, _tiny_spec())
        events = client.events(ticket)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted" and kinds[-1] == "complete"
        assert kinds.count("point") == 2
        # The two frequencies of one scenario execute as a fused group,
        # whose shared trace rides the first committed payload only.
        assert kinds.count("trace") == 1
        # each trace directly follows its point, carrying solver spans
        for i, event in enumerate(events):
            if event["event"] != "trace":
                continue
            assert kinds[i - 1] == "point"
            assert events[i - 1]["key"] == event["key"]
            names = {s["name"] for s in event["spans"]}
            assert {"job_group", "plan", "assemble", "factor"} <= names

    def test_no_event_loss_between_since_cursors(self, service_url):
        """Satellite 4: a slow consumer resuming from any ``since``
        cursor sees exactly the events it missed, in order."""
        client, ticket = self._submit_and_wait(service_url, _tiny_spec())
        full = client.events(ticket)
        assert [e["seq"] for e in full] == list(range(len(full)))

        def fetch(since):
            url = (f"{service_url}/v1/sweeps/{ticket}/events"
                   f"?since={since}")
            with urllib.request.urlopen(url) as resp:
                return [json.loads(line)
                        for line in resp.read().decode().splitlines()
                        if line.strip()]

        # Resume from every cursor position, as a consumer that
        # disconnects and reconnects mid-stream would.
        for since in range(len(full) + 1):
            tail = fetch(since)
            assert tail == full[since:], f"cursor {since} lost events"

    def test_status_eta_over_http(self, service_url):
        client, ticket = self._submit_and_wait(service_url, _tiny_spec())
        status = client.status(ticket)
        assert status["eta_s"] == 0.0  # terminal
        # a second, colder sweep of the same kind now predicts finite
        with _quiet():
            t2 = client.submit(_tiny_spec(freqs=(5.0, 9.0)))
            final = client.wait(t2, timeout=180)
        assert final["eta_s"] == 0.0
