"""Tests of the SWM surface meshes and spectral differentiation."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.swm.geometry import (
    build_mesh_2d,
    build_mesh_3d,
    spectral_gradient_1d,
    spectral_gradient_2d,
)


class TestSpectralGradient:
    def test_exact_on_fourier_mode_2d(self):
        n, period = 32, 5.0
        x = np.arange(n) * period / n
        xx, yy = np.meshgrid(x, x, indexing="ij")
        w = 2 * np.pi * 3 / period
        h = np.sin(w * xx) * np.cos(2 * w * yy)
        fx, fy = spectral_gradient_2d(h, period)
        np.testing.assert_allclose(fx, w * np.cos(w * xx) * np.cos(2 * w * yy),
                                   atol=1e-10)
        np.testing.assert_allclose(fy, -2 * w * np.sin(w * xx)
                                   * np.sin(2 * w * yy), atol=1e-10)

    def test_exact_on_fourier_mode_1d(self):
        n, period = 64, 4.0
        x = np.arange(n) * period / n
        w = 2 * np.pi * 5 / period
        fx = spectral_gradient_1d(np.sin(w * x), period)
        np.testing.assert_allclose(fx, w * np.cos(w * x), atol=1e-9)

    def test_constant_has_zero_gradient(self):
        fx, fy = spectral_gradient_2d(np.full((16, 16), 3.3), 5.0)
        np.testing.assert_allclose(fx, 0.0, atol=1e-12)
        np.testing.assert_allclose(fy, 0.0, atol=1e-12)

    def test_rejects_non_square(self):
        with pytest.raises(MeshError):
            spectral_gradient_2d(np.zeros((8, 9)), 5.0)


class TestMesh3D:
    def test_flat_mesh_properties(self):
        mesh = build_mesh_3d(np.zeros((8, 8)), 4.0)
        assert mesh.size == 64
        assert mesh.spacing == pytest.approx(0.5)
        np.testing.assert_allclose(mesh.jac, 1.0)
        assert mesh.total_true_area() == pytest.approx(16.0)

    def test_true_area_exceeds_flat_area(self):
        n, period = 32, 5.0
        x = np.arange(n) * period / n
        xx, yy = np.meshgrid(x, x, indexing="ij")
        w = 2 * np.pi / period
        h = 0.8 * np.cos(w * xx) * np.cos(w * yy)
        mesh = build_mesh_3d(h, period)
        assert mesh.total_true_area() > period ** 2

    def test_jacobian_formula(self):
        n, period = 16, 5.0
        rng = np.random.default_rng(0)
        h = rng.standard_normal((n, n)) * 0.1
        mesh = build_mesh_3d(h, period)
        np.testing.assert_allclose(
            mesh.jac, np.sqrt(1 + mesh.fx ** 2 + mesh.fy ** 2), rtol=1e-12)

    def test_collocation_points_on_surface(self):
        h = np.arange(16, dtype=float).reshape(4, 4)
        mesh = build_mesh_3d(h, 4.0)
        np.testing.assert_array_equal(mesh.z, h.ravel())

    def test_validation(self):
        with pytest.raises(MeshError):
            build_mesh_3d(np.zeros((3, 3)), 5.0)
        with pytest.raises(MeshError):
            build_mesh_3d(np.zeros((8, 8)), -1.0)
        with pytest.raises(MeshError):
            build_mesh_3d(np.zeros(8), 5.0)


class TestMesh2D:
    def test_flat_profile(self):
        mesh = build_mesh_2d(np.zeros(16), 4.0)
        assert mesh.size == 16
        assert mesh.total_true_length() == pytest.approx(4.0)

    def test_arc_length_of_cosine(self):
        """Total true length of A cos(2 pi x/L) matches quadrature."""
        n, period, amp = 512, 5.0, 1.0
        x = np.arange(n) * period / n
        w = 2 * np.pi / period
        mesh = build_mesh_2d(amp * np.cos(w * x), period)
        xs = np.linspace(0, period, 20001)
        exact = np.trapezoid(np.sqrt(1 + (amp * w * np.sin(w * xs)) ** 2), xs)
        assert mesh.total_true_length() == pytest.approx(exact, rel=1e-4)

    def test_validation(self):
        with pytest.raises(MeshError):
            build_mesh_2d(np.zeros(2), 5.0)
        with pytest.raises(MeshError):
            build_mesh_2d(np.zeros((4, 4)), 5.0)
