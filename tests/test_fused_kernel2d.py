"""Parity suite for the fused 2D periodic-kernel pipeline.

The contract under test (the PR-4 discipline applied to the 2D path):
fusing is a *pure performance* move. ``periodic_green2d_pair`` must be
bit-identical to per-call ``periodic_green2d`` +
``periodic_green2d_gradient``, ``assemble_media_pair_2d_many`` to
per-medium ``assemble_medium_2d_many`` (and per-mesh
``assemble_medium_2d``), and the batched solver path routed through them
to per-sample solves — in every regime the assembly exercises: ``dz = 0``
(the PV sign convention), zero separation (the ``exclude_primary``
limit), wrapped near pairs, and mixed batch sizes, for both media.
"""

import numpy as np
import pytest

from repro.constants import GHZ, METER_TO_UM
from repro.errors import ConfigurationError, MeshError
from repro.greens.periodic2d import (
    periodic_green2d,
    periodic_green2d_gradient,
    periodic_green2d_pair,
)
from repro.materials import PAPER_SYSTEM
from repro.surfaces import GaussianCorrelation
from repro.swm.assembly2d import (
    Assembly2DOptions,
    _g_reg0_cached,
    _regularized_zero_limit,
    assemble_media_pair_2d_many,
    assemble_medium_2d,
    assemble_medium_2d_many,
)
from repro.swm.geometry import build_mesh_2d
from repro.swm.solver2d import SWM2DOptions, SWMSolver2D

L = 5.0
FREQ = 20 * GHZ


def _wavenumbers(frequency_hz=FREQ):
    k1 = PAPER_SYSTEM.k1(frequency_hz) / METER_TO_UM
    k2 = PAPER_SYSTEM.k2(frequency_hz) / METER_TO_UM
    return k1, k2


def _assert_pair_matches_per_call(dx, dz, ks, m_max, exclude_primary):
    fused = periodic_green2d_pair(dx, dz, ks, L, m_max=m_max,
                                  exclude_primary=exclude_primary)
    assert len(fused) == len(ks)
    for kk, (g, gx, gz) in zip(ks, fused):
        g_ref = periodic_green2d(dx, dz, kk, L, m_max=m_max,
                                 exclude_primary=exclude_primary)
        gx_ref, gz_ref = periodic_green2d_gradient(
            dx, dz, kk, L, m_max=m_max, exclude_primary=exclude_primary)
        np.testing.assert_array_equal(g, g_ref)
        np.testing.assert_array_equal(gx, gx_ref)
        np.testing.assert_array_equal(gz, gz_ref)


class TestPairKernelParity:
    """periodic_green2d_pair vs the per-call green/gradient pair."""

    @pytest.mark.parametrize("exclude_primary", [True, False])
    def test_generic_separations_both_media(self, exclude_primary):
        rng = np.random.default_rng(1)
        dx = rng.uniform(-L / 2, L / 2, (10,))
        dz = rng.uniform(-2.0, 2.0, (10,))
        _assert_pair_matches_per_call(dx, dz, _wavenumbers(), 96,
                                      exclude_primary)

    @pytest.mark.parametrize("exclude_primary", [True, False])
    def test_dz_zero_pv_plane(self, exclude_primary):
        """On-surface entries: the |dz| kink resolved as sign(0) = 0."""
        dx = np.linspace(0.2, 2.4, 9)
        dz = np.zeros_like(dx)
        _assert_pair_matches_per_call(dx, dz, _wavenumbers(), 96,
                                      exclude_primary)

    def test_zero_separation_exclude_primary_limit(self):
        """rho = 0 entries take the analytic limit (green) / PV 0
        (gradient) — bit-identical through the fused path."""
        dx = np.array([0.0, 0.3, 1.25])
        dz = np.array([0.0, 0.0, -0.7])
        _assert_pair_matches_per_call(dx, dz, _wavenumbers(), 64, True)

    def test_zero_separation_without_exclusion_raises(self):
        z = np.array([0.0])
        with pytest.raises(ConfigurationError):
            periodic_green2d_pair(z, z, _wavenumbers(), L)

    def test_wrapped_near_pairs_batched_shapes(self):
        """The assembly regime: shared (N, N) minimum-image wrapped dx
        (diagonal displaced to L/4) against a stacked (B, N, N) dz."""
        rng = np.random.default_rng(2)
        n, b = 12, 4
        x = np.arange(n) * (L / n)
        dx = x[:, None] - x[None, :]
        dx = dx - L * np.round(dx / L)
        np.fill_diagonal(dx, 0.25 * L)
        z = rng.normal(0.0, 0.3, (b, n))
        dz = z[:, :, None] - z[:, None, :]
        dz[1] = 0.0  # one all-PV sample in the stack
        _assert_pair_matches_per_call(dx, dz, _wavenumbers(), 96, True)

    def test_single_medium_and_three_media(self):
        rng = np.random.default_rng(3)
        dx = rng.uniform(-L / 2, L / 2, 8)
        dz = rng.uniform(-1.0, 1.0, 8)
        k1, k2 = _wavenumbers()
        _assert_pair_matches_per_call(dx, dz, (k2,), 48, True)
        _assert_pair_matches_per_call(dx, dz, (k1, k2, 2.0 * k1), 48, True)

    def test_validation(self):
        z = np.array([0.5])
        with pytest.raises(ConfigurationError):
            periodic_green2d_pair(z, z, _wavenumbers(), period=-1.0)
        with pytest.raises(ConfigurationError):
            periodic_green2d_pair(z, z, _wavenumbers(), L, m_max=0)


class TestPairAssemblyParity:
    """assemble_media_pair_2d_many vs the per-medium reference."""

    def _meshes(self, b=3, n=16, seed=5, scale=0.3):
        rng = np.random.default_rng(seed)
        return [build_mesh_2d(rng.normal(0.0, scale, n), L)
                for _ in range(b)]

    def test_matches_per_medium_batched_assembly(self):
        meshes = self._meshes()
        k1, k2 = _wavenumbers()
        (d1, s1), (d2, s2) = assemble_media_pair_2d_many(meshes, k1, k2)
        for k, d_f, s_f in ((k1, d1, s1), (k2, d2, s2)):
            d_ref, s_ref = assemble_medium_2d_many(meshes, k)
            np.testing.assert_array_equal(d_f, d_ref)
            np.testing.assert_array_equal(s_f, s_ref)

    def test_matches_per_mesh_assembly(self):
        meshes = self._meshes(b=2)
        k1, k2 = _wavenumbers()
        opts = Assembly2DOptions(m_max=48)
        (d1, s1), (d2, s2) = assemble_media_pair_2d_many(meshes, k1, k2,
                                                         opts)
        for i, mesh in enumerate(meshes):
            for k, d_f, s_f in ((k1, d1, s1), (k2, d2, s2)):
                d_one, s_one = assemble_medium_2d(mesh, k, opts)
                np.testing.assert_array_equal(d_f[i], d_one)
                np.testing.assert_array_equal(s_f[i], s_one)

    def test_flat_profile_stack(self):
        """fx = 0 everywhere: all near pairs are exactly on-surface."""
        meshes = [build_mesh_2d(np.zeros(12), L) for _ in range(2)]
        k1, k2 = _wavenumbers()
        (d1, s1), (d2, s2) = assemble_media_pair_2d_many(meshes, k1, k2)
        d_ref, s_ref = assemble_medium_2d_many(meshes, k2)
        np.testing.assert_array_equal(d2, d_ref)
        np.testing.assert_array_equal(s2, s_ref)

    def test_rejects_empty_and_mismatched(self):
        k1, k2 = _wavenumbers()
        with pytest.raises(MeshError):
            assemble_media_pair_2d_many([], k1, k2)
        m1 = build_mesh_2d(np.zeros(8), L)
        m2 = build_mesh_2d(np.zeros(8), L + 1.0)
        with pytest.raises(MeshError):
            assemble_media_pair_2d_many([m1, m2], k1, k2)


class TestZeroLimitCache:
    """g_reg(0) is a pure scalar of (k, period, m_max) — cached once."""

    def test_value_matches_fresh_mode_sum(self):
        _, k2 = _wavenumbers()
        got = _regularized_zero_limit(k2, L, 96)
        ref = complex(periodic_green2d(np.array(0.0), np.array(0.0),
                                       complex(k2), L, m_max=96,
                                       exclude_primary=True))
        assert got == ref

    def test_key_normalizes_numpy_scalars(self):
        _, k2 = _wavenumbers()
        before = _g_reg0_cached.cache_info()
        a = _regularized_zero_limit(np.complex128(k2), np.float64(L), 77)
        b = _regularized_zero_limit(complex(k2), L, 77)
        after = _g_reg0_cached.cache_info()
        assert a == b
        # The two spellings share one entry: at most one new miss.
        assert after.misses <= before.misses + 1

    def test_batch_chunks_share_one_evaluation(self):
        rng = np.random.default_rng(9)
        profiles = rng.normal(0.0, 0.3, (5, 12))
        solver = SWMSolver2D(options=SWM2DOptions(batch_size=2))
        before = _g_reg0_cached.cache_info()
        solver.solve_many_um(profiles, L, FREQ)  # 3 chunks x 2 media
        after = _g_reg0_cached.cache_info()
        assert after.misses <= before.misses + 2  # one per medium at most


class TestLargeGridParity:
    """Regression for the fig6 quick-scale grid (n = 96).

    numpy's elided in-place complex multiply inside
    ``green2d`` / ``green2d_radial_derivative`` rounded a final ulp
    differently from the out-of-place multiply depending on buffer
    alignment, so per-sample ``(N, N)`` and batched ``(B, N, N)``
    assemblies disagreed bitwise at this size (they agreed at the
    n = 16 grids the original parity tests used). The Hankel factors
    are now materialized before the scalar multiply; per-sample and
    batched solves must agree on the grid that exposed it.
    """

    def test_fig6_grid_bit_identical(self):
        from repro.surfaces import ProfileGenerator

        gen = ProfileGenerator(GaussianCorrelation(sigma=1.0, eta=1.0),
                               period=L, n=96, normalize=True)
        rng = np.random.default_rng(0)
        profiles = np.stack([gen.from_white_noise(rng.standard_normal(96))
                             for _ in range(2)])
        solver = SWMSolver2D()
        serial = [solver.solve_um(p, L, 5 * GHZ) for p in profiles]
        bat = solver.solve_many_um(profiles, L, 5 * GHZ)
        for a, b in zip(serial, bat):
            assert a.enhancement == b.enhancement
            np.testing.assert_array_equal(a.psi, b.psi)
            np.testing.assert_array_equal(a.v, b.v)


class TestSolverMixedBatchSizes:
    """Batched solves vs per-sample, across chunking edge cases."""

    B = 5

    def _profiles(self):
        rng = np.random.default_rng(11)
        return rng.normal(0.0, 0.3, (self.B, 16))

    @pytest.mark.parametrize("batch_size", [1, 3, 64])
    def test_bit_identical_across_batch_sizes(self, batch_size):
        """batch_size 1 (degenerate stacks), 3 (non-divisor of B) and
        64 (> B, one full stack) all reproduce per-sample solves."""
        profiles = self._profiles()
        ref = SWMSolver2D()
        serial = [ref.solve_um(p, L, FREQ) for p in profiles]
        bat = SWMSolver2D(
            options=SWM2DOptions(batch_size=batch_size)
        ).solve_many_um(profiles, L, FREQ)
        assert len(bat) == len(serial)
        for a, b in zip(serial, bat):
            assert a.enhancement == b.enhancement
            np.testing.assert_array_equal(a.psi, b.psi)
            np.testing.assert_array_equal(a.v, b.v)
            assert a.absorbed_power == b.absorbed_power
            assert a.smooth_power == b.smooth_power
