"""Cross-module integration tests — the paper's own validation logic.

These couple independent implementations against each other:

- 3D SWM on an extruded (y-uniform) surface vs the 2D SWM solver;
- SWM ensemble mean vs scalar SPM2 in the small-roughness regime;
- the public-API quickstart path end to end.
"""

import numpy as np
import pytest

from repro import (
    GaussianCorrelation,
    StochasticLossConfig,
    StochasticLossModel,
    SWMSolver2D,
    SWMSolver3D,
    SurfaceGenerator,
    spm2_enhancement,
)
from repro.constants import GHZ, UM
from repro.surfaces.deterministic import cosine_profile, extruded_profile


class TestDimensionalConsistency:
    """A y-uniform ridge must give (nearly) the same loss in the 3D and
    the 2D formulations — two independent kernels, assemblies, solvers."""

    @pytest.mark.slow
    def test_extruded_ridge_3d_matches_2d(self):
        period, amp, m = 5.0, 0.4, 1
        f = 5 * GHZ
        n3 = 20
        prof3 = cosine_profile(n3, period, amp, m)
        h3 = extruded_profile(prof3)
        e3 = SWMSolver3D().solve_um(h3, period, f).enhancement
        prof2 = cosine_profile(256, period, amp, m)
        e2 = SWMSolver2D().solve_um(prof2, period, f).enhancement
        assert e3 - 1 == pytest.approx(e2 - 1, rel=0.15)


class TestSWMvsSPM2:
    @pytest.mark.slow
    def test_small_roughness_convergence_toward_spm2(self):
        """The paper's Fig. 3/4 logic: SWM ensemble mean -> SPM2 when the
        roughness is genuinely small.

        The 3D collocation converges slowly in the grid step (DESIGN.md
        section 7), so at affordable grids the excess loss is biased low
        by a known factor; the meaningful invariant is *refinement moves
        the SWM excess toward the SPM2 value from below*.
        """
        sigma_um, eta_um, f = 0.25, 1.0, 5 * GHZ
        cf_um = GaussianCorrelation(sigma_um, eta_um)
        cf_si = GaussianCorrelation(sigma_um * UM, eta_um * UM)
        spm_excess = float(spm2_enhancement(np.array([f]), cf_si)[0]) - 1

        def swm_excess(n: int) -> float:
            # Same white noise across resolutions: generate fine, slice.
            gen = SurfaceGenerator(cf_um, period=5.0, n=24, normalize=True)
            solver = SWMSolver3D()
            rng = np.random.default_rng(0)
            vals = []
            for _ in range(8):
                h = gen.sample(rng).heights[::24 // n, ::24 // n]
                vals.append(solver.solve_um(h, 5.0, f).enhancement)
            return float(np.mean(vals)) - 1.0

        coarse = swm_excess(12)
        fine = swm_excess(24)
        # At eta/2.4 spacing the bias can swamp the small signal entirely
        # (even slightly negative); refinement must move firmly toward
        # the SPM2 value without overshooting it.
        assert coarse < fine < spm_excess * 1.3
        # The fine grid captures a substantial fraction of the SPM2 excess.
        assert fine > 0.35 * spm_excess


class TestPublicAPI:
    def test_quickstart_path(self):
        model = StochasticLossModel(
            GaussianCorrelation(1 * UM, 1 * UM),
            StochasticLossConfig(points_per_side=8, max_modes=5))
        res = model.sscm(5 * GHZ, order=1)
        assert 1.0 < res.mean < 2.5

    def test_docstring_examples_importable(self):
        import repro
        names = set(repro.__all__)
        for required in ("SWMSolver3D", "GaussianCorrelation",
                         "StochasticLossModel", "spm2_enhancement"):
            assert required in names
            assert hasattr(repro, required)
