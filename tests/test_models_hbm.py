"""Tests of the hemispherical boss model (Landau sphere + Hall bookkeeping)."""

import math

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.errors import ConfigurationError
from repro.materials import Conductor
from repro.models.hbm import (
    HemisphericalBossModel,
    _transverse_demagnetizing_factor,
    sphere_absorbed_power,
    sphere_magnetic_polarizability,
    sphere_shape_function,
    spheroid_magnetic_polarizability,
)


class TestShapeFunction:
    def test_pec_limit(self):
        """F -> 1 for |x| -> infinity (skin depth << radius)."""
        x = (1 + 1j) * 300.0
        assert sphere_shape_function(x) == pytest.approx(1.0, abs=1e-2)

    def test_transparent_limit(self):
        """F -> -x^2/15 for small x (Laurent series of cot)."""
        x = (1 + 1j) * 1e-3
        assert sphere_shape_function(x) == pytest.approx(-x * x / 15.0,
                                                         rel=1e-5)

    def test_series_agrees_with_direct_formula_at_switch(self):
        """Just above the |x| = 0.3 switch (where the direct formula is
        still accurate), the truncated series must agree closely."""
        x = (1 + 1j) * 0.25  # |x| ~ 0.354: direct branch
        direct = sphere_shape_function(x)
        x2 = x * x
        series = -x2 / 15 - 2 * x2 * x2 / 315 - x2 ** 3 / 1575
        assert direct == pytest.approx(series, rel=1e-4)

    def test_no_overflow_at_large_argument(self):
        val = sphere_shape_function((1 + 1j) * 1e4)
        assert np.isfinite(val.real) and np.isfinite(val.imag)


class TestSpherePolarizability:
    def test_pec_value(self):
        """alpha -> -2 pi a^3 at vanishing skin depth."""
        a = 10 * UM
        alpha = sphere_magnetic_polarizability(a, 1e14)
        assert alpha.real == pytest.approx(-2 * math.pi * a ** 3, rel=1e-2)

    def test_absorption_positive(self):
        for f in (0.5 * GHZ, 5 * GHZ, 50 * GHZ):
            assert sphere_absorbed_power(5 * UM, f) > 0.0

    def test_surface_impedance_asymptote(self):
        """P -> 3 pi Rs a^2 |H0|^2 when delta << a."""
        a, f = 5 * UM, 200 * GHZ
        cu = Conductor()
        assert cu.skin_depth(f) < a / 20
        p = sphere_absorbed_power(a, f)
        asym = 3 * math.pi * cu.surface_resistance(f) * a * a
        assert p == pytest.approx(asym, rel=0.05)

    def test_absorption_vanishes_at_low_frequency(self):
        p_low = sphere_absorbed_power(5 * UM, 1e5)
        p_high = sphere_absorbed_power(5 * UM, 5 * GHZ)
        assert p_low < 1e-4 * p_high

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sphere_magnetic_polarizability(-1 * UM, 1 * GHZ)


class TestDemagnetizingFactor:
    def test_sphere_is_one_third(self):
        assert _transverse_demagnetizing_factor(1.0) == pytest.approx(1 / 3)

    def test_continuity_at_sphere(self):
        lo = _transverse_demagnetizing_factor(0.999)
        hi = _transverse_demagnetizing_factor(1.001)
        assert lo == pytest.approx(hi, abs=1e-3)

    def test_prolate_limit(self):
        """Needle (c >> a): n_z -> 0, so n_t -> 1/2."""
        assert _transverse_demagnetizing_factor(100.0) == pytest.approx(
            0.5, abs=1e-2)

    def test_oblate_limit(self):
        """Pancake (c << a): n_z -> 1, so n_t -> 0."""
        assert _transverse_demagnetizing_factor(0.01) == pytest.approx(
            0.0, abs=2e-2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _transverse_demagnetizing_factor(0.0)


class TestSpheroid:
    def test_reduces_to_sphere(self):
        a, f = 4 * UM, 10 * GHZ
        sphere = sphere_magnetic_polarizability(a, f)
        spheroid = spheroid_magnetic_polarizability(a, a, f)
        assert spheroid == pytest.approx(sphere, rel=1e-6)

    def test_taller_boss_larger_response(self):
        a, f = 4 * UM, 50 * GHZ
        low = abs(spheroid_magnetic_polarizability(a, 0.5 * a, f))
        tall = abs(spheroid_magnetic_polarizability(a, 2.0 * a, f))
        assert tall > low


class TestBossModel:
    def _model(self, tile_um=16.0):
        return HemisphericalBossModel(
            height_m=5.8 * UM, base_diameter_m=9.4 * UM,
            tile_area_m2=(tile_um * UM) ** 2)

    def test_enhancement_rises_and_exceeds_one(self):
        model = self._model()
        f = np.linspace(1, 20, 6) * GHZ
        k = model.enhancement(f)
        assert np.all(k > 1.0)
        assert np.all(np.diff(k) > 0)

    def test_paper_range(self):
        """Fig. 5 band: roughly 1.8-2.8 over 1-20 GHz (tile-dependent)."""
        model = self._model(tile_um=14.0)
        k = model.enhancement(np.array([1.0, 20.0]) * GHZ)
        assert 1.2 < k[0] < 2.4
        assert 1.8 < k[1] < 3.2

    def test_low_frequency_approaches_one(self):
        model = self._model()
        k = float(model.enhancement(np.array([1e6]))[0])
        # At huge skin depth the boss is transparent; only the covered
        # disc deficit remains, bounded by pi a^2 / A.
        assert abs(k - 1.0) < math.pi * 4.7 ** 2 / 16.0 ** 2 + 1e-3

    def test_high_frequency_limit_formula(self):
        model = self._model()
        assert model.high_frequency_limit() == pytest.approx(
            1 + 2 * math.pi * 4.7 ** 2 / 16.0 ** 2, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HemisphericalBossModel(height_m=-1.0, base_diameter_m=9.4 * UM,
                                   tile_area_m2=1e-9)
        with pytest.raises(ConfigurationError):
            # Boss covering the whole tile.
            HemisphericalBossModel(height_m=5 * UM, base_diameter_m=10 * UM,
                                   tile_area_m2=(5 * UM) ** 2)
