"""Tests of the Kummer-accelerated 1D-periodic 2D Green's function."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.greens.freespace import green2d
from repro.greens.periodic2d import (
    periodic_green2d,
    periodic_green2d_direct,
    periodic_green2d_gradient,
)

L = 5.0
K2 = (1 + 1j) / 0.92
K1 = 2.02e-4 + 0j


@pytest.fixture(scope="module")
def separations():
    rng = np.random.default_rng(1)
    return rng.uniform(-2, 2, 10), rng.uniform(-2.5, 2.5, 10)


class TestAgainstDirectSum:
    def test_lossy_matches_hankel_images(self, separations):
        dx, dz = separations
        got = periodic_green2d(dx, dz, K2, L)
        ref = periodic_green2d_direct(dx, dz, K2, L, n_images=300)
        np.testing.assert_allclose(got, ref, rtol=1e-7)

    def test_exclude_primary(self, separations):
        dx, dz = separations
        got = periodic_green2d(dx, dz, K2, L, exclude_primary=True)
        rho = np.sqrt(dx**2 + dz**2)
        ref = (periodic_green2d_direct(dx, dz, K2, L, n_images=300)
               - green2d(rho, K2))
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-9)


class TestConvergence:
    @pytest.mark.parametrize("k", [K1, K2])
    def test_m_max_converged(self, separations, k):
        dx, dz = separations
        a = periodic_green2d(dx, dz, k, L, m_max=64)
        b = periodic_green2d(dx, dz, k, L, m_max=256)
        np.testing.assert_allclose(a, b, rtol=1e-7, atol=1e-11)

    def test_on_surface_dz_zero(self):
        """The Kummer acceleration must handle dz = 0 (slowest case).

        The residual terms decay like 1/m^3, so the tail beyond m_max
        scales like 1/m_max^2 — quadratic convergence is what we check.
        """
        dx = np.linspace(0.2, 2.4, 8)
        dz = np.zeros_like(dx)
        a = periodic_green2d(dx, dz, K2, L, m_max=96)
        b = periodic_green2d(dx, dz, K2, L, m_max=768)
        err_a = np.max(np.abs(a - b) / np.abs(b))
        assert err_a < 1e-5
        c = periodic_green2d(dx, dz, K2, L, m_max=192)
        err_c = np.max(np.abs(c - b) / np.abs(b))
        assert err_c < err_a / 2.0


class TestGradient:
    @pytest.mark.parametrize("k", [K1, K2])
    def test_matches_finite_differences(self, separations, k):
        dx, dz = separations
        gx, gz = periodic_green2d_gradient(dx, dz, k, L)
        h = 1e-6
        fx = (periodic_green2d(dx + h, dz, k, L)
              - periodic_green2d(dx - h, dz, k, L)) / (2 * h)
        fz = (periodic_green2d(dx, dz + h, k, L)
              - periodic_green2d(dx, dz - h, k, L)) / (2 * h)
        np.testing.assert_allclose(gx, fx, rtol=1e-5, atol=1e-9)
        np.testing.assert_allclose(gz, fz, rtol=1e-5, atol=1e-9)


class TestStructure:
    def test_periodicity(self, separations):
        dx, dz = separations
        a = periodic_green2d(dx, dz, K2, L)
        b = periodic_green2d(dx + 3 * L, dz, K2, L)
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_self_limit_continuous(self):
        z = np.array([0.0])
        at0 = periodic_green2d(z, z, K2, L, exclude_primary=True)
        near = periodic_green2d(np.array([1e-5]), z, K2, L,
                                exclude_primary=True)
        np.testing.assert_allclose(at0, near, rtol=1e-3)

    def test_zero_separation_raises_without_exclusion(self):
        z = np.array([0.0])
        with pytest.raises(ConfigurationError):
            periodic_green2d(z, z, K2, L)

    def test_validation(self):
        z = np.array([0.5])
        with pytest.raises(ConfigurationError):
            periodic_green2d(z, z, K2, period=-1.0)
        with pytest.raises(ConfigurationError):
            periodic_green2d(z, z, K2, L, m_max=0)

    def test_gradient_validates_m_max(self):
        """Regression: the gradient used to accept m_max < 1 silently,
        returning an asymptote-only (truncated) series where the value
        function raised ConfigurationError."""
        z = np.array([0.5])
        with pytest.raises(ConfigurationError):
            periodic_green2d_gradient(z, z, K2, L, m_max=0)
        with pytest.raises(ConfigurationError):
            periodic_green2d_gradient(z, z, K2, L, m_max=-3)
        with pytest.raises(ConfigurationError):
            periodic_green2d_gradient(z, z, K2, period=0.0)
