"""Tests of the experiment-runner CLI (argument handling, exit codes,
and engine integration via ``--jobs``/``--cache-dir``)."""

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig, StochasticLossModel
from repro.engine import default_cache
from repro.experiments import runner as runner_module
from repro.experiments.base import ExperimentResult
from repro.surfaces import GaussianCorrelation


def _fake_experiment(passed: bool, recorded: list | None = None):
    def run(scale):
        res = ExperimentResult(
            experiment="Fake", description="CLI test stub",
            x_label="x", x=np.array([1.0, 2.0]))
        res.add_series("y", np.array([1.0, 2.0]))
        res.check("ok", passed)
        if recorded is not None:
            recorded.append(scale.name)
        return res
    return run


def _sweep_experiment(recorded: list):
    """A real (tiny) engine-routed sweep, for --jobs parity checks."""
    def run(scale):
        model = StochasticLossModel(
            GaussianCorrelation(1 * UM, 1 * UM),
            StochasticLossConfig(points_per_side=8, max_modes=2))
        freqs = np.array([2.0, 5.0]) * GHZ
        means = model.mean_enhancement(freqs, order=1)
        recorded.append(means)
        res = ExperimentResult(
            experiment="Sweep", description="engine parity stub",
            x_label="f (GHz)", x=freqs / GHZ)
        res.add_series("mean", means)
        res.check("physical", bool(np.all(means > 0.9)))
        return res
    return run


class TestArguments:
    def test_list_prints_experiments_and_exits_zero(self, capsys):
        assert runner_module.main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == sorted(runner_module.ALL_EXPERIMENTS)

    def test_unknown_experiment_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_module.main(["nope"])
        assert exc.value.code == 2
        assert "unknown experiment(s): nope" in capsys.readouterr().err

    def test_help_has_no_empty_choice_leak(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_module.main(["--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out
        assert "[]" not in help_text
        assert "--list" in help_text and "--jobs" in help_text

    def test_bad_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_module.main(["--jobs", "0"])
        assert exc.value.code == 2


class TestExitCodes:
    def test_passing_checks_exit_zero(self, monkeypatch, capsys):
        monkeypatch.setattr(runner_module, "ALL_EXPERIMENTS",
                            {"good": _fake_experiment(True)})
        assert runner_module.main(["good"]) == 0
        out = capsys.readouterr().out
        assert "check ok: PASS" in out

    def test_failing_check_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setattr(runner_module, "ALL_EXPERIMENTS",
                            {"good": _fake_experiment(True),
                             "bad": _fake_experiment(False)})
        assert runner_module.main([]) == 1
        captured = capsys.readouterr()
        assert "SOME CHECKS FAILED" in captured.err
        assert "check ok: FAIL" in captured.out

    def test_scale_is_forwarded(self, monkeypatch):
        recorded = []
        monkeypatch.setattr(runner_module, "ALL_EXPERIMENTS",
                            {"good": _fake_experiment(True, recorded)})
        assert runner_module.main(["--scale", "standard", "good"]) == 0
        assert recorded == ["standard"]


class TestEngineIntegration:
    def test_jobs_2_matches_serial(self, monkeypatch, capsys):
        recorded = []
        monkeypatch.setattr(runner_module, "ALL_EXPERIMENTS",
                            {"sweep": _sweep_experiment(recorded)})
        # Clear the process-global cache between invocations so the
        # parallel run cannot replay the serial run's points.
        default_cache().clear()
        assert runner_module.main(["sweep"]) == 0
        default_cache().clear()
        assert runner_module.main(["--jobs", "2", "sweep"]) == 0
        default_cache().clear()
        serial, parallel = recorded
        assert np.max(np.abs(serial - parallel)) <= 1e-12

    def test_cache_dir_persists_results(self, monkeypatch, tmp_path,
                                        capsys):
        recorded = []
        monkeypatch.setattr(runner_module, "ALL_EXPERIMENTS",
                            {"sweep": _sweep_experiment(recorded)})
        cache_dir = tmp_path / "sweeps"
        assert runner_module.main(
            ["--cache-dir", str(cache_dir), "sweep"]) == 0
        stored = list(cache_dir.glob("*.npz"))
        assert len(stored) == 2  # one per frequency
        assert runner_module.main(
            ["--cache-dir", str(cache_dir), "sweep"]) == 0
        first, second = recorded
        np.testing.assert_array_equal(first, second)
