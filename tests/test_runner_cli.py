"""Tests of the experiment-runner CLI (argument handling, exit codes,
output formats, and engine integration via ``--jobs``/``--cache-dir``).

The runner is a thin layer over ``repro.api`` and the experiment
registry, so the tests install fake :class:`Experiment` subclasses into
a scratch registry instead of monkeypatching a dict of functions.
"""

import json

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig
from repro.engine import default_cache
from repro.experiments import registry as registry_module
from repro.experiments import runner as runner_module
from repro.experiments.base import Experiment, ExperimentResult
from repro.surfaces import GaussianCorrelation


def _fake_experiment(name, passed=True, recorded=None):
    """A no-solve Experiment class reporting one check."""
    exp_name, exp_passed, exp_recorded = name, passed, recorded

    class Fake(Experiment):
        name = exp_name

        def plan(self, scale):
            return None

        def reduce(self, sweep, scale):
            res = ExperimentResult(
                experiment="Fake", description="CLI test stub",
                x_label="x", x=np.array([1.0, 2.0]))
            res.add_series("y", np.array([1.0, 2.0]))
            res.check("ok", exp_passed)
            if exp_recorded is not None:
                exp_recorded.append(scale.name)
            return res

    return Fake


def _sweep_experiment(recorded):
    """A real (tiny) planned sweep, for --jobs/--cache-dir checks."""
    class Sweep(Experiment):
        name = "sweep"

        def plan(self, scale):
            from repro.engine import (
                EstimatorSpec,
                StochasticScenario,
                SweepSpec,
            )

            scenario = StochasticScenario(
                "m", GaussianCorrelation(1 * UM, 1 * UM),
                StochasticLossConfig(points_per_side=8, max_modes=2))
            return SweepSpec(scenario, np.array([2.0, 5.0]) * GHZ,
                             EstimatorSpec(kind="sscm", order=1))

        def reduce(self, sweep, scale):
            means = sweep.mean_curve("m")
            recorded.append(means)
            res = ExperimentResult(
                experiment="Sweep", description="engine parity stub",
                x_label="f (GHz)", x=np.array(sweep.frequencies_hz) / GHZ)
            res.add_series("mean", means)
            res.check("physical", bool(np.all(means > 0.9)))
            return res

    return Sweep


@pytest.fixture
def scratch_registry(monkeypatch):
    """An empty registry the test can populate via @register."""
    registry = {}
    monkeypatch.setattr(registry_module, "_REGISTRY", registry)
    return registry


class TestArguments:
    def test_list_prints_experiments_and_exits_zero(self, capsys):
        assert runner_module.main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == registry_module.names()
        assert "fig3" in out and "table1" in out

    def test_unknown_experiment_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_module.main(["nope"])
        assert exc.value.code == 2
        assert "unknown experiment(s): nope" in capsys.readouterr().err

    def test_help_has_no_empty_choice_leak(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_module.main(["--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out
        assert "[]" not in help_text
        assert "--list" in help_text and "--jobs" in help_text
        assert "--format" in help_text and "--output" in help_text

    def test_bad_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_module.main(["--jobs", "0"])
        assert exc.value.code == 2

    def test_bad_format_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_module.main(["--format", "xml"])
        assert exc.value.code == 2


class TestExitCodes:
    def test_passing_checks_exit_zero(self, scratch_registry, capsys):
        registry_module.register(_fake_experiment("good", passed=True))
        assert runner_module.main(["good"]) == 0
        out = capsys.readouterr().out
        assert "check ok: PASS" in out

    def test_failing_check_exits_nonzero(self, scratch_registry, capsys):
        registry_module.register(_fake_experiment("good", passed=True))
        registry_module.register(_fake_experiment("bad", passed=False))
        assert runner_module.main([]) == 1
        captured = capsys.readouterr()
        assert "SOME CHECKS FAILED" in captured.err
        assert "check ok: FAIL" in captured.out

    def test_failure_summary_names_each_failing_check(self, scratch_registry,
                                                      capsys):
        registry_module.register(_fake_experiment("good", passed=True))
        registry_module.register(_fake_experiment("bad", passed=False))
        assert runner_module.main([]) == 1
        err = capsys.readouterr().err
        assert "bad: failing check(s): ok" in err
        assert "good:" not in err

    def test_duplicate_names_run_once(self, scratch_registry, capsys):
        recorded = []
        registry_module.register(
            _fake_experiment("good", passed=True, recorded=recorded))
        assert runner_module.main(["good", "good"]) == 0
        assert recorded == ["quick"]

    def test_scale_is_forwarded(self, scratch_registry):
        recorded = []
        registry_module.register(
            _fake_experiment("good", passed=True, recorded=recorded))
        assert runner_module.main(["--scale", "standard", "good"]) == 0
        assert recorded == ["standard"]


class TestOutputFormats:
    def test_json_format_is_machine_readable(self, scratch_registry,
                                             capsys):
        registry_module.register(_fake_experiment("good", passed=True))
        assert runner_module.main(["--format", "json", "good"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"good"}
        assert doc["good"]["checks"] == {"ok": True}
        assert doc["good"]["all_checks_pass"] is True
        assert doc["good"]["series"]["y"] == [1.0, 2.0]

    def test_output_dir_gets_one_json_per_experiment(self, scratch_registry,
                                                     tmp_path, capsys):
        registry_module.register(_fake_experiment("good", passed=True))
        registry_module.register(_fake_experiment("bad", passed=False))
        out_dir = tmp_path / "artifacts"
        assert runner_module.main(["--output", str(out_dir)]) == 1
        files = sorted(p.name for p in out_dir.glob("*.json"))
        assert files == ["bad.json", "good.json"]
        doc = json.loads((out_dir / "bad.json").read_text())
        assert doc["all_checks_pass"] is False

    def test_table_format_prints_summary_line(self, scratch_registry,
                                              capsys):
        registry_module.register(_fake_experiment("good", passed=True))
        assert runner_module.main(["good"]) == 0
        out = capsys.readouterr().out
        assert "1 experiment(s) at scale 'quick'" in out


class TestEngineIntegration:
    def test_jobs_2_matches_serial(self, scratch_registry, capsys):
        recorded = []
        registry_module.register(_sweep_experiment(recorded))
        # Clear the process-global cache between invocations so the
        # parallel run cannot replay the serial run's points.
        default_cache().clear()
        assert runner_module.main(["sweep"]) == 0
        default_cache().clear()
        assert runner_module.main(["--jobs", "2", "sweep"]) == 0
        default_cache().clear()
        serial, parallel = recorded
        assert np.max(np.abs(serial - parallel)) <= 1e-12

    def test_cache_dir_persists_results(self, scratch_registry, tmp_path,
                                        capsys):
        recorded = []
        registry_module.register(_sweep_experiment(recorded))
        cache_dir = tmp_path / "sweeps"
        assert runner_module.main(
            ["--cache-dir", str(cache_dir), "sweep"]) == 0
        stored = list(cache_dir.glob("*.npz"))
        assert len(stored) == 2  # one per frequency
        assert runner_module.main(
            ["--cache-dir", str(cache_dir), "sweep"]) == 0
        first, second = recorded
        np.testing.assert_array_equal(first, second)
