"""Tests of the declarative experiment API (`repro.api` + registry).

The acceptance property pinned here: quick-scale series produced by the
declarative plan/reduce path are **bit-identical** to the seed's serial
path (build one ``StochasticLossModel`` per curve, sweep in-process).
"""

import warnings

import numpy as np
import pytest

import repro.api as api
from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig, StochasticLossModel
from repro.engine import clear_memo, default_cache
from repro.errors import ConfigurationError
from repro.experiments import ALL_EXPERIMENTS, Scale, fig2, registry
from repro.experiments.base import Experiment, ExperimentResult
from repro.stochastic.montecarlo import MonteCarloEstimator
from repro.surfaces import GaussianCorrelation

#: Minimal scale: every stochastic grid resolves to 8x8 with 2 KL modes,
#: so one figure is a handful of small dense solves.
MINI = Scale(name="quick", grid_n=8, spacing_divisor=1.0, grid_cap=8,
             f_max_ghz=4.0, spheroid_grid_n=12, fig5_f_max_ghz=3.0,
             n_frequencies=2, max_modes=2, mc_samples=8,
             surrogate_samples=2000)

EXPECTED_NAMES = ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1"]


class TestRegistry:
    def test_every_figure_registered(self):
        assert api.experiments() == EXPECTED_NAMES
        assert registry.names() == EXPECTED_NAMES

    def test_create_returns_fresh_experiment_instances(self):
        a = registry.create("fig3")
        b = registry.create("fig3")
        assert isinstance(a, Experiment)
        assert a is not b
        assert a.name == "fig3" and a.title == "Fig. 3"

    def test_constructor_params_forward(self):
        exp = api.get("fig3", sigma_um=2.0)
        assert exp.sigma_um == 2.0

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            registry.create("fig99")
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            api.plan("fig99")

    def test_duplicate_registration_rejected(self, monkeypatch):
        monkeypatch.setattr(registry, "_REGISTRY",
                            dict(registry._REGISTRY))

        class Duplicate(Experiment):
            name = "fig3"

            def plan(self, scale):
                return None

            def reduce(self, sweep, scale):
                raise NotImplementedError

        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(Duplicate)

    def test_unnamed_class_rejected(self):
        class NoName(Experiment):
            def plan(self, scale):
                return None

            def reduce(self, sweep, scale):
                raise NotImplementedError

        with pytest.raises(ConfigurationError, match="non-empty 'name'"):
            registry.register(NoName)

    def test_all_experiments_shim_still_complete(self):
        assert sorted(ALL_EXPERIMENTS) == EXPECTED_NAMES


class TestPlans:
    def test_fig3_is_one_multi_scenario_spec(self):
        spec = api.plan("fig3", MINI)
        assert [s.name for s in spec.scenarios] == [
            "eta1um", "eta2um", "eta3um"]
        # all etas x all frequencies under one estimator: 3 x 2 jobs
        assert spec.n_jobs == 6
        assert {j.estimator_label for j in spec.jobs()} == {"sscm(order=1)"}
        assert spec.tags["experiment"] == "fig3"

    def test_fig7_is_one_scenario_three_estimators(self):
        spec = api.plan("fig7", MINI)
        assert [s.name for s in spec.scenarios] == ["model"]
        labels = [j.estimator_label for j in spec.jobs()]
        assert labels == ["montecarlo(n=8, seed=2009)", "sscm(order=1)",
                          "sscm(order=2)"]

    def test_fig6_pairs_estimators_per_scenario(self):
        spec = api.plan("fig6", MINI)
        by_scenario = {}
        for job in spec.jobs():
            by_scenario.setdefault(job.scenario.name,
                                   set()).add(job.estimator_label)
        assert by_scenario["bem3-eta1um"] == {"sscm(order=1)"}
        assert by_scenario["bem2-eta1um"] == {
            "montecarlo(n=16, seed=2009)"}

    def test_solver_free_experiments_plan_none(self):
        assert api.plan("fig2", MINI) is None
        assert api.plan("table1", MINI) is None

    def test_scale_accepts_names_and_rejects_unknown(self):
        assert api.plan("fig3", "quick").n_jobs == 12  # 3 etas x 4 freqs
        with pytest.raises(ConfigurationError, match="unknown scale"):
            api.plan("fig3", "huge")

    def test_sweeps_for_omits_solver_free_plans(self):
        specs = api.sweeps_for(["fig2", "fig7", "table1"], MINI)
        assert list(specs) == ["fig7"]


class TestRoundTrip:
    """Declarative path vs the seed's serial per-model path."""

    @pytest.fixture(autouse=True)
    def _cold_engine(self):
        # Bit-identity must hold from a cold start, not via cache replay.
        default_cache().clear()
        clear_memo()
        yield
        default_cache().clear()
        clear_memo()

    def test_fig3_series_bit_identical_to_serial_seed_path(self):
        result = api.run("fig3", MINI)
        freqs = np.linspace(1.0, MINI.f_max_ghz, MINI.n_frequencies) * GHZ
        for eta in (1.0, 2.0, 3.0):
            cf = GaussianCorrelation(sigma=1.0 * UM, eta=eta * UM)
            n = MINI.points_for(5.0 * eta, eta, MINI.f_max_hz)
            model = StochasticLossModel(
                cf, StochasticLossConfig(points_per_side=n,
                                         max_modes=MINI.max_modes))
            seed_series = np.array([
                model.sscm_direct(float(f), order=1).mean for f in freqs])
            np.testing.assert_array_equal(
                result.series[f"SWM(eta={eta:g}um)"], seed_series)

    def test_fig7_values_bit_identical_to_direct_estimators(self):
        from repro.engine import run_sweep

        spec = api.plan("fig7", MINI)
        sweep = run_sweep(spec)
        model = StochasticLossModel(
            GaussianCorrelation(sigma=1.0 * UM, eta=1.0 * UM),
            StochasticLossConfig(points_per_side=MINI.grid_n,
                                 max_modes=MINI.max_modes))
        direct_mc = MonteCarloEstimator(
            model.enhancement_model(5.0 * GHZ),
            model.dimension).run(MINI.mc_samples, seed=2009)
        mc_point = sweep.point("model",
                               estimator="montecarlo(n=8, seed=2009)")
        np.testing.assert_array_equal(mc_point.values, direct_mc.samples)
        for order in (1, 2):
            # History-free solver per estimator, like the engine's jobs.
            model.solver.reset_tables()
            direct = model.sscm_direct(5.0 * GHZ, order=order)
            point = sweep.point("model",
                                estimator=f"sscm(order={order})")
            np.testing.assert_array_equal(point.values,
                                          direct.node_values)


class TestRunMany:
    def test_merged_batch_matches_individual_runs(self):
        names = ["fig2", "fig7", "table1"]
        merged = api.run_many(names, MINI)
        assert list(merged) == names
        for name in names:
            single = api.run(name, MINI)
            assert merged[name].checks == single.checks
            for label, series in single.series.items():
                np.testing.assert_array_equal(merged[name].series[label],
                                              series)

    def test_batch_progress_attributes_points_per_experiment(self):
        default_cache().clear()
        seen = []
        api.run_many(["fig7"], MINI,
                     batch_progress=lambda name, done, total:
                     seen.append((name, done, total)))
        assert seen[-1] == ("fig7", 3, 3)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            api.run_many(["fig2", "fig2"], MINI)


class TestResultSerialization:
    def _result(self):
        res = ExperimentResult(
            experiment="Fig. X", description="serialization test",
            x_label="f", x=np.array([1.0, 2.0]))
        res.add_series("a", np.array([0.5, 1.5]))
        res.check("good", True)
        res.check("bad", False)
        res.notes.append("a note")
        return res

    def test_to_dict_is_json_ready(self):
        doc = self._result().to_dict()
        assert doc["x"] == [1.0, 2.0]
        assert doc["series"]["a"] == [0.5, 1.5]
        assert doc["checks"] == {"good": True, "bad": False}
        assert doc["all_checks_pass"] is False
        assert doc["notes"] == ["a note"]

    def test_to_json_round_trips(self):
        import json

        doc = json.loads(self._result().to_json())
        assert doc["experiment"] == "Fig. X"
        assert doc["series"]["a"] == [0.5, 1.5]

    def test_failing_checks_listed_in_order(self):
        assert self._result().failing_checks() == ["bad"]


class TestLazyFacadeImport:
    def test_import_repro_does_not_load_experiments(self):
        """`import repro` must stay cheap (pool workers re-import it);
        the facade and the figure modules load on first attribute use."""
        import subprocess
        import sys

        code = (
            "import sys, repro\n"
            "assert 'repro.experiments' not in sys.modules\n"
            "assert 'repro.api' not in sys.modules\n"
            "assert repro.api.experiments()[0] == 'fig2'\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


class TestDeprecationShims:
    def test_module_run_warns_and_matches_api(self):
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            legacy = fig2.run(MINI)
        fresh = api.run("fig2", MINI)
        assert legacy.checks == fresh.checks
        for label, series in fresh.series.items():
            np.testing.assert_array_equal(legacy.series[label], series)

    def test_all_experiments_entries_are_the_shims(self):
        with pytest.warns(DeprecationWarning):
            res = ALL_EXPERIMENTS["table1"](MINI)
        assert res.all_checks_pass()
