"""Tests of the 2D SWM solver, including the SPM2 cross-validation that
ties the whole formulation together."""

import numpy as np
import pytest

from repro.constants import GHZ
from repro.materials import PAPER_SYSTEM
from repro.models.spm2 import _branch_sqrt, _first_order_amplitudes
from repro.surfaces import GaussianCorrelation, ProfileGenerator
from repro.surfaces.deterministic import cosine_profile
from repro.swm.solver2d import SWMSolver2D


@pytest.fixture(scope="module")
def solver():
    return SWMSolver2D()


class TestFlatProfile:
    def test_enhancement_is_unity(self, solver):
        res = solver.solve_um(np.zeros(64), 5.0, 5 * GHZ)
        assert res.enhancement == pytest.approx(1.0, abs=5e-3)

    def test_converges_with_refinement(self, solver):
        errs = [abs(solver.solve_um(np.zeros(n), 5.0, 5 * GHZ).enhancement - 1)
                for n in (32, 128)]
        assert errs[1] < errs[0]

    def test_surface_field_is_t0(self, solver):
        f = 5 * GHZ
        res = solver.solve_um(np.zeros(48), 5.0, f)
        np.testing.assert_allclose(res.psi,
                                   PAPER_SYSTEM.flat_transmission(f),
                                   rtol=1e-2)


def _single_mode_spm2(f_hz: float, period_um: float, m: int,
                      amplitude_um: float) -> float:
    """Discrete (deterministic single-cosine) SPM2 prediction.

    For f(x) = A cos(Kx) the ensemble integrals collapse to
    (A^2/2) * kernel(K) — an *exact* second-order result the BEM solver
    must reproduce as A -> 0. This is the strongest consistency test in
    the suite: it couples the solver, the boundary conditions and the
    perturbation theory.
    """
    sys = PAPER_SYSTEM
    k1 = complex(sys.k1(f_hz))
    k2 = sys.k2(f_hz)
    beta = sys.beta(f_hz)
    kk = np.array([2 * np.pi * m / (period_um * 1e-6)])
    amp = amplitude_um * 1e-6
    r1, t1 = _first_order_amplitudes(kk, k1, k2, beta)
    g1 = _branch_sqrt(k1 * k1 - kk * kk)
    g2 = _branch_sqrt(k2 * k2 - kk * kk)
    sigma2 = amp * amp / 2
    t0 = 2 * k1 / (k1 + beta * k2)
    r0 = (k1 - beta * k2) / (k1 + beta * k2)
    i_r = sigma2 * r1[0]
    i_t = sigma2 * t1[0]
    i_a = (sigma2 * (1j * g1[0] * r1[0] + 1j * g2[0] * t1[0])
           - 0.5 * sigma2 * t0 * (k1 * k1 - k2 * k2))
    numer = (-1j * beta * k2 * i_a - beta * k2 ** 2 * i_t
             + 0.5j * sigma2 * beta * k2 ** 3 * t0
             + k1 ** 2 * i_r - 0.5j * sigma2 * k1 ** 3 * (1 - r0))
    r2 = numer / (1j * (k1 + beta * k2))
    return float(1 - 2 * (np.conj(r0) * r2).real / (1 - abs(r0) ** 2))


class TestSingleModeAgainstSPM2:
    @pytest.mark.parametrize("f_ghz,m,n", [(5.0, 2, 192), (3.0, 1, 192),
                                           (8.0, 3, 384)])
    def test_bem_matches_perturbation_theory(self, solver, f_ghz, m, n):
        # Higher frequency / higher mode needs a finer grid (skin depth
        # and surface wavelength both shrink), hence the per-case n.
        period, amp = 5.0, 0.08
        prof = cosine_profile(n, period, amplitude=amp, n_ridges=m)
        bem = solver.solve_um(prof, period, f_ghz * GHZ).enhancement
        spm = _single_mode_spm2(f_ghz * GHZ, period, m, amp)
        # Both are 1 + O(A^2); compare the excess loss.
        assert bem - 1 == pytest.approx(spm - 1, rel=0.08)

    def test_quadratic_amplitude_scaling(self, solver):
        """The excess loss must scale like A^2 for small A."""
        period, m, f = 5.0, 2, 5 * GHZ
        e1 = solver.solve_um(cosine_profile(192, period, 0.05, m),
                             period, f).enhancement - 1
        e2 = solver.solve_um(cosine_profile(192, period, 0.10, m),
                             period, f).enhancement - 1
        assert e2 / e1 == pytest.approx(4.0, rel=0.1)


class TestRoughProfile:
    def test_enhancement_rises_with_frequency(self, solver):
        gen = ProfileGenerator(GaussianCorrelation(1.0, 1.0), 5.0, 96,
                               normalize=True)
        prof = gen.sample(2)
        vals = [solver.solve_um(prof, 5.0, f).enhancement
                for f in (1 * GHZ, 5 * GHZ, 9 * GHZ)]
        assert vals[2] > vals[1] > vals[0]

    def test_translation_invariance(self, solver):
        prof = cosine_profile(96, 5.0, 0.6, 2)
        a = solver.solve_um(prof, 5.0, 5 * GHZ).enhancement
        b = solver.solve_um(prof + 1.5, 5.0, 5 * GHZ).enhancement
        assert a == pytest.approx(b, rel=1e-6)

    def test_x_shift_invariance(self, solver):
        """Periodic translation along x must not change the loss."""
        prof = cosine_profile(96, 5.0, 0.6, 2)
        a = solver.solve_um(prof, 5.0, 5 * GHZ).enhancement
        b = solver.solve_um(np.roll(prof, 17), 5.0, 5 * GHZ).enhancement
        assert a == pytest.approx(b, rel=1e-9)
