"""Tests of the Smolyak sparse-grid construction (Table I machinery)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StochasticError
from repro.stochastic.sparsegrid import smolyak_grid, sparse_grid_size


def gaussian_moment(n: int) -> float:
    if n % 2:
        return 0.0
    return float(math.prod(range(1, n, 2))) if n > 0 else 1.0


class TestSizes:
    def test_level_zero_single_node(self):
        g = smolyak_grid(7, 0)
        assert g.n_points == 1
        np.testing.assert_array_equal(g.nodes, np.zeros((1, 7)))

    @pytest.mark.parametrize("dim", [1, 4, 8, 16, 19])
    def test_level_one_is_2m_plus_1(self, dim):
        """The paper's Table I law: 33 points for M = 16, 39 for M = 19."""
        assert sparse_grid_size(dim, 1) == 2 * dim + 1

    def test_paper_table1_level1_counts(self):
        assert sparse_grid_size(16, 1) == 33
        assert sparse_grid_size(19, 1) == 39

    def test_level_two_polynomial_growth(self):
        """Level-2 size 2M^2 + 4M + 1 for the (1, 3, 5) growth rule."""
        for m in (2, 5, 16):
            assert sparse_grid_size(m, 2) == 2 * m * m + 4 * m + 1

    def test_far_fewer_than_tensor_grid(self):
        m = 8
        tensor = 3 ** m
        assert sparse_grid_size(m, 1) < tensor / 100


class TestWeights:
    @given(st.integers(1, 6), st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_weights_sum_to_one(self, dim, level):
        g = smolyak_grid(dim, level)
        assert g.weights.sum() == pytest.approx(1.0, abs=1e-10)

    def test_nodes_unique(self):
        g = smolyak_grid(4, 2)
        keys = {tuple(np.round(n, 10)) for n in g.nodes}
        assert len(keys) == g.n_points


class TestExactness:
    @pytest.mark.parametrize("dim,level", [(2, 1), (3, 1), (2, 2), (3, 2)])
    def test_total_degree_2l_plus_1(self, dim, level):
        """Level-l Smolyak-GH integrates total degree 2l+1 exactly."""
        g = smolyak_grid(dim, level)
        max_deg = 2 * level + 1
        for degs in itertools.product(range(max_deg + 1), repeat=dim):
            if sum(degs) > max_deg:
                continue
            vals = np.ones(g.n_points)
            for d, p in enumerate(degs):
                vals = vals * g.nodes[:, d] ** p
            got = float(np.dot(g.weights, vals))
            want = math.prod(gaussian_moment(p) for p in degs)
            assert got == pytest.approx(want, abs=1e-8), degs

    def test_gaussian_expectation_of_smooth_function(self):
        """E[exp(a.xi)] = exp(|a|^2/2) — converges with level."""
        a = np.array([0.3, -0.2, 0.1])
        exact = math.exp(0.5 * float(a @ a))
        errs = []
        for level in (1, 2, 3):
            g = smolyak_grid(3, level)
            got = float(np.dot(g.weights, np.exp(g.nodes @ a)))
            errs.append(abs(got - exact))
        assert errs[2] < errs[0]
        assert errs[2] < 1e-6


class TestIntegrateHelper:
    def test_integrate_matches_dot(self):
        g = smolyak_grid(2, 1)
        vals = np.arange(g.n_points, dtype=float)
        assert g.integrate(vals) == pytest.approx(
            float(np.dot(g.weights, vals)))

    def test_integrate_validates_shape(self):
        g = smolyak_grid(2, 1)
        with pytest.raises(StochasticError):
            g.integrate(np.zeros(g.n_points + 1))

    def test_validation(self):
        with pytest.raises(StochasticError):
            smolyak_grid(0, 1)
        with pytest.raises(StochasticError):
            smolyak_grid(2, -1)
