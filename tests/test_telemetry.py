"""Tests of :mod:`repro.telemetry` — metrics, spans, calibration.

Unit-level coverage for the observability layer: the label-aware
metrics registry and its Prometheus rendering, span recording/ingestion
and the Chrome-trace export, the per-kind cost calibrator behind ticket
ETAs, and the thread-safety of the cache's stats counters. Everything
here drives *fresh* registry instances or save/restores the global
enable flag, so tests compose with the service suite (which enables
telemetry process-wide).
"""

import json
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.engine.cache import CacheStats
from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import iter_trace


@pytest.fixture(autouse=True)
def _restore_telemetry_state():
    """Each test starts disabled and leaves the flag as it found it."""
    was = telemetry.enabled()
    telemetry.disable()
    yield
    (telemetry.enable if was else telemetry.disable)()
    telemetry.reset_tracing()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_accumulates_per_label_set(self):
        telemetry.enable()
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs", labels=("kind",))
        c.inc(kind="a")
        c.inc(2.0, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3.0
        assert c.value(kind="b") == 1.0
        assert c.value(kind="never") == 0.0

    def test_counter_rejects_negative_and_bad_labels(self):
        telemetry.enable()
        reg = MetricsRegistry()
        c = reg.counter("n_total", "", labels=("kind",))
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            c.inc(-1.0, kind="a")
        with pytest.raises(ConfigurationError):
            c.inc(wrong_label="a")
        with pytest.raises(ConfigurationError):
            c.inc()  # missing the declared label

    def test_disabled_updates_are_noops(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "")
        g = reg.gauge("g", "")
        h = reg.histogram("h_seconds", "")
        c.inc()
        g.set(5.0)
        h.observe(1.0)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.count() == 0

    def test_gauge_set_inc_dec(self):
        telemetry.enable()
        reg = MetricsRegistry()
        g = reg.gauge("depth", "")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value() == 7.0

    def test_histogram_buckets_and_sum(self):
        telemetry.enable()
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        text = reg.render()
        # Cumulative le buckets, +Inf closing the distribution.
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="10"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text

    def test_render_prometheus_format(self):
        telemetry.enable()
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "requests served",
                        labels=("method", "route"))
        c.inc(method="GET", route="/v1/sweeps/*")
        text = reg.render()
        assert "# HELP reqs_total requests served" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{method="GET",route="/v1/sweeps/*"} 1' in text

    def test_reregistration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "", labels=("k",))
        b = reg.counter("x_total", "", labels=("k",))
        assert a is b
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total", "")  # same name, different type
        with pytest.raises(ConfigurationError):
            reg.counter("x_total", "", labels=("other",))  # label clash

    def test_concurrent_counter_increments_are_exact(self):
        telemetry.enable()
        reg = MetricsRegistry()
        c = reg.counter("hammer_total", "")
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * per_thread


# ----------------------------------------------------------------------
# Span tracing
# ----------------------------------------------------------------------

class TestTracing:
    def test_record_spans_captures_nested_sections(self):
        telemetry.enable()
        telemetry.reset_tracing()
        with telemetry.record_spans() as spans:
            with telemetry.span("outer", n=3):
                with telemetry.span("inner"):
                    time.sleep(0.001)
        names = [s["name"] for s in spans]
        assert names == ["inner", "outer"]  # exit order
        inner, outer = spans
        assert outer["duration_s"] >= inner["duration_s"] > 0.0
        assert outer["meta"] == {"n": 3}
        assert json.dumps(spans)  # JSON-ready by construction
        stats = telemetry.phase_stats()
        assert stats["outer"]["count"] == 1
        assert stats["inner"]["mean_s"] == pytest.approx(
            stats["inner"]["total_s"])

    def test_disabled_spans_record_nothing(self):
        telemetry.reset_tracing()
        with telemetry.record_spans() as spans:
            with telemetry.span("assemble"):
                pass
        assert spans == []
        assert telemetry.phase_stats() == {}

    def test_ingest_spans_feeds_aggregates(self):
        telemetry.enable()
        telemetry.reset_tracing()
        telemetry.ingest_spans([
            {"name": "factor", "start_unix": 1.0, "duration_s": 0.25,
             "pid": 999, "tid": 1},
            {"name": "factor", "start_unix": 2.0, "duration_s": 0.75,
             "pid": 999, "tid": 1},
            {"not-a-span": True},  # silently skipped
        ])
        stats = telemetry.phase_stats()
        assert stats["factor"]["count"] == 2
        assert stats["factor"]["total_s"] == pytest.approx(1.0)

    def test_chrome_trace_export(self):
        telemetry.enable()
        telemetry.reset_tracing()
        with telemetry.span("power", batch=4):
            pass
        events = telemetry.chrome_trace()
        assert len(events) == 1
        (event,) = events
        assert event["ph"] == "X"
        assert event["name"] == "power"
        assert event["dur"] >= 0.0
        assert event["ts"] == pytest.approx(
            next(iter_trace())["start_unix"] * 1e6)
        assert event["args"] == {"batch": 4}
        json.dumps(events)  # chrome://tracing wants plain JSON

    def test_solver_emits_assemble_factor_power_spans(self):
        from repro.swm.solver import SWMSolver3D

        telemetry.enable()
        solver = SWMSolver3D()
        heights = np.zeros((4, 4))
        with telemetry.record_spans() as spans:
            solver.solve(heights, 5e-6, 1e9)
        names = {s["name"] for s in spans}
        assert {"assemble", "factor", "power"} <= names

    def test_execute_job_payload_carries_spans(self):
        from repro.engine.runtime import execute_job
        from repro.engine.spec import DeterministicScenario, SweepSpec

        spec = SweepSpec(
            scenarios=DeterministicScenario("s", np.zeros((4, 4)),
                                            period_m=5e-6),
            frequencies_hz=[1e9])
        job = spec.jobs()[0]
        cold = execute_job(job)
        assert "spans" not in cold  # disabled: no payload bloat
        telemetry.enable()
        payload = execute_job(job)
        assert {s["name"] for s in payload["spans"]} >= {"job", "factor"}


# ----------------------------------------------------------------------
# Cost calibration
# ----------------------------------------------------------------------

class TestCostCalibrator:
    def test_unobserved_kind_predicts_none(self):
        cal = telemetry.CostCalibrator()
        assert cal.predict("stochastic", 1e6) is None
        assert cal.predict_total([("stochastic", 1e6)]) is None

    def test_single_observation_scales_by_ratio(self):
        cal = telemetry.CostCalibrator()
        cal.observe("profile", 100.0, 2.0)
        assert cal.predict("profile", 200.0) == pytest.approx(4.0)

    def test_linear_data_is_recovered(self):
        cal = telemetry.CostCalibrator()
        for cost in (1e6, 2e6, 5e6, 8e6):
            cal.observe("stochastic", cost, 0.5 + 2e-7 * cost)
        assert cal.predict("stochastic", 4e6) == pytest.approx(
            0.5 + 2e-7 * 4e6, rel=1e-6)
        snap = cal.snapshot()["stochastic"]
        assert snap["n"] == 4
        assert snap["seconds_per_cost_unit"] == pytest.approx(2e-7)

    def test_kinds_are_fitted_independently(self):
        cal = telemetry.CostCalibrator()
        cal.observe("profile", 10.0, 1.0)
        cal.observe("stochastic", 10.0, 100.0)
        assert cal.predict("profile", 10.0) == pytest.approx(1.0)
        assert cal.predict("stochastic", 10.0) == pytest.approx(100.0)
        # One unobserved kind poisons the total (honest None).
        assert cal.predict_total([("profile", 10.0),
                                  ("deterministic", 10.0)]) is None
        assert cal.predict_total([("profile", 10.0),
                                  ("stochastic", 10.0)]
                                 ) == pytest.approx(101.0)

    def test_predictions_never_negative(self):
        cal = telemetry.CostCalibrator()
        # Anti-correlated window: slope would be negative.
        cal.observe("k", 1.0, 10.0)
        cal.observe("k", 2.0, 1.0)
        pred = cal.predict("k", 100.0)
        assert pred is not None and pred >= 0.0

    def test_invalid_observations_ignored(self):
        cal = telemetry.CostCalibrator()
        cal.observe("k", -1.0, 1.0)
        cal.observe("k", 1.0, -1.0)
        assert cal.observations("k") == 0


# ----------------------------------------------------------------------
# CacheStats thread-safety
# ----------------------------------------------------------------------

class TestCacheStatsConcurrency:
    def test_concurrent_bumps_never_drop_counts(self):
        """The ThreadingHTTPServer audit: unlocked ``stats.misses += 1``
        is a read-modify-write that loses increments under contention;
        :meth:`CacheStats.bump` must not."""
        stats = CacheStats()
        n_threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                stats.bump("misses")
                stats.bump("memory_hits")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.misses == n_threads * per_thread
        assert stats.memory_hits == n_threads * per_thread

    def test_snapshot_is_one_consistent_read(self):
        stats = CacheStats()
        stats.bump("memory_hits", 3)
        stats.bump("disk_hits", 2)
        stats.bump("misses")
        snap = stats.snapshot()
        assert snap == {"memory_hits": 3, "disk_hits": 2, "misses": 1,
                        "stores": 0, "disk_evictions": 0, "hits": 5}
        assert stats.hits == 5


# ----------------------------------------------------------------------
# Structured logs
# ----------------------------------------------------------------------

class TestStructuredLogs:
    def test_buffer_stamps_monotonic_seq_and_filters(self):
        buf = telemetry.LogBuffer(maxlen=8)
        log = telemetry.StructuredLogger("t", buffer=buf)
        log.info("a", worker_id="w1")
        log.warning("b", worker_id="w2")
        log.error("c", worker_id="w1")
        records = buf.records()
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert [r["message"] for r in buf.records(worker="w1")] == \
            ["a", "c"]
        # level is a *minimum* severity
        assert [r["message"] for r in buf.records(level="warning")] == \
            ["b", "c"]
        assert [r["message"] for r in buf.records(since_seq=2)] == ["c"]
        assert [r["message"] for r in buf.records(limit=1)] == ["c"]

    def test_buffer_is_bounded_ring_and_clear_keeps_seq(self):
        buf = telemetry.LogBuffer(maxlen=3)
        for i in range(5):
            buf.append({"message": str(i)})
        records = buf.records()
        assert [r["message"] for r in records] == ["2", "3", "4"]
        assert [r["seq"] for r in records] == [3, 4, 5]
        buf.clear()
        assert buf.records() == []
        assert buf.append({"message": "next"}) == 6  # seq never recycles

    def test_bind_carries_correlation_fields(self):
        buf = telemetry.LogBuffer()
        log = telemetry.StructuredLogger("fleet.worker", buffer=buf)
        child = log.bind(worker_id="w-9", ticket="t-1")
        rec = child.warning("lease lost", slot="abc")
        assert rec["worker_id"] == "w-9"
        assert rec["ticket"] == "t-1"
        assert rec["slot"] == "abc"
        assert rec["logger"] == "fleet.worker"
        # parent unchanged
        assert "worker_id" not in log.info("plain")

    def test_stream_threshold_and_json_lines(self):
        import io
        buf = telemetry.LogBuffer()
        stream = io.StringIO()
        log = telemetry.StructuredLogger("t", buffer=buf, stream=stream,
                                         level="warning")
        log.info("quiet")
        log.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()
        assert len(buf.records()) == 2  # buffer always gets everything

        jstream = io.StringIO()
        jlog = telemetry.StructuredLogger("t", buffer=buf, stream=jstream,
                                          json_lines=True)
        jlog.info("structured", key="deadbeef")
        parsed = json.loads(jstream.getvalue())
        assert parsed["message"] == "structured"
        assert parsed["key"] == "deadbeef"

    def test_format_human_inlines_correlation(self):
        line = telemetry.format_human(
            {"time_unix": 0.0, "level": "warning", "logger": "x",
             "message": "m", "worker_id": "w", "attempt": 2})
        assert "WARNING" in line
        assert "worker_id=w" in line
        assert "attempt=2" in line

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown log level"):
            telemetry.level_rank("loud")
        with pytest.raises(ConfigurationError):
            telemetry.LogBuffer(maxlen=0)


# ----------------------------------------------------------------------
# Prometheus exposition edge cases
# ----------------------------------------------------------------------

class TestPrometheusExposition:
    def test_escape_label_round_trip(self):
        from repro.telemetry.metrics import _escape_label, _unescape_label
        for raw in ('plain', 'a"b', 'back\\slash', 'new\nline',
                    'all\\"of\nit', 'trailing\\'):
            assert _unescape_label(_escape_label(raw)) == raw

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""
        # a registered family with no series still renders HELP/TYPE
        reg = MetricsRegistry()
        reg.counter("lonely_total", "no series yet", labels=("k",))
        assert "# TYPE lonely_total counter" in reg.render()

    def test_histogram_inf_bucket_closes_distribution(self):
        telemetry.enable()
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", "", buckets=(1.0,))
        h.observe(0.5)
        h.observe(99.0)  # lands only in +Inf
        text = reg.render()
        assert 't_seconds_bucket{le="1"} 1' in text
        assert 't_seconds_bucket{le="+Inf"} 2' in text
        parsed = telemetry.parse_prometheus(text)
        buckets = {lab["le"]: v for lab, v in parsed["t_seconds_bucket"]}
        assert buckets["+Inf"] == 2.0
        assert parsed["t_seconds_count"][0][1] == 2.0

    def test_parse_round_trips_render(self):
        telemetry.enable()
        reg = MetricsRegistry()
        c = reg.counter("odd_total", "", labels=("path",))
        c.inc(path='a"b\\c\nd')
        g = reg.gauge("plain", "")
        g.set(2.5)
        parsed = telemetry.parse_prometheus(reg.render())
        assert parsed["odd_total"] == [({"path": 'a"b\\c\nd'}, 1.0)]
        assert parsed["plain"] == [({}, 2.5)]


# ----------------------------------------------------------------------
# Federation
# ----------------------------------------------------------------------

def _worker_snapshot():
    """A tiny cumulative registry snapshot, as a heartbeat would ship."""
    telemetry.enable()
    reg = MetricsRegistry()
    jobs = reg.counter("repro_worker_jobs_total", "", labels=("outcome",))
    jobs.inc(outcome="ok")
    jobs.inc(outcome="ok")
    lat = reg.histogram("repro_worker_job_seconds", "", buckets=(1.0,))
    lat.observe(0.5)
    return reg.snapshot()


class TestFederation:
    def test_render_appends_worker_label(self):
        fed = telemetry.FederatedTelemetry()
        fed.ingest("w1", metrics=_worker_snapshot())
        text = fed.render_prometheus()
        assert ('repro_worker_jobs_total{outcome="ok",worker="w1"} 2'
                in text)
        assert ('repro_worker_job_seconds_bucket'
                '{worker="w1",le="1"} 1') in text
        assert 'repro_worker_job_seconds_count{worker="w1"} 1' in text
        # one TYPE line per family even with several workers
        fed.ingest("w2", metrics=_worker_snapshot())
        text = fed.render_prometheus()
        assert text.count("# TYPE repro_worker_jobs_total counter") == 1
        assert 'repro_worker_jobs_total{outcome="ok",worker="w2"} 2' \
            in text

    def test_merge_is_idempotent_on_redelivery(self):
        fed = telemetry.FederatedTelemetry()
        snapshot = _worker_snapshot()
        logs = [{"seq": 1, "level": "info", "message": "a"},
                {"seq": 2, "level": "warning", "message": "b"}]
        assert fed.ingest("w1", metrics=snapshot, logs=logs) == 2
        before = fed.render_prometheus()
        # the retried heartbeat re-delivers the same snapshot + records
        assert fed.ingest("w1", metrics=snapshot, logs=logs) == 0
        assert fed.render_prometheus() == before
        assert len(fed.logs()) == 2
        # new records past the seq watermark still land
        assert fed.ingest(
            "w1", logs=[{"seq": 3, "message": "c"}]) == 1
        assert [r["message"] for r in fed.logs()] == ["a", "b", "c"]

    def test_logs_tagged_and_filtered_per_worker(self):
        fed = telemetry.FederatedTelemetry()
        fed.ingest("w1", logs=[{"seq": 1, "level": "warning",
                                "message": "w1 says"}])
        fed.ingest("w2", logs=[{"seq": 1, "level": "info",
                                "message": "w2 says"}])
        assert [r["worker_id"] for r in fed.logs()] == ["w1", "w2"]
        assert [r["message"] for r in fed.logs(worker="w2")] == \
            ["w2 says"]
        assert [r["message"] for r in fed.logs(level="warning")] == \
            ["w1 says"]

    def test_snapshot_forget_and_empty_render(self):
        fed = telemetry.FederatedTelemetry()
        assert fed.render_prometheus() == ""
        fed.ingest("w1", metrics=_worker_snapshot(),
                   stats={"concurrency": 2}, time_unix=123.0)
        snap = fed.worker_snapshot("w1")
        assert snap["stats"] == {"concurrency": 2}
        assert snap["time_unix"] == 123.0
        assert "repro_worker_jobs_total" in snap["metrics"]
        assert fed.workers() == ["w1"]
        fed.forget("w1")
        assert fed.worker_snapshot("w1") is None
        assert fed.render_prometheus() == ""
