"""Tests of the scalar SPM2 model."""

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.errors import ConfigurationError
from repro.models.spm2 import (
    _branch_sqrt,
    _first_order_amplitudes,
    spm2_enhancement,
    spm2_enhancement_profile,
)
from repro.materials import PAPER_SYSTEM
from repro.surfaces import ExtractedCorrelation, GaussianCorrelation


class TestBranchSqrt:
    def test_imaginary_part_nonnegative(self):
        z = np.array([1.0, -1.0, 2j, -3 - 4j, 5 + 0.1j])
        g = _branch_sqrt(z)
        assert np.all(g.imag >= -1e-15)

    def test_squares_back(self):
        z = np.array([2 + 3j, -1 + 0.5j, -4.0 + 0j])
        np.testing.assert_allclose(_branch_sqrt(z) ** 2, z, rtol=1e-12)


class TestFirstOrder:
    def test_shift_mode_consistency(self):
        """At k = 0 the first-order amplitudes describe a rigid shift:
        t1(0) = -j k2 T0 + O(beta) relations hold via r1(0) ~ 0."""
        f = 5 * GHZ
        k1 = complex(PAPER_SYSTEM.k1(f))
        k2 = PAPER_SYSTEM.k2(f)
        beta = PAPER_SYSTEM.beta(f)
        r1, t1 = _first_order_amplitudes(np.array([1e-3]), k1, k2, beta)
        # The reflected first-order amplitude is tiny compared to the
        # transmitted one in the quasi-static regime.
        assert abs(r1[0]) < 1e-2 * abs(t1[0])


class TestEnhancement:
    def test_low_frequency_limit_is_one(self):
        cf = GaussianCorrelation(1 * UM, 1 * UM)
        k = spm2_enhancement(np.array([1e6]), cf)
        assert float(k[0]) == pytest.approx(1.0, abs=1e-3)

    def test_rises_with_frequency(self):
        cf = GaussianCorrelation(1 * UM, 2 * UM)
        f = np.array([1.0, 3.0, 5.0, 9.0]) * GHZ
        k = spm2_enhancement(f, cf)
        assert np.all(np.diff(k) > 0)

    def test_rougher_surface_is_lossier(self):
        """Fixed sigma, shrinking eta => larger enhancement (Fig. 3)."""
        f = np.array([5.0]) * GHZ
        vals = [float(spm2_enhancement(f, GaussianCorrelation(1 * UM,
                                                              e * UM))[0])
                for e in (1.0, 2.0, 3.0)]
        assert vals[0] > vals[1] > vals[2] > 1.0

    def test_small_sigma_quadratic_scaling(self):
        """Excess loss is O(sigma^2) by construction."""
        f = np.array([5.0]) * GHZ
        e1 = float(spm2_enhancement(f, GaussianCorrelation(0.05 * UM,
                                                           1 * UM))[0]) - 1
        e2 = float(spm2_enhancement(f, GaussianCorrelation(0.10 * UM,
                                                           1 * UM))[0]) - 1
        assert e2 / e1 == pytest.approx(4.0, rel=1e-3)

    def test_extracted_cf_fig4_range(self):
        """With the Fig. 4 CF the factor stays in the paper's 1-1.8 band."""
        cf = ExtractedCorrelation(1 * UM, 1.4 * UM, 0.53 * UM)
        f = np.linspace(0.1, 10, 8) * GHZ
        k = spm2_enhancement(f, cf)
        assert np.all(k >= 1.0 - 1e-6)
        assert np.all(k < 2.2)

    def test_validation(self):
        cf = GaussianCorrelation(1 * UM, 1 * UM)
        with pytest.raises(ConfigurationError):
            spm2_enhancement(np.array([-1.0]), cf)
        with pytest.raises(ConfigurationError):
            spm2_enhancement(np.array([1 * GHZ]), cf, n_quad=10)


class TestProfileVariant:
    def test_3d_exceeds_2d(self):
        """The Fig. 6 claim at the perturbation level: 3D roughness gives
        more loss than a y-uniform profile of the same sigma/eta."""
        cf = GaussianCorrelation(0.3 * UM, 1 * UM)
        f = np.array([2.0, 5.0, 9.0]) * GHZ
        k3 = spm2_enhancement(f, cf)
        k2 = spm2_enhancement_profile(f, cf)
        assert np.all(k3 > k2)

    def test_profile_rises_with_frequency(self):
        cf = GaussianCorrelation(0.5 * UM, 1 * UM)
        f = np.array([1.0, 5.0, 9.0]) * GHZ
        k = spm2_enhancement_profile(f, cf)
        assert np.all(np.diff(k) > 0)
