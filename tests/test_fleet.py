"""Tests of the worker fleet (``repro.fleet``) and artifact stores.

Four groups mirroring the subsystem's layers:

- the :class:`~repro.engine.ArtifactStore` interface: LocalDirStore /
  MemoryStore semantics, and ResultCache running unchanged on a
  non-disk backend;
- the scheduler's lease protocol: claim/heartbeat/commit, silent-death
  reclaim with bit-identical re-leased results, stale- and double-
  commit rejection, content-hash verification, fleet-wide dedup;
- the HTTP fleet: pull workers against a ``--fleet`` style server,
  bearer auth on mutating endpoints, healthz/metrics fleet fields,
  and the client's idempotent-GET retry policy (flaky-server double);
- the CI smoke (``REPRO_FLEET_SMOKE``): fig3 quick over two worker
  subprocesses matches the in-process run.
"""

import contextlib
import json
import os
import subprocess
import sys
import threading
import time
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np
import pytest

from repro.constants import GHZ, UM
from repro.core import StochasticLossConfig
from repro.engine import (
    EstimatorSpec,
    LocalDirStore,
    MemoryStore,
    ResultCache,
    SerialExecutor,
    StochasticScenario,
    SweepSpec,
    execute_job,
    run_sweep,
)
from repro.errors import ConfigurationError
from repro.fleet import FleetWorker
from repro import telemetry
from repro.service import wire
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.scheduler import SweepScheduler
from repro.service.server import SweepService, make_server
from repro.surfaces import GaussianCorrelation


def _tiny_spec(freqs=(1.0, 3.0), name="m"):
    """A fast two-point stochastic sweep (8x8 grid, 2 KL modes)."""
    return SweepSpec(
        scenarios=[StochasticScenario(
            name, GaussianCorrelation(1 * UM, 1 * UM),
            StochasticLossConfig(points_per_side=8, max_modes=2))],
        frequencies_hz=[f * GHZ for f in freqs],
        estimators=EstimatorSpec(kind="sscm", order=1))


@contextlib.contextmanager
def _quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


@pytest.fixture(autouse=True)
def _restore_telemetry():
    """make_server enables telemetry process-wide; don't leak it."""
    was = telemetry.enabled()
    yield
    (telemetry.enable if was else telemetry.disable)()


def _reference_result(spec):
    with _quiet():
        return run_sweep(spec, executor=SerialExecutor(),
                         cache=ResultCache())


def _drain_with_worker(scheduler, worker_id="w", lease_s=30.0):
    """Execute everything queued through the lease protocol, honestly."""
    while True:
        claims = scheduler.claim_jobs(worker_id, max_jobs=64,
                                      lease_s=lease_s)
        if not claims:
            return
        for claim in claims:
            with _quiet():
                payload = execute_job(claim.job)
            assert scheduler.complete_lease(
                worker_id, claim.slot, claim.token, claim.key,
                payload) == "committed"


# ----------------------------------------------------------------------
# Artifact stores
# ----------------------------------------------------------------------

class TestArtifactStores:
    @pytest.mark.parametrize("make", [
        lambda tmp: LocalDirStore(tmp / "store"),
        lambda tmp: MemoryStore(),
    ], ids=["local-dir", "memory"])
    def test_put_get_has_delete_roundtrip(self, tmp_path, make):
        store = make(tmp_path)
        blobs = {"json": b'{"a": 1}', "npz": b"\x00\x01binary"}
        assert not store.has("k1")
        assert store.get("k1") is None
        store.put("k1", blobs)
        assert store.has("k1")
        assert store.get("k1") == blobs
        assert store.get("k1", names=("json",)) == {"json": blobs["json"]}
        entries, total = store.size()
        assert entries == 1
        assert total == sum(len(b) for b in blobs.values())
        assert store.delete("k1")
        assert not store.has("k1")
        assert not store.delete("k1")
        assert store.size() == (0, 0)

    @pytest.mark.parametrize("make", [
        lambda tmp: LocalDirStore(tmp / "store"),
        lambda tmp: MemoryStore(),
    ], ids=["local-dir", "memory"])
    def test_list_is_least_recent_first_and_touch_bumps(self, tmp_path,
                                                        make):
        store = make(tmp_path)
        for i, key in enumerate(["a", "b", "c"]):
            store.put(key, {"json": b"{}", "npz": b"x"})
            if isinstance(store, LocalDirStore):
                # Pin distinct mtimes (filesystem clocks are coarse).
                for name in ("json", "npz"):
                    os.utime(store._path(key, name), (i, i))
            else:
                store._mtime[key] = float(i)
        assert [e.key for e in store.list()] == ["a", "b", "c"]
        store.touch("a")
        if isinstance(store, LocalDirStore):
            for name in ("json", "npz"):
                os.utime(store._path("a", name), (10, 10))
        assert [e.key for e in store.list()] == ["b", "c", "a"]

    def test_local_dir_layout_matches_cache_convention(self, tmp_path):
        store = LocalDirStore(tmp_path / "s")
        store.put("deadbeef", {"json": b"{}", "npz": b"z"})
        assert (tmp_path / "s" / "deadbeef.json").exists()
        assert (tmp_path / "s" / "deadbeef.npz").exists()
        # no stray tmp files left behind by the atomic writes
        assert not list((tmp_path / "s").glob("*.tmp*"))

    def test_result_cache_runs_on_memory_store(self):
        """The promotion's point: a non-disk backend is one constructor
        argument, and the cache's two-tier semantics are unchanged."""
        store = MemoryStore()
        cache = ResultCache(store=store, max_memory_entries=1)
        spec = _tiny_spec()
        jobs = spec.jobs()
        with _quiet():
            payloads = [execute_job(j) for j in jobs]
        for job, payload in zip(jobs, payloads):
            cache.put(job.key, payload)
        # both persisted; memory LRU holds only the last
        assert store.size()[0] == len(jobs)
        hit = cache.get(jobs[0].key)
        assert hit is not None
        assert np.array_equal(np.asarray(hit["values"]),
                              np.asarray(payloads[0]["values"]))
        assert cache.stats.snapshot()["disk_hits"] >= 1

    def test_cache_rejects_store_and_disk_dir_together(self, tmp_path):
        with pytest.raises(ConfigurationError,
                           match="disk_dir.*store|store.*disk_dir"):
            ResultCache(disk_dir=tmp_path / "d", store=MemoryStore())


# ----------------------------------------------------------------------
# Lease protocol (in-process scheduler)
# ----------------------------------------------------------------------

class TestLeaseProtocol:
    def _fleet_scheduler(self, **kwargs):
        kwargs.setdefault("cache", ResultCache())
        kwargs.setdefault("local_dispatch", False)
        return SweepScheduler(**kwargs)

    def test_claim_execute_commit_matches_inprocess(self):
        spec = _tiny_spec()
        reference = _reference_result(spec)
        scheduler = self._fleet_scheduler()
        try:
            ticket = scheduler.submit(spec)
            _drain_with_worker(scheduler)
            assert scheduler.wait(ticket, timeout=10)
            result = scheduler.result(ticket)
            for a, b in zip(reference.points, result.points):
                assert a.mean == b.mean and a.std == b.std
                assert np.array_equal(np.asarray(a.values),
                                      np.asarray(b.values))
        finally:
            scheduler.shutdown()

    def test_claims_come_out_longest_first(self):
        scheduler = self._fleet_scheduler()
        try:
            scheduler.submit(SweepSpec(
                scenarios=[
                    StochasticScenario(
                        "small", GaussianCorrelation(1 * UM, 1 * UM),
                        StochasticLossConfig(points_per_side=8,
                                             max_modes=2)),
                    StochasticScenario(
                        "big", GaussianCorrelation(1 * UM, 1 * UM),
                        StochasticLossConfig(points_per_side=12,
                                             max_modes=2)),
                ],
                frequencies_hz=[1 * GHZ],
                estimators=EstimatorSpec(kind="sscm", order=1)))
            claims = scheduler.claim_jobs("w", max_jobs=2, lease_s=30)
            assert [c.job.scenario.name for c in claims] == ["big", "small"]
        finally:
            scheduler.shutdown()

    def test_heartbeat_keeps_lease_alive_past_deadline(self):
        scheduler = self._fleet_scheduler()
        try:
            scheduler.submit(_tiny_spec(freqs=(1.0,)))
            claim, = scheduler.claim_jobs("w", max_jobs=1, lease_s=0.15)
            for _ in range(4):
                time.sleep(0.08)
                alive = scheduler.heartbeat("w", {claim.slot: claim.token},
                                            lease_s=0.15)
                assert alive[claim.slot] is True
            # still ours: nothing for another worker to claim
            assert scheduler.claim_jobs("thief", max_jobs=4) == []
        finally:
            scheduler.shutdown()

    def test_silent_death_releases_and_result_is_bit_identical(self):
        """A worker claims everything, dies silently; leases expire,
        a second worker re-executes, and the SweepResult equals the
        in-process run bit-for-bit."""
        spec = _tiny_spec()
        reference = _reference_result(spec)
        scheduler = self._fleet_scheduler()
        try:
            ticket = scheduler.submit(spec)
            dead = scheduler.claim_jobs("dead", max_jobs=64, lease_s=0.05)
            assert len(dead) == spec.n_jobs
            # nothing available while the leases are live
            assert scheduler.claim_jobs("alive", max_jobs=64) == [] \
                or time.sleep(0.0)
            time.sleep(0.1)  # let every lease expire
            _drain_with_worker(scheduler, "alive")
            assert scheduler.wait(ticket, timeout=10)
            result = scheduler.result(ticket)
            for a, b in zip(reference.points, result.points):
                assert a.mean == b.mean and a.std == b.std
                assert np.array_equal(np.asarray(a.values),
                                      np.asarray(b.values))
            snap = scheduler.fleet_snapshot()
            assert snap["leases_expired_total"] == len(dead)
            # the late worker's uploads are stale, not double-commits
            with _quiet():
                payload = execute_job(dead[0].job)
            assert scheduler.complete_lease(
                "dead", dead[0].slot, dead[0].token, dead[0].key,
                payload) == "stale"
        finally:
            scheduler.shutdown()

    def test_double_commit_is_rejected(self):
        scheduler = self._fleet_scheduler()
        try:
            ticket = scheduler.submit(_tiny_spec(freqs=(1.0,)))
            claim, = scheduler.claim_jobs("w", max_jobs=1, lease_s=30)
            with _quiet():
                payload = execute_job(claim.job)
            assert scheduler.complete_lease(
                "w", claim.slot, claim.token, claim.key,
                payload) == "committed"
            assert scheduler.complete_lease(
                "w", claim.slot, claim.token, claim.key,
                payload) == "stale"
            assert scheduler.wait(ticket, timeout=10)
        finally:
            scheduler.shutdown()

    def test_commit_verifies_content_hash(self):
        scheduler = self._fleet_scheduler()
        try:
            scheduler.submit(_tiny_spec(freqs=(1.0,)))
            claim, = scheduler.claim_jobs("w", max_jobs=1, lease_s=30)
            with pytest.raises(ConfigurationError, match="content-hash"):
                scheduler.complete_lease("w", claim.slot, claim.token,
                                         "0" * 64, {"mean": 0.0})
            # the failed verification did not consume the lease
            with _quiet():
                payload = execute_job(claim.job)
            assert scheduler.complete_lease(
                "w", claim.slot, claim.token, claim.key,
                payload) == "committed"
        finally:
            scheduler.shutdown()

    def test_wrong_token_and_wrong_worker_are_stale(self):
        scheduler = self._fleet_scheduler()
        try:
            scheduler.submit(_tiny_spec(freqs=(1.0,)))
            claim, = scheduler.claim_jobs("w", max_jobs=1, lease_s=30)
            with _quiet():
                payload = execute_job(claim.job)
            assert scheduler.complete_lease(
                "w", claim.slot, "bad-token", claim.key,
                payload) == "stale"
            assert scheduler.complete_lease(
                "other", claim.slot, claim.token, claim.key,
                payload) == "stale"
            assert scheduler.complete_lease(
                "w", claim.slot, claim.token, claim.key,
                payload) == "committed"
        finally:
            scheduler.shutdown()

    def test_worker_reported_failure_fails_only_its_waiters(self):
        scheduler = self._fleet_scheduler()
        try:
            bad = scheduler.submit(_tiny_spec(freqs=(1.0,), name="bad"))
            good = scheduler.submit(_tiny_spec(freqs=(3.0,), name="good"))
            claims = scheduler.claim_jobs("w", max_jobs=4, lease_s=30)
            for claim in claims:
                if claim.job.scenario.name == "bad":
                    assert scheduler.fail_lease(
                        "w", claim.slot, claim.token, claim.key,
                        "boom: solver exploded") == "committed"
                else:
                    with _quiet():
                        scheduler.complete_lease(
                            "w", claim.slot, claim.token, claim.key,
                            execute_job(claim.job))
            assert scheduler.wait(bad, timeout=10)
            assert scheduler.wait(good, timeout=10)
            assert scheduler.status(bad)["state"] == "failed"
            assert "boom" in scheduler.status(bad)["error"]
            assert scheduler.status(good)["state"] == "complete"
        finally:
            scheduler.shutdown()

    def test_max_lease_attempts_fails_the_waiters(self):
        scheduler = self._fleet_scheduler(max_lease_attempts=2)
        try:
            ticket = scheduler.submit(_tiny_spec(freqs=(1.0,)))
            for _ in range(2):
                claims = scheduler.claim_jobs("crashy", max_jobs=1,
                                              lease_s=0.02)
                assert len(claims) == 1
                time.sleep(0.05)  # die without committing
            # next lease-path call reclaims past the attempt budget
            assert scheduler.claim_jobs("crashy", max_jobs=1) == []
            assert scheduler.wait(ticket, timeout=10)
            status = scheduler.status(ticket)
            assert status["state"] == "failed"
            assert "lease expired" in status["error"]
        finally:
            scheduler.shutdown()

    def test_two_workers_never_share_a_hash(self):
        """Fleet-wide dedup: overlapping sweeps, two claimants — every
        unique content hash is handed out (and executed) exactly once."""
        scheduler = self._fleet_scheduler()
        try:
            t1 = scheduler.submit(_tiny_spec(freqs=(1.0, 3.0)))
            t2 = scheduler.submit(_tiny_spec(freqs=(1.0, 5.0)))  # overlaps
            seen = []
            workers = ["w1", "w2"]
            turn = 0
            while True:
                claims = scheduler.claim_jobs(workers[turn % 2],
                                              max_jobs=1, lease_s=30)
                turn += 1
                if not claims and turn > 2:
                    break
                for claim in claims:
                    seen.append(claim.key)
                    with _quiet():
                        scheduler.complete_lease(
                            workers[(turn - 1) % 2], claim.slot,
                            claim.token, claim.key,
                            execute_job(claim.job))
            assert len(seen) == len(set(seen)) == 3  # 1+3 GHz, plus 5 GHz
            assert scheduler.wait(t1, timeout=10)
            assert scheduler.wait(t2, timeout=10)
            assert scheduler.cache.stats.snapshot()["stores"] == 3
        finally:
            scheduler.shutdown()

    def test_local_dispatch_still_works_alongside_claims(self):
        """With the dispatcher on, a leased slot is never double-run:
        the dispatcher only takes queued slots."""
        scheduler = SweepScheduler(cache=ResultCache())  # dispatcher on
        try:
            with _quiet():
                ticket = scheduler.submit(_tiny_spec())
                assert scheduler.wait(ticket, timeout=60)
            # queue drained by the dispatcher; claims find nothing
            assert scheduler.claim_jobs("w", max_jobs=8) == []
        finally:
            scheduler.shutdown()

    def test_claim_validation(self):
        scheduler = self._fleet_scheduler()
        try:
            with pytest.raises(ConfigurationError, match="worker id"):
                scheduler.claim_jobs("", max_jobs=1)
            with pytest.raises(ConfigurationError, match="lease_s"):
                scheduler.claim_jobs("w", max_jobs=1, lease_s=0.0)
            with pytest.raises(ConfigurationError, match="lease_s"):
                scheduler.heartbeat("w", {}, lease_s=-1.0)
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# HTTP fleet
# ----------------------------------------------------------------------

@pytest.fixture()
def fleet_server():
    """A pure fleet server (no in-process dispatch) on an ephemeral
    port; yields (url, service)."""
    scheduler = SweepScheduler(cache=ResultCache(), local_dispatch=False)
    service = SweepService(scheduler=scheduler, token="")
    server = make_server(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        service.shutdown()
        server.shutdown()
        thread.join(5)


def _series(text, name):
    """Parse one metric family out of a Prometheus text document."""
    out = {}
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            head, value = line.rsplit(" ", 1)
            out[head[len(name):]] = float(value)
    return out


class TestHTTPFleet:
    def test_workers_drain_queue_bit_identical_and_deduped(
            self, fleet_server):
        url, service = fleet_server
        spec = _tiny_spec()
        reference = _reference_result(spec)
        client = ServiceClient(url, poll_interval=0.02)
        before = _series(client.metrics_text(),
                         "repro_scheduler_jobs_total")
        # two clients, overlapping work; two pull workers
        t1 = client.submit(spec)
        t2 = client.submit(_tiny_spec(freqs=(1.0, 5.0)))
        workers = [FleetWorker(url, worker_id=f"fw{i}", concurrency=2,
                               lease_s=10, exit_when_idle=True)
                   for i in range(2)]
        threads = [threading.Thread(target=w.run) for w in workers]
        with _quiet():
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        status = client.wait(t1, timeout=30)
        assert status["state"] == "complete"
        assert client.wait(t2, timeout=30)["state"] == "complete"
        remote = client.result(t1)
        for a, b in zip(reference.points, remote.points):
            assert a.mean == b.mean and a.std == b.std
            assert np.array_equal(np.asarray(a.values),
                                  np.asarray(b.values))
        # dedup invariant: 3 unique hashes -> exactly 3 computed jobs
        after = _series(client.metrics_text(),
                        "repro_scheduler_jobs_total")
        key = '{kind="stochastic",outcome="computed"}'
        assert after.get(key, 0) - before.get(key, 0) == 3
        assert service.cache.stats.snapshot()["stores"] == 3
        claimed = sum(w.stats["claimed"] for w in workers)
        committed = sum(w.stats["completed"] for w in workers)
        assert claimed == committed == 3

    def test_healthz_and_workers_report_fleet_state(self, fleet_server):
        url, service = fleet_server
        client = ServiceClient(url, poll_interval=0.02)
        health = client._get("/v1/healthz")
        assert health["ok"] is True
        assert health["local_dispatch"] is False
        assert health["queue_depth"] == 0
        client.submit(_tiny_spec())
        assert client._get("/v1/healthz")["queue_depth"] == 2
        claims = client.claim_jobs("hw", max_jobs=1, lease_s=30)
        assert len(claims) == 1
        health = client._get("/v1/healthz")
        assert health["queue_depth"] == 1
        assert health["workers"]["active"] == 1
        assert health["workers"]["leases_active"] == 1
        snapshot = client.workers()
        assert [w["id"] for w in snapshot["workers"]] == ["hw"]
        assert snapshot["workers"][0]["leases_held"] == 1
        metrics = client.metrics_text()
        assert _series(metrics, "repro_fleet_workers_active")[""] == 1
        assert _series(metrics, "repro_fleet_leases_active")[""] == 1

    def test_worker_graceful_drain(self, fleet_server):
        url, _service = fleet_server
        client = ServiceClient(url, poll_interval=0.02)
        ticket = client.submit(_tiny_spec())
        worker = FleetWorker(url, worker_id="drainer", concurrency=2,
                             lease_s=10, idle_poll_s=0.05)
        thread = threading.Thread(target=worker.run)
        with _quiet():
            thread.start()
            # let it claim, then request the drain mid-flight
            deadline = time.monotonic() + 10
            while (worker.stats["claimed"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            worker.stop()
            thread.join(60)
        assert not thread.is_alive()
        # drained, not dropped: every claim was committed before exit
        assert worker.stats["claimed"] >= 1
        assert worker.stats["completed"] == worker.stats["claimed"]
        assert client.wait(ticket, timeout=10)["state"] == "complete"

    def test_bearer_auth_gates_mutating_endpoints(self):
        scheduler = SweepScheduler(cache=ResultCache(),
                                   local_dispatch=False)
        service = SweepService(scheduler=scheduler, token="sekrit")
        server = make_server(port=0, service=service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            anon = ServiceClient(url, token="", max_retries=0)
            with pytest.raises(ConfigurationError, match="HTTP 401"):
                anon.submit(_tiny_spec())
            with pytest.raises(ConfigurationError, match="HTTP 401"):
                anon.claim_jobs("w", max_jobs=1)
            bad = ServiceClient(url, token="wrong", max_retries=0)
            with pytest.raises(ConfigurationError, match="HTTP 401"):
                bad.submit(_tiny_spec())
            # reads stay open
            assert anon.healthy()
            assert "repro_" in anon.metrics_text()
            # the authed pair works end to end, worker included
            authed = ServiceClient(url, token="sekrit")
            ticket = authed.submit(_tiny_spec(freqs=(1.0,)))
            worker = FleetWorker(authed, worker_id="authw",
                                 exit_when_idle=True)
            with _quiet():
                worker.run()
            assert authed.wait(ticket, timeout=30)["state"] == "complete"
        finally:
            service.shutdown()
            server.shutdown()
            thread.join(5)

    def test_token_defaults_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TOKEN", "envtok")
        assert SweepService(
            scheduler=SweepScheduler(cache=ResultCache(),
                                     local_dispatch=False)).token == "envtok"
        assert ServiceClient("http://x").token == "envtok"
        # explicit empty string forces auth off despite the variable
        assert ServiceClient("http://x", token="").token is None


# ----------------------------------------------------------------------
# Client retry policy (flaky-server double)
# ----------------------------------------------------------------------

class _FlakyHandler(BaseHTTPRequestHandler):
    """Fails the first ``fail_first`` requests per method with 503."""

    state = {"GET": 0, "POST": 0}
    fail_first = {"GET": 2, "POST": 2}

    def log_message(self, format, *args):  # noqa: A002
        pass

    def _serve(self, method):
        self.state[method] += 1
        if self.state[method] <= self.fail_first[method]:
            body = json.dumps({"error": "warming up"}).encode()
            self.send_response(503)
        else:
            body = json.dumps({"ok": True, "attempts":
                               self.state[method]}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802
        self._serve("GET")

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        self._serve("POST")


@pytest.fixture()
def flaky_url():
    handler = type("Flaky", (_FlakyHandler,),
                   {"state": {"GET": 0, "POST": 0}})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", handler
    finally:
        server.shutdown()
        thread.join(5)


class TestClientRetries:
    def test_idempotent_get_retries_through_transients(self, flaky_url):
        url, handler = flaky_url
        client = ServiceClient(url, max_retries=3, backoff_base_s=0.01,
                               backoff_cap_s=0.05)
        doc = client._get("/v1/healthz")
        assert doc["ok"] is True
        assert handler.state["GET"] == 3  # 2 failures + 1 success

    def test_get_gives_up_past_the_retry_budget(self, flaky_url):
        url, handler = flaky_url
        handler.fail_first = {"GET": 99, "POST": 99}
        client = ServiceClient(url, max_retries=2, backoff_base_s=0.01,
                               backoff_cap_s=0.05)
        with pytest.raises(ConfigurationError, match="HTTP 503"):
            client._get("/v1/healthz")
        assert handler.state["GET"] == 3  # initial + 2 retries

    def test_post_never_retries(self, flaky_url):
        url, handler = flaky_url
        client = ServiceClient(url, max_retries=3, backoff_base_s=0.01)
        with pytest.raises(ConfigurationError, match="HTTP 503"):
            client._post("/v1/sweeps", b"{}")
        assert handler.state["POST"] == 1

    def test_transport_error_retries_then_service_unavailable(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2,
                               max_retries=2, backoff_base_s=0.01,
                               backoff_cap_s=0.02)
        with pytest.raises(ServiceUnavailable):
            client._get("/v1/healthz")


# ----------------------------------------------------------------------
# Worker-side execution isolation
# ----------------------------------------------------------------------

class TestWorkerThreadIsolation:
    def test_concurrent_jobs_never_share_a_model(self):
        """The fleet worker runs claims on a thread pool; the model
        memo must be per-thread, or two same-scenario jobs would race
        on the solver's adaptive kernel tables and lose bit-identity
        (regression: fig3-over-fleet differed at ~1e-9 from the
        in-process run with a shared memo)."""
        from repro.engine import runtime

        scenario = _tiny_spec().scenarios[0]
        with _quiet():
            first = runtime._model_for(scenario)
            # same thread: memoized, one eigendecomposition
            assert runtime._model_for(scenario) is first
            got = {}

            def grab(tag):
                got[tag] = runtime._model_for(scenario)

            threads = [threading.Thread(target=grab, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
        assert got[0] is not got[1]
        assert got[0] is not first and got[1] is not first


# ----------------------------------------------------------------------
# Wire v3/v4 messages
# ----------------------------------------------------------------------

class TestWorkerWire:
    def test_claim_round_trips_with_hash_intact(self):
        job = _tiny_spec(freqs=(1.0,)).jobs()[0]
        claim = wire.WorkerClaim(slot=job.key, token="t" * 32,
                                 key=job.key, lease_s=30.0, job=job)
        restored = wire.loads(wire.dumps(claim))
        assert isinstance(restored, wire.WorkerClaim)
        assert restored.slot == claim.slot
        assert restored.token == claim.token
        assert restored.job.key == job.key

    def test_result_round_trips_payload_and_error(self):
        job = _tiny_spec(freqs=(1.0,)).jobs()[0]
        with _quiet():
            payload = execute_job(job)
        ok = wire.WorkerResult(slot="s", token="t", worker="w",
                               key=job.key, payload=payload)
        restored = wire.loads(wire.dumps(ok))
        assert restored.payload["mean"] == payload["mean"]
        assert np.array_equal(np.asarray(restored.payload["values"]),
                              np.asarray(payload["values"]))
        err = wire.WorkerResult(slot="s", token="t", worker="w",
                                key=job.key, error="boom")
        assert wire.loads(wire.dumps(err)).error == "boom"

    def test_result_needs_exactly_one_of_payload_or_error(self):
        with pytest.raises(wire.WireError, match="exactly one"):
            wire.to_wire(wire.WorkerResult(slot="s", token="t",
                                           worker="w", key="k"))

    def test_worker_telemetry_round_trips(self):
        snap = wire.WorkerTelemetry(
            worker="w-1", time_unix=123.5, seq=7,
            metrics={"repro_worker_jobs_total": {
                "type": "counter", "labels": ["outcome"],
                "series": {"ok": 3}}},
            logs=({"seq": 7, "level": "warning", "message": "m"},),
            stats={"concurrency": 2, "inflight": 1})
        restored = wire.loads(wire.dumps(snap))
        assert isinstance(restored, wire.WorkerTelemetry)
        assert restored.worker == "w-1"
        assert restored.time_unix == 123.5
        assert restored.seq == 7
        assert restored.metrics["repro_worker_jobs_total"]["series"] \
            == {"ok": 3}
        assert list(restored.logs)[0]["message"] == "m"
        assert restored.stats == {"concurrency": 2, "inflight": 1}

    def test_worker_telemetry_defaults_decode(self):
        """A minimal v4 doc (no metrics/logs/stats) decodes to empty
        defaults — forward-compatible heartbeats."""
        doc = json.loads(wire.dumps(wire.WorkerTelemetry(
            worker="w", time_unix=1.0)))
        for key in ("metrics", "logs", "stats"):
            doc["body"].pop(key, None)
        restored = wire.loads(json.dumps(doc))
        assert restored.metrics == {}
        assert tuple(restored.logs) == ()
        assert restored.stats == {}


# ----------------------------------------------------------------------
# Observability: federation, flight recorder, logs, dashboard
# ----------------------------------------------------------------------

def _run_fleet(url, n_workers=2, concurrency=2):
    """Drain the queue with N in-process pull workers; returns them."""
    workers = [FleetWorker(url, worker_id=f"obs{i}",
                           concurrency=concurrency, lease_s=10,
                           exit_when_idle=True, quiet=True)
               for i in range(n_workers)]
    threads = [threading.Thread(target=w.run) for w in workers]
    with _quiet():
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
    return workers


class TestObservability:
    def test_metrics_federate_per_worker_series(self, fleet_server):
        url, service = fleet_server
        client = ServiceClient(url, poll_interval=0.02)
        # one ticket per worker, drained sequentially, so *both* ship a
        # non-empty registry snapshot (racing workers can leave one
        # idle, and idle workers have nothing to federate)
        t1 = client.submit(_tiny_spec())
        _run_fleet(url, n_workers=1)
        t2 = client.submit(_tiny_spec(freqs=(1.0, 5.0)))
        workers = [FleetWorker(url, worker_id="obs1", concurrency=2,
                               lease_s=10, exit_when_idle=True,
                               quiet=True)]
        with _quiet():
            workers[0].run()
        assert client.wait(t1, timeout=30)["state"] == "complete"
        assert client.wait(t2, timeout=30)["state"] == "complete"
        text = client.metrics_text()
        parsed = telemetry.parse_prometheus(text)
        jobs = parsed.get("repro_worker_jobs_total", [])
        seen = {lab.get("worker") for lab, _ in jobs}
        assert {"obs0", "obs1"} <= seen
        # scheduler-side straggler gauge is worker-labeled too
        slow = parsed.get("repro_fleet_worker_slow", [])
        assert {lab.get("worker") for lab, _ in slow} >= {"obs0", "obs1"}
        # the federation appendix groups both workers under one TYPE
        # line (the server's own doc may also carry the family here,
        # because in-process test workers share its registry)
        fed = service.scheduler.federation.render_prometheus()
        assert fed.count("# TYPE repro_worker_jobs_total counter") == 1

    def test_worker_detail_and_logs_endpoints(self, fleet_server):
        url, service = fleet_server
        client = ServiceClient(url, poll_interval=0.02)
        ticket = client.submit(_tiny_spec())
        _run_fleet(url)
        client.wait(ticket, timeout=30)
        detail = client.worker_detail("obs0")
        assert detail["id"] == "obs0"
        assert "rate_ewma" in detail and "slow" in detail
        assert detail["telemetry"]["stats"]["concurrency"] == 2
        assert isinstance(detail["recent_logs"], list)
        with pytest.raises(ConfigurationError, match="404"):
            client.worker_detail("never-seen")
        # merged logs: worker records carry worker_id correlation
        records = client.logs(limit=200)
        assert any(r.get("worker_id") == "obs0" for r in records)
        assert client.logs(worker="obs1", limit=200)
        assert all(r["worker_id"] == "obs1"
                   for r in client.logs(worker="obs1"))
        for r in client.logs(level="warning"):
            assert telemetry.level_rank(r["level"]) >= \
                telemetry.level_rank("warning")

    def test_sweep_trace_merges_worker_lanes(self, fleet_server):
        url, service = fleet_server
        client = ServiceClient(url, poll_interval=0.02)
        ticket = client.submit(_tiny_spec())
        _run_fleet(url)
        assert client.wait(ticket, timeout=30)["state"] == "complete"
        trace = client.sweep_trace(ticket)
        assert trace["metadata"]["ticket"] == ticket
        events = trace["traceEvents"]
        lanes = {e["args"]["name"] for e in events if e.get("ph") == "M"}
        assert "server" in lanes
        assert any(lane.startswith("worker obs") for lane in lanes)
        phases = {e["name"] for e in events if e.get("ph") == "X"}
        assert "queue-wait" in phases
        assert "lease" in phases
        assert "upload" in phases
        assert "job" in phases or "solve" in phases
        # complete events are well-formed (µs timestamps, no negatives)
        for e in events:
            if e.get("ph") == "X":
                assert e["dur"] >= 0
        with pytest.raises(ConfigurationError, match="404"):
            client.sweep_trace("no-such-ticket")

    def test_healthz_uptime_and_telemetry_flag(self, fleet_server):
        url, _service = fleet_server
        client = ServiceClient(url, poll_interval=0.02)
        health = client._get("/v1/healthz")
        assert health["telemetry"] is True
        assert 0.0 <= health["uptime_s"] < 3600.0

    def test_top_dashboard_renders_fleet(self, fleet_server):
        from repro.fleet.top import fetch_view, render_view, top

        url, _service = fleet_server
        client = ServiceClient(url, poll_interval=0.02)
        ticket = client.submit(_tiny_spec())
        _run_fleet(url)
        client.wait(ticket, timeout=30)
        view = fetch_view(client)
        assert view["health"]["ok"] is True
        screen = render_view(view)
        assert "obs0" in screen and "obs1" in screen
        assert "queue:" in screen
        # --once writes a single snapshot and exits 0
        import io

        out = io.StringIO()
        assert top(url, once=True, out=out) == 0
        assert "repro sweep service" in out.getvalue()

    def test_top_render_handles_empty_and_slow(self):
        from repro.fleet.top import render_view

        screen = render_view({
            "base_url": "http://x", "health": {}, "fleet": {},
            "sweeps": [], "warnings": []})
        assert "no workers registered" in screen
        screen = render_view({
            "base_url": "http://x",
            "health": {"queue_depth": 3, "jobs_in_flight": 1,
                       "uptime_s": 12.0, "telemetry": True},
            "fleet": {"workers": [
                {"id": "w1", "leases_held": 1, "completed": 5,
                 "failed": 0, "expired": 0, "rate_ewma": 100.0,
                 "slow": True}]},
            "sweeps": [{"id": "abcd1234efgh", "state": "running",
                        "done": 1, "total": 4}],
            "etas": {"abcd1234efgh": 7.5},
            "cache_hit_ratio": 0.5,
            "warnings": [{"time_unix": 0.0, "level": "warning",
                          "logger": "s", "message": "lease expired"}]})
        assert "SLOW" in screen
        assert "eta 7.5s" in screen
        assert "50.0%" in screen
        assert "lease expired" in screen


# ----------------------------------------------------------------------
# CI fleet smoke (subprocess server + two worker processes)
# ----------------------------------------------------------------------

@pytest.mark.smoke
@pytest.mark.skipif("REPRO_FLEET_SMOKE" not in os.environ,
                    reason="fig3-over-fleet smoke is minutes-scale; CI's "
                           "fleet-smoke job sets REPRO_FLEET_SMOKE=1 "
                           "to run it")
def test_fleet_smoke_fig3_two_workers_matches_inprocess(tmp_path):
    """The CI fleet smoke: serve --fleet, two worker subprocesses, a
    quick fig3 sweep over HTTP — results match the in-process run and
    the metrics show fleet activity."""
    import repro.api

    spec = repro.api.plan("fig3", scale="quick")
    with _quiet():
        reference = run_sweep(spec, executor=SerialExecutor(),
                              cache=ResultCache())

    env = dict(os.environ, PYTHONPATH="src")
    port = 8432
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.runner", "serve",
         "--fleet", "--port", str(port),
         "--cache-dir", str(tmp_path / "cache")],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    workers = []
    try:
        url = f"http://127.0.0.1:{port}"
        client = ServiceClient(url, poll_interval=0.2)
        deadline = time.monotonic() + 30
        while not client.healthy():
            assert time.monotonic() < deadline, "server never came up"
            time.sleep(0.2)
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.experiments.runner",
                 "worker", "--server", url, "--concurrency", "2",
                 "--worker-id", f"smoke-{i}", "--exit-when-idle"],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT)
            for i in range(2)
        ]
        ticket = client.submit(spec)
        assert client.wait(ticket, timeout=900)["state"] == "complete"
        remote = client.result(ticket)
        assert np.array_equal(
            np.asarray(reference.mean_curve(spec.scenarios[0].name)),
            np.asarray(remote.mean_curve(spec.scenarios[0].name)))
        for a, b in zip(reference.points, remote.points):
            assert a.key == b.key
            assert np.array_equal(np.asarray(a.values),
                                  np.asarray(b.values))
        snapshot = client.workers()
        assert sum(w["completed"] for w in snapshot["workers"]) \
            == len(reference.points)
        metrics = client.metrics_text()
        committed = _series(metrics, "repro_fleet_leases_total").get(
            '{outcome="committed"}', 0)
        assert committed == len(reference.points)
        # worker heartbeats federated their registries: the server's
        # exposition shows worker-labeled series from both processes
        parsed = telemetry.parse_prometheus(metrics)
        jobs = parsed.get("repro_worker_jobs_total", [])
        workers_seen = {lab.get("worker") for lab, _ in jobs}
        assert {"smoke-0", "smoke-1"} <= workers_seen
        # merged fleet logs carry worker correlation over HTTP
        records = client.logs(limit=500)
        assert {"smoke-0", "smoke-1"} <= {r.get("worker_id")
                                          for r in records
                                          if "worker_id" in r}
        # per-sweep flight recorder spans server + worker lanes;
        # REPRO_FLEET_TRACE_OUT saves it as a CI workflow artifact
        trace = client.sweep_trace(ticket)
        lanes = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M"}
        assert "server" in lanes
        assert any(lane.startswith("worker smoke-") for lane in lanes)
        trace_out = os.environ.get("REPRO_FLEET_TRACE_OUT")
        if trace_out:
            Path(trace_out).parent.mkdir(parents=True, exist_ok=True)
            Path(trace_out).write_text(json.dumps(trace),
                                       encoding="utf-8")
    finally:
        for p in workers:
            p.terminate()
        server.terminate()
        for p in [*workers, server]:
            try:
                p.wait(30)
            except subprocess.TimeoutExpired:
                p.kill()
