"""Hemispherical boss model (HBM) — the paper's Fig. 5 reference curve.

HBM (Hall et al., IEEE TMTT 2007, the paper's ref. [5]) models surface
protrusions as conducting (hemi)spherical bosses on a flat plane and uses
the analytic response of a conducting sphere in the local magnetic field.

Physics implemented here:

- exact complex magnetic polarizability of a conducting sphere with
  finite skin depth (Landau & Lifshitz, ECM sec. 59)::

      alpha(x) = -2 pi a^3 [1 - 3/x^2 + (3/x) cot(x)],   x = k2 a

  (SI convention: dipole moment m = alpha * H0; PEC limit
  ``alpha -> -2 pi a^3``);
- absorbed power ``P = (omega mu0 / 2) Im(alpha) |H0|^2`` (checked in the
  tests against the surface-impedance asymptote
  ``P -> 3 pi Rs a^2 |H0|^2``);
- boss-on-plane bookkeeping: a hemispherical boss absorbs half of the
  full sphere's power (image theory) and removes the flat-disc absorption
  ``(Rs/2) |H0|^2 pi a^2`` it covers, so for one boss per tile of area A

      Pr/Ps = 1 - pi a^2 / A + P_hemi / (A (Rs/2) |H0|^2);

  the high-frequency limit is ``1 + 2 pi a^2 / A``;
- spheroidal bosses: the spheroid's transverse demagnetizing factor
  replaces the sphere's 1/3 in ``alpha = V chi / (1 + n_t chi)`` while the
  skin-depth physics is carried by the sphere's intrinsic susceptibility
  ``chi(x) = -3 F(x) / (2 + F(x))``, ``F = 1 - 3/x^2 + (3/x) cot x``.
  This shape correction is an approximation (exact spheroid eddy-current
  solutions involve spheroidal wavefunctions); DESIGN.md records it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import MU_0
from ..errors import ConfigurationError
from ..materials import Conductor


def _stable_cot(x: complex) -> complex:
    """cot(x) computed stably for Im(x) >= 0 (avoids exp overflow)."""
    e = np.exp(2j * x)  # decays for Im(x) > 0
    return 1j * (e + 1.0) / (e - 1.0)


def sphere_shape_function(x: complex) -> complex:
    """``F(x) = 1 - 3/x^2 + (3/x) cot(x)`` (Landau's bracket).

    ``F -> 1`` as ``|x| -> inf`` (PEC) and ``F -> 0`` as ``x -> 0``
    (transparent: skin depth much larger than the sphere).

    The direct formula subtracts two ``O(1/x^2)`` terms against an
    ``O(x^2)`` result — a relative error of ``~45 eps / |x|^4`` — so for
    ``|x| < 0.3`` the Laurent series of ``cot`` is used instead:

        F(x) = -x^2/15 - 2 x^4/315 - x^6/1575 - O(x^8).
    """
    x = complex(x)
    if abs(x) < 0.3:
        x2 = x * x
        return -x2 / 15.0 - 2.0 * x2 * x2 / 315.0 - x2 * x2 * x2 / 1575.0
    return 1.0 - 3.0 / (x * x) + (3.0 / x) * _stable_cot(x)


def sphere_magnetic_polarizability(radius_m: float, frequency_hz: float,
                                   conductor: Conductor = Conductor()
                                   ) -> complex:
    """Complex magnetic polarizability ``alpha`` of a conducting sphere [m^3].

    ``m = alpha H0``; PEC limit ``-2 pi a^3``.
    """
    if radius_m <= 0.0:
        raise ConfigurationError(f"radius must be positive, got {radius_m}")
    x = conductor.wavenumber(frequency_hz) * radius_m
    return -2.0 * math.pi * radius_m ** 3 * sphere_shape_function(x)


def sphere_absorbed_power(radius_m: float, frequency_hz: float,
                          h_field: float = 1.0,
                          conductor: Conductor = Conductor()) -> float:
    """Power absorbed by a conducting sphere in a uniform H field [W].

    ``P = (omega mu0 / 2) Im(alpha) |H0|^2`` — the eddy-current loss;
    approaches ``3 pi Rs a^2 |H0|^2`` at small skin depth.
    """
    alpha = sphere_magnetic_polarizability(radius_m, frequency_hz, conductor)
    omega = 2.0 * math.pi * frequency_hz
    p = 0.5 * omega * MU_0 * alpha.imag * h_field ** 2
    # Im(alpha) > 0 in the e^{-j omega t} convention used throughout.
    return float(p)


def _transverse_demagnetizing_factor(aspect: float) -> float:
    """Demagnetizing factor for the field *transverse* to a spheroid's
    symmetry axis; ``aspect = c/a`` (polar/equatorial semi-axes).

    ``n_t = (1 - n_z) / 2`` with the standard axial factor ``n_z``:
    prolate (aspect > 1) and oblate (aspect < 1) closed forms; sphere
    gives exactly 1/3.
    """
    if aspect <= 0.0:
        raise ConfigurationError(f"aspect must be positive, got {aspect}")
    if abs(aspect - 1.0) < 1e-9:
        return 1.0 / 3.0
    if aspect > 1.0:  # prolate
        e = math.sqrt(1.0 - 1.0 / (aspect * aspect))
        nz = ((1.0 - e * e) / e ** 3) * (math.atanh(e) - e)
    else:  # oblate
        e = math.sqrt(1.0 / (aspect * aspect) - 1.0)
        nz = ((1.0 + e * e) / e ** 3) * (e - math.atan(e))
    return 0.5 * (1.0 - nz)


def spheroid_magnetic_polarizability(equatorial_radius_m: float,
                                     polar_height_m: float,
                                     frequency_hz: float,
                                     conductor: Conductor = Conductor()
                                     ) -> complex:
    """Approximate transverse magnetic polarizability of a spheroid [m^3].

    Combines the sphere's skin-depth susceptibility with the spheroid's
    transverse demagnetizing factor (see module docstring). The effective
    ``x = k2 a_eff`` uses the volume-equivalent radius.
    """
    a = float(equatorial_radius_m)
    c = float(polar_height_m)
    if a <= 0.0 or c <= 0.0:
        raise ConfigurationError("spheroid semi-axes must be positive")
    volume = (4.0 / 3.0) * math.pi * a * a * c
    a_eff = (a * a * c) ** (1.0 / 3.0)
    x = conductor.wavenumber(frequency_hz) * a_eff
    f_x = sphere_shape_function(x)
    chi = -3.0 * f_x / (2.0 + f_x)
    n_t = _transverse_demagnetizing_factor(c / a)
    return volume * chi / (1.0 + n_t * chi)


@dataclass(frozen=True)
class HemisphericalBossModel:
    """HBM for a single (hemi)spheroidal boss per tile of area ``A``.

    Parameters mirror the paper's Fig. 5: boss height ``h`` (polar
    semi-axis of the half-spheroid), base diameter ``d`` (so equatorial
    radius a = d/2), tile area = the SWM patch area.
    """

    height_m: float
    base_diameter_m: float
    tile_area_m2: float
    conductor: Conductor = Conductor()

    def __post_init__(self) -> None:
        if self.height_m <= 0.0 or self.base_diameter_m <= 0.0:
            raise ConfigurationError("boss dimensions must be positive")
        base_area = math.pi * (self.base_diameter_m / 2.0) ** 2
        if base_area >= self.tile_area_m2:
            raise ConfigurationError(
                "boss base covers the whole tile; enlarge tile_area_m2"
            )

    @property
    def base_radius_m(self) -> float:
        return self.base_diameter_m / 2.0

    def hemiboss_absorbed_power(self, frequency_hz: float,
                                h_field: float = 1.0) -> float:
        """Power absorbed by the half-spheroid (half the image-completed
        full spheroid's power)."""
        alpha = spheroid_magnetic_polarizability(
            self.base_radius_m, self.height_m, frequency_hz, self.conductor)
        omega = 2.0 * math.pi * frequency_hz
        full = 0.5 * omega * MU_0 * alpha.imag * h_field ** 2
        return 0.5 * float(full)

    def enhancement(self, frequency_hz: np.ndarray) -> np.ndarray:
        """HBM loss-enhancement factor Pr/Ps (vectorized over frequency)."""
        freqs = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
        if np.any(freqs <= 0.0):
            raise ConfigurationError("frequencies must be positive")
        a = self.base_radius_m
        out = np.empty(freqs.shape, dtype=np.float64)
        for i, f in enumerate(freqs):
            rs = self.conductor.surface_resistance(float(f))
            flat_density = 0.5 * rs  # per |H0|^2
            p_boss = self.hemiboss_absorbed_power(float(f))
            pr = (self.tile_area_m2 - math.pi * a * a) * flat_density + p_boss
            out[i] = pr / (self.tile_area_m2 * flat_density)
        return out

    def high_frequency_limit(self) -> float:
        """PEC-sphere asymptote ``1 + 2 pi a^2 / A`` (for a spherical boss)."""
        a = self.base_radius_m
        return 1.0 + 2.0 * math.pi * a * a / self.tile_area_m2
