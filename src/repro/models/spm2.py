"""Second-order small-perturbation method (SPM2) for the scalar model.

The paper compares SWM against the SPM2 of Gu, Tsang & Braunisch (ref.
[8]), which is derived for the vectorial EM problem. For a like-for-like
comparison we derive SPM2 for the *same scalar two-medium problem* that
SWM solves, so the two must agree in the small-roughness limit by
construction (this is exactly the regime logic of the paper's Figs. 3-4,
and it is enforced by an integration test).

Derivation (details in DESIGN.md):

Zeroth order (flat interface, normal incidence):
    R0 = (k1 - beta k2)/(k1 + beta k2),  T0 = 2 k1/(k1 + beta k2).

First order (Rayleigh amplitudes per roughness mode k, with
``gamma_i = sqrt(k_i^2 - k^2)``, Im >= 0):
    t1(k) = T0 [k1^2 - beta k2^2 - gamma1 k2 (1-beta)] / (j (gamma1 + beta gamma2))
    r1(k) = t1(k) - j k2 T0 (1 - beta)

(the combination ``beta k2^2 = k1^2`` holds identically for a good
conductor because ``delta^2 = rho/(pi f mu)``, which cancels the leading
term — a nice structural check).

Second order, coherent (specular) amplitude R2 from the order-sigma^2
boundary-condition balance:
    I_r = int W(k) r1(k) d^2k,  I_t likewise,
    I_A = int W(k) [j gamma1 r1 + j gamma2 t1] d^2k - (sigma^2/2) T0 (k1^2 - k2^2)
    R2 = [ -j beta k2 I_A - beta k2^2 I_t + (sigma^2/2) j beta k2^3 T0
           + k1^2 I_r - (sigma^2/2) j k1^3 (1 - R0) ] / (j (k1 + beta k2))

Because the dielectric wavelength is enormous compared to the roughness
scale, every non-specular reflected mode is evanescent and carries no
power; scalar flux conservation in the (lossless) dielectric then gives

    Pr/Ps = 1 - 2 Re(R0* R2) / (1 - |R0|^2).

Like all SPM2 variants this is accurate for small roughness
(``sigma`` small against ``delta`` and ``eta``) and fails for large —
which is what Fig. 5 demonstrates.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..materials import PAPER_SYSTEM, TwoMediumSystem
from ..surfaces.correlation import CorrelationFunction


def _branch_sqrt(z: np.ndarray) -> np.ndarray:
    """sqrt with the Im >= 0 branch (decaying/outgoing convention)."""
    g = np.sqrt(np.asarray(z, dtype=np.complex128))
    return np.where(g.imag < 0.0, -g, g)


def _first_order_amplitudes(k: np.ndarray, k1: complex, k2: complex,
                            beta: complex) -> tuple[np.ndarray, np.ndarray]:
    """(r1, t1) per transverse roughness wavenumber array ``k``."""
    t0 = 2.0 * k1 / (k1 + beta * k2)
    g1 = _branch_sqrt(k1 * k1 - k * k)
    g2 = _branch_sqrt(k2 * k2 - k * k)
    numer = k1 * k1 - beta * k2 * k2 - g1 * k2 * (1.0 - beta)
    t1 = t0 * numer / (1j * (g1 + beta * g2))
    r1 = t1 - 1j * k2 * t0 * (1.0 - beta)
    return r1, t1


def _coherent_r2(correlation: CorrelationFunction, k1: complex, k2: complex,
                 beta: complex, n_quad: int, dimension: int) -> complex:
    """Second-order coherent reflection correction R2.

    ``dimension=2`` integrates the isotropic 2D spectrum (3D surface),
    ``dimension=1`` the 1D spectrum (y-uniform surface, for the 2D SWM).
    """
    ref = correlation.reference_length
    k_max = 80.0 / ref
    k = np.linspace(0.0, k_max, n_quad + 1)[1:]  # skip k = 0 (zero measure)
    if dimension == 2:
        w = correlation.spectrum_2d(k)
        measure = 2.0 * math.pi * k * np.gradient(k)
    elif dimension == 1:
        w = correlation.spectrum_1d(k)
        measure = 2.0 * np.gradient(k)  # +/- k folded
    else:
        raise ConfigurationError(f"dimension must be 1 or 2, got {dimension}")

    r1, t1 = _first_order_amplitudes(k, k1, k2, beta)
    g1 = _branch_sqrt(k1 * k1 - k * k)
    g2 = _branch_sqrt(k2 * k2 - k * k)

    sigma2 = correlation.sigma ** 2
    t0 = 2.0 * k1 / (k1 + beta * k2)
    r0 = (k1 - beta * k2) / (k1 + beta * k2)

    i_r = np.sum(w * r1 * measure)
    i_t = np.sum(w * t1 * measure)
    i_a = (np.sum(w * (1j * g1 * r1 + 1j * g2 * t1) * measure)
           - 0.5 * sigma2 * t0 * (k1 * k1 - k2 * k2))

    numer = (-1j * beta * k2 * i_a
             - beta * k2 * k2 * i_t
             + 0.5j * sigma2 * beta * k2 ** 3 * t0
             + k1 * k1 * i_r
             - 0.5j * sigma2 * k1 ** 3 * (1.0 - r0))
    return complex(numer / (1j * (k1 + beta * k2)))


def spm2_enhancement(frequency_hz: np.ndarray,
                     correlation: CorrelationFunction,
                     system: TwoMediumSystem = PAPER_SYSTEM,
                     n_quad: int = 4000) -> np.ndarray:
    """SPM2 loss-enhancement factor Pr/Ps for a 3D random rough surface.

    Parameters
    ----------
    frequency_hz:
        Frequencies in Hz (scalar or array).
    correlation:
        Surface correlation function with lengths in **meters**.
    system:
        Dielectric/conductor pair.
    n_quad:
        Number of radial quadrature points for the spectral integrals.
    """
    return _enhancement(frequency_hz, correlation, system, n_quad, dimension=2)


def spm2_enhancement_profile(frequency_hz: np.ndarray,
                             correlation: CorrelationFunction,
                             system: TwoMediumSystem = PAPER_SYSTEM,
                             n_quad: int = 4000) -> np.ndarray:
    """SPM2 for a y-uniform (2D) surface — the closed-form partner of the
    2D SWM solver, using the 1D roughness spectrum."""
    return _enhancement(frequency_hz, correlation, system, n_quad, dimension=1)


def _enhancement(frequency_hz: np.ndarray, correlation: CorrelationFunction,
                 system: TwoMediumSystem, n_quad: int,
                 dimension: int) -> np.ndarray:
    freqs = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
    if np.any(freqs <= 0.0):
        raise ConfigurationError("frequencies must be positive")
    if n_quad < 100:
        raise ConfigurationError(f"n_quad too small: {n_quad}")
    out = np.empty(freqs.shape, dtype=np.float64)
    for i, f in enumerate(freqs):
        k1 = complex(system.k1(float(f)))
        k2 = system.k2(float(f))
        beta = system.beta(float(f))
        r0 = (k1 - beta * k2) / (k1 + beta * k2)
        r2 = _coherent_r2(correlation, k1, k2, beta, n_quad, dimension)
        denom = 1.0 - abs(r0) ** 2
        out[i] = 1.0 - 2.0 * (np.conj(r0) * r2).real / denom
    return out
