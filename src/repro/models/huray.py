"""Huray "snowball" roughness model (extension beyond the paper).

The Huray model — the industry-standard successor to the hemispherical
approaches the paper discusses — represents the rough surface as stacks
of conducting spheres ("snowballs") on a flat tile and sums their
scattering/absorption cross-sections:

    K(f) = 1 + (3/2) * sum_i  (N_i * 4 pi a_i^2 / A_tile)
                             / (1 + delta/a_i + delta^2 / (2 a_i^2))

(the standard form; see Huray, "The Foundations of Signal Integrity").
It is included so users can compare SWM against the model most modern
EDA tools expose, and because its high-frequency saturation value
``1 + (3/2) * (surface ratio)`` mirrors the HBM bookkeeping in
:mod:`repro.models.hbm`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..materials import Conductor


@dataclass(frozen=True)
class SnowballDeposit:
    """One population of snowballs: N spheres of radius ``a`` per tile."""

    radius_m: float
    count: float

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ConfigurationError(
                f"snowball radius must be positive, got {self.radius_m}"
            )
        if self.count <= 0.0:
            raise ConfigurationError(
                f"snowball count must be positive, got {self.count}"
            )


@dataclass(frozen=True)
class HurayModel:
    """A Huray surface description: tile area + snowball populations.

    The classic "cannonball" parameterization for a foil of 10-point-mean
    roughness ``Rz`` uses 14 spheres of radius ``Rz/6`` on a tile of side
    ``Rz * sqrt(3)`` (:meth:`cannonball`).
    """

    tile_area_m2: float
    deposits: tuple[SnowballDeposit, ...] = field(default_factory=tuple)
    conductor: Conductor = Conductor()

    def __post_init__(self) -> None:
        if self.tile_area_m2 <= 0.0:
            raise ConfigurationError(
                f"tile area must be positive, got {self.tile_area_m2}"
            )
        if not self.deposits:
            raise ConfigurationError("at least one snowball deposit required")

    @classmethod
    def cannonball(cls, rz_m: float,
                   conductor: Conductor = Conductor()) -> "HurayModel":
        """Cannonball-Huray: 14 spheres of radius Rz/6 on an Rz-scaled tile."""
        if rz_m <= 0.0:
            raise ConfigurationError(f"Rz must be positive, got {rz_m}")
        radius = rz_m / 6.0
        tile = (math.sqrt(3.0) * rz_m) ** 2
        return cls(tile_area_m2=tile,
                   deposits=(SnowballDeposit(radius_m=radius, count=14.0),),
                   conductor=conductor)

    def enhancement(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Loss enhancement factor K(f) (scalar or array in, array out)."""
        f = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
        if np.any(f <= 0.0):
            raise ConfigurationError("frequencies must be positive")
        delta = np.array([self.conductor.skin_depth(float(x)) for x in f])
        k = np.ones_like(f)
        for dep in self.deposits:
            a = dep.radius_m
            surface_ratio = dep.count * 4.0 * math.pi * a * a / self.tile_area_m2
            k = k + 1.5 * surface_ratio / (1.0 + delta / a
                                           + delta ** 2 / (2.0 * a * a))
        return k

    def saturation(self) -> float:
        """High-frequency limit ``1 + (3/2) sum N 4 pi a^2 / A``."""
        total = sum(d.count * 4.0 * math.pi * d.radius_m ** 2
                    for d in self.deposits)
        return 1.0 + 1.5 * total / self.tile_area_m2
