"""Closed-form roughness-loss models the paper compares SWM against.

- :mod:`empirical` — Morgan/Hammerstad eq. (1) and friends;
- :mod:`spm2` — second-order small perturbation method (small roughness);
- :mod:`hbm` — hemispherical boss model (large roughness / high f);
- :mod:`huray` — Huray snowball model (extension).
"""

from .empirical import (
    groiss_enhancement,
    hammerstad_enhancement,
    hemispherical_area_limit,
    morgan_enhancement,
)
from .hbm import (
    HemisphericalBossModel,
    sphere_absorbed_power,
    sphere_magnetic_polarizability,
    spheroid_magnetic_polarizability,
)
from .huray import HurayModel, SnowballDeposit
from .spm2 import spm2_enhancement, spm2_enhancement_profile

__all__ = [
    "HemisphericalBossModel",
    "HurayModel",
    "SnowballDeposit",
    "groiss_enhancement",
    "hammerstad_enhancement",
    "hemispherical_area_limit",
    "morgan_enhancement",
    "sphere_absorbed_power",
    "sphere_magnetic_polarizability",
    "spheroid_magnetic_polarizability",
    "spm2_enhancement",
    "spm2_enhancement_profile",
]
