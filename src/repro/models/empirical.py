"""Empirical surface-roughness loss formulas.

The paper's eq. (1) is Morgan's fitted curve as popularized by the
Hammerstad-Bekkadal microstrip handbook:

    Pr/Ps = 1 + (2/pi) * atan(1.4 * (sigma/delta)^2)

It depends *only* on ``sigma/delta`` — the paper's Fig. 3 uses it to show
that a one-parameter model cannot distinguish surfaces with equal sigma
but different correlation lengths. Also provided:

- :func:`groiss_enhancement` — Groiss et al.'s exponential saturation fit;
- :func:`hemispherical_area_limit` — the geometric (true-area) upper
  bound at skin depths much smaller than the roughness.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..materials import Conductor


def _as_delta(frequency_hz: np.ndarray, conductor: Conductor) -> np.ndarray:
    f = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
    if np.any(f <= 0.0):
        raise ConfigurationError("frequencies must be positive")
    return np.sqrt(conductor.resistivity / (math.pi * f * 4e-7 * math.pi
                                            * conductor.mu_r))


def hammerstad_enhancement(frequency_hz: np.ndarray, sigma_m: float,
                           conductor: Conductor = Conductor()) -> np.ndarray:
    """The paper's eq. (1): ``1 + (2/pi) atan(1.4 (sigma/delta)^2)``.

    Parameters
    ----------
    frequency_hz:
        Frequencies in Hz (scalar or array).
    sigma_m:
        RMS surface roughness in meters.
    conductor:
        Conductor material (for the skin depth).
    """
    if sigma_m <= 0.0:
        raise ConfigurationError(f"sigma must be positive, got {sigma_m}")
    delta = _as_delta(frequency_hz, conductor)
    return 1.0 + (2.0 / math.pi) * np.arctan(1.4 * (sigma_m / delta) ** 2)


#: Alias: eq. (1) is Morgan's fit in Hammerstad's handbook form.
morgan_enhancement = hammerstad_enhancement


def groiss_enhancement(frequency_hz: np.ndarray, sigma_m: float,
                       conductor: Conductor = Conductor()) -> np.ndarray:
    """Groiss et al. saturation fit ``1 + exp(-(delta / (2 sigma))^1.6)``.

    Another one-parameter empirical model; saturates at 2 like eq. (1)
    but with a different knee. Provided for model-comparison studies.
    """
    if sigma_m <= 0.0:
        raise ConfigurationError(f"sigma must be positive, got {sigma_m}")
    delta = _as_delta(frequency_hz, conductor)
    return 1.0 + np.exp(-((delta / (2.0 * sigma_m)) ** 1.6))


def hemispherical_area_limit(rms_slope: float) -> float:
    """Geometric loss limit: mean true-area factor of a Gaussian surface.

    When the skin depth is much smaller than every roughness scale the
    current follows the surface and ``Pr/Ps -> <sqrt(1 + |grad f|^2)>``.
    For an isotropic Gaussian surface with total RMS slope ``s``
    (``<|grad f|^2> = s^2``, each component variance ``s^2/2``), the
    expectation has the closed form

        E[sqrt(1 + s^2/2 * Q)] with Q ~ chi^2_2,

    i.e. ``1 + (sqrt(pi)/2) u exp(u^2) erfc(u)`` ... computed numerically
    here for robustness (Gauss-Laguerre on the exponential tail).
    """
    if rms_slope < 0.0:
        raise ConfigurationError(f"rms_slope must be >= 0, got {rms_slope}")
    if rms_slope == 0.0:
        return 1.0
    # |grad f|^2 = (s^2/2) * Q with Q ~ chi^2_2 = Exp(mean 2).
    nodes, weights = np.polynomial.laguerre.laggauss(64)
    # Q = 2t, pdf of t is exp(-t): E[g(Q)] = int exp(-t) g(2t) dt.
    vals = np.sqrt(1.0 + (rms_slope ** 2 / 2.0) * 2.0 * nodes)
    return float(np.sum(weights * vals))
