"""Material models and derived electromagnetic quantities.

This module owns every "physics input" of the scalar wave model:

- :class:`Conductor` — a good conductor characterized by its DC
  resistivity ``rho`` (the paper's copper: 1.67 uOhm*cm).
- :class:`Dielectric` — a lossless dielectric characterized by its
  relative permittivity (the paper's SiO2: 3.7).
- :class:`TwoMediumSystem` — the dielectric/conductor pair appearing in
  the coupled integral equations; provides the wavenumbers ``k1``, ``k2``,
  the skin depth ``delta`` and the boundary-condition ratio
  ``beta = -j * omega * eps1 * rho`` of eq. (6) of the paper.

Sign conventions
----------------
We use the ``exp(-j*omega*t)`` time convention of the paper, i.e. the
outgoing scalar Green's function is ``exp(+j*k*r) / (4*pi*r)`` and decaying
waves have wavenumbers with *positive* imaginary part. The conductor
wavenumber is ``k2 = (1+j)/delta``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .constants import COPPER_RESISTIVITY, EPS_0, MU_0, SIO2_EPS_R
from .errors import ConfigurationError


def skin_depth(frequency_hz: float, resistivity: float, mu_r: float = 1.0) -> float:
    """Skin depth ``delta = sqrt(rho / (pi * f * mu))`` in meters.

    Parameters
    ----------
    frequency_hz:
        Frequency in Hz; must be positive.
    resistivity:
        Conductor DC resistivity in ohm*m; must be positive.
    mu_r:
        Relative permeability of the conductor (1 for copper).
    """
    if frequency_hz <= 0.0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
    if resistivity <= 0.0:
        raise ConfigurationError(f"resistivity must be positive, got {resistivity}")
    return math.sqrt(resistivity / (math.pi * frequency_hz * MU_0 * mu_r))


@dataclass(frozen=True)
class Conductor:
    """A good conductor described by its DC resistivity [ohm*m]."""

    resistivity: float = COPPER_RESISTIVITY
    mu_r: float = 1.0
    name: str = "copper"

    def __post_init__(self) -> None:
        if self.resistivity <= 0.0:
            raise ConfigurationError(
                f"resistivity must be positive, got {self.resistivity}"
            )
        if self.mu_r <= 0.0:
            raise ConfigurationError(f"mu_r must be positive, got {self.mu_r}")

    def skin_depth(self, frequency_hz: float) -> float:
        """Skin depth in meters at ``frequency_hz``."""
        return skin_depth(frequency_hz, self.resistivity, self.mu_r)

    def wavenumber(self, frequency_hz: float) -> complex:
        """Conductor wavenumber ``k2 = (1+j)/delta`` [1/m]."""
        return (1.0 + 1.0j) / self.skin_depth(frequency_hz)

    def surface_resistance(self, frequency_hz: float) -> float:
        """Surface resistance ``Rs = rho / delta`` [ohm/square]."""
        return self.resistivity / self.skin_depth(frequency_hz)


@dataclass(frozen=True)
class Dielectric:
    """A lossless dielectric described by its relative permittivity."""

    eps_r: float = SIO2_EPS_R
    mu_r: float = 1.0
    name: str = "sio2"

    def __post_init__(self) -> None:
        if self.eps_r < 1.0:
            raise ConfigurationError(f"eps_r must be >= 1, got {self.eps_r}")
        if self.mu_r <= 0.0:
            raise ConfigurationError(f"mu_r must be positive, got {self.mu_r}")

    @property
    def permittivity(self) -> float:
        """Absolute permittivity [F/m]."""
        return self.eps_r * EPS_0

    def wavenumber(self, frequency_hz: float) -> float:
        """Dielectric wavenumber ``k1 = omega * sqrt(mu * eps)`` [1/m]."""
        if frequency_hz <= 0.0:
            raise ConfigurationError(
                f"frequency must be positive, got {frequency_hz}"
            )
        omega = 2.0 * math.pi * frequency_hz
        return omega * math.sqrt(MU_0 * self.mu_r * self.permittivity)


@dataclass(frozen=True)
class TwoMediumSystem:
    """The dielectric (medium 1) over conductor (medium 2) pair of the paper.

    All frequency-dependent quantities of the coupled integral equations
    are derived here so the solver modules contain no physics constants.
    """

    dielectric: Dielectric = Dielectric()
    conductor: Conductor = Conductor()

    def omega(self, frequency_hz: float) -> float:
        """Angular frequency [rad/s]."""
        return 2.0 * math.pi * frequency_hz

    def k1(self, frequency_hz: float) -> complex:
        """Wavenumber in the dielectric [1/m] (real, returned as complex)."""
        return complex(self.dielectric.wavenumber(frequency_hz))

    def k2(self, frequency_hz: float) -> complex:
        """Wavenumber in the conductor ``(1+j)/delta`` [1/m]."""
        return self.conductor.wavenumber(frequency_hz)

    def delta(self, frequency_hz: float) -> float:
        """Skin depth in the conductor [m]."""
        return self.conductor.skin_depth(frequency_hz)

    def beta(self, frequency_hz: float) -> complex:
        """Boundary-condition ratio ``beta = eps1/eps2 = -j*omega*eps1*rho``.

        This is eq. (6) of the paper: ``n.grad(psi1) = beta * n.grad(psi2)``.
        For a good conductor ``eps2 ~ j*sigma/omega`` so
        ``beta = eps1/eps2 = -j*omega*eps1*rho``.
        """
        omega = self.omega(frequency_hz)
        return -1.0j * omega * self.dielectric.permittivity * self.conductor.resistivity

    def flat_transmission(self, frequency_hz: float) -> complex:
        """Flat-interface transmission coefficient ``T0 = 2*k1/(k1 + beta*k2)``.

        Normal incidence of a unit-amplitude scalar plane wave from the
        dielectric onto a flat interface; for copper/SiO2 at GHz
        frequencies ``T0`` is close to 2 (the field-doubling of the
        tangential magnetic field at a good conductor).
        """
        k1 = self.k1(frequency_hz)
        k2 = self.k2(frequency_hz)
        b = self.beta(frequency_hz)
        return 2.0 * k1 / (k1 + b * k2)

    def flat_reflection(self, frequency_hz: float) -> complex:
        """Flat-interface reflection coefficient ``R0 = (k1 - beta*k2)/(k1 + beta*k2)``."""
        k1 = self.k1(frequency_hz)
        k2 = self.k2(frequency_hz)
        b = self.beta(frequency_hz)
        return (k1 - b * k2) / (k1 + b * k2)

    def smooth_power_per_area(self, frequency_hz: float) -> float:
        """Absorbed power per unit area of a *flat* interface.

        With the incident amplitude normalized to 1, the surface field is
        ``T0`` and the absorbed power density is ``|T0|^2 / (2*delta)``
        (the paper's eq. (11) with its unit-surface-field normalization).
        Units: the scalar power flux is reported in the same arbitrary
        energy-flux units as :meth:`repro.swm.solver.SWMResult.absorbed_power`;
        only ratios are physical.
        """
        t0 = self.flat_transmission(frequency_hz)
        return abs(t0) ** 2 / (2.0 * self.delta(frequency_hz))


#: The material pair used in all of the paper's numerical experiments.
PAPER_SYSTEM = TwoMediumSystem(Dielectric(SIO2_EPS_R), Conductor(COPPER_RESISTIVITY))
