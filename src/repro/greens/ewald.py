"""Doubly-periodic scalar Green's function via the Ewald method.

This implements the paper's eq. (8): the Green's function of a square
lattice (period ``L`` in both x and y) of 3D point sources at normal
incidence (zero Floquet phase), split Ewald-style into a Gaussian-screened
*spatial* image sum and a complementary *spectral* (Floquet-mode) sum, both
of which converge super-algebraically. Following ref. [16] of the paper
(Oroskar, Jackson & Wilton 2006), with the splitting parameter
``E = sqrt(pi)/L`` by default.

Derivation summary (verified by the unit tests in
``tests/test_greens_ewald.py``):

.. math::

    G^{pq}(\\Delta\\rho, \\Delta z)
      = \\sum_{pq} \\frac{1}{8\\pi R_{pq}}
        \\Big[e^{jkR}\\,\\mathrm{erfc}(R E + \\tfrac{jk}{2E})
            + e^{-jkR}\\,\\mathrm{erfc}(R E - \\tfrac{jk}{2E})\\Big]
      + \\sum_{mn} \\frac{j\\,e^{j k_{mn}\\cdot\\Delta\\rho}}{4 L^2 \\gamma_{mn}}
        \\Big[e^{j\\gamma \\Delta z}\\,\\mathrm{erfc}(-\\Delta z E - \\tfrac{j\\gamma}{2E})
            + e^{-j\\gamma \\Delta z}\\,\\mathrm{erfc}(\\Delta z E - \\tfrac{j\\gamma}{2E})\\Big]

with ``R_pq = |\\Delta r - (pL, qL, 0)|``,
``k_mn = (2\\pi m/L, 2\\pi n/L)`` and
``gamma_mn = sqrt(k^2 - |k_mn|^2)`` on the ``Im(gamma) >= 0`` branch.
The result is independent of ``E`` (a key property test). For lossy ``k``
(``Im k > 0``) the direct image sum converges absolutely and provides an
independent reference implementation (:func:`periodic_green_direct`).

Lengths here are dimensionless ("solver units", micrometers in practice);
callers scale consistently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .freespace import green3d, green3d_radial_derivative
from .special import (
    erfc_complex,
    erfc_scaled_pair,
    erfc_scaled_pair_derivative,
    ewald_spectral_bracket,
    ewald_spectral_bracket_minus,
)


def _gamma_mn(k: complex, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
    """Mode wavenumber ``sqrt(k^2 - kx^2 - ky^2)`` on the ``Im >= 0`` branch."""
    g = np.sqrt(np.asarray(k * k - kx * kx - ky * ky, dtype=np.complex128))
    flip = g.imag < 0.0
    g = np.where(flip, -g, g)
    # Pure-real negative-real-axis results would be ambiguous; numpy's
    # sqrt already returns the principal branch (Im >= 0) there.
    return g


@dataclass(frozen=True)
class EwaldConfig:
    """Truncation/splitting configuration for the Ewald sums.

    ``n_images``/``n_modes`` of 3 keep the neglected terms below ~1e-10
    for the default ``split = sqrt(pi)/L``; the defaults are validated by
    the truncation-convergence tests.
    """

    period: float
    split: float | None = None
    n_images: int = 3
    n_modes: int = 3
    _effective_split: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if self.n_images < 1 or self.n_modes < 1:
            raise ConfigurationError("n_images and n_modes must be >= 1")
        eff = self.split if self.split is not None else math.sqrt(math.pi) / self.period
        if eff <= 0.0:
            raise ConfigurationError(f"split parameter must be positive, got {eff}")
        object.__setattr__(self, "_effective_split", eff)

    @property
    def effective_split(self) -> float:
        """The splitting parameter E actually used."""
        return self._effective_split


def _image_offsets(cfg: EwaldConfig) -> list[tuple[int, int]]:
    n = cfg.n_images
    return [(p, q) for p in range(-n, n + 1) for q in range(-n, n + 1)]


def _mode_indices(cfg: EwaldConfig) -> list[tuple[int, int]]:
    n = cfg.n_modes
    return [(m, n2) for m in range(-n, n + 1) for n2 in range(-n, n + 1)]


def periodic_green(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                   k: complex, cfg: EwaldConfig,
                   exclude_primary: bool = False) -> np.ndarray:
    """Doubly-periodic Green's function ``G^pq`` at separations (dx, dy, dz).

    Parameters
    ----------
    dx, dy, dz:
        Components of ``r - r'`` (broadcastable arrays). ``(dx, dy)`` need
        not be reduced to the first unit cell.
    k:
        Medium wavenumber (``Im k >= 0``).
    cfg:
        Ewald truncation configuration (holds the period ``L``).
    exclude_primary:
        If True, the ``p = q = 0`` *spatial* image term is replaced by its
        Gaussian-screened remainder ``primary - G_free``, i.e. the
        free-space singularity ``e^{jkR}/(4 pi R)`` is subtracted. The
        result is then smooth at ``R -> 0`` (used for self-term assembly).
    """
    dx = np.asarray(dx, dtype=np.float64)
    dy = np.asarray(dy, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    dx, dy, dz = np.broadcast_arrays(dx, dy, dz)
    e = cfg.effective_split
    lat = cfg.period

    total = np.zeros(dx.shape, dtype=np.complex128)

    # Spatial (screened image) sum.
    for (p, q) in _image_offsets(cfg):
        rx = dx - p * lat
        ry = dy - q * lat
        r = np.sqrt(rx * rx + ry * ry + dz * dz)
        if p == 0 and q == 0:
            safe = np.where(r > 0.0, r, 1.0)
            term = erfc_scaled_pair(safe, k, e) / (8.0 * np.pi * safe)
            if exclude_primary:
                term = term - green3d(safe, k)
                term = np.where(r > 0.0, term, _primary_minus_free_limit(k, e))
            else:
                if np.any(r == 0.0):
                    raise ConfigurationError(
                        "periodic_green called at zero separation without "
                        "exclude_primary=True"
                    )
            total += term
        else:
            total += erfc_scaled_pair(r, k, e) / (8.0 * np.pi * r)

    # Spectral (Floquet mode) sum.
    area = lat * lat
    for (m, n) in _mode_indices(cfg):
        kx = 2.0 * np.pi * m / lat
        ky = 2.0 * np.pi * n / lat
        g = complex(_gamma_mn(k, np.array(kx), np.array(ky)))
        phase = np.exp(1j * (kx * dx + ky * dy))
        bracket = ewald_spectral_bracket(dz, g, e)
        total += phase * bracket * (1j / (4.0 * area * g))

    return total


def periodic_green_gradient(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                            k: complex, cfg: EwaldConfig,
                            exclude_primary: bool = False
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradient of ``G^pq`` with respect to the *field* separation (dx,dy,dz).

    Returns ``(dG/d dx, dG/d dy, dG/d dz)``. With ``exclude_primary=True``
    the gradient of the free-space primary is subtracted as well (the
    remainder's gradient vanishes at zero separation by symmetry, and the
    exact zero-separation value of the remainder gradient is 0 in x and y;
    in z it is likewise 0, see the module tests).
    """
    dx = np.asarray(dx, dtype=np.float64)
    dy = np.asarray(dy, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    dx, dy, dz = np.broadcast_arrays(dx, dy, dz)
    e = cfg.effective_split
    lat = cfg.period

    gx = np.zeros(dx.shape, dtype=np.complex128)
    gy = np.zeros(dx.shape, dtype=np.complex128)
    gz = np.zeros(dx.shape, dtype=np.complex128)

    for (p, q) in _image_offsets(cfg):
        rx = dx - p * lat
        ry = dy - q * lat
        r = np.sqrt(rx * rx + ry * ry + dz * dz)
        primary = (p == 0 and q == 0)
        if primary:
            zero = r == 0.0
            safe = np.where(zero, 1.0, r)
        else:
            zero = None
            safe = r
        # d/dr of [bracket/(8 pi r)] = bracket'/(8 pi r) - bracket/(8 pi r^2)
        bracket = erfc_scaled_pair(safe, k, e)
        dbracket = erfc_scaled_pair_derivative(safe, k, e)
        radial = dbracket / (8.0 * np.pi * safe) - bracket / (8.0 * np.pi * safe ** 2)
        if primary and exclude_primary:
            radial = radial - green3d_radial_derivative(safe, k)
            # The remainder is an analytic function of r^2; its radial
            # derivative vanishes at r = 0.
            radial = np.where(zero, 0.0, radial)
        elif primary and zero is not None and np.any(zero):
            raise ConfigurationError(
                "periodic_green_gradient called at zero separation without "
                "exclude_primary=True"
            )
        inv = np.where(safe > 0.0, 1.0 / safe, 0.0)
        gx += radial * rx * inv
        gy += radial * ry * inv
        gz += radial * dz * inv

    area = lat * lat
    for (m, n) in _mode_indices(cfg):
        kx = 2.0 * np.pi * m / lat
        ky = 2.0 * np.pi * n / lat
        g = complex(_gamma_mn(k, np.array(kx), np.array(ky)))
        phase = np.exp(1j * (kx * dx + ky * dy))
        bracket = ewald_spectral_bracket(dz, g, e)
        minus = ewald_spectral_bracket_minus(dz, g, e)
        coef = 1j / (4.0 * area * g)
        gx += 1j * kx * phase * bracket * coef
        gy += 1j * ky * phase * bracket * coef
        gz += phase * (1j * g) * minus * coef

    return gx, gy, gz


def _primary_minus_free_limit(k: complex, split: float) -> complex:
    """``lim_{R->0} [screened primary spatial term - e^{jkR}/(4 pi R)]``.

    With ``bracket(R) = e^{jkR} erfc(RE + jk/2E) + e^{-jkR} erfc(RE - jk/2E)``
    the limit equals ``[bracket'(0) - 2jk] / (8 pi)`` where::

        bracket'(0) = -2jk erf(jk/2E) - (4E/sqrt(pi)) exp(k^2/4E^2)

    (using ``erfc(c) - erfc(-c) = -2 erf(c)``).
    """
    e = float(split)
    c = 1j * k / (2.0 * e)
    erf_c = 1.0 - complex(erfc_complex(np.array(c)))
    dbracket0 = (-2j * k * erf_c
                 - (4.0 * e / math.sqrt(math.pi)) * np.exp(k * k / (4.0 * e * e)))
    return complex((dbracket0 - 2j * k) / (8.0 * math.pi))


def periodic_green_direct(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                          k: complex, period: float, n_images: int = 40,
                          exclude_primary: bool = False) -> np.ndarray:
    """Brute-force image summation reference (converges only for lossy k).

    Used by the test-suite to validate :func:`periodic_green` for
    conductor-like wavenumbers, where ``exp(-Im(k) R)`` makes the direct
    lattice sum absolutely convergent.
    """
    if k.imag <= 0.0:
        raise ConfigurationError(
            "direct image summation requires a lossy wavenumber (Im k > 0)"
        )
    dx = np.asarray(dx, dtype=np.float64)
    dy = np.asarray(dy, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    dx, dy, dz = np.broadcast_arrays(dx, dy, dz)
    total = np.zeros(dx.shape, dtype=np.complex128)
    for p in range(-n_images, n_images + 1):
        for q in range(-n_images, n_images + 1):
            if exclude_primary and p == 0 and q == 0:
                continue
            rx = dx - p * period
            ry = dy - q * period
            r = np.sqrt(rx * rx + ry * ry + dz * dz)
            total += green3d(r, k)
    return total
