"""Special functions needed by the periodic Green's function machinery.

The Ewald representation requires the complementary error function of a
*complex* argument, which ``scipy.special.erfc`` does not provide. We build
it from the Faddeeva function ``w(z) = exp(-z^2) * erfc(-j*z)``
(``scipy.special.wofz``), which is accurate over the whole complex plane:

    erfc(z) = exp(-z^2) * w(j*z)

For ``Re(z) < 0`` the direct formula overflows (``exp(-z^2)`` is huge while
``w`` is tiny), so we use the reflection ``erfc(z) = 2 - erfc(-z)``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import wofz


def erfc_complex(z: np.ndarray | complex) -> np.ndarray:
    """Complementary error function for complex arguments.

    Vectorized over numpy arrays. Matches ``scipy.special.erfc`` on the
    real axis and satisfies ``erfc(z) + erfc(-z) == 2`` everywhere.
    """
    z = np.asarray(z, dtype=np.complex128)
    out = np.empty_like(z)
    neg = z.real < 0.0
    pos = ~neg
    zp = z[pos]
    out[pos] = np.exp(-zp * zp) * wofz(1j * zp)
    zn = -z[neg]
    out[neg] = 2.0 - np.exp(-zn * zn) * wofz(1j * zn)
    return out


def erfc_scaled_pair(r: np.ndarray, k: complex, split: float) -> np.ndarray:
    """The Ewald *spatial*-sum bracket, computed overflow-safely.

    Returns ``f(r) = exp(j*k*r) * erfc(r*E + j*k/(2E))
    + exp(-j*k*r) * erfc(r*E - j*k/(2E))`` for ``r >= 0`` and splitting
    parameter ``E = split``. The two terms are individually enormous when
    ``Im(k)`` is large; we evaluate each as
    ``exp(a) * erfc(b) = exp(a - b^2) * w(j*b)`` with the exponents
    combined analytically, which is finite whenever the *product* is.

    Notes
    -----
    With ``b = r*E + j*k/(2E)`` we have
    ``a - b^2 = j*k*r - (r*E)^2 + k^2/(4E^2) - j*k*r = k^2/(4E^2) - r^2E^2``
    so both terms share the same combined exponent
    ``exp(k^2/(4E^2) - r^2 E^2)``; only the Faddeeva factor differs.
    For ``Re(b) < 0`` we apply the reflection formula term-wise.
    """
    shape = np.shape(r)
    r = np.atleast_1d(np.asarray(r, dtype=np.float64))
    e = float(split)
    c = 1j * k / (2.0 * e)
    shared = k * k / (4.0 * e * e) - (r * e) ** 2

    def _term(sign: float) -> np.ndarray:
        # exp(sign*j*k*r) * erfc(r*E + sign*c)
        b = r * e + sign * c
        out = np.empty(b.shape, dtype=np.complex128)
        neg = b.real < 0.0
        pos = ~neg
        out[pos] = np.exp(shared[pos]) * wofz(1j * b[pos])
        # Reflection: exp(a)*erfc(b) = 2*exp(a) - exp(a)*erfc(-b)
        #            = 2*exp(a) - exp(a - b^2) * w(-j*b)
        if np.any(neg):
            a = sign * 1j * k * r[neg]
            out[neg] = 2.0 * np.exp(a) - np.exp(shared[neg]) * wofz(-1j * b[neg])
        return out

    return (_term(1.0) + _term(-1.0)).reshape(shape)


def erfc_scaled_pair_derivative(r: np.ndarray, k: complex, split: float) -> np.ndarray:
    """d/dr of :func:`erfc_scaled_pair` evaluated elementwise.

    Used for the gradient of the Ewald spatial sum. Analytically::

        f'(r) = j*k * [exp(j*k*r)*erfc(r*E + c) - exp(-j*k*r)*erfc(r*E - c)]
                - (4E/sqrt(pi)) * exp(k^2/(4E^2) - r^2*E^2)

    where ``c = j*k/(2E)`` (the two Gaussian boundary terms combine).
    """
    shape = np.shape(r)
    r = np.atleast_1d(np.asarray(r, dtype=np.float64))
    e = float(split)
    c = 1j * k / (2.0 * e)
    shared = k * k / (4.0 * e * e) - (r * e) ** 2

    def _term(sign: float) -> np.ndarray:
        b = r * e + sign * c
        out = np.empty(b.shape, dtype=np.complex128)
        neg = b.real < 0.0
        pos = ~neg
        out[pos] = np.exp(shared[pos]) * wofz(1j * b[pos])
        if np.any(neg):
            a = sign * 1j * k * r[neg]
            out[neg] = 2.0 * np.exp(a) - np.exp(shared[neg]) * wofz(-1j * b[neg])
        return out

    diff = _term(1.0) - _term(-1.0)
    gauss = (4.0 * e / np.sqrt(np.pi)) * np.exp(shared)
    return (1j * k * diff - gauss).reshape(shape)


def _exp_erfc(a: np.ndarray, b: np.ndarray, shared: np.ndarray) -> np.ndarray:
    """Overflow-safe ``exp(a) * erfc(b)`` given ``shared = a - b**2``.

    The identity ``exp(a)*erfc(b) = exp(a - b^2) * w(j*b)`` is stable for
    ``Re(b) >= 0``; for ``Re(b) < 0`` the reflection
    ``exp(a)*erfc(b) = 2*exp(a) - exp(a - b^2)*w(-j*b)`` is used, which is
    safe because in every Ewald use-case ``Re(a) <= 0`` on that branch.
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    shared = np.asarray(shared, dtype=np.complex128)
    a, b, shared = np.broadcast_arrays(a, b, shared)
    out = np.empty(b.shape, dtype=np.complex128)
    neg = b.real < 0.0
    pos = ~neg
    out[pos] = np.exp(shared[pos]) * wofz(1j * b[pos])
    if np.any(neg):
        out[neg] = 2.0 * np.exp(a[neg]) - np.exp(shared[neg]) * wofz(-1j * b[neg])
    return out


def ewald_spectral_bracket(x: np.ndarray, q: complex, split: float) -> np.ndarray:
    """The Ewald *spectral*-sum bracket.

    Returns ``e^{jqx} erfc(-xE - jq/(2E)) + e^{-jqx} erfc(xE - jq/(2E))``
    for real ``x`` (any sign) and mode wavenumber ``q`` (``Im q >= 0``).
    Both terms share the combined exponent ``q^2/(4E^2) - x^2 E^2``.

    Limits used in validation: E -> 0 gives 0; E -> infinity gives
    ``2 e^{j q |x|}`` (the exact spectral representation's kernel).
    """
    shape = np.shape(x)
    x = np.atleast_1d(np.asarray(x, dtype=np.float64))
    e = float(split)
    c = 1j * q / (2.0 * e)
    shared = q * q / (4.0 * e * e) - (x * e) ** 2
    t1 = _exp_erfc(1j * q * x, -x * e - c, shared)
    t2 = _exp_erfc(-1j * q * x, x * e - c, shared)
    return (t1 + t2).reshape(shape)


def ewald_spectral_bracket_minus(x: np.ndarray, q: complex,
                                 split: float) -> np.ndarray:
    """Difference variant ``e^{jqx} erfc(-xE - jq/2E) - e^{-jqx} erfc(xE - jq/2E)``.

    ``d/dx ewald_spectral_bracket = j*q * ewald_spectral_bracket_minus``
    (the Gaussian boundary terms cancel exactly), which gives the z-part
    of the Ewald gradient in closed form.
    """
    shape = np.shape(x)
    x = np.atleast_1d(np.asarray(x, dtype=np.float64))
    e = float(split)
    c = 1j * q / (2.0 * e)
    shared = q * q / (4.0 * e * e) - (x * e) ** 2
    t1 = _exp_erfc(1j * q * x, -x * e - c, shared)
    t2 = _exp_erfc(-1j * q * x, x * e - c, shared)
    return (t1 - t2).reshape(shape)
