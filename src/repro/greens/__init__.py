"""Scalar Green's functions: free-space, doubly-periodic (Ewald), 1D-periodic.

These are the computational substrate of the SWM boundary-element solvers.
All lengths are dimensionless; the SWM layer feeds micrometer-scaled
geometry so that kernel magnitudes stay O(1).
"""

from .ewald import (
    EwaldConfig,
    periodic_green,
    periodic_green_direct,
    periodic_green_gradient,
)
from .freespace import (
    green2d,
    green2d_gradient,
    green2d_radial_derivative,
    green3d,
    green3d_gradient,
    green3d_radial_derivative,
)
from .periodic2d import (
    periodic_green2d,
    periodic_green2d_direct,
    periodic_green2d_gradient,
    periodic_green2d_pair,
)
from .special import erfc_complex

__all__ = [
    "EwaldConfig",
    "erfc_complex",
    "green2d",
    "green2d_gradient",
    "green2d_radial_derivative",
    "green3d",
    "green3d_gradient",
    "green3d_radial_derivative",
    "periodic_green",
    "periodic_green_direct",
    "periodic_green_gradient",
    "periodic_green2d",
    "periodic_green2d_direct",
    "periodic_green2d_gradient",
    "periodic_green2d_pair",
]
