"""1D-periodic Green's function for the 2D scalar problem (Fig. 6's 2D SWM).

A row of 2D line sources with period ``L`` along x. Exact spectral
representation::

    g(dx, dz) = (j / (2 L)) * sum_m  exp(j k_m dx + j gamma_m |dz|) / gamma_m

with ``k_m = 2 pi m / L`` and ``gamma_m = sqrt(k^2 - k_m^2)``
(``Im gamma >= 0``). On the surface (``dz ~ 0``) the series converges only
like ``1/|m|``; we accelerate it with a Kummer transformation, subtracting
the quasi-static asymptote ``exp(-|k_m| |dz|) / (j |k_m|)`` whose lattice
sum has the closed form::

    sum_{m>=1} exp(-m a) cos(m b) / m = -(1/2) ln(1 - 2 exp(-a) cos(b) + exp(-2a))

(``a = 2 pi |dz| / L``, ``b = 2 pi dx / L``). The residual terms decay like
``1/|m|^3`` even at ``dz = 0``. The closed-form log term carries the
free-space ``-(1/2 pi) ln(rho)`` singularity, which is what the self-term
regularization subtracts.

Lengths are dimensionless (micrometers in practice).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from .freespace import green2d, green2d_gradient

#: Euler-Mascheroni constant (for the small-argument Hankel expansion).
EULER_GAMMA = 0.5772156649015329


def _gamma_m(k: complex, km: float) -> complex:
    g = complex(np.sqrt(np.complex128(k * k - km * km)))
    if g.imag < 0.0:
        g = -g
    return g


def periodic_green2d(dx: np.ndarray, dz: np.ndarray, k: complex,
                     period: float, m_max: int = 64,
                     exclude_primary: bool = False) -> np.ndarray:
    """1D-periodic 2D Green's function at separations ``(dx, dz)``.

    With ``exclude_primary=True`` the free-space line-source singularity
    ``(j/4) H0(k rho)`` is subtracted; the result is then smooth at zero
    separation, where the analytic limit is returned.
    """
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if m_max < 1:
        raise ConfigurationError(f"m_max must be >= 1, got {m_max}")
    dx = np.asarray(dx, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    dx, dz = np.broadcast_arrays(dx, dz)
    adz = np.abs(dz)
    lat = float(period)

    # m = 0 mode plus Kummer-corrected m != 0 modes.
    g0 = _gamma_m(k, 0.0)
    total = np.exp(1j * g0 * adz) / g0
    for m in range(1, m_max + 1):
        km = 2.0 * math.pi * m / lat
        gm = _gamma_m(k, km)
        propag = np.exp(1j * gm * adz) / gm
        asym = np.exp(-km * adz) / (1j * km)
        # +m and -m combine into a cosine in dx.
        total = total + 2.0 * np.cos(km * dx) * (propag - asym)
    total = total * (1j / (2.0 * lat))

    # Closed-form Kummer remainder:
    #   (j/2L) * sum_{m!=0} e^{j k_m dx} e^{-|k_m||dz|}/(j |k_m|)
    # = -(1/4pi) * ln(1 - 2 e^{-a} cos(b) + e^{-2a})
    a = 2.0 * math.pi * adz / lat
    b = 2.0 * math.pi * dx / lat
    d_arg = 1.0 - 2.0 * np.exp(-a) * np.cos(b) + np.exp(-2.0 * a)

    rho = np.sqrt(dx * dx + dz * dz)
    zero = rho == 0.0
    if exclude_primary:
        safe_d = np.where(zero, 1.0, d_arg)
        log_term = -np.log(safe_d) / (4.0 * math.pi)
        safe_rho = np.where(zero, 1.0, rho)
        result = total + log_term - green2d(safe_rho, k)
        if np.any(zero):
            limit = (-math.log(2.0 * math.pi / lat) / (2.0 * math.pi)
                     + (np.log(k / 2.0) + EULER_GAMMA) / (2.0 * math.pi)
                     - 0.25j)
            # 'total' is already smooth at rho = 0 and was evaluated there.
            result = np.where(zero, total + limit, result)
        return result

    if np.any(zero):
        raise ConfigurationError(
            "periodic_green2d called at zero separation without "
            "exclude_primary=True"
        )
    return total - np.log(d_arg) / (4.0 * math.pi)


def periodic_green2d_gradient(dx: np.ndarray, dz: np.ndarray, k: complex,
                              period: float, m_max: int = 64,
                              exclude_primary: bool = False
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Gradient ``(d/d dx, d/d dz)`` of :func:`periodic_green2d`.

    At ``dz == 0`` the ``|dz|``-type kinks are resolved in the
    principal-value sense (``sign(0) = 0``), which is the correct
    interpretation for the double-layer MOM kernel. With
    ``exclude_primary=True``, the free-space gradient is subtracted and
    the zero-separation value is the PV limit 0.
    """
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    dx = np.asarray(dx, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    dx, dz = np.broadcast_arrays(dx, dz)
    adz = np.abs(dz)
    sgn = np.sign(dz)
    lat = float(period)

    g0 = _gamma_m(k, 0.0)
    gx = np.zeros(dx.shape, dtype=np.complex128)
    gz = sgn * 1j * np.exp(1j * g0 * adz)
    for m in range(1, m_max + 1):
        km = 2.0 * math.pi * m / lat
        gm = _gamma_m(k, km)
        propag = np.exp(1j * gm * adz) / gm
        asym = np.exp(-km * adz) / (1j * km)
        dpropag = 1j * np.exp(1j * gm * adz)
        dasym = -km * np.exp(-km * adz) / (1j * km)
        gx += -2.0 * km * np.sin(km * dx) * (propag - asym)
        gz += 2.0 * np.cos(km * dx) * sgn * (dpropag - dasym)
    gx = gx * (1j / (2.0 * lat))
    gz = gz * (1j / (2.0 * lat))

    a = 2.0 * math.pi * adz / lat
    b = 2.0 * math.pi * dx / lat
    ea = np.exp(-a)
    d_arg = 1.0 - 2.0 * ea * np.cos(b) + ea * ea

    rho = np.sqrt(dx * dx + dz * dz)
    zero = rho == 0.0
    safe_d = np.where(zero, 1.0, d_arg)
    dd_db = 2.0 * ea * np.sin(b)
    dd_da = 2.0 * ea * np.cos(b) - 2.0 * ea * ea
    scale = 2.0 * math.pi / lat
    log_gx = -(dd_db * scale) / (4.0 * math.pi * safe_d)
    log_gz = -(dd_da * sgn * scale) / (4.0 * math.pi * safe_d)

    gx = gx + log_gx
    gz = gz + log_gz

    if exclude_primary:
        fgx, fgz = _safe_free_gradient(dx, dz, k, zero)
        gx = np.where(zero, 0.0, gx - fgx)
        gz = np.where(zero, 0.0, gz - fgz)
        return gx, gz

    if np.any(zero):
        raise ConfigurationError(
            "periodic_green2d_gradient called at zero separation without "
            "exclude_primary=True"
        )
    return gx, gz


def _safe_free_gradient(dx: np.ndarray, dz: np.ndarray, k: complex,
                        zero: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Free-space 2D gradient with zero-separation entries masked to 0."""
    sdx = np.where(zero, 1.0, dx)
    fgx, fgz = green2d_gradient(sdx, dz, k)
    return np.where(zero, 0.0, fgx), np.where(zero, 0.0, fgz)


def periodic_green2d_direct(dx: np.ndarray, dz: np.ndarray, k: complex,
                            period: float, n_images: int = 200) -> np.ndarray:
    """Brute-force Hankel image sum (reference; requires ``Im k > 0``)."""
    if complex(k).imag <= 0.0:
        raise ConfigurationError(
            "direct image summation requires a lossy wavenumber (Im k > 0)"
        )
    dx = np.asarray(dx, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    dx, dz = np.broadcast_arrays(dx, dz)
    total = np.zeros(dx.shape, dtype=np.complex128)
    for p in range(-n_images, n_images + 1):
        rho = np.sqrt((dx - p * period) ** 2 + dz * dz)
        total += green2d(rho, k)
    return total
