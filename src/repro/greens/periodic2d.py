"""1D-periodic Green's function for the 2D scalar problem (Fig. 6's 2D SWM).

A row of 2D line sources with period ``L`` along x. Exact spectral
representation::

    g(dx, dz) = (j / (2 L)) * sum_m  exp(j k_m dx + j gamma_m |dz|) / gamma_m

with ``k_m = 2 pi m / L`` and ``gamma_m = sqrt(k^2 - k_m^2)``
(``Im gamma >= 0``). On the surface (``dz ~ 0``) the series converges only
like ``1/|m|``; we accelerate it with a Kummer transformation, subtracting
the quasi-static asymptote ``exp(-|k_m| |dz|) / (j |k_m|)`` whose lattice
sum has the closed form::

    sum_{m>=1} exp(-m a) cos(m b) / m = -(1/2) ln(1 - 2 exp(-a) cos(b) + exp(-2a))

(``a = 2 pi |dz| / L``, ``b = 2 pi dx / L``). The residual terms decay like
``1/|m|^3`` even at ``dz = 0``. The closed-form log term carries the
free-space ``-(1/2 pi) ln(rho)`` singularity, which is what the self-term
regularization subtracts.

The mode factors ``cos(k_m dx)`` / ``sin(k_m dx)`` are built by the
Chebyshev angle-addition recurrence (one cos/sin pair of transcendental
passes total, four multiply-adds per further mode), and
:func:`periodic_green2d_pair` runs the whole mode loop *once* for the
value, the gradient and any number of media, sharing every k-independent
intermediate — the batched-assembly hot path of the 2D solver. The fused
results are bit-identical to the per-call functions, which consume the
same recurrence.

Lengths are dimensionless (micrometers in practice).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from .freespace import green2d, green2d_gradient, green2d_radial_derivative

#: Euler-Mascheroni constant (for the small-argument Hankel expansion).
EULER_GAMMA = 0.5772156649015329


def _gamma_m(k: complex, km: float) -> complex:
    g = complex(np.sqrt(np.complex128(k * k - km * km)))
    if g.imag < 0.0:
        g = -g
    return g


def _mode_seed(dx: np.ndarray, period: float
               ) -> tuple[np.ndarray, np.ndarray]:
    """``(cos b, sin b)`` of the fundamental mode phase ``b = 2 pi dx / L``.

    Seeds the angle-addition recurrence ``cos((m+1)b) = cos(mb) cos b -
    sin(mb) sin b`` (and the sine analog): every further mode costs four
    multiply-adds instead of a transcendental pass. The factors depend
    only on ``dx`` — in the batched assembly that is the shared ``(N, N)``
    x-grid while ``dz`` carries the ``(B, N, N)`` sample axis, so they
    are also built B times less often than the per-mode ``cos``/``sin``
    they replace.
    """
    b = 2.0 * math.pi * dx / period
    return np.cos(b), np.sin(b)


def periodic_green2d(dx: np.ndarray, dz: np.ndarray, k: complex,
                     period: float, m_max: int = 64,
                     exclude_primary: bool = False) -> np.ndarray:
    """1D-periodic 2D Green's function at separations ``(dx, dz)``.

    With ``exclude_primary=True`` the free-space line-source singularity
    ``(j/4) H0(k rho)`` is subtracted; the result is then smooth at zero
    separation, where the analytic limit is returned.
    """
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if m_max < 1:
        raise ConfigurationError(f"m_max must be >= 1, got {m_max}")
    dx = np.asarray(dx, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    adz = np.abs(dz)
    lat = float(period)

    # m = 0 mode plus Kummer-corrected m != 0 modes; the cosine factors
    # come from the shared angle-addition recurrence.
    c1, s1 = _mode_seed(dx, lat)
    g0 = _gamma_m(k, 0.0)
    total = np.exp(1j * g0 * adz) / g0
    c, s = c1, s1
    for m in range(1, m_max + 1):
        km = 2.0 * math.pi * m / lat
        gm = _gamma_m(k, km)
        propag = np.exp(1j * gm * adz) / gm
        asym = np.exp(-km * adz) / (1j * km)
        # +m and -m combine into a cosine in dx.
        total = total + (2.0 * c) * (propag - asym)
        c, s = c * c1 - s * s1, s * c1 + c * s1
    total = total * (1j / (2.0 * lat))

    # Closed-form Kummer remainder:
    #   (j/2L) * sum_{m!=0} e^{j k_m dx} e^{-|k_m||dz|}/(j |k_m|)
    # = -(1/4pi) * ln(1 - 2 e^{-a} cos(b) + e^{-2a})
    a = 2.0 * math.pi * adz / lat
    ea = np.exp(-a)
    d_arg = 1.0 - 2.0 * ea * c1 + ea * ea

    rho = np.sqrt(dx * dx + dz * dz)
    zero = rho == 0.0
    if exclude_primary:
        safe_d = np.where(zero, 1.0, d_arg)
        log_term = -np.log(safe_d) / (4.0 * math.pi)
        safe_rho = np.where(zero, 1.0, rho)
        result = total + log_term - green2d(safe_rho, k)
        if np.any(zero):
            limit = (-math.log(2.0 * math.pi / lat) / (2.0 * math.pi)
                     + (np.log(k / 2.0) + EULER_GAMMA) / (2.0 * math.pi)
                     - 0.25j)
            # 'total' is already smooth at rho = 0 and was evaluated there.
            result = np.where(zero, total + limit, result)
        return result

    if np.any(zero):
        raise ConfigurationError(
            "periodic_green2d called at zero separation without "
            "exclude_primary=True"
        )
    return total - np.log(d_arg) / (4.0 * math.pi)


def periodic_green2d_gradient(dx: np.ndarray, dz: np.ndarray, k: complex,
                              period: float, m_max: int = 64,
                              exclude_primary: bool = False
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Gradient ``(d/d dx, d/d dz)`` of :func:`periodic_green2d`.

    At ``dz == 0`` the ``|dz|``-type kinks are resolved in the
    principal-value sense (``sign(0) = 0``), which is the correct
    interpretation for the double-layer MOM kernel. With
    ``exclude_primary=True``, the free-space gradient is subtracted and
    the zero-separation value is the PV limit 0.
    """
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if m_max < 1:
        raise ConfigurationError(f"m_max must be >= 1, got {m_max}")
    dx = np.asarray(dx, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    adz = np.abs(dz)
    sgn = np.sign(dz)
    lat = float(period)
    shape = np.broadcast_shapes(dx.shape, dz.shape)

    c1, s1 = _mode_seed(dx, lat)
    g0 = _gamma_m(k, 0.0)
    gx = np.zeros(shape, dtype=np.complex128)
    gz = np.zeros(shape, dtype=np.complex128)
    e0 = np.exp(1j * g0 * adz)
    gz += sgn * 1j * e0
    c, s = c1, s1
    for m in range(1, m_max + 1):
        km = 2.0 * math.pi * m / lat
        gm = _gamma_m(k, km)
        egm = np.exp(1j * gm * adz)
        em = np.exp(-km * adz)
        propag = egm / gm
        asym = em / (1j * km)
        dpropag = 1j * egm
        dasym = -km * em / (1j * km)
        gx += (-2.0 * km) * s * (propag - asym)
        gz += (2.0 * c) * sgn * (dpropag - dasym)
        c, s = c * c1 - s * s1, s * c1 + c * s1
    gx = gx * (1j / (2.0 * lat))
    gz = gz * (1j / (2.0 * lat))

    a = 2.0 * math.pi * adz / lat
    ea = np.exp(-a)
    d_arg = 1.0 - 2.0 * ea * c1 + ea * ea

    rho = np.sqrt(dx * dx + dz * dz)
    zero = rho == 0.0
    safe_d = np.where(zero, 1.0, d_arg)
    dd_db = 2.0 * ea * s1
    dd_da = 2.0 * ea * c1 - 2.0 * ea * ea
    scale = 2.0 * math.pi / lat
    log_gx = -(dd_db * scale) / (4.0 * math.pi * safe_d)
    log_gz = -(dd_da * sgn * scale) / (4.0 * math.pi * safe_d)

    gx = gx + log_gx
    gz = gz + log_gz

    if exclude_primary:
        fgx, fgz = _safe_free_gradient(dx, dz, k, zero)
        gx = np.where(zero, 0.0, gx - fgx)
        gz = np.where(zero, 0.0, gz - fgz)
        return gx, gz

    if np.any(zero):
        raise ConfigurationError(
            "periodic_green2d_gradient called at zero separation without "
            "exclude_primary=True"
        )
    return gx, gz


def periodic_green2d_pair(dx: np.ndarray, dz: np.ndarray,
                          ks: "Sequence[complex]", period: float,
                          m_max: int = 64, exclude_primary: bool = False
                          ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Fused value + gradient of the periodic kernel for several media.

    One pass of the Kummer mode loop serves every wavenumber in ``ks``
    *and* both the Green's function and its gradient, sharing each
    k-independent intermediate: the recurrence-built ``cos(k_m dx)`` /
    ``sin(k_m dx)`` mode factors (evaluated on ``dx``'s own shape, not
    the broadcast one — in the batched assembly ``dx`` is ``(N, N)``
    while ``dz`` is ``(B, N, N)``), the quasi-static asymptotes
    ``exp(-k_m |dz|)`` and their derivative factors, the closed-form
    ``d_arg``/log remainder, ``rho`` and the zero-separation masks.

    Returns a list of ``(g, gx, gz)`` triples aligned with ``ks``,
    **bit-identical** to :func:`periodic_green2d` /
    :func:`periodic_green2d_gradient` called per wavenumber: every
    shared quantity is the exact expression the per-call path evaluates,
    and the per-medium accumulations run in the same mode order.
    """
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if m_max < 1:
        raise ConfigurationError(f"m_max must be >= 1, got {m_max}")
    dx = np.asarray(dx, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    adz = np.abs(dz)
    sgn = np.sign(dz)
    lat = float(period)
    # Wavenumbers pass through untouched so every per-medium expression
    # sees exactly the operand the per-call path would.
    ks = list(ks)
    shape = np.broadcast_shapes(dx.shape, dz.shape)

    c1, s1 = _mode_seed(dx, lat)

    totals: list[np.ndarray] = []
    gxs: list[np.ndarray] = []
    gzs: list[np.ndarray] = []
    for kk in ks:
        g0 = _gamma_m(kk, 0.0)
        eg0 = np.exp(1j * g0 * adz)
        t = np.zeros(shape, dtype=np.complex128)
        t += eg0 / g0
        gx = np.zeros(shape, dtype=np.complex128)
        gz = np.zeros(shape, dtype=np.complex128)
        gz += sgn * 1j * eg0
        totals.append(t)
        gxs.append(gx)
        gzs.append(gz)

    c, s = c1, s1
    for m in range(1, m_max + 1):
        km = 2.0 * math.pi * m / lat
        em = np.exp(-km * adz)
        asym = em / (1j * km)
        dasym = -km * em / (1j * km)
        gc = 2.0 * c
        ax = -2.0 * km * s
        az = 2.0 * c * sgn
        for kk, t, gx, gz in zip(ks, totals, gxs, gzs):
            gm = _gamma_m(kk, km)
            egm = np.exp(1j * gm * adz)
            propag = egm / gm
            dpropag = 1j * egm
            diff = propag - asym
            t += gc * diff
            gx += ax * diff
            gz += az * (dpropag - dasym)
        c, s = c * c1 - s * s1, s * c1 + c * s1
    scale_mode = 1j / (2.0 * lat)
    for i in range(len(ks)):
        totals[i] = totals[i] * scale_mode
        gxs[i] = gxs[i] * scale_mode
        gzs[i] = gzs[i] * scale_mode

    # Closed-form Kummer remainder and masks (all k-independent).
    a = 2.0 * math.pi * adz / lat
    ea = np.exp(-a)
    d_arg = 1.0 - 2.0 * ea * c1 + ea * ea
    rho = np.sqrt(dx * dx + dz * dz)
    zero = rho == 0.0
    any_zero = bool(np.any(zero))
    if any_zero and not exclude_primary:
        raise ConfigurationError(
            "periodic_green2d_pair called at zero separation without "
            "exclude_primary=True"
        )
    safe_d = np.where(zero, 1.0, d_arg)
    dd_db = 2.0 * ea * s1
    dd_da = 2.0 * ea * c1 - 2.0 * ea * ea
    scale = 2.0 * math.pi / lat
    log_gx = -(dd_db * scale) / (4.0 * math.pi * safe_d)
    log_gz = -(dd_da * sgn * scale) / (4.0 * math.pi * safe_d)
    if exclude_primary:
        log_term = -np.log(safe_d) / (4.0 * math.pi)
        safe_rho = np.where(zero, 1.0, rho)
        sdx = np.where(zero, 1.0, dx)
        srho = np.sqrt(sdx * sdx + dz * dz)

    results: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for kk, t, gx, gz in zip(ks, totals, gxs, gzs):
        gx = gx + log_gx
        gz = gz + log_gz
        if exclude_primary:
            g = t + log_term - green2d(safe_rho, kk)
            if any_zero:
                limit = (-math.log(2.0 * math.pi / lat) / (2.0 * math.pi)
                         + (np.log(kk / 2.0) + EULER_GAMMA) / (2.0 * math.pi)
                         - 0.25j)
                g = np.where(zero, t + limit, g)
            dgdr = green2d_radial_derivative(srho, kk)
            fgx = np.where(zero, 0.0, dgdr * sdx / srho)
            fgz = np.where(zero, 0.0, dgdr * dz / srho)
            gx = np.where(zero, 0.0, gx - fgx)
            gz = np.where(zero, 0.0, gz - fgz)
        else:
            g = t - np.log(d_arg) / (4.0 * math.pi)
        results.append((g, gx, gz))
    return results


def _safe_free_gradient(dx: np.ndarray, dz: np.ndarray, k: complex,
                        zero: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Free-space 2D gradient with zero-separation entries masked to 0."""
    sdx = np.where(zero, 1.0, dx)
    fgx, fgz = green2d_gradient(sdx, dz, k)
    return np.where(zero, 0.0, fgx), np.where(zero, 0.0, fgz)


def periodic_green2d_direct(dx: np.ndarray, dz: np.ndarray, k: complex,
                            period: float, n_images: int = 200) -> np.ndarray:
    """Brute-force Hankel image sum (reference; requires ``Im k > 0``)."""
    if complex(k).imag <= 0.0:
        raise ConfigurationError(
            "direct image summation requires a lossy wavenumber (Im k > 0)"
        )
    dx = np.asarray(dx, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    dx, dz = np.broadcast_arrays(dx, dz)
    total = np.zeros(dx.shape, dtype=np.complex128)
    for p in range(-n_images, n_images + 1):
        rho = np.sqrt((dx - p * period) ** 2 + dz * dz)
        total += green2d(rho, k)
    return total
