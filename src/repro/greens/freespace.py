"""Free-space scalar Green's functions in 3D and 2D, with gradients.

3D: ``G(r) = exp(j*k*r) / (4*pi*r)`` — the paper's eq. (4).
2D: ``G(rho) = (j/4) * H0^(1)(k*rho)`` (line source), used by the 2D SWM
formulation of Fig. 6.

Both use the ``exp(-j*omega*t)`` convention: ``Im(k) >= 0`` gives decay.
"""

from __future__ import annotations

import numpy as np
from scipy.special import hankel1


def green3d(r: np.ndarray, k: complex) -> np.ndarray:
    """3D scalar Green's function ``exp(jkr)/(4 pi r)`` for distances ``r``.

    ``r`` must be positive; the caller handles the self-term singularity.
    """
    r = np.asarray(r, dtype=np.float64)
    return np.exp(1j * k * r) / (4.0 * np.pi * r)


def green3d_radial_derivative(r: np.ndarray, k: complex) -> np.ndarray:
    """dG/dr for the 3D Green's function: ``(jk - 1/r) * G``."""
    r = np.asarray(r, dtype=np.float64)
    # Materialized like the Hankel terms below: multiplying the call's
    # freshly returned buffer lets numpy elide the temporary and round
    # the final ulp by alignment (RPR002).
    g = green3d(r, k)
    return (1j * k - 1.0 / r) * g


def green3d_gradient(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                     k: complex) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cartesian gradient of G with respect to the *field* point.

    ``(dx, dy, dz)`` are the components of ``r - r'``; returns
    ``(dG/dx, dG/dy, dG/dz)``. The gradient w.r.t. the *source* point is
    the negative of this.
    """
    r = np.sqrt(dx * dx + dy * dy + dz * dz)
    dgdr = green3d_radial_derivative(r, k)
    return dgdr * dx / r, dgdr * dy / r, dgdr * dz / r


def green2d(rho: np.ndarray, k: complex) -> np.ndarray:
    """2D scalar Green's function ``(j/4) H0^(1)(k rho)``."""
    rho = np.asarray(rho, dtype=np.float64)
    # The Hankel result is bound to a name before the scalar multiply.
    # A bare `0.25j * hankel1(...)` lets numpy elide the temporary and
    # multiply in place, and the in-place inner loop can round a final
    # ulp differently from the out-of-place one depending on buffer
    # alignment — which made the same separations produce different
    # bits in (N, N) per-sample and (B, N, N) batched assemblies.
    h0 = hankel1(0, k * rho)
    return 0.25j * h0


def green2d_radial_derivative(rho: np.ndarray, k: complex) -> np.ndarray:
    """d/d rho of the 2D Green's function: ``-(j k / 4) H1^(1)(k rho)``.

    See :func:`green2d` for why the Hankel factor is materialized.
    """
    rho = np.asarray(rho, dtype=np.float64)
    h1 = hankel1(1, k * rho)
    return -0.25j * k * h1


def green2d_gradient(dx: np.ndarray, dz: np.ndarray,
                     k: complex) -> tuple[np.ndarray, np.ndarray]:
    """Cartesian gradient of the 2D Green's function w.r.t. the field point."""
    rho = np.sqrt(dx * dx + dz * dz)
    dgdr = green2d_radial_derivative(rho, k)
    return dgdr * dx / rho, dgdr * dz / rho
