"""Thin urllib client for the sweep service.

Two ways to consume a remote server:

- :class:`ServiceClient` — the high-level API, mirroring
  :func:`repro.engine.run_sweep`'s call signature: ``submit`` a
  :class:`~repro.engine.SweepSpec`, stream progress, and get back a
  fully decoded :class:`~repro.engine.SweepResult` that is
  bit-identical to an in-process run of the same spec against the same
  cache.

- :class:`RemoteExecutor` — an :class:`~repro.engine.Executor` whose
  backend is the server's ``POST /v1/jobs`` batch endpoint. Because it
  speaks the standard executor contract, ``engine_session
  (executor=RemoteExecutor(url))`` makes the remote service a drop-in
  **third executor tier** (serial -> process pool -> service): every
  ``run_sweep``/``run_batch`` in scope executes on the server and
  benefits from its global cache and cross-client deduplication,
  with zero changes to experiment code.

Standard library only (``urllib.request``); errors surface as
:class:`ServiceUnavailable` (transport) or
:class:`~repro.errors.ConfigurationError` (HTTP 4xx with a decoded
server message).
"""

from __future__ import annotations

import json
import os
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError, ReproError
from ..engine.executors import Executor, ProgressFn, ResultFn
from ..engine.results import SweepResult
from ..engine.spec import Job, SweepSpec
from . import wire

#: ``progress(done, total)`` — same shape the engine uses.
Progress = ProgressFn

#: HTTP statuses treated as transient on idempotent requests.
_TRANSIENT_HTTP = frozenset({500, 502, 503, 504})


class ServiceUnavailable(ReproError):
    """The server could not be reached (connection/transport error)."""


class ServiceClient:
    """HTTP client for one sweep-service base URL.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8321"`` (trailing slash optional).
    timeout:
        Per-request socket timeout in seconds.
    poll_interval:
        Sleep between status polls when not streaming events.
    token:
        Bearer token sent on every request; defaults from
        ``REPRO_SERVICE_TOKEN`` (the variable the server arms its auth
        from), so a matched client/server pair needs no wiring.
    max_retries:
        Extra attempts for **idempotent GETs** that hit a transport
        error or transient HTTP status (500/502/503/504), with capped
        exponential backoff + jitter. POSTs never retry here — the
        fleet worker owns its own (lease-aware) retry policy.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 poll_interval: float = 0.25,
                 token: str | None = None,
                 max_retries: int = 3,
                 backoff_base_s: float = 0.2,
                 backoff_cap_s: float = 5.0) -> None:
        if "://" not in base_url:
            base_url = "http://" + base_url
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.poll_interval = poll_interval
        if token is None:
            token = os.environ.get("REPRO_SERVICE_TOKEN") or None
        self.token = token or None
        self.max_retries = max(int(max_retries), 0)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _headers(self, body: bytes | None,
                 content_type: str = "application/json") -> dict[str, str]:
        headers: dict[str, str] = {}
        if body:
            headers["Content-Type"] = content_type
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _backoff(self, attempt: int) -> None:
        """Sleep before retry ``attempt`` (1-based): capped exponential
        with multiplicative jitter, so a worker fleet hammering one
        recovering server naturally de-synchronizes."""
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2.0 ** (attempt - 1)))
        time.sleep(delay * random.uniform(0.5, 1.0))

    def _request(self, method: str, path: str,
                 body: bytes | None = None,
                 content_type: str = "application/json") -> dict:
        headers = self._headers(body, content_type)
        attempts = 1 + (self.max_retries if method == "GET" else 0)
        for attempt in range(1, attempts + 1):
            req = urllib.request.Request(
                self.base_url + path, data=body, method=method,
                headers=headers)
            try:
                with urllib.request.urlopen(req,
                                            timeout=self.timeout) as resp:
                    return json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                detail = exc.read()
                try:
                    message = json.loads(detail).get("error",
                                                     detail.decode())
                except (ValueError, AttributeError):
                    message = detail.decode("utf-8", "replace")
                if exc.code in _TRANSIENT_HTTP and attempt < attempts:
                    self._backoff(attempt)
                    continue
                raise ConfigurationError(
                    f"{method} {path} -> HTTP {exc.code}: {message}"
                ) from exc
            except urllib.error.URLError as exc:
                if attempt < attempts:
                    self._backoff(attempt)
                    continue
                raise ServiceUnavailable(
                    f"cannot reach sweep service at {self.base_url}: "
                    f"{exc.reason}"
                ) from exc
        raise AssertionError("unreachable")  # loop always returns/raises

    def _get(self, path: str) -> dict:
        return self._request("GET", path)

    def _post(self, path: str, body: bytes | None = None) -> dict:
        return self._request("POST", path, body=body)

    # ------------------------------------------------------------------
    # Service API
    # ------------------------------------------------------------------

    def healthy(self) -> bool:
        """True iff the server answers its liveness probe."""
        try:
            return bool(self._get("/v1/healthz").get("ok"))
        except ReproError:
            return False

    def experiments(self) -> list[dict]:
        """The server's registered experiments."""
        return self._get("/v1/experiments")["experiments"]

    def cache_info(self) -> dict:
        """The server cache's stats/size snapshot."""
        return self._get("/v1/cache")

    def metrics_text(self) -> str:
        """The server's ``/v1/metrics`` Prometheus text document."""
        req = urllib.request.Request(self.base_url + "/v1/metrics",
                                     headers=self._headers(None))
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceUnavailable(
                f"cannot reach sweep service at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}"
            ) from exc

    def submit(self, spec: SweepSpec) -> str:
        """Submit a sweep; returns the ticket id immediately."""
        return self._post(
            "/v1/sweeps", wire.dumps(spec).encode("utf-8"))["id"]

    def status(self, ticket_id: str) -> dict:
        """The ticket's status document (see the server docs)."""
        return self._get(f"/v1/sweeps/{ticket_id}")

    def events(self, ticket_id: str,
               on_event: Callable[[dict], None] | None = None
               ) -> list[dict]:
        """Consume the NDJSON progress stream until it closes.

        Blocks until the sweep finishes; every parsed event is passed
        to ``on_event`` as it arrives and the full list is returned.
        """
        req = urllib.request.Request(
            f"{self.base_url}/v1/sweeps/{ticket_id}/events")
        events = []
        try:
            with urllib.request.urlopen(req, timeout=None) as resp:
                for raw in resp:
                    line = raw.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    events.append(event)
                    if on_event is not None:
                        on_event(event)
        except urllib.error.HTTPError as exc:
            raise ConfigurationError(
                f"events stream -> HTTP {exc.code}") from exc
        except urllib.error.URLError as exc:
            raise ServiceUnavailable(
                f"cannot reach sweep service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc
        return events

    def wait(self, ticket_id: str,
             progress: Progress | None = None,
             timeout: float | None = None) -> dict:
        """Poll until the ticket completes/fails; returns final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(ticket_id)
            if progress is not None:
                progress(status["done"], status["total"])
            if status["state"] in ("complete", "failed"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ConfigurationError(
                    f"sweep {ticket_id} still {status['state']} after "
                    f"{timeout} s ({status['done']}/{status['total']})"
                )
            time.sleep(self.poll_interval)

    @staticmethod
    def _decode_result(status: dict) -> SweepResult:
        """Decode the ``SweepResult`` out of a final status document."""
        ticket_id = status.get("id")
        if status["state"] == "failed":
            raise ConfigurationError(
                f"sweep {ticket_id} failed: {status.get('error')}"
            )
        if "result" not in status:
            raise ConfigurationError(
                f"sweep {ticket_id} is {status['state']} "
                f"({status['done']}/{status['total']}); no result yet"
            )
        body = wire.open_envelope(status["result"])
        result = wire.from_wire(body)
        if not isinstance(result, SweepResult):
            raise ConfigurationError(
                f"server returned {type(result).__name__}, "
                "expected SweepResult")
        return result

    def result(self, ticket_id: str) -> SweepResult:
        """Fetch and decode a completed ticket's :class:`SweepResult`."""
        return self._decode_result(self.status(ticket_id))

    def run_sweep(self, spec: SweepSpec,
                  progress: Progress | None = None,
                  timeout: float | None = None) -> SweepResult:
        """Remote analogue of :func:`repro.engine.run_sweep`.

        Submit, wait (polling, reporting ``progress(done, total)``),
        decode — the final status poll already carries the encoded
        result, so no extra fetch. A warm server cache answers without
        any solve.
        """
        if not isinstance(spec, SweepSpec):
            raise ConfigurationError(
                f"run_sweep expects a SweepSpec, got {type(spec).__name__}"
            )
        ticket_id = self.submit(spec)
        status = self.wait(ticket_id, progress=progress, timeout=timeout)
        return self._decode_result(status)

    def run_experiment(self, name: str, scale: str = "quick",
                       progress: Progress | None = None,
                       timeout: float | None = None) -> dict:
        """Run a registered experiment server-side; returns the reduced
        :class:`~repro.experiments.base.ExperimentResult` dict."""
        submitted = self._post(
            f"/v1/experiments/{name}/run",
            json.dumps({"scale": scale}).encode("utf-8"))
        if submitted.get("id") is None:  # solve-free: reduced inline
            return submitted["experiment"]
        status = self.wait(submitted["id"], progress=progress,
                           timeout=timeout)
        if status["state"] == "failed":
            raise ConfigurationError(
                f"experiment {name!r} failed remotely: "
                f"{status.get('error')}"
            )
        if "experiment" not in status:
            raise ConfigurationError(
                f"sweep {submitted['id']} finished without an "
                "experiment reduction"
            )
        return status["experiment"]

    def job_record(self, key: str) -> dict:
        """Artifact-store read: the cached record for a content hash,
        with its ``values`` array decoded."""
        record = self._get(f"/v1/jobs/{key}")
        record["payload"] = wire.decode_payload(record["payload"])
        return record

    # ------------------------------------------------------------------
    # Fleet worker protocol
    # ------------------------------------------------------------------

    def claim_jobs(self, worker: str, max_jobs: int = 1,
                   lease_s: float = 30.0) -> list[wire.WorkerClaim]:
        """Lease up to ``max_jobs`` queued jobs; empty list = drained."""
        doc = self._post("/v1/workers/claim", json.dumps({
            "worker": worker, "max_jobs": max_jobs, "lease_s": lease_s,
        }).encode("utf-8"))
        claims = wire.from_wire(wire.open_envelope(doc))
        if (not isinstance(claims, list)
                or not all(isinstance(c, wire.WorkerClaim)
                           for c in claims)):
            raise ConfigurationError(
                "claim response is not a wire WorkerClaim list")
        return claims

    def heartbeat(self, worker: str, slots: Mapping[str, str],
                  lease_s: float = 30.0,
                  telemetry: wire.WorkerTelemetry | None = None,
                  ) -> dict[str, bool]:
        """Extend leases; maps slot id -> still-alive.

        ``telemetry`` (wire v4) piggybacks the worker's federated
        metric/log snapshot on the heartbeat; omitted, the request body
        is byte-compatible with v3 servers.
        """
        body: dict[str, Any] = {
            "worker": worker, "slots": dict(slots), "lease_s": lease_s,
        }
        if telemetry is not None:
            body["telemetry"] = wire.to_wire(telemetry)
        doc = self._post("/v1/workers/heartbeat",
                         json.dumps(body).encode("utf-8"))
        return {str(k): bool(v)
                for k, v in (doc.get("alive") or {}).items()}

    def push_result(self, result: wire.WorkerResult) -> str:
        """Upload one job's result; returns 'committed' or 'stale'."""
        doc = self._post("/v1/workers/result",
                         wire.dumps(result).encode("utf-8"))
        return str(doc.get("status", ""))

    def workers(self) -> dict:
        """The server's fleet snapshot (``GET /v1/workers``)."""
        return self._get("/v1/workers")

    def worker_detail(self, worker_id: str) -> dict:
        """One worker's counters + federated telemetry snapshot."""
        return self._get(f"/v1/workers/{worker_id}")

    def logs(self, worker: str | None = None, level: str | None = None,
             since: float | None = None,
             limit: int | None = None) -> list[dict]:
        """Merged server + fleet structured log records."""
        from urllib.parse import urlencode
        params = {k: v for k, v in (("worker", worker), ("level", level),
                                    ("since", since), ("limit", limit))
                  if v is not None}
        path = "/v1/logs" + (f"?{urlencode(params)}" if params else "")
        return self._get(path).get("records", [])

    def sweep_trace(self, ticket_id: str) -> dict:
        """The sweep's merged Chrome trace document."""
        return self._get(f"/v1/sweeps/{ticket_id}/trace")


class RemoteExecutor(Executor):
    """Executor backend that ships job batches to a sweep service.

    The third executor tier: ``SerialExecutor`` runs in-process,
    ``ParallelExecutor`` on a local pool, ``RemoteExecutor`` on a
    shared server — same contract, so the engine (and everything above
    it: ``run_sweep``, ``run_batch``, ``repro.api``) is oblivious::

        from repro.engine import engine_session, run_sweep
        from repro.service.client import RemoteExecutor

        with engine_session(executor=RemoteExecutor("http://host:8321")):
            result = run_sweep(spec)   # solves happen on the server

    ``fn`` is ignored — the server always runs
    :func:`repro.engine.execute_job`; items must be engine
    :class:`~repro.engine.Job` objects. Results come back in item
    order, and ``on_result`` fires for every payload after the batch
    completes (the engine then commits them to the *local* cache, so
    subsequent local runs replay without any HTTP).
    """

    name = "remote"

    def __init__(self, base_url: str | ServiceClient,
                 poll_interval: float = 0.25,
                 timeout: float | None = None) -> None:
        self.client = (base_url if isinstance(base_url, ServiceClient)
                       else ServiceClient(base_url,
                                          poll_interval=poll_interval))
        self.timeout = timeout

    def run(self, fn: Callable[[Any], Any], items: Sequence[Any],
            progress: ProgressFn | None = None,
            on_result: ResultFn | None = None) -> list:
        if not items:
            return []
        if not all(isinstance(item, Job) for item in items):
            raise ConfigurationError(
                "RemoteExecutor can only run engine Jobs "
                "(the server always executes execute_job)"
            )
        client = self.client
        submitted = client._post(
            "/v1/jobs", wire.dumps(list(items)).encode("utf-8"))
        status = client.wait(submitted["id"], progress=progress,
                             timeout=self.timeout)
        if status["state"] == "failed":
            raise ConfigurationError(
                f"remote batch {submitted['id']} failed: "
                f"{status.get('error')}"
            )
        payloads = [wire.decode_payload(p) for p in status["payloads"]]
        if on_result is not None:
            for i, payload in enumerate(payloads):
                on_result(i, payload)
        return payloads

    def __repr__(self) -> str:
        return f"RemoteExecutor({self.client.base_url!r})"
