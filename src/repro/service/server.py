"""Streaming HTTP front-end over the sweep scheduler (stdlib only).

One long-running process turns the engine into a shared, cache-fronted
compute service: concurrent clients submit :class:`~repro.engine
.SweepSpec` documents (the :mod:`~repro.service.wire` format), cached
points are answered immediately, and overlapping pending work
deduplicates to one solve per unique content hash.

Endpoints (all JSON unless noted):

========================================  =============================
``POST /v1/sweeps``                       submit a wire ``SweepSpec``;
                                          returns a ticket
``POST /v1/jobs``                         submit a wire ``Job`` batch
                                          (the remote-executor path)
``GET  /v1/sweeps``                       ticket summaries
``GET  /v1/sweeps/<id>``                  status + partial results
                                          (+ full wire ``SweepResult``
                                          once complete)
``GET  /v1/sweeps/<id>/events``           NDJSON progress stream
                                          (terminates on completion)
``GET  /v1/sweeps/<id>/trace``            merged Chrome/Perfetto trace
                                          of the sweep across server +
                                          worker lanes (queue-wait /
                                          lease / solve / upload)
``GET  /v1/experiments``                  registered experiments
``POST /v1/experiments/<name>/run``       plan+submit a registered
                                          experiment (body:
                                          ``{"scale": "quick"}``)
``GET  /v1/jobs/<hash>``                  artifact-store read path
                                          over the disk cache tier
``GET  /v1/cache``                        cache stats + manifest size
``POST /v1/workers/claim``                lease queued jobs to a pull
                                          worker (wire ``WorkerClaim``
                                          list back)
``POST /v1/workers/heartbeat``            extend a worker's leases
``POST /v1/workers/result``               upload a wire ``WorkerResult``
                                          (content hash verified)
``GET  /v1/workers``                      fleet snapshot (workers,
                                          leases, stragglers, queue
                                          depth)
``GET  /v1/workers/<id>``                 one worker's lease counters +
                                          federated telemetry snapshot
``GET  /v1/logs``                         merged structured log records
                                          (``?worker=&level=&since=``)
``GET  /v1/metrics``                      Prometheus text exposition,
                                          server + federated
                                          ``worker="..."`` series
                                          (``text/plain``)
``GET  /v1/healthz``                      liveness probe + fleet/queue
                                          health, uptime, telemetry
                                          flag
========================================  =============================

Built on :class:`http.server.ThreadingHTTPServer` — no dependencies
beyond the standard library, per-request threads, and the engine's
context-local sessions (PR 3) keep concurrent requests isolated.

Setting ``REPRO_SERVICE_TOKEN`` (or passing ``token=``) requires
``Authorization: Bearer <token>`` on every mutating (POST) endpoint;
reads stay open. :class:`~repro.service.client.ServiceClient` and the
fleet worker pick the token up from the same variable automatically.
"""

from __future__ import annotations

import hmac
import json
import os
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

import numpy as np

from .. import telemetry
from ..errors import ReproError
from ..engine.cache import ResultCache
from ..engine.executors import Executor, ParallelExecutor, SerialExecutor
from ..engine.spec import Job, SweepSpec
from ..experiments import registry
from ..experiments.presets import SCALES, resolve_scale
from .scheduler import COMPLETE, SweepScheduler
from . import wire

#: Media type of the progress stream (one JSON event per line).
NDJSON = "application/x-ndjson"

#: Media type of the Prometheus text exposition format.
PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

# HTTP-layer instruments (no-ops until telemetry is enabled). Routes
# are normalized (`/v1/sweeps/*`) so per-ticket ids don't explode the
# label space.
_M_REQUESTS = telemetry.counter(
    "repro_http_requests_total", "HTTP requests served.",
    labels=("method", "route", "status"))
_M_REQUEST_LATENCY = telemetry.histogram(
    "repro_http_request_seconds", "Wall time per HTTP request.",
    labels=("method", "route"))
# Cache mirrors, refreshed from CacheStats.snapshot() at scrape time
# (gauges, not counters: the source of truth lives in CacheStats).
_M_CACHE_STATS = telemetry.gauge(
    "repro_cache_stats",
    "ResultCache counters mirrored at scrape time "
    "(memory_hits/disk_hits/misses/stores/disk_evictions/hits).",
    labels=("counter",))
_M_CACHE_MEMORY = telemetry.gauge(
    "repro_cache_memory_entries", "Entries in the in-memory LRU tier.")
_M_CACHE_DISK_BYTES = telemetry.gauge(
    "repro_cache_disk_bytes", "Bytes used by the on-disk tier.")
_M_CACHE_ARTIFACTS = telemetry.gauge(
    "repro_cache_artifacts", "Complete entries in the on-disk tier.")


class ServiceError(ReproError):
    """An HTTP-level request error (maps to a 4xx response)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SweepService:
    """The service application: scheduler + registry glue.

    Owns one :class:`SweepScheduler` (global dedup queue over the
    configured executor/cache) and maps experiment names onto it via
    ``plan``/``reduce``. The HTTP handler below is a thin parser around
    these methods, so tests can drive the application object directly.
    """

    #: Completed tickets whose encoded results are memoized.
    MAX_MEMOIZED_RESULTS = 64

    def __init__(self, executor: Executor | None = None,
                 cache: ResultCache | None = None,
                 scheduler: SweepScheduler | None = None,
                 token: str | None = None) -> None:
        self.scheduler = scheduler if scheduler is not None else \
            SweepScheduler(executor=executor, cache=cache)
        # Bearer token gating mutating endpoints; None/"" disables auth.
        # Defaults from REPRO_SERVICE_TOKEN so one env var arms both
        # ends (pass token="" to force auth off with the var set).
        if token is None:
            token = os.environ.get("REPRO_SERVICE_TOKEN") or None
        self.token = token or None
        # ticket id -> (experiment name, scale name) for reduce-on-read
        self._experiment_tickets: dict[str, tuple[str, str]] = {}
        # ticket id -> encoded result/payloads/experiment extras; a
        # completed ticket is immutable, so re-assembling + base64
        # re-encoding it (and re-running reduce) on every poll would be
        # pure repeated work.
        self._completed: "OrderedDict[str, dict]" = OrderedDict()
        self._exp_lock = threading.Lock()
        #: Service creation time — healthz reports uptime against the
        #: monotonic twin (uptime is a duration; the unix timestamp is
        #: display/provenance only).
        self.started_unix = time.time()
        self.started_monotonic = time.monotonic()
        self._log = telemetry.get_logger("service.server")

    @property
    def cache(self) -> ResultCache:
        return self.scheduler.cache

    # ------------------------------------------------------------------
    # Application operations (the handler calls only these)
    # ------------------------------------------------------------------

    def submit_sweep(self, body: bytes) -> dict:
        try:
            spec = wire.loads(body)
        except wire.WireError as exc:
            raise ServiceError(400, str(exc)) from exc
        if not isinstance(spec, SweepSpec):
            raise ServiceError(
                400, f"body decodes to "
                f"{type(spec).__name__}, expected SweepSpec")
        ticket_id = self.scheduler.submit(spec)
        return self._ticket_links(ticket_id)

    def submit_jobs(self, body: bytes) -> dict:
        try:
            jobs = wire.loads(body)
        except wire.WireError as exc:
            raise ServiceError(400, str(exc)) from exc
        if isinstance(jobs, Job):
            jobs = [jobs]
        if (not isinstance(jobs, list)
                or not all(isinstance(j, Job) for j in jobs)):
            raise ServiceError(400, "body must be a wire Job list")
        ticket_id = self.scheduler.submit_jobs(jobs)
        return self._ticket_links(ticket_id)

    def _ticket_links(self, ticket_id: str) -> dict:
        status = self.scheduler.status(ticket_id)
        return {
            "id": ticket_id,
            "state": status["state"],
            "done": status["done"],
            "total": status["total"],
            "cache_hits": status["cache_hits"],
            "links": {
                "status": f"/v1/sweeps/{ticket_id}",
                "events": f"/v1/sweeps/{ticket_id}/events",
            },
        }

    def sweep_status(self, ticket_id: str) -> dict:
        try:
            status = self.scheduler.status(ticket_id)
            if status["state"] == COMPLETE:
                status.update(self._completed_extras(ticket_id))
        except KeyError:
            # Either unknown, or pruned by the scheduler between calls.
            raise ServiceError(404, f"no such sweep {ticket_id!r}") from None
        return status

    def _completed_extras(self, ticket_id: str) -> dict:
        """Encoded result/payloads (+ experiment reduction) of a
        completed ticket, memoized — the ticket is immutable now."""
        with self._exp_lock:
            extras = self._completed.get(ticket_id)
            if extras is not None:
                self._completed.move_to_end(ticket_id)
                return extras
            exp = self._experiment_tickets.get(ticket_id)
        extras = {}
        try:
            result = self.scheduler.result(ticket_id)
        except ReproError:
            # Raw job batches have payloads, not SweepResults.
            extras["payloads"] = [
                wire.encode_payload(p)
                for p in self.scheduler.payloads(ticket_id)
            ]
        else:
            extras["result"] = wire.envelope(wire.to_wire(result))
            if exp is not None:
                extras["experiment"] = self._reduce(result, *exp)
        with self._exp_lock:
            self._completed[ticket_id] = extras
            while len(self._completed) > self.MAX_MEMOIZED_RESULTS:
                self._completed.popitem(last=False)
        return extras

    @staticmethod
    def _reduce(sweep, name: str, scale_name: str) -> dict:
        experiment = registry.create(name)
        result = experiment.reduce(sweep, resolve_scale(scale_name))
        return result.to_dict()

    def sweep_events(self, ticket_id: str, since: int = 0,
                     timeout: float = 10.0) -> tuple[list[dict], bool]:
        try:
            return self.scheduler.events(ticket_id, since=since,
                                         timeout=timeout)
        except KeyError:
            raise ServiceError(404, f"no such sweep {ticket_id!r}") from None

    def list_sweeps(self) -> dict:
        return {"sweeps": self.scheduler.tickets()}

    def list_experiments(self) -> dict:
        out = []
        for name in registry.names():
            cls = registry.get_class(name)
            out.append({"name": name, "title": cls.title,
                        "run": f"/v1/experiments/{name}/run"})
        return {"experiments": out, "scales": sorted(SCALES)}

    def run_experiment(self, name: str, body: bytes) -> dict:
        if name not in registry.names():
            raise ServiceError(404, f"unknown experiment {name!r} "
                                    f"(choose from {registry.names()})")
        options = _parse_json(body) if body else {}
        scale_name = options.get("scale", "quick")
        if scale_name not in SCALES:
            raise ServiceError(400, f"unknown scale {scale_name!r} "
                                    f"(choose from {sorted(SCALES)})")
        scale = resolve_scale(scale_name)
        experiment = registry.create(name)
        spec = experiment.plan(scale)
        if spec is None:
            # Solve-free experiments (fig2, table1) reduce right here.
            result = experiment.reduce(None, scale)
            return {"experiment": result.to_dict(), "state": COMPLETE,
                    "id": None, "name": name, "scale": scale_name}
        ticket_id = self.scheduler.submit(
            spec, meta={"experiment": name, "scale": scale_name})
        with self._exp_lock:
            # The scheduler prunes old finished tickets; drop our
            # reductions for tickets it no longer knows, so this map
            # cannot grow without bound on a long-running service.
            live = {t["id"] for t in self.scheduler.tickets()}
            for stale in [t for t in self._experiment_tickets
                          if t not in live]:
                del self._experiment_tickets[stale]
            self._experiment_tickets[ticket_id] = (name, scale_name)
        links = self._ticket_links(ticket_id)
        links.update({"name": name, "scale": scale_name})
        return links

    # -- fleet ---------------------------------------------------------

    def worker_claim(self, body: bytes) -> dict:
        doc = _parse_json(body)
        worker = doc.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ServiceError(400, "claim needs a non-empty 'worker' id")
        try:
            max_jobs = int(doc.get("max_jobs", 1))
            lease_s = float(doc.get("lease_s", 30.0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                400, f"bad claim parameters: {exc}") from exc
        claims = self.scheduler.claim_jobs(worker, max_jobs=max_jobs,
                                           lease_s=lease_s)
        return wire.envelope([wire.to_wire(c) for c in claims])

    def worker_heartbeat(self, body: bytes) -> dict:
        doc = _parse_json(body)
        worker = doc.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ServiceError(400, "heartbeat needs a non-empty 'worker'")
        slots = doc.get("slots")
        if (not isinstance(slots, dict)
                or not all(isinstance(k, str) and isinstance(v, str)
                           for k, v in slots.items())):
            raise ServiceError(
                400, "heartbeat 'slots' must map slot id -> lease token")
        try:
            lease_s = float(doc.get("lease_s", 30.0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                400, f"bad heartbeat parameters: {exc}") from exc
        # Optional federated telemetry (wire v4). v3 workers omit the
        # field entirely and heartbeat exactly as before.
        snapshot = None
        tdoc = doc.get("telemetry")
        if tdoc is not None:
            try:
                decoded = wire.from_wire(tdoc)
            except wire.WireError as exc:
                raise ServiceError(
                    400, f"bad heartbeat telemetry: {exc}") from exc
            if not isinstance(decoded, wire.WorkerTelemetry):
                raise ServiceError(
                    400, "heartbeat 'telemetry' must be a wire "
                         "WorkerTelemetry document")
            snapshot = decoded
        alive = self.scheduler.heartbeat(worker, slots, lease_s=lease_s,
                                         telemetry_snapshot=snapshot)
        out = {"worker": worker, "alive": alive}
        if snapshot is not None:
            # Ack the highest log seq merged, so the worker can advance
            # its shipped-up-to pointer only on confirmed delivery.
            out["telemetry_seq"] = snapshot.seq
        return out

    def worker_result(self, body: bytes) -> dict:
        try:
            result = wire.loads(body)
        except wire.WireError as exc:
            raise ServiceError(400, str(exc)) from exc
        if not isinstance(result, wire.WorkerResult):
            raise ServiceError(
                400, f"body decodes to {type(result).__name__}, "
                     f"expected WorkerResult")
        if result.error is not None:
            status = self.scheduler.fail_lease(
                result.worker, result.slot, result.token, result.key,
                result.error)
        else:
            status = self.scheduler.complete_lease(
                result.worker, result.slot, result.token, result.key,
                result.payload)
        return {"slot": result.slot, "status": status}

    def list_workers(self) -> dict:
        return self.scheduler.fleet_snapshot()

    def worker_detail(self, worker_id: str) -> dict:
        """One worker's lease counters + federated telemetry."""
        fleet = self.scheduler.fleet_snapshot()
        rows = [w for w in fleet["workers"] if w["id"] == worker_id]
        federated = self.scheduler.federation.worker_snapshot(worker_id)
        if not rows and federated is None:
            raise ServiceError(404, f"unknown worker {worker_id!r}")
        out = dict(rows[0]) if rows else {"id": worker_id}
        out["telemetry"] = federated
        out["recent_logs"] = self.scheduler.federation.logs(
            worker=worker_id, limit=50)
        return out

    def logs_info(self, query: Mapping[str, str]) -> dict:
        """``GET /v1/logs``: merged server + fleet structured logs."""
        level = query.get("level") or None
        worker = query.get("worker") or None
        try:
            since = (float(query["since"]) if query.get("since")
                     else None)
            limit = int(query.get("limit", 200))
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                400, f"bad log query parameters: {exc}") from exc
        server_records = telemetry.GLOBAL_BUFFER.records(
            level=level, worker=worker, since_unix=since)
        fleet_records = self.scheduler.federation.logs(
            worker=worker, level=level, since_unix=since)
        records = sorted(server_records + fleet_records,
                         key=lambda r: float(r.get("time_unix", 0.0)))
        if limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return {"records": records, "count": len(records)}

    def sweep_trace(self, ticket_id: str) -> dict:
        try:
            return self.scheduler.trace(ticket_id)
        except KeyError:
            raise ServiceError(
                404, f"no such sweep {ticket_id!r}") from None

    def health_info(self) -> dict:
        fleet = self.scheduler.fleet_snapshot()
        return {
            "ok": True,
            "uptime_s": time.monotonic() - self.started_monotonic,
            "telemetry": telemetry.enabled(),
            "workers": {
                "active": fleet["workers_active"],
                "known": len(fleet["workers"]),
                "leases_active": fleet["leases_active"],
                "leases_expired_total": fleet["leases_expired_total"],
            },
            "queue_depth": fleet["queue_depth"],
            "jobs_in_flight": fleet["jobs_in_flight"],
            "local_dispatch": fleet["local_dispatch"],
        }

    # ------------------------------------------------------------------

    def job_record(self, key: str) -> dict:
        record = self.cache.get_record(key)
        if record is None:
            raise ServiceError(404, f"no cached result for {key!r}")
        record = dict(record)
        record["payload"] = wire.encode_payload(record["payload"])
        return record

    def cache_info(self) -> dict:
        stats = self.cache.stats.snapshot()
        stats.pop("hits", None)  # derived; keep the wire doc as before
        artifacts, disk_bytes = self.cache.disk_usage()
        return {
            "memory_entries": len(self.cache),
            "disk_dir": (str(self.cache.disk_dir)
                         if self.cache.disk_dir is not None else None),
            "disk_bytes": disk_bytes,
            "max_disk_bytes": self.cache.max_disk_bytes,
            "artifacts": artifacts,
            "stats": stats,
        }

    def metrics_text(self) -> str:
        """The ``/v1/metrics`` Prometheus document.

        Pull-model metrics (queue health, cache counters, calibration
        status) are mirrored into gauges at scrape time from their
        lock-consistent snapshots; push-model series (request
        latencies, job counters, histograms) render as accumulated.
        The federated fleet document — every worker's heartbeat-shipped
        series re-rendered with a ``worker="..."`` label — is appended
        below the server's own, so one scrape covers the whole fleet.
        """
        snap = self.scheduler.telemetry_snapshot()
        self.scheduler._m_queue_depth.set(snap["queue_depth"])
        self.scheduler._m_in_flight.set(snap["jobs_in_flight"])
        fleet = self.scheduler.fleet_snapshot()
        self.scheduler._m_workers_active.set(fleet["workers_active"])
        self.scheduler._m_leases_active.set(fleet["leases_active"])
        for counter, value in self.cache.stats.snapshot().items():
            _M_CACHE_STATS.set(value, counter=counter)
        artifacts, disk_bytes = self.cache.disk_usage()
        _M_CACHE_MEMORY.set(len(self.cache))
        _M_CACHE_DISK_BYTES.set(disk_bytes or 0)
        _M_CACHE_ARTIFACTS.set(artifacts)
        return (telemetry.render_prometheus()
                + self.scheduler.federation.render_prometheus())

    def shutdown(self) -> None:
        self.scheduler.shutdown()


def _parse_json(body: bytes) -> dict:
    try:
        doc = json.loads(body)
    except (ValueError, TypeError) as exc:
        raise ServiceError(400, f"request body is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServiceError(400, "request body must be a JSON object")
    return doc


def _json_default(obj: Any):
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    """Route parser over the :class:`SweepService` application."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-sweep-service/1"

    # Set by make_server() on the handler subclass.
    service: SweepService
    quiet: bool = True

    # -- helpers -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def send_response(self, code: int, message: str | None = None) -> None:
        self._status = code  # captured for the request counter's label
        super().send_response(code, message)

    def _send_json(self, doc: Mapping, status: int = 200) -> None:
        data = json.dumps(doc, default=_json_default).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, message: str) -> None:
        # An error path may not have read the request body; on a
        # keep-alive connection those unread bytes would be parsed as
        # the next request line. Close instead of desyncing.
        self.close_connection = True
        self._send_json({"error": message}, status=status)

    def _send_text(self, text: str, content_type: str = PROMETHEUS) -> None:
        data = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _route(self) -> list[str]:
        path = self.path.split("?", 1)[0]
        return [part for part in path.split("/") if part]

    def _query(self) -> dict[str, str]:
        if "?" not in self.path:
            return {}
        from urllib.parse import parse_qsl
        return dict(parse_qsl(self.path.split("?", 1)[1]))

    @staticmethod
    def _normalize_route(parts: list[str]) -> str:
        """Collapse path ids (`/v1/sweeps/<id>` -> `/v1/sweeps/*`) so
        metric label cardinality stays bounded. The fleet verbs under
        `/v1/workers/` (claim/heartbeat/result) stay literal — they are
        protocol endpoints, not ids; anything else after `workers` is a
        worker id and collapses."""
        out: list[str] = []
        prev = None
        for part in parts:
            if prev in ("sweeps", "jobs", "experiments"):
                out.append("*")
            elif (prev == "workers"
                    and part not in ("claim", "heartbeat", "result")):
                out.append("*")
            else:
                out.append(part)
            prev = part
        return "/" + "/".join(out)

    def _dispatch(self, method: str) -> None:
        parts = self._route()
        self._status = 200
        start = time.perf_counter()
        try:
            if not parts or parts[0] != "v1":
                raise ServiceError(404, f"unknown path {self.path!r}")
            self._dispatch_v1(method, parts[1:])
        except ServiceError as exc:
            self._send_error_json(exc.status, str(exc))
        except BrokenPipeError:
            pass  # client went away mid-stream
        except ReproError as exc:
            self._send_error_json(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        finally:
            if telemetry.enabled():
                route = self._normalize_route(parts)
                _M_REQUEST_LATENCY.observe(time.perf_counter() - start,
                                           method=method, route=route)
                _M_REQUESTS.inc(method=method, route=route,
                                status=str(self._status))

    def _check_auth(self) -> None:
        """Enforce the service's bearer token on mutating requests."""
        token = self.service.token
        if not token:
            return
        header = self.headers.get("Authorization", "")
        provided = header[len("Bearer "):] \
            if header.startswith("Bearer ") else ""
        if not hmac.compare_digest(provided.encode("utf-8"),
                                   token.encode("utf-8")):
            raise ServiceError(401, "missing or invalid bearer token")

    def _dispatch_v1(self, method: str, parts: list[str]) -> None:
        service = self.service
        if method == "POST":
            self._check_auth()
        match (method, parts):
            case ("GET", ["healthz"]):
                self._send_json(service.health_info())
            case ("GET", ["cache"]):
                self._send_json(service.cache_info())
            case ("GET", ["metrics"]):
                self._send_text(service.metrics_text())
            case ("GET", ["experiments"]):
                self._send_json(service.list_experiments())
            case ("POST", ["experiments", name, "run"]):
                self._send_json(service.run_experiment(name, self._body()),
                                status=202)
            case ("POST", ["sweeps"]):
                self._send_json(service.submit_sweep(self._body()),
                                status=202)
            case ("GET", ["sweeps"]):
                self._send_json(service.list_sweeps())
            case ("GET", ["sweeps", ticket_id]):
                self._send_json(service.sweep_status(ticket_id))
            case ("GET", ["sweeps", ticket_id, "events"]):
                self._stream_events(ticket_id)
            case ("GET", ["sweeps", ticket_id, "trace"]):
                self._send_json(service.sweep_trace(ticket_id))
            case ("POST", ["jobs"]):
                self._send_json(service.submit_jobs(self._body()),
                                status=202)
            case ("GET", ["jobs", key]):
                self._send_json(service.job_record(key))
            case ("POST", ["workers", "claim"]):
                self._send_json(service.worker_claim(self._body()))
            case ("POST", ["workers", "heartbeat"]):
                self._send_json(service.worker_heartbeat(self._body()))
            case ("POST", ["workers", "result"]):
                self._send_json(service.worker_result(self._body()))
            case ("GET", ["workers"]):
                self._send_json(service.list_workers())
            case ("GET", ["workers", worker_id]):
                self._send_json(service.worker_detail(worker_id))
            case ("GET", ["logs"]):
                self._send_json(service.logs_info(self._query()))
            case _:
                raise ServiceError(
                    404, f"no route for {method} {self.path!r}")

    def _stream_events(self, ticket_id: str) -> None:
        """NDJSON progress stream: one event object per line, closing
        once the sweep completes or fails (chunked transfer)."""
        query = self._query()
        try:
            since = int(query.get("since", 0))
        except ValueError:
            raise ServiceError(
                400, f"'since' must be an integer, "
                     f"got {query.get('since')!r}") from None
        self.service.sweep_events(ticket_id, since=since, timeout=0)
        self.send_response(200)
        self.send_header("Content-Type", NDJSON)
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()

        def write_chunk(data: bytes) -> None:
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data + b"\r\n")

        def write_event(doc: Mapping) -> None:
            line = json.dumps(doc, default=_json_default) + "\n"
            write_chunk(line.encode("utf-8"))

        # Headers are out: from here on an error must not become a
        # second HTTP response inside the chunked body (it would
        # corrupt the stream). Emit it as a final error event instead.
        try:
            finished = False
            while not finished:
                events, finished = self.service.sweep_events(
                    ticket_id, since=since, timeout=10.0)
                for event in events:
                    write_event(event)
                since += len(events)
                self.wfile.flush()
        except BrokenPipeError:
            raise  # client went away; nothing left to salvage
        except Exception as exc:  # noqa: BLE001 — stream-level error
            self.close_connection = True
            write_event({"event": "stream_error",
                         "error": f"{type(exc).__name__}: {exc}"})
        write_chunk(b"")  # terminating chunk
        self.wfile.flush()

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


def make_server(host: str = "127.0.0.1", port: int = 8321,
                service: SweepService | None = None,
                executor: Executor | None = None,
                cache: ResultCache | None = None,
                quiet: bool = True,
                enable_telemetry: bool = True,
                token: str | None = None) -> ThreadingHTTPServer:
    """A ready-to-serve threading HTTP server (not yet serving).

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address``. The server gets ``.service`` attached
    for introspection and shutdown. A service is exactly the long-lived
    entry point telemetry exists for, so it is switched on here unless
    ``enable_telemetry=False``.
    """
    if enable_telemetry:
        telemetry.enable()
    if service is None:
        service = SweepService(executor=executor, cache=cache, token=token)
    handler = type("BoundHandler", (_Handler,),
                   {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(host: str = "127.0.0.1", port: int = 8321,
          jobs: int = 1, cache_dir: str | None = None,
          max_disk_bytes: int | None = None,
          quiet: bool = False, fleet: bool = False,
          token: str | None = None) -> int:
    """Run the sweep service until interrupted (the CLI entry point).

    ``fleet=True`` disables in-process dispatch: queued work is only
    executed by pull workers (``repro-experiments worker``) claiming it
    over ``/v1/workers/*``.
    """
    executor = ParallelExecutor(jobs) if jobs > 1 else SerialExecutor()
    cache = ResultCache(disk_dir=cache_dir, max_disk_bytes=max_disk_bytes)
    scheduler = SweepScheduler(executor=executor, cache=cache,
                               local_dispatch=not fleet)
    service = SweepService(scheduler=scheduler, token=token)
    server = make_server(host, port, service=service, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    mode = "fleet (pull workers only)" if fleet \
        else f"local (executor={executor.name}, jobs={jobs})"
    log = telemetry.stderr_logger("service.server")
    log.info(f"listening on http://{bound_host}:{bound_port}",
             dispatch=mode, cache_dir=cache_dir,
             auth="bearer" if service.token else "off")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.service.shutdown()  # type: ignore[attr-defined]
        server.server_close()
    return 0
