"""Async sweep service: the engine as a long-running multi-client server.

Chen & Wong's SSCM turns each loss statistic into a small set of
content-addressed solver jobs — exactly the shape a shared,
cache-fronted compute service exploits. This subsystem stacks four
layers over :mod:`repro.engine`, the first place the engine outlives a
single process:

- :mod:`.wire` — versioned JSON wire format; ``SweepSpec``/``Job``/
  ``SweepResult`` cross process and machine boundaries with their
  content hashes (and array payloads) intact.
- :mod:`.scheduler` — :class:`SweepScheduler`, an async job queue over
  :func:`repro.engine.cache_split`'s hit/pending split: hits answer
  immediately, pending jobs deduplicate globally by content hash
  (concurrent clients requesting overlapping figures share one solve
  per unique job) and dispatch longest-first by the dense-solve
  ``O(n^3)`` cost model onto any engine :class:`~repro.engine.Executor`.
- :mod:`.server` — stdlib-only streaming HTTP front-end
  (``POST /v1/sweeps``, NDJSON ``/events``, registry-backed
  ``/v1/experiments``, and the ``/v1/jobs/<hash>`` artifact-store read
  path over the disk cache tier). Start one with
  ``repro-experiments serve`` or :func:`repro.service.server.serve`.
- :mod:`.client` — :class:`ServiceClient` (remote ``run_sweep``) and
  :class:`RemoteExecutor`, the drop-in third executor tier:
  ``engine_session(executor=RemoteExecutor(url))`` routes every sweep
  in scope to the server.

The scheduler's queue is also *claimable* over ``/v1/workers/*`` —
pull workers (:mod:`repro.fleet`) lease jobs, heartbeat, and upload
results, scaling one server across machines; ``serve --fleet`` turns
off in-process dispatch entirely.

Quickstart::

    # server: repro-experiments serve --port 8321 --jobs 4 \\
    #                                 --cache-dir ./sweep-cache
    from repro.service import ServiceClient
    import repro.api

    spec = repro.api.plan("fig3", scale="quick")
    result = ServiceClient("http://127.0.0.1:8321").run_sweep(spec)
"""

from .client import RemoteExecutor, ServiceClient, ServiceUnavailable
from .scheduler import SweepScheduler, estimate_job_cost
from .server import ServiceError, SweepService, make_server, serve
from .wire import (
    WIRE_VERSION,
    WireError,
    WorkerClaim,
    WorkerResult,
    register_correlation,
)

__all__ = [
    "WIRE_VERSION",
    "RemoteExecutor",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "SweepScheduler",
    "SweepService",
    "WireError",
    "WorkerClaim",
    "WorkerResult",
    "estimate_job_cost",
    "make_server",
    "register_correlation",
    "serve",
]
