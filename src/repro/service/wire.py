"""Versioned JSON wire format for engine objects.

The engine's content hashes (:func:`repro.engine.content_hash`) pin a
computation to its physics inputs; this module makes the *objects*
carrying those inputs cross process and machine boundaries. Every
encodable object becomes a tagged JSON document (``{"$type": ...}``)
and decodes back to an equal object — in particular

- a :class:`~repro.engine.SweepSpec` (or :class:`~repro.engine.Job`)
  survives ``to_wire -> json -> from_wire`` with an **identical content
  hash** (floats round-trip exactly through JSON's shortest-repr
  encoding; numpy arrays are encoded explicitly as dtype + shape +
  base64 of the raw bytes, so they come back bit-for-bit);
- a :class:`~repro.engine.SweepResult` round-trips with bit-identical
  ``values`` arrays, which is what lets a remote client assert equality
  against an in-process run.

Documents are wrapped in a versioned envelope::

    {"format": "repro-wire", "wire_version": 2, "engine_version": 1,
     "body": {...}}

:func:`loads` rejects an envelope whose ``wire_version`` it does not
speak (``engine_version`` travels for provenance/cache compatibility
checks but does not gate decoding — hashes embed it anyway). Version 2
added the optional telemetry ``spans`` on :class:`PointResult`;
version 3 added the worker-fleet messages (:class:`WorkerClaim`,
:class:`WorkerResult` — job leases and result uploads for pull
workers); version 4 added :class:`WorkerTelemetry` (federated metric
snapshots + log records riding worker heartbeats). Every change is
additive, so version-1/2/3 documents still decode and all four
versions are accepted.

Correlation functions are encoded by class name + public parameters
(the same extraction :func:`repro.engine.correlation_spec` hashes) and
rebuilt via ``cls(**params)``; user-defined CF subclasses whose
constructor mirrors its public attributes can join the format through
:func:`register_correlation`.
"""

from __future__ import annotations

import base64
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

import numpy as np

from ..errors import ReproError
from ..materials import Conductor, Dielectric, TwoMediumSystem
from ..surfaces.correlation import (
    CorrelationFunction,
    ExponentialCorrelation,
    ExtractedCorrelation,
    GaussianCorrelation,
    MaternCorrelation,
)
from ..swm.assembly import AssemblyOptions
from ..swm.assembly2d import Assembly2DOptions
from ..swm.solver import SWMOptions
from ..swm.solver2d import SWM2DOptions
from ..engine.results import PointResult, SweepResult
from ..engine.spec import (
    ENGINE_VERSION,
    DeterministicScenario,
    EstimatorSpec,
    Job,
    ProfileScenario,
    StochasticScenario,
    SweepSpec,
)

#: Bump when the wire encoding itself changes incompatibly.
#: v2: PointResult grew the optional telemetry ``spans`` field.
#: v3: worker-fleet messages (WorkerClaim / WorkerResult).
#: v4: WorkerTelemetry (heartbeat-federated metrics + logs).
WIRE_VERSION = 4

#: Envelope versions this build can still decode. v1/v2/v3 lack only
#: additive fields and message types, so they stay readable.
COMPAT_WIRE_VERSIONS = frozenset({1, 2, 3, WIRE_VERSION})

#: Envelope format marker.
WIRE_FORMAT = "repro-wire"

_TAG = "$type"


class WireError(ReproError):
    """A document could not be encoded to / decoded from the wire."""


# ----------------------------------------------------------------------
# Worker-fleet messages (wire v3)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerClaim:
    """One leased computation handed to a pull worker.

    ``slot`` + ``token`` identify the lease (the token changes on every
    re-lease, which is what lets the scheduler drop stale commits after
    a reclaim); ``key`` is the job's content hash, echoed back on upload
    for hash verification; ``lease_s`` is how long the worker may hold
    the lease between heartbeats.
    """

    slot: str
    token: str
    key: str
    lease_s: float
    job: Job


@dataclass(frozen=True)
class WorkerResult:
    """A worker's result upload for one leased computation.

    Exactly one of ``payload`` (the :func:`repro.engine.execute_job`
    payload dict, array decoded) or ``error`` (the job's captured
    failure message) is set.
    """

    slot: str
    token: str
    worker: str
    key: str
    payload: dict | None = None
    error: str | None = None
    #: Worker-local telemetry spans already ride inside ``payload``.
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class WorkerTelemetry:
    """A worker's federated telemetry snapshot (wire v4).

    Rides as the optional ``telemetry`` field of heartbeat bodies.
    ``metrics`` is the worker's full *cumulative*
    ``MetricsRegistry.snapshot()`` (replacement on the server is the
    idempotent merge); ``logs`` are structured records whose per-buffer
    ``seq`` lets the server drop re-delivered lines; ``seq`` is the
    highest log seq included, so a worker can resume shipping from the
    right place after a failed heartbeat; ``stats`` is small free-form
    worker state (inflight, concurrency, jobs done/failed).
    """

    worker: str
    time_unix: float
    seq: int = 0
    metrics: dict = field(default_factory=dict)
    logs: tuple = ()
    stats: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Correlation-function registry
# ----------------------------------------------------------------------

_CORRELATIONS: dict[str, type[CorrelationFunction]] = {}


def register_correlation(cls: type[CorrelationFunction]
                         ) -> type[CorrelationFunction]:
    """Register a CF class for wire decoding (usable as a decorator).

    The class is encoded as its public attributes (see
    :func:`repro.engine.correlation_spec`) and rebuilt via
    ``cls(**params)``, so every public attribute must be accepted as a
    constructor keyword of the same name.
    """
    if not isinstance(cls, type) or not issubclass(cls, CorrelationFunction):
        raise WireError(
            f"register_correlation expects a CorrelationFunction "
            f"subclass, got {cls!r}"
        )
    _CORRELATIONS[cls.__name__] = cls
    return cls


for _cls in (GaussianCorrelation, ExponentialCorrelation,
             ExtractedCorrelation, MaternCorrelation):
    register_correlation(_cls)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _encode_array(a: np.ndarray) -> dict:
    a = np.ascontiguousarray(a)
    return {
        _TAG: "ndarray",
        "dtype": a.dtype.str,
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def _encode_scalarish(v: Any) -> Any:
    """Hashable CF/tag parameter values -> JSON values."""
    if isinstance(v, np.ndarray):
        return _encode_array(v)
    if isinstance(v, (np.integer,)):
        return int(v)
    if isinstance(v, (np.floating,)):
        return float(v)
    if isinstance(v, np.bool_):
        return bool(v)
    return v


def _encode_correlation(cf: CorrelationFunction) -> dict:
    name = type(cf).__name__
    if name not in _CORRELATIONS:
        raise WireError(
            f"correlation class {name!r} is not wire-registered; call "
            "repro.service.wire.register_correlation(cls) first"
        )
    params = {}
    for k, v in vars(cf).items():
        if k.startswith("_"):
            continue
        params[k] = _encode_scalarish(v)
    return {_TAG: "correlation", "class": name, "params": params}


def _encode_system(system: TwoMediumSystem) -> dict:
    return {_TAG: "TwoMediumSystem", **asdict(system)}


def _encode_options(options: SWMOptions | None) -> dict | None:
    return None if options is None else {_TAG: "SWMOptions",
                                         **asdict(options)}


def _encode_options2d(options: SWM2DOptions | None) -> dict | None:
    return None if options is None else {_TAG: "SWM2DOptions",
                                         **asdict(options)}


def _encode_config(config: Any) -> dict | None:
    from ..core.pipeline import StochasticLossConfig
    if config is None:
        return None
    if not isinstance(config, StochasticLossConfig):
        raise WireError(
            f"cannot encode scenario config of type "
            f"{type(config).__name__} (expected StochasticLossConfig)"
        )
    return {_TAG: "StochasticLossConfig", **asdict(config)}


def _encode_estimator(est: EstimatorSpec | None) -> dict | None:
    if est is None:
        return None
    return {_TAG: "EstimatorSpec", "kind": est.kind, "order": est.order,
            "n_samples": est.n_samples, "seed": est.seed,
            "batch_size": est.batch_size}


def _encode_tags(tags: Mapping[str, Any]) -> dict:
    # Tags are free-form provenance excluded from content hashes; they
    # only need to survive JSON, not reconstruct arbitrary objects.
    try:
        return json.loads(json.dumps(dict(tags),
                                     default=_encode_scalarish))
    except (TypeError, ValueError) as exc:
        raise WireError(f"sweep tags are not JSON-encodable: {exc}") from exc


def to_wire(obj: Any) -> dict:
    """Encode a supported engine object as a tagged JSON-ready dict."""
    if isinstance(obj, SweepSpec):
        return {
            _TAG: "SweepSpec",
            "scenarios": [to_wire(s) for s in obj.scenarios],
            "frequencies_hz": list(obj.frequencies_hz),
            "estimators": [_encode_estimator(e) for e in obj.estimators],
            "estimator_map": {
                name: [_encode_estimator(e) for e in ests]
                for name, ests in obj.estimator_map.items()
            },
            "tags": _encode_tags(obj.tags),
        }
    if isinstance(obj, Job):
        return {
            _TAG: "Job",
            "scenario": to_wire(obj.scenario),
            "frequency_hz": float(obj.frequency_hz),
            "estimator": _encode_estimator(obj.estimator),
            "index": int(obj.index),
        }
    if isinstance(obj, StochasticScenario):
        return {
            _TAG: "StochasticScenario",
            "name": obj.name,
            "correlation": _encode_correlation(obj.correlation),
            "config": _encode_config(obj.config),
            "system": _encode_system(obj.system),
            "options": _encode_options(obj.options),
        }
    if isinstance(obj, DeterministicScenario):
        return {
            _TAG: "DeterministicScenario",
            "name": obj.name,
            "heights_m": _encode_array(obj.heights_m),
            "period_m": float(obj.period_m),
            "system": _encode_system(obj.system),
            "options": _encode_options(obj.options),
        }
    if isinstance(obj, ProfileScenario):
        return {
            _TAG: "ProfileScenario",
            "name": obj.name,
            "correlation": _encode_correlation(obj.correlation),
            "period_um": float(obj.period_um),
            "n": int(obj.n),
            "normalize": bool(obj.normalize),
            "system": _encode_system(obj.system),
            "options": _encode_options2d(obj.options),
        }
    if isinstance(obj, EstimatorSpec):
        return _encode_estimator(obj)
    if isinstance(obj, SweepResult):
        return {
            _TAG: "SweepResult",
            "frequencies_hz": list(obj.frequencies_hz),
            "points": [to_wire(p) for p in obj.points],
            "tags": _encode_tags(obj.tags),
            "executor": obj.executor,
            "wall_time_s": float(obj.wall_time_s),
        }
    if isinstance(obj, PointResult):
        return {
            _TAG: "PointResult",
            "scenario": obj.scenario,
            "frequency_hz": float(obj.frequency_hz),
            "estimator": obj.estimator,
            "key": obj.key,
            "mean": float(obj.mean),
            "std": float(obj.std),
            "values": _encode_array(obj.values),
            "n_evals": int(obj.n_evals),
            "seed": None if obj.seed is None else int(obj.seed),
            "wall_time_s": float(obj.wall_time_s),
            "cache_hit": bool(obj.cache_hit),
            "pid": None if obj.pid is None else int(obj.pid),
            "spans": (None if obj.spans is None
                      else [dict(s) for s in obj.spans]),
        }
    if isinstance(obj, WorkerClaim):
        return {
            _TAG: "WorkerClaim",
            "slot": obj.slot,
            "token": obj.token,
            "key": obj.key,
            "lease_s": float(obj.lease_s),
            "job": to_wire(obj.job),
        }
    if isinstance(obj, WorkerResult):
        if (obj.payload is None) == (obj.error is None):
            raise WireError(
                "WorkerResult needs exactly one of payload or error"
            )
        return {
            _TAG: "WorkerResult",
            "slot": obj.slot,
            "token": obj.token,
            "worker": obj.worker,
            "key": obj.key,
            "payload": (None if obj.payload is None
                        else encode_payload(obj.payload)),
            "error": obj.error,
            "meta": dict(obj.meta),
        }
    if isinstance(obj, WorkerTelemetry):
        return {
            _TAG: "WorkerTelemetry",
            "worker": obj.worker,
            "time_unix": float(obj.time_unix),
            "seq": int(obj.seq),
            "metrics": _encode_tags(obj.metrics),
            "logs": [_encode_tags(r) for r in obj.logs],
            "stats": _encode_tags(obj.stats),
        }
    if isinstance(obj, np.ndarray):
        return _encode_array(obj)
    raise WireError(
        f"no wire encoding for objects of type {type(obj).__name__}"
    )


def encode_payload(payload: Mapping[str, Any]) -> dict:
    """Encode a worker payload dict (the :func:`execute_job` schema)."""
    out = dict(payload)
    out["values"] = _encode_array(np.asarray(payload["values"]))
    return out


def decode_payload(doc: Mapping[str, Any]) -> dict:
    """Inverse of :func:`encode_payload`; ``values`` comes back
    read-only, like a cache hit."""
    out = dict(doc)
    values = _decode(doc["values"])
    if not isinstance(values, np.ndarray):
        raise WireError("payload 'values' is not an ndarray document")
    out["values"] = values
    return out


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

def _expect(doc: Mapping, *fields: str) -> list:
    try:
        return [doc[f] for f in fields]
    except KeyError as exc:
        raise WireError(
            f"wire document of type {doc.get(_TAG)!r} is missing "
            f"field {exc.args[0]!r}"
        ) from None


def _decode_array(doc: Mapping) -> np.ndarray:
    dtype, shape, data = _expect(doc, "dtype", "shape", "data")
    try:
        raw = base64.b64decode(data, validate=True)
        a = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
    except (ValueError, TypeError) as exc:
        raise WireError(f"corrupt ndarray document: {exc}") from exc
    a = a.copy()  # writable, owned memory
    a.flags.writeable = False
    return a


def _decode_correlation(doc: Mapping) -> CorrelationFunction:
    name, params = _expect(doc, "class", "params")
    cls = _CORRELATIONS.get(name)
    if cls is None:
        raise WireError(
            f"unknown correlation class {name!r} (registered: "
            f"{sorted(_CORRELATIONS)})"
        )
    kwargs = {k: _decode(v) for k, v in params.items()}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise WireError(
            f"cannot rebuild {name} from wire params "
            f"{sorted(kwargs)}: {exc}"
        ) from exc


def _strip(doc: Mapping) -> dict:
    return {k: _decode(v) for k, v in doc.items() if k != _TAG}


def _decode_estimator(doc: Mapping | None) -> EstimatorSpec | None:
    if doc is None:
        return None
    kind, order, n_samples, seed = _expect(doc, "kind", "order",
                                           "n_samples", "seed")
    # .get, not _expect: batch_size is absent from pre-batching wire
    # documents (it is perf-only and outside the content hash).
    return EstimatorSpec(kind=kind, order=order, n_samples=n_samples,
                         seed=seed, batch_size=doc.get("batch_size"))


def _decode(doc: Any) -> Any:
    if isinstance(doc, Mapping):
        tag = doc.get(_TAG)
        if tag is None:
            return {k: _decode(v) for k, v in doc.items()}
        decoder = _DECODERS.get(tag)
        if decoder is None:
            raise WireError(f"unknown wire document type {tag!r}")
        return decoder(doc)
    if isinstance(doc, list):
        return [_decode(v) for v in doc]
    return doc


def _decode_spec(doc: Mapping) -> SweepSpec:
    scenarios, freqs, estimators = _expect(
        doc, "scenarios", "frequencies_hz", "estimators")
    return SweepSpec(
        scenarios=[_decode(s) for s in scenarios],
        frequencies_hz=freqs,
        estimators=[_decode_estimator(e) for e in estimators],
        estimator_map={
            name: tuple(_decode_estimator(e) for e in ests)
            for name, ests in doc.get("estimator_map", {}).items()
        },
        tags=doc.get("tags", {}),
    )


def _decode_job(doc: Mapping) -> Job:
    scenario, freq, est, index = _expect(
        doc, "scenario", "frequency_hz", "estimator", "index")
    return Job(scenario=_decode(scenario), frequency_hz=float(freq),
               estimator=_decode_estimator(est), index=int(index))


def _decode_system(doc: Mapping) -> TwoMediumSystem:
    dielectric, conductor = _expect(doc, "dielectric", "conductor")
    return TwoMediumSystem(dielectric=Dielectric(**dielectric),
                           conductor=Conductor(**conductor))


def _decode_swm_options(doc: Mapping) -> SWMOptions:
    fields = _strip(doc)
    fields["assembly"] = AssemblyOptions(**fields.get("assembly", {}))
    return SWMOptions(**fields)


def _decode_swm2d_options(doc: Mapping) -> SWM2DOptions:
    fields = _strip(doc)
    fields["assembly"] = Assembly2DOptions(**fields.get("assembly", {}))
    return SWM2DOptions(**fields)


def _decode_config(doc: Mapping):
    from ..core.pipeline import StochasticLossConfig
    return StochasticLossConfig(**_strip(doc))


def _decode_stochastic(doc: Mapping) -> StochasticScenario:
    name, correlation = _expect(doc, "name", "correlation")
    return StochasticScenario(
        name=name,
        correlation=_decode(correlation),
        config=_decode(doc.get("config")),
        system=_decode(doc["system"]),
        options=_decode(doc.get("options")),
    )


def _decode_deterministic(doc: Mapping) -> DeterministicScenario:
    name, heights, period = _expect(doc, "name", "heights_m", "period_m")
    return DeterministicScenario(
        name=name,
        heights_m=_decode(heights),
        period_m=float(period),
        system=_decode(doc["system"]),
        options=_decode(doc.get("options")),
    )


def _decode_profile(doc: Mapping) -> ProfileScenario:
    name, correlation, period, n = _expect(
        doc, "name", "correlation", "period_um", "n")
    return ProfileScenario(
        name=name,
        correlation=_decode(correlation),
        period_um=float(period),
        n=int(n),
        normalize=bool(doc.get("normalize", True)),
        system=_decode(doc["system"]),
        options=_decode(doc.get("options")),
    )


def _decode_worker_claim(doc: Mapping) -> WorkerClaim:
    slot, token, key, lease_s, job = _expect(
        doc, "slot", "token", "key", "lease_s", "job")
    job = _decode(job)
    if not isinstance(job, Job):
        raise WireError("WorkerClaim 'job' is not a wire Job document")
    return WorkerClaim(slot=str(slot), token=str(token), key=str(key),
                       lease_s=float(lease_s), job=job)


def _decode_worker_result(doc: Mapping) -> WorkerResult:
    slot, token, worker, key = _expect(
        doc, "slot", "token", "worker", "key")
    payload = doc.get("payload")
    error = doc.get("error")
    if (payload is None) == (error is None):
        raise WireError(
            "WorkerResult needs exactly one of payload or error"
        )
    return WorkerResult(
        slot=str(slot), token=str(token), worker=str(worker),
        key=str(key),
        payload=None if payload is None else decode_payload(payload),
        error=None if error is None else str(error),
        meta=dict(doc.get("meta") or {}),
    )


def _decode_worker_telemetry(doc: Mapping) -> WorkerTelemetry:
    worker, time_unix = _expect(doc, "worker", "time_unix")
    return WorkerTelemetry(
        worker=str(worker),
        time_unix=float(time_unix),
        seq=int(doc.get("seq", 0)),
        metrics=dict(doc.get("metrics") or {}),
        logs=tuple(dict(r) for r in doc.get("logs") or ()),
        stats=dict(doc.get("stats") or {}),
    )


def _decode_point(doc: Mapping) -> PointResult:
    fields = _strip(doc)
    return PointResult(**fields)


def _decode_sweep_result(doc: Mapping) -> SweepResult:
    freqs, points = _expect(doc, "frequencies_hz", "points")
    return SweepResult(
        frequencies_hz=tuple(float(f) for f in freqs),
        points=tuple(_decode(p) for p in points),
        tags=doc.get("tags", {}),
        executor=doc.get("executor", "remote"),
        wall_time_s=float(doc.get("wall_time_s", 0.0)),
    )


_DECODERS = {
    "ndarray": _decode_array,
    "correlation": _decode_correlation,
    "EstimatorSpec": _decode_estimator,
    "TwoMediumSystem": _decode_system,
    "SWMOptions": _decode_swm_options,
    "SWM2DOptions": _decode_swm2d_options,
    "StochasticLossConfig": _decode_config,
    "StochasticScenario": _decode_stochastic,
    "DeterministicScenario": _decode_deterministic,
    "ProfileScenario": _decode_profile,
    "SweepSpec": _decode_spec,
    "Job": _decode_job,
    "PointResult": _decode_point,
    "SweepResult": _decode_sweep_result,
    "WorkerClaim": _decode_worker_claim,
    "WorkerResult": _decode_worker_result,
    "WorkerTelemetry": _decode_worker_telemetry,
}


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------

def envelope(body: Any) -> dict:
    """Wrap an encoded body in the versioned wire envelope."""
    return {"format": WIRE_FORMAT, "wire_version": WIRE_VERSION,
            "engine_version": ENGINE_VERSION, "body": body}


def open_envelope(doc: Mapping) -> Any:
    """Validate an envelope and return its (still encoded) body."""
    if not isinstance(doc, Mapping) or doc.get("format") != WIRE_FORMAT:
        raise WireError(
            "not a repro wire document (missing "
            f"'format': {WIRE_FORMAT!r} marker)"
        )
    version = doc.get("wire_version")
    if version not in COMPAT_WIRE_VERSIONS:
        raise WireError(
            f"unsupported wire_version {version!r} "
            f"(this build speaks {sorted(COMPAT_WIRE_VERSIONS)})"
        )
    if "body" not in doc:
        raise WireError("wire envelope has no 'body'")
    return doc["body"]


def _json_default(obj: Any) -> Any:
    """json.dumps fallback for encoded bodies: numpy scalars (legal in
    dataclass fields like ``StochasticLossConfig(max_modes=np.int64(6))``
    and hash-equivalent to their Python counterparts) degrade to plain
    JSON numbers; anything else is a wire error, not a TypeError."""
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return _encode_array(obj)
    raise WireError(
        f"cannot JSON-encode {type(obj).__name__} for the wire"
    )


def dumps(obj: Any, indent: int | None = None) -> str:
    """Serialize an engine object to a wire JSON string (with
    envelope). Lists of engine objects are supported (job batches)."""
    if isinstance(obj, (list, tuple)):
        body = [to_wire(o) for o in obj]
    else:
        body = to_wire(obj)
    return json.dumps(envelope(body), indent=indent, default=_json_default)


def loads(text: str | bytes) -> Any:
    """Parse a wire JSON string back into engine object(s)."""
    try:
        doc = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise WireError(f"wire document is not valid JSON: {exc}") from exc
    body = open_envelope(doc)
    return from_wire(body)


def from_wire(body: Any) -> Any:
    """Decode a tagged document (or list of them) to engine object(s)."""
    if isinstance(body, list):
        return [_decode(b) for b in body]
    return _decode(body)
