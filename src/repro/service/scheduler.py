"""Async job-queue scheduler over the engine's hit/pending split.

The service's execution core: submitted sweeps are split by
:func:`repro.engine.cache_split` into cache hits (answered immediately)
and pending jobs that enter one **global deduplicating queue** — two
clients asking for the same content hash share a single computation,
and its payload fans out to every waiting ticket the moment it commits.

A background dispatcher thread drains the queue in rounds: it takes
every queued unique computation, orders it **longest-first** by the
dense-solve cost model (:func:`estimate_job_cost`, the ROADMAP's
``O(n^3)`` plan-level estimate resolved from grid/order in the spec)
and hands the round to the configured :class:`~repro.engine.Executor`
as one batch — so a ``ParallelExecutor`` parallelizes across every
client's pending work at once, exactly like :func:`repro.engine
.run_batch` does within one process.

Every mutation appends a JSON-ready event to the owning ticket
(``submitted``/``point``/``complete``/``failed``); pollers and the
HTTP layer's NDJSON stream read those via :meth:`SweepScheduler.events`
which supports long-polling on the scheduler's condition variable.

**Worker fleet (lease protocol).** The queue is also *claimable*: an
external pull worker calls :meth:`SweepScheduler.claim_jobs` to lease
up to ``n`` queued computations (longest-first, same cost order as the
dispatcher), :meth:`~SweepScheduler.heartbeat` to keep its leases
alive, and :meth:`~SweepScheduler.complete_lease` /
:meth:`~SweepScheduler.fail_lease` to commit. A lease that misses its
deadline is reclaimed and re-queued (lazily, on the next lease-path
call — no extra thread), and every re-lease rotates the lease token,
so a worker that went silent and commits late is detected and its
stale upload dropped. Dedup is untouched: a slot is handed out at most
once at a time, cache hits never enter the queue, and lease commits go
through the same ``_commit_slot`` path the dispatcher uses — waiter
fan-out, NDJSON events, telemetry, the cost calibrator and the result
cache all behave identically whether a job ran in-process or on a
worker across the network. ``local_dispatch=False`` turns the internal
dispatcher off entirely, making the scheduler a pure fleet queue.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .. import telemetry
from ..errors import ConfigurationError
from ..engine.api import cache_split
from ..engine.cache import ResultCache
from ..engine.cost import estimate_job_cost, job_kind
from ..engine.executors import Executor, SerialExecutor
from ..engine.results import PointResult, SweepResult
from ..engine.runtime import execute_job, execute_job_group, group_by_scenario
from ..engine.spec import Job, SweepSpec
from .wire import WorkerClaim, WorkerTelemetry


# ----------------------------------------------------------------------
# Tickets
# ----------------------------------------------------------------------

#: Ticket lifecycle states.
PENDING, RUNNING, COMPLETE, FAILED = "pending", "running", "complete", "failed"

#: Sentinel key marking a payload as a captured per-job failure.
_JOB_ERROR = "__job_error__"

#: EWMA smoothing for per-worker throughput (higher = more reactive).
_RATE_ALPHA = 0.3

#: A worker is flagged slow (straggler) when its EWMA throughput drops
#: below this fraction of the fleet median.
_SLOW_FACTOR = 0.5

#: Recent lease expirations retained for attribution in the fleet
#: snapshot (who lost which job, and how often).
_MAX_EXPIRATIONS = 64


def _execute_safely(job: Job) -> dict:
    """Run one job, folding its failure into the payload.

    Module-level so process pools can pickle it. Capturing per-job
    errors here (instead of letting them escape ``Executor.run``) is
    what isolates failures in a multi-client round: a bad job fails
    only the tickets waiting on *it*, never the other clients' jobs
    that happen to share the dispatch round. Executor-level errors
    (worker pool died, etc.) still escape and fail the whole round.
    """
    try:
        return execute_job(job)
    except Exception as exc:  # noqa: BLE001 — reported per waiter
        return {_JOB_ERROR: f"{type(exc).__name__}: {exc}"}


def _execute_group_safely(jobs: list[Job]) -> list[dict]:
    """Run one scenario group, folding failures into per-job payloads.

    The grouped analogue of :func:`_execute_safely` (same pickling and
    isolation story): a healthy group runs the fused frequency-stack
    path, and any grouped-path failure re-runs the jobs individually so
    one bad job fails only its own waiters, never its stackmates.
    """
    if len(jobs) == 1:
        return [_execute_safely(jobs[0])]
    try:
        payloads = execute_job_group(jobs)
    except Exception:  # noqa: BLE001 — isolate failures per job
        return [_execute_safely(job) for job in jobs]
    if len(payloads) != len(jobs):  # defensive: never strand a slot
        return [_execute_safely(job) for job in jobs]
    return payloads


@dataclass
class _Ticket:
    """One submitted sweep (or raw job batch) and its progress."""

    id: str
    spec: SweepSpec | None
    jobs: list[Job]
    payloads: list[dict | None]
    hits: list[bool]
    meta: dict[str, Any]
    created_unix: float
    #: Monotonic twin of ``created_unix``: ticket wall times are
    #: *durations*, so they clock on the monotonic pair (the unix
    #: fields stay for display and cross-machine merging only).
    created_monotonic: float = field(default_factory=time.monotonic)
    #: Per-job relative costs / scenario kinds, precomputed at admit so
    #: ``status()`` can price the remaining work without touching specs.
    costs: list[float] = field(default_factory=list)
    kinds: list[str] = field(default_factory=list)
    done: int = 0
    state: str = PENDING
    error: str | None = None
    events: list[dict] = field(default_factory=list)
    finished_unix: float | None = None
    finished_monotonic: float | None = None
    #: Flight-recorder entries, one per committed slot this ticket
    #: waited on: wall-clock queue/claim/commit timestamps, the worker
    #: (or None for the local dispatcher) and the worker's job spans —
    #: everything :meth:`SweepScheduler.trace` needs to lay the sweep
    #: out as one merged Chrome trace across processes.
    flight: list[dict] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.jobs)


@dataclass
class _Slot:
    """One unique pending computation and the points waiting on it."""

    job: Job
    cost: float
    waiters: list[tuple[str, int]]  # (ticket id, point index)
    queued: bool = True
    #: Monotonic enqueue time — queue-wait telemetry clocks on it.
    queued_monotonic: float = field(default_factory=time.monotonic)
    #: Wall-clock twin timestamps for the flight recorder (monotonic
    #: clocks cannot be merged across machines; Chrome traces can).
    queued_unix: float = field(default_factory=time.time)
    claimed_unix: float | None = None
    # ---- lease state (fleet protocol); None while not leased --------
    leased_to: str | None = None
    lease_token: str | None = None
    lease_deadline: float | None = None  # monotonic
    lease_attempts: int = 0


@dataclass
class _WorkerInfo:
    """One pull worker's registration and counters."""

    id: str
    first_seen_unix: float
    last_seen_unix: float
    last_seen_monotonic: float
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    expired: int = 0
    #: EWMA of committed cost-units per wall-clock second — the
    #: straggler signal. Cost units are the scheduler's relative
    #: ``estimate_job_cost`` scale, so the number only means something
    #: *compared across workers running the same mix*, which is exactly
    #: how :meth:`SweepScheduler.fleet_snapshot` uses it (vs the fleet
    #: median).
    rate_ewma: float = 0.0
    rate_n: int = 0


class SweepScheduler:
    """Global deduplicating job queue with a dispatcher thread.

    Parameters
    ----------
    executor:
        Backend the dispatcher hands each round to (default serial).
    cache:
        Result cache shared by the split and the commits (default: a
        fresh in-memory :class:`~repro.engine.ResultCache`).
    local_dispatch:
        When False the internal dispatcher thread is never started and
        queued work is only retired by fleet workers claiming it — the
        pure pull-queue mode behind ``repro-experiments serve --fleet``.
    max_lease_attempts:
        A slot whose lease expires is re-queued at most this many times
        before its waiters are failed (guards against a job that kills
        every worker that touches it).
    worker_ttl_s:
        A worker that holds no lease and has not been heard from for
        this long is dropped from the registry (and from the
        ``workers_active`` health count).
    """

    def __init__(self, executor: Executor | None = None,
                 cache: ResultCache | None = None,
                 max_finished_tickets: int = 256,
                 local_dispatch: bool = True,
                 max_lease_attempts: int = 5,
                 worker_ttl_s: float = 60.0) -> None:
        if max_finished_tickets < 1:
            raise ConfigurationError(
                f"max_finished_tickets must be >= 1, "
                f"got {max_finished_tickets}"
            )
        if max_lease_attempts < 1:
            raise ConfigurationError(
                f"max_lease_attempts must be >= 1, got {max_lease_attempts}"
            )
        if worker_ttl_s <= 0:
            raise ConfigurationError(
                f"worker_ttl_s must be > 0, got {worker_ttl_s}"
            )
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache if cache is not None else ResultCache()
        self.max_finished_tickets = max_finished_tickets
        #: Online per-kind cost->wall-clock regression behind ``eta_s``.
        self.calibrator = telemetry.CostCalibrator()
        # Instrument handles; every update is a no-op until
        # telemetry.enable(). The registry dedupes by family name, so
        # several schedulers in one process share these series.
        self._m_jobs = telemetry.counter(
            "repro_scheduler_jobs_total",
            "Jobs resolved by the scheduler, by scenario kind and how "
            "they resolved (computed/cached/failed).",
            labels=("kind", "outcome"))
        self._m_queue_depth = telemetry.gauge(
            "repro_scheduler_queue_depth",
            "Unique pending computations waiting for a dispatch round.")
        self._m_in_flight = telemetry.gauge(
            "repro_scheduler_jobs_in_flight",
            "Unique computations dispatched to the executor and not yet "
            "committed.")
        self._m_round = telemetry.histogram(
            "repro_scheduler_round_seconds",
            "Dispatch-round latency (one executor batch).")
        self._m_queue_wait = telemetry.histogram(
            "repro_scheduler_queue_wait_seconds",
            "Time a unique computation spent queued before dispatch.")
        self._m_job_wall = telemetry.histogram(
            "repro_scheduler_job_wall_seconds",
            "Worker-reported wall time per computed job.",
            labels=("kind",))
        self._m_leases = telemetry.counter(
            "repro_fleet_leases_total",
            "Fleet lease transitions by outcome "
            "(claimed/committed/failed/expired/stale).",
            labels=("outcome",))
        self._m_workers_active = telemetry.gauge(
            "repro_fleet_workers_active",
            "Workers holding a lease or heard from within the TTL.")
        self._m_leases_active = telemetry.gauge(
            "repro_fleet_leases_active",
            "Slots currently leased to a fleet worker.")
        self._m_worker_slow = telemetry.gauge(
            "repro_fleet_worker_slow",
            "1 when the worker's EWMA throughput is below "
            f"{_SLOW_FACTOR:g}x the fleet median (straggler), else 0.",
            labels=("worker",))
        #: Server-side merge of worker heartbeat telemetry (wire v4):
        #: per-worker metric snapshots + fleet logs behind /v1/metrics,
        #: /v1/workers/<id> and /v1/logs.
        self.federation = telemetry.FederatedTelemetry()
        self._log = telemetry.get_logger("service.scheduler")
        self._recent_expirations: deque[dict] = deque(
            maxlen=_MAX_EXPIRATIONS)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)  # dispatcher waits
        self._changed = threading.Condition(self._lock)  # pollers wait
        self._tickets: dict[str, _Ticket] = {}
        self._slots: dict[str, _Slot] = {}  # slot id -> slot
        self._slot_by_key: dict[str, str] = {}  # cacheable hash -> slot id
        self._uncacheable = itertools.count()
        self._closed = False
        self.local_dispatch = bool(local_dispatch)
        self.max_lease_attempts = int(max_lease_attempts)
        self.worker_ttl_s = float(worker_ttl_s)
        self._workers: dict[str, _WorkerInfo] = {}
        self._expired_total = 0
        self._thread: threading.Thread | None = None
        if self.local_dispatch:
            self._thread = threading.Thread(target=self._dispatch_loop,
                                            name="sweep-scheduler",
                                            daemon=True)
            self._thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, spec: SweepSpec,
               meta: Mapping[str, Any] | None = None) -> str:
        """Queue one sweep; returns its ticket id.

        Cache hits are recorded on the ticket immediately (a fully warm
        sweep completes before ``submit`` returns); the rest join the
        global queue, deduplicated against every other ticket's pending
        jobs by content hash.
        """
        if not isinstance(spec, SweepSpec):
            raise ConfigurationError(
                f"submit expects a SweepSpec, got {type(spec).__name__}"
            )
        return self._admit(spec, spec.jobs(), meta)

    def submit_jobs(self, jobs: Sequence[Job],
                    meta: Mapping[str, Any] | None = None) -> str:
        """Queue an explicit job batch (the remote-executor wire path).

        The ticket's payloads come back in the order given; no
        :class:`SweepResult` assembly is available for raw batches.
        """
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("submit_jobs needs at least one job")
        if not all(isinstance(j, Job) for j in jobs):
            raise ConfigurationError("submit_jobs expects engine Jobs")
        return self._admit(None, jobs, meta)

    def _admit(self, spec: SweepSpec | None, jobs: list[Job],
               meta: Mapping[str, Any] | None) -> str:
        with self._lock:
            if self._closed:
                raise ConfigurationError("scheduler is shut down")
            # The hit/pending split runs under the scheduler lock:
            # commits (cache.put) hold the same lock, so a job can
            # never fall between "not yet cached" and "no longer
            # queued" — each unique content hash is computed exactly
            # once even under concurrent overlapping submissions.
            hits, _ = cache_split(jobs, self.cache)
            # Cache hits replay the *original* compute's wall_time_s /
            # spans; tag them so downstream consumers (the cost
            # calibrator above all) never mistake a replay for a fresh
            # measurement. cache.get returned per-call copies, so this
            # never touches the cached entry itself.
            for payload in hits.values():
                payload["cached"] = True
            kinds = [job_kind(job) for job in jobs]
            costs = [estimate_job_cost(job) for job in jobs]
            ticket = _Ticket(
                id=uuid.uuid4().hex[:16],
                spec=spec,
                jobs=jobs,
                payloads=[hits.get(i) for i in range(len(jobs))],
                hits=[i in hits for i in range(len(jobs))],
                meta=dict(meta or {}),
                created_unix=time.time(),
                costs=costs,
                kinds=kinds,
                done=len(hits),
            )
            for i in hits:
                self._m_jobs.inc(kind=kinds[i], outcome="cached")
            self._tickets[ticket.id] = ticket
            self._prune_finished_locked()
            n_new = 0
            for i, job in enumerate(jobs):
                if ticket.payloads[i] is not None:
                    continue
                slot_id = (self._slot_by_key.get(job.key)
                           if job.cacheable else None)
                if slot_id is not None and slot_id in self._slots:
                    self._slots[slot_id].waiters.append((ticket.id, i))
                    continue
                slot_id = (job.key if job.cacheable
                           else f"once-{next(self._uncacheable)}")
                self._slots[slot_id] = _Slot(
                    job=job, cost=costs[i],
                    waiters=[(ticket.id, i)])
                if job.cacheable:
                    self._slot_by_key[job.key] = slot_id
                n_new += 1
            self._update_gauges_locked()
            self._event(ticket, {
                "event": "submitted",
                "total": ticket.total,
                "cache_hits": ticket.done,
                "pending": ticket.total - ticket.done,
                "deduplicated": ticket.total - ticket.done - n_new,
            })
            if ticket.done == ticket.total:
                self._finish_locked(ticket)
            else:
                ticket.state = RUNNING
                self._wakeup.notify_all()
            self._changed.notify_all()
        return ticket.id

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _update_gauges_locked(self) -> None:
        """Refresh queue-depth / in-flight / fleet gauges (lock held)."""
        if not telemetry.enabled():
            return
        queued = sum(1 for s in self._slots.values() if s.queued)
        self._m_queue_depth.set(queued)
        self._m_in_flight.set(len(self._slots) - queued)
        self._m_leases_active.set(sum(
            1 for s in self._slots.values()
            if not s.queued and s.leased_to is not None))
        self._m_workers_active.set(self._active_workers_locked())

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._closed and not any(
                        s.queued for s in self._slots.values()):
                    self._wakeup.wait()
                if self._closed:
                    return
                round_ids = [sid for sid, s in self._slots.items()
                             if s.queued]
                # Longest-first: start the most expensive solves before
                # the cheap ones so a parallel backend's stragglers are
                # short, not the n^3 monsters.
                round_ids.sort(key=lambda sid: self._slots[sid].cost,
                               reverse=True)
                now = time.monotonic()
                now_unix = time.time()
                for sid in round_ids:
                    slot = self._slots[sid]
                    slot.queued = False
                    slot.claimed_unix = now_unix
                    self._m_queue_wait.observe(now - slot.queued_monotonic)
                self._update_gauges_locked()
                # Fuse jobs sharing a scenario (equal content hash) and
                # estimator into one frequency-stacked execution item.
                # Group order follows the cost order above (grouped jobs
                # share a cost — it is a function of the spec alone), so
                # longest-first dispatch is preserved group-wise.
                id_groups = group_by_scenario(
                    round_ids, lambda sid: self._slots[sid].job)
                round_groups = [[self._slots[sid].job for sid in bucket]
                                for bucket in id_groups]

            def _commit(pos: int, payloads: list[dict]) -> None:
                for sid, payload in zip(id_groups[pos], payloads):
                    self._commit_slot(sid, payload)

            round_start = time.perf_counter()
            try:
                with telemetry.span("dispatch_round", jobs=len(round_ids),
                                    groups=len(round_groups)):
                    computed = self.executor.run(_execute_group_safely,
                                                 round_groups,
                                                 on_result=_commit)
            except Exception as exc:  # noqa: BLE001 — executor-level error
                self._m_round.observe(time.perf_counter() - round_start)
                self._fail_round(round_ids, exc)
            else:
                self._m_round.observe(time.perf_counter() - round_start)
                # Custom executors that ignore on_result still commit.
                for pos, payloads in enumerate(computed):
                    for sid, payload in zip(id_groups[pos], payloads):
                        self._commit_slot(sid, payload)

    def _commit_slot(self, slot_id: str, payload: dict) -> None:
        with self._lock:
            self._commit_slot_locked(slot_id, payload)

    def _commit_slot_locked(self, slot_id: str, payload: dict) -> None:
        """Commit one computed payload to its slot's waiters (lock held).

        The single funnel every execution path ends in — the local
        dispatcher's ``on_result`` callback and fleet lease commits
        alike — so caching, calibration, events and fan-out cannot
        diverge between in-process and networked execution.
        """
        slot = self._slots.pop(slot_id, None)
        if slot is None:
            return
        job = slot.job
        kind = job_kind(job)
        error = payload.get(_JOB_ERROR)
        self._record_flight_locked(slot, payload, error)
        if error is not None:
            if job.cacheable:
                self._slot_by_key.pop(job.key, None)
            self._m_jobs.inc(kind=kind, outcome="failed")
            self._update_gauges_locked()
            self._log.warning("job failed", key=job.key,
                              worker_id=slot.leased_to, error=error)
            self._fail_waiters_locked(slot.waiters, error)
            self._changed.notify_all()
            return
        self._m_jobs.inc(kind=kind, outcome="computed")
        self._update_gauges_locked()
        wall = payload.get("wall_time_s")
        # Committed payloads always come straight from the executor
        # (cache hits never enter a slot), but guard on the
        # ``cached`` tag anyway: a replayed wall time must never
        # reach the calibrator.
        if (not payload.get("cached") and isinstance(wall, (int, float))
                and wall > 0.0):
            self.calibrator.observe(kind, slot.cost, float(wall))
            self._m_job_wall.observe(float(wall), kind=kind)
        if job.cacheable:
            self._slot_by_key.pop(job.key, None)
            owner = slot.waiters[0][0]
            meta = self._tickets[owner].meta if owner in self._tickets \
                else {}
            tags = (dict(self._tickets[owner].spec.tags)
                    if owner in self._tickets
                    and self._tickets[owner].spec is not None else {})
            self.cache.put(job.key, payload, metadata={
                "scenario": job.scenario.name,
                "frequency_hz": float(job.frequency_hz),
                "estimator": job.estimator_label,
                "tags": tags or dict(meta),
            })
        for ticket_id, index in slot.waiters:
            ticket = self._tickets.get(ticket_id)
            if ticket is None or ticket.payloads[index] is not None:
                continue
            ticket.payloads[index] = payload
            ticket.done += 1
            self._event(ticket, {
                "event": "point",
                "scenario": job.scenario.name,
                "frequency_hz": float(job.frequency_hz),
                "estimator": job.estimator_label,
                "key": job.key,
                "mean": payload["mean"],
                "done": ticket.done,
                "total": ticket.total,
            })
            if payload.get("spans"):
                # Worker-recorded solver/job spans ride the payload;
                # surfaced as their own event so the NDJSON stream
                # carries traces without bloating every "point".
                self._event(ticket, {
                    "event": "trace",
                    "key": job.key,
                    "scenario": job.scenario.name,
                    "spans": list(payload["spans"]),
                })
            if ticket.done == ticket.total:
                self._finish_locked(ticket)
        self._changed.notify_all()

    def _record_flight_locked(self, slot: _Slot, payload: dict,
                              error: str | None) -> None:
        """Append one committed slot's flight record to its tickets.

        Captures the wall-clock phase boundaries (queued -> claimed ->
        committed), the executing worker (None = local dispatcher) and
        a *copy* of the worker's job spans — the payload itself is
        never touched, so fleet bit-identity cannot be perturbed.
        """
        now = time.time()
        record = {
            "key": slot.job.key,
            "scenario": slot.job.scenario.name,
            "worker": slot.leased_to,
            "queued_unix": slot.queued_unix,
            "claimed_unix": (slot.claimed_unix
                             if slot.claimed_unix is not None else now),
            "committed_unix": now,
            "lease_attempts": slot.lease_attempts,
            "wall_time_s": payload.get("wall_time_s"),
            "error": error,
            "spans": [dict(s) for s in payload.get("spans") or ()],
        }
        for ticket_id, _ in slot.waiters:
            ticket = self._tickets.get(ticket_id)
            if ticket is not None:
                ticket.flight.append(record)

    def _fail_waiters_locked(self, waiters: list[tuple[str, int]],
                      message: str) -> None:
        """Fail every live ticket waiting on one slot (lock held)."""
        for ticket_id, _ in waiters:
            ticket = self._tickets.get(ticket_id)
            if ticket is None or ticket.state in (COMPLETE, FAILED):
                continue
            ticket.state = FAILED
            ticket.error = message
            ticket.finished_unix = time.time()
            ticket.finished_monotonic = time.monotonic()
            self._event(ticket, {"event": "failed", "error": message})

    def _fail_round(self, round_ids: list[str], exc: Exception) -> None:
        message = f"{type(exc).__name__}: {exc}"
        with self._lock:
            for slot_id in round_ids:
                slot = self._slots.pop(slot_id, None)
                if slot is None:  # committed before the round died
                    continue
                if slot.job.cacheable:
                    self._slot_by_key.pop(slot.job.key, None)
                self._fail_waiters_locked(slot.waiters, message)
            self._changed.notify_all()

    def _finish_locked(self, ticket: _Ticket) -> None:
        ticket.state = COMPLETE
        ticket.finished_unix = time.time()
        ticket.finished_monotonic = time.monotonic()
        self._event(ticket, {
            "event": "complete",
            "total": ticket.total,
            "cache_hits": sum(ticket.hits),
            "wall_time_s": (ticket.finished_monotonic
                            - ticket.created_monotonic),
        })

    def _prune_finished_locked(self) -> None:
        """Bound ticket history: drop the oldest finished tickets once
        more than ``max_finished_tickets`` have completed/failed (their
        results stay replayable through the cache)."""
        finished = [t for t in self._tickets.values()
                    if t.state in (COMPLETE, FAILED)]
        if len(finished) <= self.max_finished_tickets:
            return
        finished.sort(key=lambda t: t.finished_unix or 0.0)
        for t in finished[:len(finished) - self.max_finished_tickets]:
            self._tickets.pop(t.id, None)

    @staticmethod
    def _event(ticket: _Ticket, event: dict) -> None:
        event["ticket"] = ticket.id
        event["seq"] = len(ticket.events)
        event["time_unix"] = time.time()
        ticket.events.append(event)

    # ------------------------------------------------------------------
    # Fleet lease protocol
    # ------------------------------------------------------------------

    def _touch_worker_locked(self, worker_id: str) -> _WorkerInfo:
        info = self._workers.get(worker_id)
        now_unix, now_mono = time.time(), time.monotonic()
        if info is None:
            info = _WorkerInfo(id=worker_id, first_seen_unix=now_unix,
                               last_seen_unix=now_unix,
                               last_seen_monotonic=now_mono)
            self._workers[worker_id] = info
        else:
            info.last_seen_unix = now_unix
            info.last_seen_monotonic = now_mono
        return info

    def _active_workers_locked(self) -> int:
        """Workers holding a lease or heard from within the TTL."""
        leased = {s.leased_to for s in self._slots.values()
                  if s.leased_to is not None and not s.queued}
        now = time.monotonic()
        return sum(1 for w in self._workers.values()
                   if w.id in leased
                   or now - w.last_seen_monotonic <= self.worker_ttl_s)

    def _reclaim_expired_locked(self) -> int:
        """Re-queue every slot whose lease deadline passed (lock held).

        Each reclaim rotates the slot's token (so the late worker's
        eventual upload is recognized as stale and dropped) and, past
        ``max_lease_attempts``, fails the waiters instead of re-queuing
        a job that keeps killing workers. Returns the reclaim count.
        """
        now = time.monotonic()
        reclaimed = 0
        for slot_id, slot in list(self._slots.items()):
            if (slot.queued or slot.lease_deadline is None
                    or now < slot.lease_deadline):
                continue
            reclaimed += 1
            self._expired_total += 1
            self._m_leases.inc(outcome="expired")
            worker = self._workers.get(slot.leased_to or "")
            if worker is not None:
                worker.expired += 1
            self._recent_expirations.append({
                "time_unix": time.time(),
                "worker": slot.leased_to,
                "key": slot.job.key,
                "attempts": slot.lease_attempts,
            })
            self._log.warning("lease expired", key=slot.job.key,
                              worker_id=slot.leased_to,
                              attempts=slot.lease_attempts)
            slot.leased_to = None
            slot.lease_token = None
            slot.lease_deadline = None
            if slot.lease_attempts >= self.max_lease_attempts:
                self._slots.pop(slot_id, None)
                if slot.job.cacheable:
                    self._slot_by_key.pop(slot.job.key, None)
                if telemetry.enabled():
                    self._m_jobs.inc(kind=job_kind(slot.job),
                                     outcome="failed")
                self._fail_waiters_locked(slot.waiters, (
                    f"lease expired {slot.lease_attempts} times "
                    f"(max_lease_attempts={self.max_lease_attempts})"
                ))
            else:
                slot.queued = True
                slot.queued_monotonic = now
        if reclaimed:
            self._update_gauges_locked()
            self._wakeup.notify_all()  # local dispatcher may pick them up
            self._changed.notify_all()
        return reclaimed

    def claim_jobs(self, worker_id: str, max_jobs: int = 1,
                   lease_s: float = 30.0) -> list[WorkerClaim]:
        """Lease up to ``max_jobs`` queued computations to a worker.

        Claims come out longest-first (the dispatcher's cost order),
        with same-scenario jobs adjacent so one claim batch tends to
        hold whole frequency stacks the worker can execute fused. Each
        claim carries a fresh opaque token the worker must echo back on
        heartbeat/commit. An empty list means the queue is drained.
        """
        if not worker_id:
            raise ConfigurationError("claim needs a non-empty worker id")
        max_jobs = max(1, min(int(max_jobs), 256))
        lease_s = float(lease_s)
        if not 0.0 < lease_s <= 3600.0:
            raise ConfigurationError(
                f"lease_s must be in (0, 3600], got {lease_s}"
            )
        with self._lock:
            if self._closed:
                raise ConfigurationError("scheduler is shut down")
            self._reclaim_expired_locked()
            worker = self._touch_worker_locked(worker_id)
            queued = [(sid, s) for sid, s in self._slots.items() if s.queued]
            # Longest-first, with the scenario hash as tie-break: jobs of
            # one scenario share a cost, so the secondary key keeps a
            # frequency stack adjacent and a claim batch tends to carry
            # whole groups the worker can fuse.
            queued.sort(key=lambda pair: (-pair[1].cost,
                                          pair[1].job.scenario.key))
            now = time.monotonic()
            claims: list[WorkerClaim] = []
            now_unix = time.time()
            for slot_id, slot in queued[:max_jobs]:
                slot.queued = False
                slot.claimed_unix = now_unix
                slot.leased_to = worker_id
                slot.lease_token = uuid.uuid4().hex
                slot.lease_deadline = now + lease_s
                slot.lease_attempts += 1
                self._m_queue_wait.observe(now - slot.queued_monotonic)
                self._m_leases.inc(outcome="claimed")
                worker.claimed += 1
                claims.append(WorkerClaim(
                    slot=slot_id, token=slot.lease_token,
                    key=slot.job.key, lease_s=lease_s, job=slot.job))
            if claims:
                self._update_gauges_locked()
            return claims

    def heartbeat(self, worker_id: str, slots: Mapping[str, str],
                  lease_s: float = 30.0,
                  telemetry_snapshot: WorkerTelemetry | None = None,
                  ) -> dict[str, bool]:
        """Extend the worker's leases; returns per-slot aliveness.

        ``slots`` maps slot id -> lease token. A False entry means the
        lease was lost (expired and reclaimed, or committed elsewhere);
        the worker should abandon that job and skip its upload.

        ``telemetry_snapshot`` (wire v4; optional, so v3 workers keep
        heartbeating) is the worker's federated telemetry: its metric
        snapshot and fresh log records merge into :attr:`federation`,
        which backs the fleet half of ``GET /v1/metrics`` and the
        ``/v1/workers/<id>`` / ``/v1/logs`` endpoints.
        """
        lease_s = float(lease_s)
        if not 0.0 < lease_s <= 3600.0:
            raise ConfigurationError(
                f"lease_s must be in (0, 3600], got {lease_s}"
            )
        with self._lock:
            self._reclaim_expired_locked()
            self._touch_worker_locked(worker_id)
            now = time.monotonic()
            alive: dict[str, bool] = {}
            for slot_id, token in slots.items():
                slot = self._slots.get(slot_id)
                ok = (slot is not None and not slot.queued
                      and slot.leased_to == worker_id
                      and slot.lease_token == token)
                if ok:
                    slot.lease_deadline = now + lease_s
                alive[slot_id] = ok
        # Federation has its own lock; merging outside the scheduler
        # lock keeps snapshot-sized work off the lease hot path.
        if telemetry_snapshot is not None:
            self.federation.ingest(
                worker_id,
                metrics=telemetry_snapshot.metrics or None,
                logs=telemetry_snapshot.logs,
                stats=telemetry_snapshot.stats,
                time_unix=telemetry_snapshot.time_unix,
            )
        return alive

    def _verify_lease_locked(self, worker_id: str, slot_id: str,
                             token: str, key: str) -> _Slot | None:
        """Validate a commit's lease; None means benignly stale.

        Deliberately lenient about the deadline: an expired-but-not-yet
        -reclaimed lease still commits (the work is deterministic and
        correct — dropping it would only waste a re-execution). Only a
        reclaim, which rotates the token, makes the old lease stale. A
        key mismatch is never stale — it is a protocol violation and
        raises.
        """
        slot = self._slots.get(slot_id)
        if (slot is None or slot.queued or slot.leased_to != worker_id
                or slot.lease_token != token):
            return None
        if key and slot.job.key != key:
            raise ConfigurationError(
                f"content-hash mismatch on slot {slot_id}: lease is for "
                f"{slot.job.key}, result claims {key}"
            )
        return slot

    def complete_lease(self, worker_id: str, slot_id: str, token: str,
                       key: str, payload: dict) -> str:
        """Commit a leased job's payload; 'committed' or 'stale'.

        A stale commit (lease reclaimed, token rotated, slot already
        retired) is dropped benignly — the re-leased execution is the
        one that counts. Committed payloads flow through the same
        ``_commit_slot`` funnel as the local dispatcher's.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"complete expects a payload dict, got "
                f"{type(payload).__name__}"
            )
        with self._lock:
            slot = self._verify_lease_locked(worker_id, slot_id, token, key)
            worker = self._touch_worker_locked(worker_id)
            if slot is None:
                self._m_leases.inc(outcome="stale")
                return "stale"
            worker.completed += 1
            wall = payload.get("wall_time_s")
            if isinstance(wall, (int, float)) and wall > 0.0:
                rate = slot.cost / float(wall)
                worker.rate_ewma = (rate if worker.rate_n == 0 else
                                    _RATE_ALPHA * rate
                                    + (1.0 - _RATE_ALPHA)
                                    * worker.rate_ewma)
                worker.rate_n += 1
            self._m_leases.inc(outcome="committed")
            self._commit_slot_locked(slot_id, payload)
            return "committed"

    def fail_lease(self, worker_id: str, slot_id: str, token: str,
                   key: str, error: str) -> str:
        """Report a leased job's execution failure; 'committed'|'stale'.

        Routes the error through the same funnel as a locally captured
        job failure (:func:`_execute_safely`), so only the tickets
        waiting on this job fail.
        """
        with self._lock:
            slot = self._verify_lease_locked(worker_id, slot_id, token, key)
            worker = self._touch_worker_locked(worker_id)
            if slot is None:
                self._m_leases.inc(outcome="stale")
                return "stale"
            worker.failed += 1
            self._m_leases.inc(outcome="failed")
            self._commit_slot_locked(
                slot_id, {_JOB_ERROR: str(error) or "worker-reported failure"})
            return "committed"

    def fleet_snapshot(self) -> dict:
        """JSON-ready fleet health: workers, leases, queue depth.

        Runs a reclaim pass first (the fleet endpoints and ``healthz``
        are the lease path's clock), then prunes workers past the TTL
        that hold no lease.
        """
        with self._lock:
            self._reclaim_expired_locked()
            now = time.monotonic()
            leased_by: dict[str, int] = {}
            for s in self._slots.values():
                if s.leased_to is not None and not s.queued:
                    leased_by[s.leased_to] = leased_by.get(s.leased_to, 0) + 1
            for wid, info in list(self._workers.items()):
                if (wid not in leased_by
                        and now - info.last_seen_monotonic
                        > self.worker_ttl_s):
                    del self._workers[wid]
            queued = sum(1 for s in self._slots.values() if s.queued)
            # Straggler detection: a worker whose EWMA throughput (in
            # relative cost units/s, so only comparable across workers)
            # sits below _SLOW_FACTOR x the fleet median is flagged and
            # its repro_fleet_worker_slow gauge raised. Needs >= 2
            # measured workers — one worker has no peer to lag behind.
            rates = sorted(w.rate_ewma for w in self._workers.values()
                           if w.rate_n > 0)
            median = (rates[len(rates) // 2] if len(rates) % 2 else
                      0.5 * (rates[len(rates) // 2 - 1]
                             + rates[len(rates) // 2])) if rates else 0.0
            slow_ids = set()
            if len(rates) >= 2 and median > 0.0:
                slow_ids = {w.id for w in self._workers.values()
                            if w.rate_n > 0
                            and w.rate_ewma < _SLOW_FACTOR * median}
            for w in self._workers.values():
                self._m_worker_slow.set(1.0 if w.id in slow_ids else 0.0,
                                        worker=w.id)
            workers = [
                {
                    "id": w.id,
                    "first_seen_unix": w.first_seen_unix,
                    "last_seen_unix": w.last_seen_unix,
                    "leases_held": leased_by.get(w.id, 0),
                    "claimed": w.claimed,
                    "completed": w.completed,
                    "failed": w.failed,
                    "expired": w.expired,
                    "rate_ewma": w.rate_ewma,
                    "slow": w.id in slow_ids,
                }
                for w in sorted(self._workers.values(),
                                key=lambda w: w.first_seen_unix)
            ]
            return {
                "workers": workers,
                "workers_active": self._active_workers_locked(),
                "leases_active": sum(leased_by.values()),
                "leases_expired_total": self._expired_total,
                "recent_expirations": list(self._recent_expirations),
                "queue_depth": queued,
                "jobs_in_flight": len(self._slots) - queued,
                "local_dispatch": self.local_dispatch,
            }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _ticket_locked(self, ticket_id: str) -> _Ticket:
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise KeyError(ticket_id)
        return ticket

    def _eta_s_locked(self, t: _Ticket) -> float | None:
        """Predicted seconds until ``t`` completes (lock held).

        Sums the calibrator's per-kind wall-clock predictions over the
        still-undone points and divides by the executor's width (a
        parallel backend retires that many at once, to first order).
        ``0.0`` once the ticket is terminal; ``None`` while any pending
        kind has no observations yet — an honest "unknown" beats a
        made-up number.
        """
        if t.state in (COMPLETE, FAILED):
            return 0.0
        total = 0.0
        for i in range(t.total):
            if t.payloads[i] is not None:
                continue
            pred = self.calibrator.predict(t.kinds[i], t.costs[i])
            if pred is None:
                return None
            total += pred
        width = max(int(getattr(self.executor, "n_jobs", 1) or 1), 1)
        return total / width

    def status(self, ticket_id: str) -> dict:
        """JSON-ready snapshot of one ticket's progress."""
        with self._lock:
            t = self._ticket_locked(ticket_id)
            points = [
                {
                    "scenario": job.scenario.name,
                    "frequency_hz": float(job.frequency_hz),
                    "estimator": job.estimator_label,
                    "key": job.key,
                    "done": t.payloads[i] is not None,
                    "cache_hit": t.hits[i],
                    "mean": (t.payloads[i]["mean"]
                             if t.payloads[i] is not None else None),
                }
                for i, job in enumerate(t.jobs)
            ]
            return {
                "id": t.id,
                "state": t.state,
                "done": t.done,
                "total": t.total,
                "cache_hits": sum(t.hits),
                "error": t.error,
                "eta_s": self._eta_s_locked(t),
                "meta": dict(t.meta),
                "created_unix": t.created_unix,
                "finished_unix": t.finished_unix,
                "points": points,
            }

    def trace(self, ticket_id: str) -> dict:
        """One merged Chrome trace of the ticket's flight records.

        Lays the sweep's wall-clock out across processes: the server
        lane carries each computation's **queue-wait** (submit ->
        claim), and each executing worker's lane carries its **lease**
        window (claim -> commit), the worker-recorded **solve** spans
        that rode the payload, and the **upload** tail (solve end ->
        commit). Lanes are synthetic pids named via ``worker_id``
        (:func:`repro.telemetry.chrome_trace`), so a fleet of threads
        sharing one OS pid still renders as separate worker rows.
        Viewable in ``chrome://tracing`` / Perfetto as-is.
        """
        with self._lock:
            t = self._ticket_locked(ticket_id)
            flights = list(t.flight)
            state = t.state
        lanes: dict[str, int] = {"server": 1}
        records: list[dict] = []
        for f in flights:
            worker = f.get("worker") or "server"
            pid = lanes.setdefault(worker, len(lanes) + 1)
            queued = float(f["queued_unix"])
            claimed = float(f["claimed_unix"])
            committed = float(f["committed_unix"])
            args = {"key": f.get("key"), "scenario": f.get("scenario"),
                    "ticket": ticket_id}
            records.append({
                "name": "queue-wait", "start_unix": queued,
                "duration_s": max(claimed - queued, 0.0),
                "pid": lanes["server"], "tid": 0,
                "worker_id": "server", "meta": args})
            records.append({
                "name": "lease" if f.get("worker") else "dispatch",
                "start_unix": claimed,
                "duration_s": max(committed - claimed, 0.0),
                "pid": pid, "tid": 1, "worker_id": worker,
                "meta": dict(args, attempts=f.get("lease_attempts"),
                             error=f.get("error"))})
            solve_end = None
            for s in f.get("spans") or ():
                rec = dict(s)
                rec["pid"] = pid
                rec["worker_id"] = worker
                records.append(rec)
                if rec.get("name") == "job":
                    solve_end = (float(rec["start_unix"])
                                 + float(rec["duration_s"]))
            wall = f.get("wall_time_s")
            if (solve_end is None and isinstance(wall, (int, float))
                    and wall > 0.0):
                # Telemetry was off on the executing side: synthesize
                # the solve phase from the reported wall time.
                records.append({
                    "name": "solve", "start_unix": claimed,
                    "duration_s": float(wall), "pid": pid, "tid": 0,
                    "worker_id": worker, "meta": args})
                solve_end = min(claimed + float(wall), committed)
            if solve_end is not None and f.get("worker"):
                records.append({
                    "name": "upload", "start_unix": solve_end,
                    "duration_s": max(committed - solve_end, 0.0),
                    "pid": pid, "tid": 1, "worker_id": worker,
                    "meta": args})
        return {
            "traceEvents": telemetry.chrome_trace(records),
            "displayTimeUnit": "ms",
            "metadata": {"ticket": ticket_id, "state": state,
                         "records": len(flights)},
        }

    def events(self, ticket_id: str, since: int = 0,
               timeout: float | None = None) -> tuple[list[dict], bool]:
        """Events after sequence ``since`` (long-poll up to ``timeout``).

        Returns ``(events, finished)``; with a timeout, blocks until a
        new event arrives, the ticket finishes, or the timeout expires.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            t = self._ticket_locked(ticket_id)
            while True:
                fresh = t.events[since:]
                finished = t.state in (COMPLETE, FAILED)
                if fresh or finished or deadline is None:
                    return list(fresh), finished
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False
                self._changed.wait(remaining)

    def wait(self, ticket_id: str, timeout: float | None = None) -> bool:
        """Block until the ticket completes or fails; True if it did."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            t = self._ticket_locked(ticket_id)
            while t.state not in (COMPLETE, FAILED):
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._changed.wait(remaining)
            return True

    def result(self, ticket_id: str) -> SweepResult:
        """Assemble the completed ticket's :class:`SweepResult`.

        Mirrors :func:`repro.engine.run_batch`'s assembly exactly, so a
        service-side sweep of a spec equals the in-process result
        bit-for-bit (modulo wall time and executor provenance).
        """
        with self._lock:
            t = self._ticket_locked(ticket_id)
            if t.state == FAILED:
                raise ConfigurationError(
                    f"sweep {ticket_id} failed: {t.error}"
                )
            if t.state != COMPLETE:
                raise ConfigurationError(
                    f"sweep {ticket_id} is {t.state} "
                    f"({t.done}/{t.total} points)"
                )
            if t.spec is None:
                raise ConfigurationError(
                    f"ticket {ticket_id} is a raw job batch; use "
                    "payloads() for it"
                )
            points = tuple(
                PointResult(
                    scenario=job.scenario.name,
                    frequency_hz=float(job.frequency_hz),
                    estimator=job.estimator_label,
                    key=job.key,
                    mean=payload["mean"],
                    std=payload["std"],
                    values=payload["values"],
                    n_evals=payload["n_evals"],
                    seed=payload["seed"],
                    wall_time_s=payload["wall_time_s"],
                    cache_hit=hit,
                    pid=payload.get("pid"),
                    spans=payload.get("spans"),
                )
                for job, payload, hit in zip(t.jobs, t.payloads, t.hits)
            )
            return SweepResult(
                frequencies_hz=t.spec.frequencies_hz,
                points=points,
                tags=dict(t.spec.tags),
                executor=f"service:{self.executor.name}",
                wall_time_s=((t.finished_monotonic or t.created_monotonic)
                             - t.created_monotonic),
            )

    def payloads(self, ticket_id: str) -> list[dict]:
        """The completed ticket's payload dicts, in job order."""
        with self._lock:
            t = self._ticket_locked(ticket_id)
            if t.state == FAILED:
                raise ConfigurationError(
                    f"batch {ticket_id} failed: {t.error}"
                )
            if t.state != COMPLETE:
                raise ConfigurationError(
                    f"batch {ticket_id} is {t.state} "
                    f"({t.done}/{t.total} points)"
                )
            return [dict(p) for p in t.payloads]

    def tickets(self) -> list[dict]:
        """Summaries of every ticket (newest first)."""
        with self._lock:
            out = [{"id": t.id, "state": t.state, "done": t.done,
                    "total": t.total, "meta": dict(t.meta),
                    "created_unix": t.created_unix}
                   for t in self._tickets.values()]
        out.sort(key=lambda d: d["created_unix"], reverse=True)
        return out

    def telemetry_snapshot(self) -> dict:
        """One atomic, JSON-ready view of queue health + calibration.

        ``GET /v1/metrics`` refreshes its scheduler gauges from this
        (lock-consistent, unlike reading the pieces one by one).
        """
        with self._lock:
            queued = sum(1 for s in self._slots.values() if s.queued)
            states: dict[str, int] = {}
            for t in self._tickets.values():
                states[t.state] = states.get(t.state, 0) + 1
            return {
                "queue_depth": queued,
                "jobs_in_flight": len(self._slots) - queued,
                "tickets": states,
                "calibration": self.calibrator.snapshot(),
            }

    # ------------------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher (queued-but-unstarted work is dropped;
        the running round finishes committing)."""
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
            self._changed.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
