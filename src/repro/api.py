"""repro.api — one facade over the paper's experiments and the engine.

The single public entry point for reproducing the paper's evaluation::

    import repro.api

    repro.api.experiments()                  # registered names
    repro.api.plan("fig3", scale="quick")    # dry-run: the SweepSpec
    result = repro.api.run("fig3", scale="quick", jobs=4,
                           cache_dir="./sweep-cache")
    results = repro.api.run_many(["fig3", "fig5", "fig7"], jobs=8)

Every experiment is a declarative
:class:`~repro.experiments.base.Experiment`: ``plan(scale)`` describes
all of its solver-backed points as one
:class:`~repro.engine.SweepSpec`, ``reduce`` assembles the figure from
the executed sweep. :func:`run` executes one experiment's spec with a
single engine call, so parallelism spans the whole figure;
:func:`run_many` merges every planned spec into **one** job stream
(:func:`repro.engine.run_batch`), so parallelism — and cross-experiment
job deduplication — spans the entire figure set.

``jobs``/``cache_dir`` scope an :func:`repro.engine.engine_session`
around plan/execute/reduce, so explicit ``executor``/``cache`` objects
(or an enclosing session) remain usable and nested sweeps inside a
``reduce`` inherit the same policy.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from .engine import ResultCache, engine_session, run_batch
from .engine.executors import Executor, ProgressFn
from .engine.spec import SweepSpec
from .errors import ConfigurationError
from .experiments import registry
from .experiments.base import Experiment, ExperimentResult
from .experiments.presets import Scale, resolve_scale

__all__ = [
    "experiments",
    "get",
    "plan",
    "run",
    "run_many",
    "sweeps_for",
]


def experiments() -> list[str]:
    """Names of every registered experiment (sorted)."""
    return registry.names()


def get(name: str, **params) -> Experiment:
    """A fresh :class:`Experiment` instance for ``name``.

    ``params`` forwards to the experiment's constructor (e.g.
    ``get("fig3", sigma_um=2.0)``) for non-default physics variants.
    """
    return registry.create(name, **params)


def plan(name: str, scale: Scale | str | None = None) -> SweepSpec | None:
    """The experiment's declarative job plan, without executing it.

    Returns the single multi-scenario :class:`SweepSpec` covering every
    solver-backed point of the figure, or ``None`` for experiments that
    perform no SWM solves (fig2, table1). Useful for dry-run inspection:
    ``plan("fig3").n_jobs``, per-job content hashes, etc.
    """
    return get(name).plan(resolve_scale(scale))


def run(name: str, scale: Scale | str | None = None, *,
        jobs: int | None = None, cache_dir: str | None = None,
        executor: Executor | None = None, cache: ResultCache | None = None,
        progress: ProgressFn | None = None,
        experiment: Experiment | None = None) -> ExperimentResult:
    """Reproduce one figure/table: plan -> one engine sweep -> reduce.

    ``jobs > 1`` runs the figure's whole job stream (all scenarios x
    frequencies x estimators) on a process pool; ``cache_dir`` adds a
    persistent result-cache tier so re-runs replay point by point.
    ``experiment`` substitutes a pre-built (e.g. non-default-parameter)
    instance; ``name`` is ignored for lookup then.
    """
    exp = experiment if experiment is not None else get(name)
    scale = resolve_scale(scale)
    with engine_session(n_jobs=jobs, cache_dir=cache_dir,
                        executor=executor, cache=cache):
        return exp.run(scale, progress=progress)


def run_many(names: Iterable[str] | None = None,
             scale: Scale | str | None = None, *,
             jobs: int | None = None, cache_dir: str | None = None,
             executor: Executor | None = None,
             cache: ResultCache | None = None,
             progress: ProgressFn | None = None,
             batch_progress: Callable[[str, int, int], None] | None = None,
             ) -> dict[str, ExperimentResult]:
    """Reproduce several experiments as **one merged job stream**.

    All planned specs execute in a single :func:`repro.engine.run_batch`
    call: the executor sees every pending point of every figure at once
    (parallelism spans the figure set), cacheable points shared between
    experiments are computed once, and cached points are served
    immediately. Results are keyed by experiment name, in the order
    given. ``batch_progress(name, done, total)`` attributes completed
    points to their experiment.
    """
    selected = list(names) if names is not None else experiments()
    if len(set(selected)) != len(selected):
        raise ConfigurationError(
            f"duplicate experiment names in {selected}"
        )
    scale = resolve_scale(scale)
    exps = {name: get(name) for name in selected}
    with engine_session(n_jobs=jobs, cache_dir=cache_dir,
                        executor=executor, cache=cache):
        specs = {name: exp.plan(scale) for name, exp in exps.items()}
        sweeps = run_batch(
            {name: spec for name, spec in specs.items() if spec is not None},
            progress=progress, batch_progress=batch_progress)
        return {name: exp.reduce(sweeps.get(name), scale)
                for name, exp in exps.items()}


def sweeps_for(names: Iterable[str] | None = None,
               scale: Scale | str | None = None,
               ) -> Mapping[str, SweepSpec]:
    """Planned specs for several experiments (dry-run over a set).

    Solve-free experiments are omitted, mirroring what
    :func:`run_many` would actually submit to the engine.
    """
    selected = list(names) if names is not None else experiments()
    scale = resolve_scale(scale)
    specs = {name: get(name).plan(scale) for name in selected}
    return {name: spec for name, spec in specs.items() if spec is not None}
