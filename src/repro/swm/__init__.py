"""Scalar Wave Modeling solvers (the paper's Section III).

- :class:`SWMSolver3D` — the full 3D formulation (MOM over a
  doubly-periodic patch with Ewald-accelerated Green's functions);
- :class:`SWMSolver2D` — the simplified y-uniform formulation (Fig. 6);
- mesh builders and assembly internals for advanced use.
"""

from .assembly import AssemblyOptions, assemble_medium
from .assembly2d import Assembly2DOptions, assemble_medium_2d
from .fastkernel import KernelTables
from .geometry import (
    SurfaceMesh2D,
    SurfaceMesh3D,
    build_mesh_2d,
    build_mesh_3d,
    spectral_gradient_1d,
    spectral_gradient_2d,
)
from .power import (
    absorbed_power_2d,
    absorbed_power_3d,
    absorbed_power_density_3d,
    area_ratio_2d,
    area_ratio_3d,
)
from .solver import SWMOptions, SWMResult, SWMSolver3D, enhancement_sweep
from .solver2d import SWM2DOptions, SWM2DResult, SWMSolver2D

__all__ = [
    "Assembly2DOptions",
    "AssemblyOptions",
    "KernelTables",
    "SWM2DOptions",
    "SWM2DResult",
    "SWMOptions",
    "SWMResult",
    "SWMSolver2D",
    "SWMSolver3D",
    "SurfaceMesh2D",
    "SurfaceMesh3D",
    "absorbed_power_2d",
    "absorbed_power_3d",
    "absorbed_power_density_3d",
    "area_ratio_2d",
    "area_ratio_3d",
    "assemble_medium",
    "assemble_medium_2d",
    "build_mesh_2d",
    "build_mesh_3d",
    "enhancement_sweep",
    "spectral_gradient_1d",
    "spectral_gradient_2d",
]
