"""The 3D Scalar Wave Modeling (SWM) solver — the paper's core contribution.

Solves the coupled surface integral equations (the corrected form of the
paper's eq. (7); see DESIGN.md for the jump-relation derivation)

.. math::

    (\\tfrac12 I - D_1)\\,\\psi + \\beta S_1\\, v &= \\psi_{in} \\\\
    (\\tfrac12 I + D_2)\\,\\psi - S_2\\, v &= 0

for the surface field ``psi`` (the tangential-H-like scalar) and its
conductor-side normal derivative ``v``, then evaluates the absorbed power
(eq. (10)) and the smooth-surface reference (eq. (11)):

.. math::

    P_r = \\tfrac12 \\int_S \\mathrm{Re}\\{\\psi^* v\\}\\,\\mathrm{d}S,
    \\qquad
    P_s = |T_0|^2 L^2 / (2\\delta).

``Pr/Ps`` is the paper's loss-enhancement factor.

Internally all geometry is converted to micrometers so matrix entries are
O(1); the public API takes SI meters/Hz.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..constants import METER_TO_UM
from ..errors import ConfigurationError, SolverError
from ..materials import PAPER_SYSTEM, TwoMediumSystem
from ..telemetry import span
from .assembly import (
    AssemblyOptions,
    assemble_media_multi_k,
    assemble_medium,
    assemble_medium_many,
)
from .geometry import SurfaceMesh3D, build_mesh_3d
from .plan import AssemblyPlan3D


@dataclass(frozen=True)
class SWMResult:
    """Solution of one deterministic SWM problem.

    ``absorbed_power`` and ``smooth_power`` are in the paper's arbitrary
    scalar-flux units (only the ratio ``enhancement`` is physical).
    """

    frequency_hz: float
    enhancement: float
    absorbed_power: float
    smooth_power: float
    psi: np.ndarray
    v: np.ndarray
    mesh: SurfaceMesh3D

    @property
    def pr_over_ps(self) -> float:
        """Alias for :attr:`enhancement` (the paper's Pr/Ps)."""
        return self.enhancement


@dataclass(frozen=True)
class SWMOptions:
    """Numerical options of the 3D solver.

    ``batch_size`` bounds how many sample systems the batched solve path
    (:meth:`SWMSolver3D.solve_many_um`) stacks at once, and is the
    default sample-batch size for stochastic estimators running against
    this solver (``None`` = per-sample solves). It is a pure performance
    knob: batched results are bit-identical to per-sample solves, so it
    is **excluded** from the content hash.
    """

    #: Fields deliberately outside the content hash; the hash-purity
    #: check (RPR003) keeps this set honest against :meth:`to_spec`.
    HASH_EXCLUDED = frozenset({"batch_size", "check_finite"})

    assembly: AssemblyOptions = field(default_factory=AssemblyOptions)
    check_finite: bool = True
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1 or None, got {self.batch_size}"
            )

    def to_spec(self) -> dict:
        """Content-hashable dict (keys the engine's result cache).
        ``asdict`` recurses into :class:`AssemblyOptions` and picks up
        any future field automatically. Knobs that cannot change
        payloads (:data:`HASH_EXCLUDED`) are dropped so they never
        split cache entries:
        ``batch_size`` (batched solves are bit-identical) and
        ``check_finite`` (it only turns a non-finite assembly into a
        clear error — every payload that *returns* is identical either
        way)."""
        import dataclasses

        spec = dataclasses.asdict(self)
        spec.pop("batch_size")
        spec.pop("check_finite")
        return spec


#: Target bytes per stacked (B, N, N) assembly array. Measured optimum
#: on current hardware: past ~0.6 MB per intermediate the batched
#: kernel's working set falls out of cache and stacking *larger*
#: batches gets slower, so the auto policy chunks to stay near it.
_AUTO_STACK_BYTES = 600_000


def _auto_stack(n_unknowns: int) -> int:
    """Default sample-stack size for a mesh with ``n_unknowns`` points.

    Chunking is invisible to results (each chunk is assembled and
    factored exactly as a standalone batch), so this is purely a cache
    heuristic; ``SWMOptions.batch_size`` overrides it.
    """
    per_sample = n_unknowns * n_unknowns * 16  # one complex128 matrix
    return max(2, min(64, _AUTO_STACK_BYTES // max(per_sample, 1)))


class SWMSolver3D:
    """Deterministic 3D SWM solver for one dielectric/conductor system.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.constants import UM, GHZ
    >>> from repro.swm.solver import SWMSolver3D
    >>> solver = SWMSolver3D()
    >>> flat = np.zeros((8, 8))
    >>> res = solver.solve(flat, period_m=5 * UM, frequency_hz=5 * GHZ)
    >>> abs(res.enhancement - 1.0) < 0.05
    True
    """

    def __init__(self, system: TwoMediumSystem = PAPER_SYSTEM,
                 options: SWMOptions | None = None) -> None:
        self.system = system
        self.options = options or SWMOptions()
        # Kernel-table cache: (which_medium, frequency, period) -> tables.
        # Tables are rebuilt when a sample's height range outgrows them;
        # they are what amortizes MC/SSCM sweeps (hundreds of samples per
        # frequency reuse one table build).
        self._tables: dict[tuple[int, float, float], object] = {}

    def reset_tables(self) -> None:
        """Drop cached kernel tables.

        Tables are interpolation grids whose node placement depends on
        the z-extents solved so far, so a solver's results can vary at
        interpolation accuracy with its history. The engine resets
        before each job to keep job results a pure function of the job
        spec (the content-addressed cache requires this).
        """
        self._tables.clear()

    def _get_tables(self, which: int, k: complex, frequency_hz: float,
                    mesh: SurfaceMesh3D):
        from .fastkernel import KernelTables

        if not self.options.assembly.use_tables:
            return None
        key = (which, float(frequency_hz), float(mesh.period))
        z_extent = float(np.max(mesh.z) - np.min(mesh.z))
        cached = self._tables.get(key)
        if cached is not None and cached.covers(z_extent):
            return cached
        cfg = self.options.assembly.ewald_config(mesh.period)
        tables = KernelTables(k, cfg, z_extent=max(z_extent * 1.5, 1e-6))
        self._tables[key] = tables
        return tables

    # ------------------------------------------------------------------

    def solve(self, heights_m: np.ndarray, period_m: float,
              frequency_hz: float) -> SWMResult:
        """Solve for a height map given in meters on a patch of period
        ``period_m`` meters, at ``frequency_hz``."""
        heights_um = np.asarray(heights_m, dtype=np.float64) * METER_TO_UM
        period_um = float(period_m) * METER_TO_UM
        mesh = build_mesh_3d(heights_um, period_um)
        return self._solve_mesh(mesh, frequency_hz)

    def solve_um(self, heights_um: np.ndarray, period_um: float,
                 frequency_hz: float) -> SWMResult:
        """Same as :meth:`solve` with the geometry already in micrometers."""
        mesh = build_mesh_3d(np.asarray(heights_um, dtype=np.float64),
                             float(period_um))
        return self._solve_mesh(mesh, frequency_hz)

    def solve_mesh(self, mesh: SurfaceMesh3D, frequency_hz: float) -> SWMResult:
        """Solve on a prebuilt (micrometer-unit) mesh."""
        return self._solve_mesh(mesh, frequency_hz)

    def _solve_mesh(self, mesh: SurfaceMesh3D, frequency_hz: float
                    ) -> SWMResult:
        # Every public single-solve entry point is exactly one frame
        # above this, so stacklevel 4 attributes the resolution warning
        # to the user's call site in all of them.
        self._check_resolution(mesh.spacing, frequency_hz, stacklevel=4)
        psi, v = self._solve_fields(mesh, frequency_hz)
        return self._finish(mesh, frequency_hz, psi, v)

    # ------------------------------------------------------------------
    # Batched sample solves (the MC/SSCM hot path)
    # ------------------------------------------------------------------

    def solve_many(self, heights_m: np.ndarray, period_m: float,
                   frequency_hz: float) -> list[SWMResult]:
        """Batched :meth:`solve` for a ``(B, n, n)`` stack of height maps.

        Results are bit-identical to calling :meth:`solve` per map with
        this solver (same kernel-table reuse policy, same LAPACK
        factorization), but the B dense systems are assembled with the
        sample axis vectorized and factored as one stacked
        ``(B, 2n, 2n)`` batch.
        """
        heights_um = np.asarray(heights_m, dtype=np.float64) * METER_TO_UM
        return self._solve_many_um(heights_um, float(period_m) * METER_TO_UM,
                                   frequency_hz, stacklevel=5)

    def solve_many_um(self, heights_um: np.ndarray, period_um: float,
                      frequency_hz: float) -> list[SWMResult]:
        """Same as :meth:`solve_many` with geometry in micrometers."""
        return self._solve_many_um(np.asarray(heights_um, dtype=np.float64),
                                   float(period_um), frequency_hz,
                                   stacklevel=5)

    def solve_mesh_many(self, meshes: list[SurfaceMesh3D],
                        frequency_hz: float) -> list[SWMResult]:
        """Batched :meth:`solve_mesh` over prebuilt same-grid meshes."""
        return self._solve_mesh_many(list(meshes), frequency_hz, stacklevel=4)

    def _solve_many_um(self, heights_um: np.ndarray, period_um: float,
                       frequency_hz: float, stacklevel: int
                       ) -> list[SWMResult]:
        if heights_um.ndim != 3:
            raise ConfigurationError(
                f"batched heights must be a (B, n, n) stack, got shape "
                f"{heights_um.shape}"
            )
        meshes = [build_mesh_3d(h, period_um) for h in heights_um]
        return self._solve_mesh_many(meshes, frequency_hz, stacklevel)

    def _check_resolution(self, spacing_um: float, frequency_hz: float,
                          stacklevel: int) -> None:
        """Warn when the mesh cannot resolve the skin depth.

        The paper meshes at delta/5 for the rapid field variation inside
        the conductor; results degrade (Pr/Ps can even dip below 1) once
        the spacing exceeds ~1.5 skin depths. ``stacklevel`` is threaded
        from the public entry point so the warning points at the *user's*
        call site, not a solver-internal frame.
        """
        delta_um = self.system.delta(frequency_hz) * METER_TO_UM
        if spacing_um > 1.5 * delta_um:
            warnings.warn(
                f"SWM mesh spacing {spacing_um:.3g} um exceeds 1.5x the skin "
                f"depth {delta_um:.3g} um at {frequency_hz / 1e9:.3g} GHz; "
                "the enhancement factor is discretization-limited here "
                "(refine the grid or lower the frequency)",
                RuntimeWarning,
                stacklevel=stacklevel,
            )

    # ------------------------------------------------------------------

    def _wavenumbers_um(self, frequency_hz: float) -> tuple[complex, complex]:
        """(k1, k2) converted to 1/um."""
        k1 = self.system.k1(frequency_hz) / METER_TO_UM
        k2 = self.system.k2(frequency_hz) / METER_TO_UM
        return k1, k2

    def _solve_fields(self, mesh: SurfaceMesh3D, frequency_hz: float
                      ) -> tuple[np.ndarray, np.ndarray]:
        k1, k2 = self._wavenumbers_um(frequency_hz)
        beta = self.system.beta(frequency_hz)
        n = mesh.size

        t1 = self._get_tables(1, k1, frequency_hz, mesh)
        t2 = self._get_tables(2, k2, frequency_hz, mesh)
        if t1 is not None and t2 is not None:
            # Single-sample calls share the batched hot path: one
            # k-independent plan serves both media.
            with span("plan", n=n):
                plan = AssemblyPlan3D.build([mesh], self.options.assembly)
        else:
            plan = None

        with span("assemble", n=n):
            if plan is not None:
                (d1b, s1b), (d2b, s2b) = assemble_media_multi_k(
                    plan, ((k1, t1), (k2, t2)))
                d1, s1 = d1b[0], s1b[0]
                d2, s2 = d2b[0], s2b[0]
            else:
                d1, s1 = assemble_medium(mesh, k1, self.options.assembly,
                                         tables=t1)
                d2, s2 = assemble_medium(mesh, k2, self.options.assembly,
                                         tables=t2)

            half = 0.5 * np.eye(n)
            # Column scaling: solve for v_hat = v / |k2| so both unknown
            # blocks are O(1) (v ~ k2 * psi for a good conductor).
            scale_v = abs(k2)
            a = np.empty((2 * n, 2 * n), dtype=np.complex128)
            a[:n, :n] = half - d1
            a[:n, n:] = beta * s1 * scale_v
            a[n:, :n] = half + d2
            a[n:, n:] = -s2 * scale_v

            rhs = np.zeros(2 * n, dtype=np.complex128)
            rhs[:n] = np.exp(-1j * k1 * mesh.z)

        if self.options.check_finite and not np.all(np.isfinite(a)):
            raise SolverError("assembled SWM matrix contains non-finite entries")
        try:
            with span("factor", n=n):
                lu, piv = lu_factor(a, check_finite=False)
                sol = lu_solve((lu, piv), rhs, check_finite=False)
        except (ValueError, np.linalg.LinAlgError) as exc:
            raise SolverError(f"dense solve failed: {exc}") from exc
        if not np.all(np.isfinite(sol)):
            raise SolverError("SWM solution contains non-finite entries "
                              "(singular system?)")
        psi = sol[:n]
        v = sol[n:] * scale_v
        return psi, v

    def _validate_same_grid(self, meshes: list[SurfaceMesh3D]) -> None:
        if not meshes:
            raise ConfigurationError("batched solve needs at least one mesh")
        base = meshes[0]
        for mesh in meshes[1:]:
            if mesh.n != base.n or mesh.period != base.period:
                raise ConfigurationError(
                    "batched solve requires meshes sharing grid and period; "
                    f"got n={mesh.n} L={mesh.period} vs n={base.n} "
                    f"L={base.period}"
                )

    def _replay_table_groups(self, meshes: list[SurfaceMesh3D],
                             frequency_hz: float, k1: complex, k2: complex
                             ) -> list[tuple[object, object, list[int]]]:
        """Replay the per-sample kernel-table policy *in sample order*.

        The tables each sample is assembled against are then the exact
        objects the sequential path would have used (tables rebuild when
        a sample's height range outgrows them, so this grouping is what
        makes batched results bit-identical).
        """
        groups: list[tuple[object, object, list[int]]] = []
        for i, mesh in enumerate(meshes):
            t1 = self._get_tables(1, k1, frequency_hz, mesh)
            t2 = self._get_tables(2, k2, frequency_hz, mesh)
            if groups and groups[-1][0] is t1 and groups[-1][1] is t2:
                groups[-1][2].append(i)
            else:
                groups.append((t1, t2, [i]))
        return groups

    def _solve_mesh_many(self, meshes: list[SurfaceMesh3D],
                         frequency_hz: float, stacklevel: int
                         ) -> list[SWMResult]:
        self._validate_same_grid(meshes)
        self._check_resolution(meshes[0].spacing, frequency_hz,
                               stacklevel=stacklevel)
        k1, k2 = self._wavenumbers_um(frequency_hz)
        groups = self._replay_table_groups(meshes, frequency_hz, k1, k2)
        return self._solve_groups(meshes, frequency_hz, k1, k2, groups)

    def _solve_groups(self, meshes: list[SurfaceMesh3D], frequency_hz: float,
                      k1: complex, k2: complex, groups) -> list[SWMResult]:
        max_stack = self.options.batch_size or _auto_stack(meshes[0].size)
        results: list[SWMResult] = []
        for t1, t2, indices in groups:
            for lo in range(0, len(indices), max_stack):
                chunk = indices[lo:lo + max_stack]
                sub = [meshes[i] for i in chunk]
                psi, v = self._solve_fields_many(sub, frequency_hz,
                                                 k1, k2, t1, t2)
                results.extend(self._finish_many(sub, frequency_hz, psi, v))
        return results

    def solve_mesh_many_multi_k(self, meshes: list[SurfaceMesh3D],
                                frequencies_hz) -> list[list[SWMResult]]:
        """Solve a same-grid mesh batch at several frequencies at once.

        The multi-frequency hot path: each sample chunk's k-independent
        :class:`AssemblyPlan3D` is built once and consumed by every
        frequency's media (2 x F per-k assemblies share one plan and one
        fused kernel-table pass), instead of being recomputed per
        frequency. Returns one ``list[SWMResult]`` per frequency (outer
        index follows ``frequencies_hz``), **bit-identical** to calling
        :meth:`solve_mesh_many` once per frequency in order on this
        solver (same kernel-table replay policy per frequency — table
        cache keys include the frequency, so the replays are
        independent — same chunking, same LAPACK path).

        Falls back to per-frequency solves when the exact-Ewald path is
        selected (no tables to stack) or when warm table caches give the
        frequencies diverging rebuild boundaries.
        """
        meshes = list(meshes)
        freqs = [float(f) for f in frequencies_hz]
        if not freqs:
            raise ConfigurationError(
                "multi-frequency solve needs at least one frequency"
            )
        self._validate_same_grid(meshes)
        base = meshes[0]
        for f in freqs:
            self._check_resolution(base.spacing, f, stacklevel=3)

        per: list[tuple[float, complex, complex, list]] = []
        for f in freqs:
            k1, k2 = self._wavenumbers_um(f)
            per.append((f, k1, k2,
                        self._replay_table_groups(meshes, f, k1, k2)))

        # Stacking requires tables and identical rebuild boundaries at
        # every frequency (guaranteed from a cold cache: rebuilds depend
        # only on the shared z-extents; a warm cache can diverge).
        index_groups = [indices for _, _, indices in per[0][3]]
        stackable = (self.options.assembly.use_tables
                     and all([indices for _, _, indices in groups]
                             == index_groups for _, _, _, groups in per))
        if not stackable:
            return [self._solve_groups(meshes, f, k1, k2, groups)
                    for f, k1, k2, groups in per]

        n = base.size
        max_stack = self.options.batch_size or _auto_stack(n)
        results: list[list[SWMResult]] = [[] for _ in freqs]
        for gi, indices in enumerate(index_groups):
            for lo in range(0, len(indices), max_stack):
                chunk = indices[lo:lo + max_stack]
                sub = [meshes[i] for i in chunk]
                nb = len(sub)
                with span("plan", n=n, batch=nb, freqs=len(freqs)):
                    plan = AssemblyPlan3D.build(sub, self.options.assembly)
                media = []
                for _, k1, k2, groups in per:
                    t1, t2, _ = groups[gi]
                    media.append((k1, t1))
                    media.append((k2, t2))
                with span("assemble", n=n, batch=nb, freqs=len(freqs)):
                    mats = assemble_media_multi_k(plan, media)
                for fi, (f, k1, k2, _) in enumerate(per):
                    d1, s1 = mats[2 * fi]
                    d2, s2 = mats[2 * fi + 1]
                    a, rhs, scale_v = self._block_system(
                        sub, f, k1, k2, d1, s1, d2, s2)
                    sol = self._factor_stack(a, rhs, n, nb)
                    results[fi].extend(self._finish_many(
                        sub, f, sol[:, :n], sol[:, n:] * scale_v))
        return results

    def _block_system(self, meshes: list[SurfaceMesh3D], frequency_hz: float,
                      k1: complex, k2: complex,
                      d1: np.ndarray, s1: np.ndarray,
                      d2: np.ndarray, s2: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, float]:
        """Stack the coupled ``(B, 2n, 2n)`` block systems and RHS.

        The block structure, scaling and right-hand side mirror
        :meth:`_solve_fields` entry for entry.
        """
        beta = self.system.beta(frequency_hz)
        nb = len(meshes)
        n = meshes[0].size
        half = 0.5 * np.eye(n)
        # Column scaling: solve for v_hat = v / |k2| so both unknown
        # blocks are O(1) (v ~ k2 * psi for a good conductor).
        scale_v = abs(k2)
        a = np.empty((nb, 2 * n, 2 * n), dtype=np.complex128)
        a[:, :n, :n] = half - d1
        a[:, :n, n:] = beta * s1 * scale_v
        a[:, n:, :n] = half + d2
        a[:, n:, n:] = -s2 * scale_v

        rhs = np.zeros((nb, 2 * n), dtype=np.complex128)
        # z is materialized so the -1j*k1 multiply cannot elide into
        # the stack temporary; the per-sample path multiplies a held
        # mesh.z reference, and parity with it is asserted bit-exact.
        z = np.stack([m.z for m in meshes])
        rhs[:, :n] = np.exp(-1j * k1 * z)
        return a, rhs, scale_v

    def _factor_stack(self, a: np.ndarray, rhs: np.ndarray,
                      n: int, nb: int) -> np.ndarray:
        """Finite-check and factor one stacked batch.

        The LAPACK ``gesv`` behind ``np.linalg.solve`` runs the same
        ``getrf``/``getrs`` pair as the sequential scipy path, so
        solutions are bit-identical to per-sample solves.
        """
        if self.options.check_finite and not np.all(np.isfinite(a)):
            raise SolverError("assembled SWM matrix contains non-finite "
                              "entries")
        try:
            with span("factor", n=n, batch=nb):
                sol = np.linalg.solve(a, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"batched dense solve failed: {exc}") from exc
        if not np.all(np.isfinite(sol)):
            raise SolverError("SWM solution contains non-finite entries "
                              "(singular system?)")
        return sol

    def _solve_fields_many(self, meshes: list[SurfaceMesh3D],
                           frequency_hz: float, k1: complex, k2: complex,
                           t1, t2) -> tuple[np.ndarray, np.ndarray]:
        """Assemble and factor a stack of sample systems at once.

        Returns ``(psi, v)`` as ``(B, n)`` arrays, bit-identical to the
        per-sample path (see :meth:`_block_system` /
        :meth:`_factor_stack`).
        """
        nb = len(meshes)
        n = meshes[0].size

        if t1 is not None and t2 is not None:
            # Fused hot path: one k-independent plan serves both media
            # (bit-identical to the per-medium reference).
            with span("plan", n=n, batch=nb):
                plan = AssemblyPlan3D.build(meshes, self.options.assembly)
            with span("assemble", n=n, batch=nb):
                (d1, s1), (d2, s2) = assemble_media_multi_k(
                    plan, ((k1, t1), (k2, t2)))
                a, rhs, scale_v = self._block_system(
                    meshes, frequency_hz, k1, k2, d1, s1, d2, s2)
        else:
            with span("assemble", n=n, batch=nb):
                d1, s1 = assemble_medium_many(meshes, k1,
                                              self.options.assembly,
                                              tables=t1)
                d2, s2 = assemble_medium_many(meshes, k2,
                                              self.options.assembly,
                                              tables=t2)
                a, rhs, scale_v = self._block_system(
                    meshes, frequency_hz, k1, k2, d1, s1, d2, s2)

        sol = self._factor_stack(a, rhs, n, nb)
        psi = sol[:, :n]
        v = sol[:, n:] * scale_v
        return psi, v

    def _finish_many(self, meshes: list[SurfaceMesh3D], frequency_hz: float,
                     psi: np.ndarray, v: np.ndarray) -> list[SWMResult]:
        """Vectorized power evaluation over the sample stack."""
        with span("power", batch=len(meshes)):
            areas = np.stack([m.true_areas() for m in meshes])
            pr = 0.5 * np.sum(np.real(np.conj(psi) * v) * areas, axis=1)
            ps = self.smooth_power(meshes[0].period, frequency_hz)
        if ps <= 0.0:
            raise SolverError("smooth-surface reference power is non-positive")
        return [
            SWMResult(
                frequency_hz=float(frequency_hz),
                enhancement=float(pr[i]) / ps,
                absorbed_power=float(pr[i]),
                smooth_power=ps,
                psi=psi[i],
                v=v[i],
                mesh=mesh,
            )
            for i, mesh in enumerate(meshes)
        ]

    def _finish(self, mesh: SurfaceMesh3D, frequency_hz: float,
                psi: np.ndarray, v: np.ndarray) -> SWMResult:
        with span("power"):
            areas = mesh.true_areas()
            pr = float(0.5 * np.sum(np.real(np.conj(psi) * v) * areas))
            ps = self.smooth_power(mesh.period, frequency_hz)
        if ps <= 0.0:
            raise SolverError("smooth-surface reference power is non-positive")
        return SWMResult(
            frequency_hz=float(frequency_hz),
            enhancement=pr / ps,
            absorbed_power=pr,
            smooth_power=ps,
            psi=psi,
            v=v,
            mesh=mesh,
        )

    def smooth_power(self, period_um: float, frequency_hz: float) -> float:
        """Smooth-surface absorbed power ``|T0|^2 L^2 / (2 delta)``.

        Units consistent with :meth:`solve` (micrometer lengths).
        """
        if period_um <= 0.0:
            raise ConfigurationError(
                f"period must be positive, got {period_um}"
            )
        delta_um = self.system.delta(frequency_hz) * METER_TO_UM
        t0 = self.system.flat_transmission(frequency_hz)
        return abs(t0) ** 2 * period_um ** 2 / (2.0 * delta_um)


def enhancement_sweep(solver: SWMSolver3D, heights_m: np.ndarray,
                      period_m: float, frequencies_hz: np.ndarray
                      ) -> np.ndarray:
    """Loss-enhancement factor of one surface over a frequency sweep."""
    freqs = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
    out = np.empty(freqs.shape, dtype=np.float64)
    heights_um = np.asarray(heights_m, dtype=np.float64) * METER_TO_UM
    period_um = float(period_m) * METER_TO_UM
    mesh = build_mesh_3d(heights_um, period_um)
    for i, f in enumerate(freqs):
        out[i] = solver.solve_mesh(mesh, float(f)).enhancement
    return out
