"""Explicit k-independent assembly plans for the SWM hot path.

PR 4/5 factored the k-independent work of one assembly — wrapped
separations, distances and reciprocals, near-pair sub-cell geometry,
self-term factors — out of the per-medium loop, but left it as
implicit locals inside two 300-line fused functions, recomputed for
every frequency of a sweep. An :class:`AssemblyPlan3D` /
:class:`AssemblyPlan2D` gives those intermediates a first-class home:
built once per mesh batch, consumed by any number of per-wavenumber
assemblies (two media x F frequencies), which is what lets the solver
stack neighboring frequencies (``solve_mesh_many_multi_k``) and the
engine fuse same-scenario jobs.

Every array a plan captures is computed by exactly the expressions the
fused assembly paths used inline (same order, same temporaries), and
:meth:`assemble_k` mirrors their per-k loop bodies entry for entry —
the plan refactor is **bit-identical** to the PR 4/5 fused paths, which
were themselves gated bit-identical to the per-mesh references. Plans
never mutate their captured arrays in ``assemble_k``, so one plan can
serve arbitrarily many wavenumbers.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import MeshError
from ..greens.freespace import green2d, green2d_radial_derivative, green3d
from ..greens.periodic2d import EULER_GAMMA, periodic_green2d_pair
from .geometry import SurfaceMesh2D, SurfaceMesh3D


def _wrap(d: np.ndarray, period: float) -> np.ndarray:
    """Wrap separations to the minimum image in (-L/2, L/2]."""
    return d - period * np.round(d / period)


def _near_pairs(mesh: SurfaceMesh3D, radius_cells: float
                ) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs (i, j), i != j, with wrapped parameter distance <= radius."""
    d = mesh.spacing
    dx = _wrap(mesh.x[:, None] - mesh.x[None, :], mesh.period)
    dy = _wrap(mesh.y[:, None] - mesh.y[None, :], mesh.period)
    rho = np.sqrt(dx * dx + dy * dy)
    mask = rho <= radius_cells * d + 1e-12
    np.fill_diagonal(mask, False)
    return np.nonzero(mask)


def _subcell_offsets(q: int, spacing: float) -> tuple[np.ndarray, np.ndarray]:
    """Midpoints of a q x q subdivision of a centered cell."""
    t = (np.arange(q) + 0.5) / q - 0.5
    u, v = np.meshgrid(t * spacing, t * spacing, indexing="ij")
    return u.ravel(), v.ravel()


def _check_same_grid(meshes, what: str) -> None:
    if not meshes:
        raise MeshError(f"{what} needs at least one mesh")
    base = meshes[0]
    for mesh in meshes[1:]:
        if mesh.n != base.n or mesh.period != base.period:
            raise MeshError(
                f"{what} requires meshes sharing grid and period; "
                f"got n={mesh.n} L={mesh.period} vs n={base.n} "
                f"L={base.period}"
            )


class AssemblyPlan3D:
    """Every k-independent intermediate of one 3D mesh-batch assembly.

    Build with :meth:`build`; evaluate the tabulated regularized kernel
    for any number of media/frequencies in one fused pass with
    :meth:`eval_tables`; assemble each medium's ``(D, S)`` stacks with
    :meth:`assemble_k`. The captured arrays are exactly what
    ``assemble_media_pair_many`` computed inline before each per-k loop.
    """

    def __init__(self, meshes, options, *, n, spacing, area, diag, period,
                 dx, dy, dz, fx, fy, r, inv_r, rows, cols,
                 sx, sy, sz, rr, inv_rr, ds_true, i_rect, jac_area) -> None:
        self.meshes = meshes
        self.options = options
        self.n = n
        self.spacing = spacing
        self.area = area
        self.diag = diag
        self.period = period
        self.dx = dx
        self.dy = dy
        self.dz = dz
        self.fx = fx
        self.fy = fy
        self.r = r
        self.inv_r = inv_r
        self.rows = rows
        self.cols = cols
        self.sx = sx
        self.sy = sy
        self.sz = sz
        self.rr = rr
        self.inv_rr = inv_rr
        self.ds_true = ds_true
        self.i_rect = i_rect
        self.jac_area = jac_area

    @property
    def batch(self) -> int:
        return len(self.meshes)

    @classmethod
    def build(cls, meshes, options) -> "AssemblyPlan3D":
        """Capture the k-independent assembly state of a mesh batch.

        All meshes must share the same grid (``n``, ``period``) — only
        heights differ (the MC/SSCM sample structure). Raises
        :class:`~repro.errors.MeshError` otherwise.
        """
        meshes = list(meshes)
        _check_same_grid(meshes, "batched assembly")
        base = meshes[0]

        n = base.size
        d = base.spacing
        area = base.cell_area
        diag = np.arange(n)

        dx = _wrap(base.x[:, None] - base.x[None, :], base.period)
        dy = _wrap(base.y[:, None] - base.y[None, :], base.period)
        z = np.stack([mesh.z for mesh in meshes])
        fx = np.stack([mesh.fx for mesh in meshes])
        fy = np.stack([mesh.fy for mesh in meshes])
        jac = np.stack([mesh.jac for mesh in meshes])
        dz = z[:, :, None] - z[:, None, :]
        np.fill_diagonal(dx, 0.25 * base.period)

        # Free-space primary: shared distances/directions (the per-k
        # phase is applied in assemble_k).
        r = np.sqrt(dx * dx + dy * dy + dz * dz)
        r[:, diag, diag] = 1.0
        inv_r = 1.0 / r

        # Near-pair sub-cell geometry (k-independent, shared).
        rows, cols = _near_pairs(base, options.near_radius_cells)
        sx = sy = sz = rr = inv_rr = None
        if rows.size:
            q = options.near_quadrature
            du, dv = _subcell_offsets(q, d)
            sx = dx[rows, cols][:, None] - du[None, :]
            sy = dy[rows, cols][:, None] - dv[None, :]
            sz = (dz[:, rows, cols][:, :, None]
                  - (fx[:, cols][:, :, None] * du[None, None, :]
                     + fy[:, cols][:, :, None] * dv[None, None, :]))
            rr = np.sqrt(sx * sx + sy * sy + sz * sz)
            inv_rr = 1.0 / rr

        # Self-term geometry (k-independent, shared).
        ds_true = jac * area
        side_a = d * np.sqrt(1.0 + fx ** 2)
        side_b = ds_true / side_a
        i_rect = (2.0 * side_a * np.arcsinh(side_b / side_a)
                  + 2.0 * side_b * np.arcsinh(side_a / side_b))
        jac_area = jac[:, None, :] * area

        return cls(meshes, options, n=n, spacing=d, area=area, diag=diag,
                   period=base.period, dx=dx, dy=dy, dz=dz, fx=fx, fy=fy,
                   r=r, inv_r=inv_r, rows=rows, cols=cols, sx=sx, sy=sy,
                   sz=sz, rr=rr, inv_rr=inv_rr, ds_true=ds_true,
                   i_rect=i_rect, jac_area=jac_area)

    def eval_tables(self, tables) -> list[tuple]:
        """Regularized kernel+gradient for each :class:`KernelTables`.

        One fused pass over the plan's separations shares the gather
        weights, reciprocal distances and mode phases across all tables
        (any number of media x frequencies) — bit-identical to
        evaluating each table independently.
        """
        from .fastkernel import green_and_gradient_multi

        return green_and_gradient_multi(tables, self.dx, self.dy, self.dz)

    def assemble_k(self, k: complex, regs, g_reg0: complex
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble one medium's ``(D, S)`` stacks at wavenumber ``k``.

        ``regs`` is this medium's ``(g_reg, gx_reg, gy_reg, gz_reg)``
        from :meth:`eval_tables`; ``g_reg0`` its
        ``KernelTables.regular_at_zero()``. The body replicates the
        per-k loop of the PR 5 fused pair path expression for
        expression (``dgdr`` reproduces green3d_radial_derivative(r, k)
        bit for bit: ``(1j k - 1/r) G`` with the same ``1/r``).
        """
        g_reg, gx_reg, gy_reg, gz_reg = regs
        r, inv_r, dx, dy, dz = self.r, self.inv_r, self.dx, self.dy, self.dz
        diag = self.diag
        rows, cols = self.rows, self.cols

        g0 = green3d(r, k)
        dgdr = (1j * k - inv_r) * g0
        g0x = dgdr * dx * inv_r
        g0y = dgdr * dy * inv_r
        g0z = dgdr * dz * inv_r
        for arr in (g0, g0x, g0y, g0z):
            arr[:, diag, diag] = 0.0

        g_total = g_reg + g0
        gx_total = gx_reg + g0x
        gy_total = gy_reg + g0y
        gz_total = gz_reg + g0z

        if rows.size:
            grr = green3d(self.rr, k)
            g0_sub = grr.mean(axis=-1)
            dg_sub = ((1j * k - self.inv_rr) * grr) / self.rr
            g0x_sub = (dg_sub * self.sx).mean(axis=-1)
            g0y_sub = (dg_sub * self.sy).mean(axis=-1)
            g0z_sub = (dg_sub * self.sz).mean(axis=-1)
            g_total[:, rows, cols] = g_reg[:, rows, cols] + g0_sub
            gx_total[:, rows, cols] = gx_reg[:, rows, cols] + g0x_sub
            gy_total[:, rows, cols] = gy_reg[:, rows, cols] + g0y_sub
            gz_total[:, rows, cols] = gz_reg[:, rows, cols] + g0z_sub

        s_mat = g_total * self.jac_area
        s_mat[:, diag, diag] = (self.i_rect / (4.0 * math.pi)
                                + (1j * k / (4.0 * math.pi)) * self.ds_true
                                + g_reg0 * self.ds_true)

        d_mat = (gx_total * self.fx[:, None, :]
                 + gy_total * self.fy[:, None, :]
                 - gz_total) * self.area
        d_mat[:, diag, diag] = 0.0
        return d_mat, s_mat


class AssemblyPlan2D:
    """Every k-independent intermediate of one 2D profile-batch assembly.

    The 2D analog of :class:`AssemblyPlan3D`: :meth:`build` once per
    profile batch, :meth:`eval_ks` for the fused Kummer mode-sum pass
    over any number of wavenumbers, :meth:`assemble_k` per medium.
    """

    def __init__(self, meshes, options, *, n, spacing, diag, period,
                 dx, dz, fx, rho, inv, rows, cols, sx, sz, rr,
                 h, jac_d) -> None:
        self.meshes = meshes
        self.options = options
        self.n = n
        self.spacing = spacing
        self.diag = diag
        self.period = period
        self.dx = dx
        self.dz = dz
        self.fx = fx
        self.rho = rho
        self.inv = inv
        self.rows = rows
        self.cols = cols
        self.sx = sx
        self.sz = sz
        self.rr = rr
        self.h = h
        self.jac_d = jac_d

    @property
    def batch(self) -> int:
        return len(self.meshes)

    @classmethod
    def build(cls, meshes, options) -> "AssemblyPlan2D":
        """Capture the k-independent assembly state of a profile batch."""
        meshes = list(meshes)
        _check_same_grid(meshes, "batched 2D assembly")
        base = meshes[0]

        n = base.size
        d = base.spacing
        diag = np.arange(n)

        dx = _wrap(base.x[:, None] - base.x[None, :], base.period)
        z = np.stack([mesh.z for mesh in meshes])
        fx = np.stack([mesh.fx for mesh in meshes])
        jac = np.stack([mesh.jac for mesh in meshes])
        dz = z[:, :, None] - z[:, None, :]
        np.fill_diagonal(dx, 0.25 * base.period)

        # Free-space primary: shared distances, per-k Hankel kernels.
        rho = np.sqrt(dx * dx + dz * dz)
        rho[:, diag, diag] = 1.0
        inv = 1.0 / rho

        # Near-pair sub-segment geometry (k-independent, shared).
        rho_param = np.abs(dx)
        near = (rho_param <= options.near_radius_cells * d + 1e-12)
        np.fill_diagonal(near, False)
        rows, cols = np.nonzero(near)
        sx = sz = rr = None
        if rows.size:
            q = options.near_quadrature
            du = ((np.arange(q) + 0.5) / q - 0.5) * d
            sx = dx[rows, cols][:, None] - du[None, :]
            sz = (dz[:, rows, cols][:, :, None]
                  - fx[:, cols][:, :, None] * du[None, None, :])
            rr = np.sqrt(sx * sx + sz * sz)

        # Self-term geometry (k-independent, shared).
        h = jac * d
        jac_d = jac[:, None, :] * d

        return cls(meshes, options, n=n, spacing=d, diag=diag,
                   period=base.period, dx=dx, dz=dz, fx=fx, rho=rho,
                   inv=inv, rows=rows, cols=cols, sx=sx, sz=sz, rr=rr,
                   h=h, jac_d=jac_d)

    def eval_ks(self, ks) -> list[tuple]:
        """Regularized 2D kernel+gradient for each wavenumber in ``ks``.

        One fused :func:`periodic_green2d_pair` pass — the
        recurrence-built mode factors and quasi-static asymptotes are
        shared across all wavenumbers, bit-identical to independent
        per-k evaluation.
        """
        return periodic_green2d_pair(self.dx, self.dz, tuple(ks),
                                     self.period,
                                     m_max=self.options.m_max,
                                     exclude_primary=True)

    def assemble_k(self, kk: complex, regs, g_reg0: complex
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble one medium's ``(D, S)`` stacks at wavenumber ``kk``.

        Replicates the per-k loop of the PR 5 fused 2D pair path
        expression for expression.
        """
        g_reg, gx_reg, gz_reg = regs
        rho, inv, dx, dz = self.rho, self.inv, self.dx, self.dz
        diag = self.diag
        rows, cols = self.rows, self.cols

        g0 = green2d(rho, kk)
        dgdr = green2d_radial_derivative(rho, kk)
        g0x = dgdr * dx * inv
        g0z = dgdr * dz * inv
        for arr in (g0, g0x, g0z):
            arr[:, diag, diag] = 0.0

        g_total = g_reg + g0
        gx_total = gx_reg + g0x
        gz_total = gz_reg + g0z

        if rows.size:
            g_total[:, rows, cols] = (g_reg[:, rows, cols]
                                      + green2d(self.rr, kk).mean(axis=-1))
            dg = green2d_radial_derivative(self.rr, kk) / self.rr
            gx_total[:, rows, cols] = (gx_reg[:, rows, cols]
                                       + (dg * self.sx).mean(axis=-1))
            gz_total[:, rows, cols] = (gz_reg[:, rows, cols]
                                       + (dg * self.sz).mean(axis=-1))

        s_mat = g_total * self.jac_d
        log_part = np.log(kk * self.h / 4.0) + EULER_GAMMA - 1.0
        free = 0.25j * self.h * (1.0 + (2j / math.pi) * log_part)
        s_mat[:, diag, diag] = free + g_reg0 * self.h

        d_mat = (gx_total * self.fx[:, None, :] - gz_total) * self.spacing
        d_mat[:, diag, diag] = 0.0
        return d_mat, s_mat
