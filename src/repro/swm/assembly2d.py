"""MOM assembly of the 2D SWM integral equations (Fig. 6's comparison).

Same structure as the 3D assembly but with line-source kernels on a
1D-periodic profile: pulse basis / point collocation, minimum-image
wrapping, Kummer-accelerated periodic Green's function, analytic
(logarithmic) self terms and sub-segment quadrature for near pairs.

Self term of the single layer over a tilted segment of true length ``h``::

    int (j/4) H0(k rho) dl  ~=  (j/4) h [1 + (2j/pi)(ln(k h / 4) + gamma_E - 1)]

(small-argument Hankel expansion, valid for ``|k| h << 1``), plus the
regularized periodic remainder ``g_reg(0) * h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..greens.periodic2d import periodic_green2d
from .geometry import SurfaceMesh2D
from .plan import AssemblyPlan2D


@dataclass(frozen=True)
class Assembly2DOptions:
    """Quadrature/truncation knobs for 2D assembly."""

    m_max: int = 96
    near_radius_cells: float = 2.0
    near_quadrature: int = 8


def _wrap(d: np.ndarray, period: float) -> np.ndarray:
    return d - period * np.round(d / period)


def _regularized_zero_limit(k: complex, period: float, m_max: int) -> complex:
    """Zero-separation limit ``g_reg(0)`` of the regularized kernel.

    A scalar Kummer mode sum that depends only on ``(k, period, m_max)``
    yet was historically recomputed per medium *and per batch chunk*;
    the cache shares one evaluation across chunks, media and the fused
    pair path. The value is a pure function of the key, so caching
    cannot change results.
    """
    return _g_reg0_cached(complex(k), float(period), int(m_max))


@lru_cache(maxsize=64)
def _g_reg0_cached(k: complex, period: float, m_max: int) -> complex:
    return complex(periodic_green2d(np.array(0.0), np.array(0.0), k,
                                    period, m_max=m_max,
                                    exclude_primary=True))


def assemble_media_multi_k_2d(plan: AssemblyPlan2D, ks) -> list[tuple]:
    """Assemble ``(D, S)`` stacks for every wavenumber in ``ks``.

    The 2D multi-frequency hot path: one fused Kummer mode-sum pass
    over all wavenumbers (two media x F stacked frequencies share the
    plan's recurrence factors, asymptotes and distances), then one
    per-k consumption of the plan per entry. Returns ``[(d, s), ...]``
    as ``(B, N, N)`` stacks in ``ks`` order, **bit-identical** to
    assembling each wavenumber independently.
    """
    ks = list(ks)
    regs = plan.eval_ks(ks)
    return [plan.assemble_k(kk, reg,
                            _regularized_zero_limit(kk, plan.period,
                                                    plan.options.m_max))
            for kk, reg in zip(ks, regs)]


def assemble_medium_2d_many(meshes: "Sequence[SurfaceMesh2D]", k: complex,
                            options: Assembly2DOptions | None = None
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Assemble (D, S) for one medium across a stack of profiles.

    All meshes must share the same grid (``n``, ``period``); only the
    heights differ (the MC sample structure of the Fig. 6 profiles).
    Builds a single-k :class:`AssemblyPlan2D`, so the x-separations,
    near-pair sets and the regularized zero-limit are shared across the
    stack and each Kummer-accelerated kernel series runs once on
    ``(B, N, N)`` arrays. Returns ``(B, N, N)`` stacks bit-identical to
    per-mesh :func:`assemble_medium_2d`.
    """
    plan = AssemblyPlan2D.build(meshes, options or Assembly2DOptions())
    return assemble_media_multi_k_2d(plan, (k,))[0]


def assemble_media_pair_2d_many(meshes: "Sequence[SurfaceMesh2D]",
                                k1: complex, k2: complex,
                                options: Assembly2DOptions | None = None):
    """Assemble (D, S) for *both* media across a stack of profiles.

    The batched hot path of the 2D solver (Fig. 6's MC curves). On top
    of the sample-axis vectorization of :func:`assemble_medium_2d_many`,
    the four independent Kummer mode-sum passes (green + gradient, two
    media) collapse into one fused :func:`periodic_green2d_pair` pass,
    and every k-independent intermediate — the wrapped x-separations,
    recurrence-built mode factors, quasi-static asymptotes, closed-form
    log remainder, ``rho`` and its reciprocal, the near-pair sub-segment
    geometry and the cached regularized zero limit — is computed once
    and shared between the two media.

    Returns ``((d1, s1), (d2, s2))`` as ``(B, N, N)`` stacks,
    **bit-identical** to per-medium :func:`assemble_medium_2d_many`
    (and therefore to per-mesh :func:`assemble_medium_2d`): every shared
    quantity is a deterministic recomputation of what the per-medium
    path evaluates, and every per-medium expression mirrors the
    reference entry for entry.
    """
    plan = AssemblyPlan2D.build(meshes, options or Assembly2DOptions())
    return tuple(assemble_media_multi_k_2d(plan, (k1, k2)))


def assemble_medium_2d(mesh: SurfaceMesh2D, k: complex,
                       options: Assembly2DOptions | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Assemble (D, S) for one medium of the 2D problem.

    Runs through a single-profile :class:`AssemblyPlan2D`, so scalar
    calls share the batched hot path instead of paying a naive
    per-call price.
    """
    plan = AssemblyPlan2D.build([mesh], options or Assembly2DOptions())
    d_mat, s_mat = assemble_media_multi_k_2d(plan, (k,))[0]
    return d_mat[0], s_mat[0]
