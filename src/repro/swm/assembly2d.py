"""MOM assembly of the 2D SWM integral equations (Fig. 6's comparison).

Same structure as the 3D assembly but with line-source kernels on a
1D-periodic profile: pulse basis / point collocation, minimum-image
wrapping, Kummer-accelerated periodic Green's function, analytic
(logarithmic) self terms and sub-segment quadrature for near pairs.

Self term of the single layer over a tilted segment of true length ``h``::

    int (j/4) H0(k rho) dl  ~=  (j/4) h [1 + (2j/pi)(ln(k h / 4) + gamma_E - 1)]

(small-argument Hankel expansion, valid for ``|k| h << 1``), plus the
regularized periodic remainder ``g_reg(0) * h``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..greens.freespace import green2d, green2d_radial_derivative
from ..greens.periodic2d import (
    EULER_GAMMA,
    periodic_green2d,
    periodic_green2d_gradient,
    periodic_green2d_pair,
)
from .geometry import SurfaceMesh2D


@dataclass(frozen=True)
class Assembly2DOptions:
    """Quadrature/truncation knobs for 2D assembly."""

    m_max: int = 96
    near_radius_cells: float = 2.0
    near_quadrature: int = 8


def _wrap(d: np.ndarray, period: float) -> np.ndarray:
    return d - period * np.round(d / period)


def _regularized_zero_limit(k: complex, period: float, m_max: int) -> complex:
    """Zero-separation limit ``g_reg(0)`` of the regularized kernel.

    A scalar Kummer mode sum that depends only on ``(k, period, m_max)``
    yet was historically recomputed per medium *and per batch chunk*;
    the cache shares one evaluation across chunks, media and the fused
    pair path. The value is a pure function of the key, so caching
    cannot change results.
    """
    return _g_reg0_cached(complex(k), float(period), int(m_max))


@lru_cache(maxsize=64)
def _g_reg0_cached(k: complex, period: float, m_max: int) -> complex:
    return complex(periodic_green2d(np.array(0.0), np.array(0.0), k,
                                    period, m_max=m_max,
                                    exclude_primary=True))


def _self_single_layer_2d(mesh: SurfaceMesh2D, k: complex,
                          g_reg0: complex) -> np.ndarray:
    h = mesh.true_lengths()
    log_part = np.log(k * h / 4.0) + EULER_GAMMA - 1.0
    free = 0.25j * h * (1.0 + (2j / math.pi) * log_part)
    return free + g_reg0 * h


def assemble_medium_2d_many(meshes: "Sequence[SurfaceMesh2D]", k: complex,
                            options: Assembly2DOptions | None = None
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Assemble (D, S) for one medium across a stack of profiles.

    All meshes must share the same grid (``n``, ``period``); only the
    heights differ (the MC sample structure of the Fig. 6 profiles).
    The x-separations, near-pair sets and the regularized zero-limit are
    shared across the stack, and each Kummer-accelerated kernel series
    runs once on ``(B, N, N)`` arrays. Returns ``(B, N, N)`` stacks
    bit-identical to per-mesh :func:`assemble_medium_2d`.
    """
    from ..errors import MeshError

    options = options or Assembly2DOptions()
    meshes = list(meshes)
    if not meshes:
        raise MeshError("assemble_medium_2d_many needs at least one mesh")
    base = meshes[0]
    for mesh in meshes[1:]:
        if mesh.n != base.n or mesh.period != base.period:
            raise MeshError(
                "batched 2D assembly requires meshes sharing grid and "
                f"period; got n={mesh.n} L={mesh.period} vs n={base.n} "
                f"L={base.period}"
            )

    n = base.size
    d = base.spacing
    diag = np.arange(n)

    dx = _wrap(base.x[:, None] - base.x[None, :], base.period)
    z = np.stack([mesh.z for mesh in meshes])        # (B, N)
    fx = np.stack([mesh.fx for mesh in meshes])
    jac = np.stack([mesh.jac for mesh in meshes])
    dz = z[:, :, None] - z[:, None, :]               # (B, N, N)
    np.fill_diagonal(dx, 0.25 * base.period)

    g_reg = periodic_green2d(dx, dz, k, base.period, m_max=options.m_max,
                             exclude_primary=True)
    gx_reg, gz_reg = periodic_green2d_gradient(dx, dz, k, base.period,
                                               m_max=options.m_max,
                                               exclude_primary=True)

    rho = np.sqrt(dx * dx + dz * dz)
    rho[:, diag, diag] = 1.0
    g0 = green2d(rho, k)
    dgdr = green2d_radial_derivative(rho, k)
    inv = 1.0 / rho
    g0x = dgdr * dx * inv
    g0z = dgdr * dz * inv
    for arr in (g0, g0x, g0z):
        arr[:, diag, diag] = 0.0

    g_total = g_reg + g0
    gx_total = gx_reg + g0x
    gz_total = gz_reg + g0z

    # Near pairs depend only on the shared parameter distance.
    rho_param = np.abs(dx)
    near = (rho_param <= options.near_radius_cells * d + 1e-12)
    np.fill_diagonal(near, False)
    rows, cols = np.nonzero(near)
    if rows.size:
        q = options.near_quadrature
        du = ((np.arange(q) + 0.5) / q - 0.5) * d
        sx = dx[rows, cols][:, None] - du[None, :]   # (P, Q) shared
        sz = (dz[:, rows, cols][:, :, None]
              - fx[:, cols][:, :, None] * du[None, None, :])
        rr = np.sqrt(sx * sx + sz * sz)              # (B, P, Q)
        g_total[:, rows, cols] = (g_reg[:, rows, cols]
                                  + green2d(rr, k).mean(axis=-1))
        dg = green2d_radial_derivative(rr, k) / rr
        gx_total[:, rows, cols] = (gx_reg[:, rows, cols]
                                   + (dg * sx).mean(axis=-1))
        gz_total[:, rows, cols] = (gz_reg[:, rows, cols]
                                   + (dg * sz).mean(axis=-1))

    g_reg0 = _regularized_zero_limit(k, base.period, options.m_max)

    s_mat = g_total * (jac[:, None, :] * d)
    h = jac * d
    log_part = np.log(k * h / 4.0) + EULER_GAMMA - 1.0
    free = 0.25j * h * (1.0 + (2j / math.pi) * log_part)
    s_mat[:, diag, diag] = free + g_reg0 * h

    d_mat = (gx_total * fx[:, None, :] - gz_total) * d
    d_mat[:, diag, diag] = 0.0

    return d_mat, s_mat


def assemble_media_pair_2d_many(meshes: "Sequence[SurfaceMesh2D]",
                                k1: complex, k2: complex,
                                options: Assembly2DOptions | None = None):
    """Assemble (D, S) for *both* media across a stack of profiles.

    The batched hot path of the 2D solver (Fig. 6's MC curves). On top
    of the sample-axis vectorization of :func:`assemble_medium_2d_many`,
    the four independent Kummer mode-sum passes (green + gradient, two
    media) collapse into one fused :func:`periodic_green2d_pair` pass,
    and every k-independent intermediate — the wrapped x-separations,
    recurrence-built mode factors, quasi-static asymptotes, closed-form
    log remainder, ``rho`` and its reciprocal, the near-pair sub-segment
    geometry and the cached regularized zero limit — is computed once
    and shared between the two media.

    Returns ``((d1, s1), (d2, s2))`` as ``(B, N, N)`` stacks,
    **bit-identical** to per-medium :func:`assemble_medium_2d_many`
    (and therefore to per-mesh :func:`assemble_medium_2d`): every shared
    quantity is a deterministic recomputation of what the per-medium
    path evaluates, and every per-medium expression mirrors the
    reference entry for entry.
    """
    from ..errors import MeshError

    options = options or Assembly2DOptions()
    meshes = list(meshes)
    if not meshes:
        raise MeshError("assemble_media_pair_2d_many needs at least one mesh")
    base = meshes[0]
    for mesh in meshes[1:]:
        if mesh.n != base.n or mesh.period != base.period:
            raise MeshError(
                "batched 2D assembly requires meshes sharing grid and "
                f"period; got n={mesh.n} L={mesh.period} vs n={base.n} "
                f"L={base.period}"
            )

    n = base.size
    d = base.spacing
    diag = np.arange(n)

    dx = _wrap(base.x[:, None] - base.x[None, :], base.period)
    z = np.stack([mesh.z for mesh in meshes])        # (B, N)
    fx = np.stack([mesh.fx for mesh in meshes])
    jac = np.stack([mesh.jac for mesh in meshes])
    dz = z[:, :, None] - z[:, None, :]               # (B, N, N)
    np.fill_diagonal(dx, 0.25 * base.period)

    regs = periodic_green2d_pair(dx, dz, (k1, k2), base.period,
                                 m_max=options.m_max, exclude_primary=True)
    g_reg0s = tuple(_regularized_zero_limit(kk, base.period, options.m_max)
                    for kk in (k1, k2))

    # Free-space primary: shared distances, per-medium Hankel kernels.
    rho = np.sqrt(dx * dx + dz * dz)
    rho[:, diag, diag] = 1.0
    inv = 1.0 / rho

    # Near-pair sub-segment geometry (k-independent, shared).
    rho_param = np.abs(dx)
    near = (rho_param <= options.near_radius_cells * d + 1e-12)
    np.fill_diagonal(near, False)
    rows, cols = np.nonzero(near)
    if rows.size:
        q = options.near_quadrature
        du = ((np.arange(q) + 0.5) / q - 0.5) * d
        sx = dx[rows, cols][:, None] - du[None, :]   # (P, Q) shared
        sz = (dz[:, rows, cols][:, :, None]
              - fx[:, cols][:, :, None] * du[None, None, :])
        rr = np.sqrt(sx * sx + sz * sz)              # (B, P, Q)

    # Self-term geometry (k-independent, shared).
    h = jac * d
    jac_d = jac[:, None, :] * d

    out = []
    for kk, (g_reg, gx_reg, gz_reg), g_reg0 in zip((k1, k2), regs, g_reg0s):
        g0 = green2d(rho, kk)
        dgdr = green2d_radial_derivative(rho, kk)
        g0x = dgdr * dx * inv
        g0z = dgdr * dz * inv
        for arr in (g0, g0x, g0z):
            arr[:, diag, diag] = 0.0

        g_total = g_reg + g0
        gx_total = gx_reg + g0x
        gz_total = gz_reg + g0z

        if rows.size:
            g_total[:, rows, cols] = (g_reg[:, rows, cols]
                                      + green2d(rr, kk).mean(axis=-1))
            dg = green2d_radial_derivative(rr, kk) / rr
            gx_total[:, rows, cols] = (gx_reg[:, rows, cols]
                                       + (dg * sx).mean(axis=-1))
            gz_total[:, rows, cols] = (gz_reg[:, rows, cols]
                                       + (dg * sz).mean(axis=-1))

        s_mat = g_total * jac_d
        log_part = np.log(kk * h / 4.0) + EULER_GAMMA - 1.0
        free = 0.25j * h * (1.0 + (2j / math.pi) * log_part)
        s_mat[:, diag, diag] = free + g_reg0 * h

        d_mat = (gx_total * fx[:, None, :] - gz_total) * d
        d_mat[:, diag, diag] = 0.0
        out.append((d_mat, s_mat))
    return tuple(out)


def assemble_medium_2d(mesh: SurfaceMesh2D, k: complex,
                       options: Assembly2DOptions | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Assemble (D, S) for one medium of the 2D problem."""
    options = options or Assembly2DOptions()
    n = mesh.size
    d = mesh.spacing

    dx = _wrap(mesh.x[:, None] - mesh.x[None, :], mesh.period)
    dz = mesh.z[:, None] - mesh.z[None, :]
    np.fill_diagonal(dx, 0.25 * mesh.period)

    g_reg = periodic_green2d(dx, dz, k, mesh.period, m_max=options.m_max,
                             exclude_primary=True)
    gx_reg, gz_reg = periodic_green2d_gradient(dx, dz, k, mesh.period,
                                               m_max=options.m_max,
                                               exclude_primary=True)

    rho = np.sqrt(dx * dx + dz * dz)
    np.fill_diagonal(rho, 1.0)
    g0 = green2d(rho, k)
    dgdr = green2d_radial_derivative(rho, k)
    inv = 1.0 / rho
    g0x = dgdr * dx * inv
    g0z = dgdr * dz * inv
    np.fill_diagonal(g0, 0.0)
    np.fill_diagonal(g0x, 0.0)
    np.fill_diagonal(g0z, 0.0)

    g_total = g_reg + g0
    gx_total = gx_reg + g0x
    gz_total = gz_reg + g0z

    # Near-pair sub-segment quadrature of the free-space primary.
    rho_param = np.abs(dx)
    near = (rho_param <= options.near_radius_cells * d + 1e-12)
    np.fill_diagonal(near, False)
    rows, cols = np.nonzero(near)
    if rows.size:
        q = options.near_quadrature
        du = ((np.arange(q) + 0.5) / q - 0.5) * d
        sx = dx[rows, cols][:, None] - du[None, :]
        sz = dz[rows, cols][:, None] - mesh.fx[cols][:, None] * du[None, :]
        rr = np.sqrt(sx * sx + sz * sz)
        g_total[rows, cols] = g_reg[rows, cols] + green2d(rr, k).mean(axis=1)
        dg = green2d_radial_derivative(rr, k) / rr
        gx_total[rows, cols] = gx_reg[rows, cols] + (dg * sx).mean(axis=1)
        gz_total[rows, cols] = gz_reg[rows, cols] + (dg * sz).mean(axis=1)

    g_reg0 = _regularized_zero_limit(k, mesh.period, options.m_max)

    s_mat = g_total * (mesh.jac[None, :] * d)
    np.fill_diagonal(s_mat, _self_single_layer_2d(mesh, k, g_reg0))

    # D_ij = n'_j . grad' g * J_j dl = (gx * fx_j - gz) * dl
    d_mat = (gx_total * mesh.fx[None, :] - gz_total) * d
    np.fill_diagonal(d_mat, 0.0)

    return d_mat, s_mat
