"""Surface meshes for the SWM boundary-element solvers.

A mesh is the discrete geometry of one L-periodic patch: cell-center
positions, surface heights, slopes (computed spectrally, consistent with
the periodic surface model), unnormalized normals and area Jacobians.

All lengths here are in *solver units* (micrometers in practice — the
public solvers convert from SI); the Green's function modules receive the
same units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import MeshError


def spectral_gradient_2d(heights: np.ndarray, period: float
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Periodic (FFT) partial derivatives ``(f_x, f_y)`` of a height map."""
    h = np.asarray(heights, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise MeshError("heights must be a square 2D array")
    n = h.shape[0]
    k1 = 2.0 * math.pi * np.fft.fftfreq(n, d=period / n)
    kx, ky = np.meshgrid(k1, k1, indexing="ij")
    # Zero the (unpaired) Nyquist mode in each axis for a clean derivative.
    if n % 2 == 0:
        kx[n // 2, :] = 0.0
        ky[:, n // 2] = 0.0
    spec = np.fft.fft2(h)
    fx = np.real(np.fft.ifft2(1j * kx * spec))
    fy = np.real(np.fft.ifft2(1j * ky * spec))
    return fx, fy


def spectral_gradient_1d(profile: np.ndarray, period: float) -> np.ndarray:
    """Periodic (FFT) derivative ``f_x`` of a 1D profile."""
    h = np.asarray(profile, dtype=np.float64)
    if h.ndim != 1:
        raise MeshError("profile must be a 1D array")
    n = h.shape[0]
    k = 2.0 * math.pi * np.fft.fftfreq(n, d=period / n)
    if n % 2 == 0:
        k[n // 2] = 0.0
    spec = np.fft.fft(h)
    return np.real(np.fft.ifft(1j * k * spec))


@dataclass(frozen=True)
class SurfaceMesh3D:
    """Flattened collocation data of an n x n periodic rough patch.

    Attributes (all 1D arrays of length ``N = n*n`` unless noted):

    - ``x, y, z`` — collocation points (z = surface height);
    - ``fx, fy`` — surface slopes at the points;
    - ``fxx, fyy, fxy`` — second derivatives (for the curvature-corrected
      double-layer self term and the quadratic near-cell model);
    - ``jac`` — area Jacobian ``sqrt(1 + fx^2 + fy^2)``;
    - ``period``, ``n``, ``spacing`` — patch metadata.

    The unit normal (pointing out of the conductor, up) is
    ``(-fx, -fy, 1) / jac``.
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    fx: np.ndarray
    fy: np.ndarray
    fxx: np.ndarray
    fyy: np.ndarray
    fxy: np.ndarray
    jac: np.ndarray
    period: float
    n: int

    @property
    def size(self) -> int:
        return int(self.x.size)

    @property
    def spacing(self) -> float:
        return self.period / self.n

    @property
    def cell_area(self) -> float:
        """Parameter-plane cell area ``(L/n)^2``."""
        return self.spacing ** 2

    def true_areas(self) -> np.ndarray:
        """True (tilted) area elements ``jac * (L/n)^2``."""
        return self.jac * self.cell_area

    def total_true_area(self) -> float:
        """Total rough-surface area (>= L^2; the high-frequency loss limit)."""
        return float(np.sum(self.true_areas()))


def build_mesh_3d(heights: np.ndarray, period: float) -> SurfaceMesh3D:
    """Build a :class:`SurfaceMesh3D` from an n x n height map."""
    h = np.asarray(heights, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise MeshError(f"heights must be square 2D, got shape {h.shape}")
    if period <= 0.0:
        raise MeshError(f"period must be positive, got {period}")
    n = h.shape[0]
    if n < 4:
        raise MeshError(f"mesh needs at least 4 points per side, got {n}")
    dx = period / n
    coords = (np.arange(n) + 0.0) * dx
    xx, yy = np.meshgrid(coords, coords, indexing="ij")
    fx, fy = spectral_gradient_2d(h, period)
    fxx, fxy = spectral_gradient_2d(fx, period)
    _, fyy = spectral_gradient_2d(fy, period)
    jac = np.sqrt(1.0 + fx * fx + fy * fy)
    return SurfaceMesh3D(
        x=xx.ravel(), y=yy.ravel(), z=h.ravel(),
        fx=fx.ravel(), fy=fy.ravel(),
        fxx=fxx.ravel(), fyy=fyy.ravel(), fxy=fxy.ravel(),
        jac=jac.ravel(),
        period=float(period), n=n,
    )


@dataclass(frozen=True)
class SurfaceMesh2D:
    """Collocation data of an n-point periodic rough profile (2D SWM)."""

    x: np.ndarray
    z: np.ndarray
    fx: np.ndarray
    jac: np.ndarray
    period: float
    n: int

    @property
    def size(self) -> int:
        return int(self.x.size)

    @property
    def spacing(self) -> float:
        return self.period / self.n

    def true_lengths(self) -> np.ndarray:
        """True arc-length elements ``jac * (L/n)``."""
        return self.jac * self.spacing

    def total_true_length(self) -> float:
        return float(np.sum(self.true_lengths()))


def build_mesh_2d(profile: np.ndarray, period: float) -> SurfaceMesh2D:
    """Build a :class:`SurfaceMesh2D` from an n-point height profile."""
    h = np.asarray(profile, dtype=np.float64)
    if h.ndim != 1:
        raise MeshError(f"profile must be 1D, got shape {h.shape}")
    if period <= 0.0:
        raise MeshError(f"period must be positive, got {period}")
    n = h.shape[0]
    if n < 4:
        raise MeshError(f"mesh needs at least 4 points, got {n}")
    x = np.arange(n) * (period / n)
    fx = spectral_gradient_1d(h, period)
    jac = np.sqrt(1.0 + fx * fx)
    return SurfaceMesh2D(x=x, z=h.copy(), fx=fx, jac=jac,
                         period=float(period), n=n)
