"""MOM assembly of the coupled SWM integral equations (3D).

Discretization: pulse (rooftop-free) basis on the uniform parameter grid
with point collocation — the "smooth rectangular basis" the paper credits
for SWM's cost advantage over RWG-based EM solvers (Section III-C).

For medium ``i`` the two kernels are

- single layer  ``S_ij = <G_i(r_i, r'_j)>  * J_j * dA``
- double layer  ``D_ij = <n'_j . grad' G_i(r_i, r'_j)> * J_j * dA``

with ``J dA`` the true area element and ``<.>`` a source-cell average.
The Green's function is split as ``G = G_free(primary) + G_reg`` where
``G_reg`` (Ewald sum with the primary image's free-space singularity
removed) is smooth on the whole patch once separations are wrapped to the
minimum image. ``G_reg`` is integrated by midpoint; the free-space primary
gets:

- the *diagonal*: an analytic ``1/r`` integral over the tilted cell plus
  the ``(e^{jkr} - 1)/(4 pi r) -> jk/(4 pi)`` correction;
- *near* pairs (wrapped parameter distance <= ``near_radius`` cells):
  q x q sub-cell quadrature on the local tangent plane;
- *far* pairs: midpoint.

The double-layer free-space primary integrates to ~0 on the diagonal
(principal value over a symmetric flat cell) and gets the same sub-cell
treatment for near pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import MeshError
from ..greens.ewald import EwaldConfig, periodic_green, periodic_green_gradient
from ..greens.freespace import green3d, green3d_radial_derivative
from .geometry import SurfaceMesh3D
from .plan import AssemblyPlan3D, _near_pairs, _subcell_offsets, _wrap


@dataclass(frozen=True)
class AssemblyOptions:
    """Quadrature/truncation knobs for 3D assembly.

    ``use_tables`` selects the tabulated fast kernel
    (:mod:`repro.swm.fastkernel`); the exact Ewald path is kept for
    validation. ``n_images = n_modes = 2`` keeps the Ewald truncation
    error ~1e-5 relative at the default splitting parameter.
    """

    n_images: int = 2
    n_modes: int = 2
    ewald_split: float | None = None
    near_radius_cells: float = 2.0
    near_quadrature: int = 4
    use_tables: bool = True

    def ewald_config(self, period: float) -> EwaldConfig:
        return EwaldConfig(period=period, split=self.ewald_split,
                           n_images=self.n_images, n_modes=self.n_modes)

    def to_spec(self) -> dict:
        """Content-hashable dict of every knob that affects numerics
        (keys the engine's result cache). ``asdict`` so a field added
        later can never be silently left out of the hash."""
        import dataclasses

        return dataclasses.asdict(self)


def rectangle_inverse_distance_integral(a: float, b: float) -> float:
    """``integral of 1/r`` over a centered ``a x b`` rectangle (closed form).

    Equals ``2 a asinh(b/a) + 2 b asinh(a/b)``.
    """
    if a <= 0.0 or b <= 0.0:
        raise MeshError(f"rectangle sides must be positive, got {a}, {b}")
    return 2.0 * a * math.asinh(b / a) + 2.0 * b * math.asinh(a / b)


def _self_single_layer(mesh: SurfaceMesh3D, k: complex,
                       g_reg0: complex) -> np.ndarray:
    """Diagonal single-layer entries (length-N array).

    ``S_ii = (1/4pi) I_rect + (jk/4pi) dS_true + G_reg(0) dS_true`` where
    the tilted cell is approximated by a rectangle with one side along the
    steepest in-plane direction and the exact true area.
    """
    d = mesh.spacing
    ds_true = mesh.true_areas()
    side_a = d * np.sqrt(1.0 + mesh.fx ** 2)
    side_b = ds_true / side_a
    i_rect = (2.0 * side_a * np.arcsinh(side_b / side_a)
              + 2.0 * side_b * np.arcsinh(side_a / side_b))
    return (i_rect / (4.0 * math.pi)
            + (1j * k / (4.0 * math.pi)) * ds_true
            + g_reg0 * ds_true)


def assemble_media_multi_k(plan: AssemblyPlan3D, media) -> list[tuple]:
    """Assemble ``(D, S)`` stacks for every ``(k, tables)`` in ``media``.

    The multi-frequency hot path: one fused kernel pass over all
    tables (two media x F stacked frequencies share the plan's gather
    weights, distances and mode phases), then one per-k consumption of
    the plan per entry. Returns ``[(d, s), ...]`` as ``(B, N, N)``
    stacks in ``media`` order, **bit-identical** to assembling each
    ``(k, tables)`` independently against the same tables.
    """
    media = list(media)
    regs = plan.eval_tables([tab for _, tab in media])
    return [plan.assemble_k(k, reg, tab.regular_at_zero())
            for (k, tab), reg in zip(media, regs)]


def assemble_medium_many(meshes: "Sequence[SurfaceMesh3D]", k: complex,
                         options: AssemblyOptions | None = None,
                         tables: "KernelTables | None" = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Assemble (D, S) for one medium across a stack of meshes.

    All meshes must share the same grid (``n``, ``period``) — only the
    heights differ, which is exactly the MC/SSCM sample structure. The
    in-plane separations and near-pair sets are then shared across the
    stack, and every kernel evaluation runs once on ``(B, N, N)`` arrays
    instead of B times on ``(N, N)`` ones. Returns ``(B, N, N)`` matrix
    stacks **bit-identical** to calling :func:`assemble_medium` per mesh
    with the same ``tables``.

    The vectorized path needs a shared :class:`KernelTables`; without
    one (``tables=None``, e.g. the exact-Ewald validation path) each
    mesh is assembled individually and the results stacked.
    """
    options = options or AssemblyOptions()
    meshes = list(meshes)
    if tables is None:
        if not meshes:
            raise MeshError("assemble_medium_many needs at least one mesh")
        base = meshes[0]
        for mesh in meshes[1:]:
            if mesh.n != base.n or mesh.period != base.period:
                raise MeshError(
                    "batched assembly requires meshes sharing grid and "
                    f"period; got n={mesh.n} L={mesh.period} vs n={base.n} "
                    f"L={base.period}"
                )
        pairs = [assemble_medium(mesh, k, options, tables=None)
                 for mesh in meshes]
        return (np.stack([d for d, _ in pairs]),
                np.stack([s for _, s in pairs]))

    plan = AssemblyPlan3D.build(meshes, options)
    return assemble_media_multi_k(plan, ((k, tables),))[0]


def assemble_media_pair_many(meshes: "Sequence[SurfaceMesh3D]",
                             k1: complex, tables1: "KernelTables",
                             k2: complex, tables2: "KernelTables",
                             options: AssemblyOptions | None = None):
    """Assemble (D, S) for *both* media across a stack of meshes.

    The batched hot path of the solver. On top of the sample-axis
    vectorization of :func:`assemble_medium_many`, every k-independent
    intermediate — wrapped separations, distances and their
    reciprocals, interpolation gather weights, mode phases, near-pair
    sub-cell geometry, free-space direction factors — is computed once
    and shared between the two media (the per-medium reference path
    recomputes all of it per medium on full-size arrays).

    Returns ``((d1, s1), (d2, s2))`` as ``(B, N, N)`` stacks,
    **bit-identical** to per-mesh :func:`assemble_medium` with the same
    tables: every shared quantity is a deterministic recomputation of
    what the per-medium path evaluates, and every per-medium expression
    mirrors the reference entry for entry.
    """
    plan = AssemblyPlan3D.build(meshes, options or AssemblyOptions())
    return tuple(assemble_media_multi_k(plan, ((k1, tables1), (k2, tables2))))


def assemble_medium(mesh: SurfaceMesh3D, k: complex,
                    options: AssemblyOptions | None = None,
                    tables: "KernelTables | None" = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Assemble (D, S) for one medium with wavenumber ``k``.

    Returns dense (N, N) complex matrices such that the discrete
    single/double layer operators are ``S @ v`` and ``D @ psi``.
    A prebuilt :class:`repro.swm.fastkernel.KernelTables` may be passed to
    amortize table construction across samples (same k and period).

    The tabulated-kernel path (``tables`` given or ``use_tables``) runs
    through a single-mesh :class:`AssemblyPlan3D`, so scalar calls share
    the batched hot path instead of paying a naive per-call price; the
    exact-Ewald validation path keeps its direct scalar implementation.
    """
    from .fastkernel import KernelTables, tables_for_mesh

    options = options or AssemblyOptions()
    cfg = options.ewald_config(mesh.period)

    if tables is not None or options.use_tables:
        if tables is None:
            tables = tables_for_mesh(k, mesh, cfg)
        plan = AssemblyPlan3D.build([mesh], options)
        d_mat, s_mat = assemble_media_multi_k(plan, ((k, tables),))[0]
        return d_mat[0], s_mat[0]

    n = mesh.size
    d = mesh.spacing
    area = mesh.cell_area

    dx = _wrap(mesh.x[:, None] - mesh.x[None, :], mesh.period)
    dy = _wrap(mesh.y[:, None] - mesh.y[None, :], mesh.period)
    dz = mesh.z[:, None] - mesh.z[None, :]
    # The diagonal is patched analytically below; give it a harmless
    # nonzero separation so the vectorized kernels stay finite there.
    np.fill_diagonal(dx, 0.25 * mesh.period)

    # Regular (smooth) part everywhere; exact for all off-diagonal terms
    # once the free-space primary is added back.
    g_reg = periodic_green(dx, dy, dz, k, cfg, exclude_primary=True)
    gx_reg, gy_reg, gz_reg = periodic_green_gradient(dx, dy, dz, k, cfg,
                                                     exclude_primary=True)
    g_reg0 = complex(periodic_green(np.array(0.0), np.array(0.0),
                                    np.array(0.0), k, cfg,
                                    exclude_primary=True))

    # Free-space primary at midpoints (diagonal patched later).
    r = np.sqrt(dx * dx + dy * dy + dz * dz)
    np.fill_diagonal(r, 1.0)
    g0 = green3d(r, k)
    dgdr = green3d_radial_derivative(r, k)
    inv_r = 1.0 / r
    g0x = dgdr * dx * inv_r
    g0y = dgdr * dy * inv_r
    g0z = dgdr * dz * inv_r
    np.fill_diagonal(g0, 0.0)
    np.fill_diagonal(g0x, 0.0)
    np.fill_diagonal(g0y, 0.0)
    np.fill_diagonal(g0z, 0.0)

    g_total = g_reg + g0
    gx_total = gx_reg + g0x
    gy_total = gy_reg + g0y
    gz_total = gz_reg + g0z

    # Near-pair sub-cell quadrature of the free-space primary.
    rows, cols = _near_pairs(mesh, options.near_radius_cells)
    if rows.size:
        q = options.near_quadrature
        du, dv = _subcell_offsets(q, d)
        # Source sub-points on the local tangent plane of cell j.
        # (A quadratic/Hessian cell model was evaluated and rejected: at
        # practical grid resolutions the curvature radius of a
        # sigma ~ eta surface is below the cell size, so the parabolic
        # expansion diverges and destabilizes the system; see DESIGN.md.)
        sx = dx[rows, cols][:, None] - du[None, :]
        sy = dy[rows, cols][:, None] - dv[None, :]
        sz = (dz[rows, cols][:, None]
              - (mesh.fx[cols][:, None] * du[None, :]
                 + mesh.fy[cols][:, None] * dv[None, :]))
        rr = np.sqrt(sx * sx + sy * sy + sz * sz)
        g0_sub = green3d(rr, k).mean(axis=1)
        dg_sub = green3d_radial_derivative(rr, k) / rr
        g0x_sub = (dg_sub * sx).mean(axis=1)
        g0y_sub = (dg_sub * sy).mean(axis=1)
        g0z_sub = (dg_sub * sz).mean(axis=1)
        g_total[rows, cols] = g_reg[rows, cols] + g0_sub
        gx_total[rows, cols] = gx_reg[rows, cols] + g0x_sub
        gy_total[rows, cols] = gy_reg[rows, cols] + g0y_sub
        gz_total[rows, cols] = gz_reg[rows, cols] + g0z_sub

    # Single layer: S_ij = G_ij * J_j * dA ; diagonal analytic.
    s_mat = g_total * (mesh.jac[None, :] * area)
    np.fill_diagonal(s_mat, _self_single_layer(mesh, k, g_reg0))

    # Double layer: D_ij = n'_j . grad' G * J_j dA
    #             = (grad_Delta G) . (fx_j, fy_j, -1) * dA
    # (n' J = (-fx, -fy, 1); grad' = -grad_Delta).
    d_mat = (gx_total * mesh.fx[None, :]
             + gy_total * mesh.fy[None, :]
             - gz_total) * area
    # Flat-cell PV: the double-layer self term vanishes by symmetry. The
    # leading curvature correction ((f_xx + f_yy) I_cell / 16 pi) was
    # implemented and rejected: it assumes the curvature is resolved
    # (|kappa| dx << 1), which fails precisely on the rough meshes where
    # it would matter, and then destabilizes (1/2 I - D). Accuracy at
    # fixed roughness comes from grid refinement instead (documented in
    # DESIGN.md / EXPERIMENTS.md).
    np.fill_diagonal(d_mat, 0.0)

    return d_mat, s_mat
