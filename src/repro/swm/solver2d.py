"""The simplified 2D SWM solver (surface uniform along y; paper Fig. 6).

Identical formulation to :mod:`repro.swm.solver` with line-source kernels:

.. math::

    (\\tfrac12 I - D_1)\\,\\psi + \\beta S_1\\, v = \\psi_{in},
    \\qquad
    (\\tfrac12 I + D_2)\\,\\psi - S_2\\, v = 0

absorbed power per unit length ``Pr = (1/2) int Re{psi* v} dl`` and the
smooth reference ``Ps = |T0|^2 L / (2 delta)``.

The paper's Fig. 6 point: a 2D (ridged) surface of the same sigma/eta
absorbs noticeably *less* than a true 3D rough surface — 2D roughness
models underestimate the loss.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..constants import METER_TO_UM
from ..errors import ConfigurationError, SolverError
from ..materials import PAPER_SYSTEM, TwoMediumSystem
from ..telemetry import span
from .assembly2d import Assembly2DOptions, assemble_media_multi_k_2d
from .geometry import SurfaceMesh2D, build_mesh_2d
from .plan import AssemblyPlan2D


@dataclass(frozen=True)
class SWM2DResult:
    """Solution of one deterministic 2D SWM problem."""

    frequency_hz: float
    enhancement: float
    absorbed_power: float
    smooth_power: float
    psi: np.ndarray
    v: np.ndarray
    mesh: SurfaceMesh2D

    @property
    def pr_over_ps(self) -> float:
        return self.enhancement


@dataclass(frozen=True)
class SWM2DOptions:
    """Numerical options of the 2D solver.

    ``batch_size`` bounds how many sample systems the batched solve path
    (:meth:`SWMSolver2D.solve_many_um`) stacks at once, and is the
    default sample-batch size for estimators running against this
    solver. Perf-only (batched results are bit-identical), so it is
    excluded from content hashes.
    """

    #: Fields deliberately outside the content hash; the hash-purity
    #: check (RPR003) keeps this set honest against :meth:`to_spec`.
    HASH_EXCLUDED = frozenset({"batch_size", "check_finite"})

    assembly: Assembly2DOptions = field(default_factory=Assembly2DOptions)
    check_finite: bool = True
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1 or None, got {self.batch_size}"
            )

    def to_spec(self) -> dict:
        """Content-hashable dict (keys the engine's result cache).
        Knobs that cannot change payloads are dropped so they never
        split cache entries: ``batch_size`` (batched solves are
        bit-identical) and ``check_finite`` (it only turns a non-finite
        assembly into a clear error — every payload that *returns* is
        identical either way)."""
        import dataclasses

        spec = dataclasses.asdict(self)
        spec.pop("batch_size")
        spec.pop("check_finite")
        return spec


class SWMSolver2D:
    """Deterministic 2D SWM solver."""

    def __init__(self, system: TwoMediumSystem = PAPER_SYSTEM,
                 options: SWM2DOptions | None = None) -> None:
        self.system = system
        self.options = options or SWM2DOptions()

    def solve(self, profile_m: np.ndarray, period_m: float,
              frequency_hz: float) -> SWM2DResult:
        """Solve for a profile given in meters."""
        profile_um = np.asarray(profile_m, dtype=np.float64) * METER_TO_UM
        mesh = build_mesh_2d(profile_um, float(period_m) * METER_TO_UM)
        return self._solve_mesh(mesh, frequency_hz)

    def solve_um(self, profile_um: np.ndarray, period_um: float,
                 frequency_hz: float) -> SWM2DResult:
        """Solve with geometry already in micrometers."""
        mesh = build_mesh_2d(np.asarray(profile_um, dtype=np.float64),
                             float(period_um))
        return self._solve_mesh(mesh, frequency_hz)

    def solve_mesh(self, mesh: SurfaceMesh2D, frequency_hz: float
                   ) -> SWM2DResult:
        """Solve on a prebuilt (micrometer-unit) mesh."""
        return self._solve_mesh(mesh, frequency_hz)

    def _check_resolution(self, spacing_um: float, frequency_hz: float,
                          stacklevel: int) -> None:
        """Warn when the profile mesh cannot resolve the skin depth.

        Same criterion as ``SWMSolver3D._check_resolution`` (the 2D
        field varies just as rapidly inside the conductor), with
        ``stacklevel`` threaded from the public entry point so the
        warning points at the *user's* call site, not a solver-internal
        frame.
        """
        delta_um = self.system.delta(frequency_hz) * METER_TO_UM
        if spacing_um > 1.5 * delta_um:
            warnings.warn(
                f"2D SWM mesh spacing {spacing_um:.3g} um exceeds 1.5x the "
                f"skin depth {delta_um:.3g} um at "
                f"{frequency_hz / 1e9:.3g} GHz; the enhancement factor is "
                "discretization-limited here (refine the profile or lower "
                "the frequency)",
                RuntimeWarning,
                stacklevel=stacklevel,
            )

    def _solve_mesh(self, mesh: SurfaceMesh2D, frequency_hz: float
                    ) -> SWM2DResult:
        # Every public single-solve entry point is exactly one frame
        # above this, so stacklevel 4 attributes the resolution warning
        # to the user's call site in all of them.
        self._check_resolution(mesh.spacing, frequency_hz, stacklevel=4)
        k1 = self.system.k1(frequency_hz) / METER_TO_UM
        k2 = self.system.k2(frequency_hz) / METER_TO_UM
        beta = self.system.beta(frequency_hz)
        n = mesh.size

        # Single-profile calls share the batched hot path: one
        # k-independent plan serves both media.
        with span("plan", n=n):
            plan = AssemblyPlan2D.build([mesh], self.options.assembly)

        with span("assemble", n=n):
            (d1b, s1b), (d2b, s2b) = assemble_media_multi_k_2d(
                plan, (k1, k2))
            d1, s1 = d1b[0], s1b[0]
            d2, s2 = d2b[0], s2b[0]

            half = 0.5 * np.eye(n)
            scale_v = abs(k2)
            a = np.empty((2 * n, 2 * n), dtype=np.complex128)
            a[:n, :n] = half - d1
            a[:n, n:] = beta * s1 * scale_v
            a[n:, :n] = half + d2
            a[n:, n:] = -s2 * scale_v

            rhs = np.zeros(2 * n, dtype=np.complex128)
            rhs[:n] = np.exp(-1j * k1 * mesh.z)

        if self.options.check_finite and not np.all(np.isfinite(a)):
            raise SolverError("assembled 2D SWM matrix contains non-finite "
                              "entries")
        try:
            with span("factor", n=n):
                lu, piv = lu_factor(a, check_finite=False)
                sol = lu_solve((lu, piv), rhs, check_finite=False)
        except (ValueError, np.linalg.LinAlgError) as exc:
            raise SolverError(f"dense 2D solve failed: {exc}") from exc
        psi = sol[:n]
        v = sol[n:] * scale_v

        with span("power"):
            lengths = mesh.true_lengths()
            pr = float(0.5 * np.sum(np.real(np.conj(psi) * v) * lengths))
            ps = self.smooth_power(mesh.period, frequency_hz)
        return SWM2DResult(
            frequency_hz=float(frequency_hz),
            enhancement=pr / ps,
            absorbed_power=pr,
            smooth_power=ps,
            psi=psi,
            v=v,
            mesh=mesh,
        )

    # ------------------------------------------------------------------
    # Batched sample solves (the 2D profile MC hot path)
    # ------------------------------------------------------------------

    def solve_many(self, profiles_m: np.ndarray, period_m: float,
                   frequency_hz: float) -> list[SWM2DResult]:
        """Batched :meth:`solve` for a ``(B, n)`` stack of profiles.

        Bit-identical to per-profile :meth:`solve`; the B dense systems
        are assembled with the sample axis vectorized (both media and
        the green/gradient kernels fused into one mode-sum pass) and
        factored as one stacked batch.
        """
        profiles_um = np.asarray(profiles_m, dtype=np.float64) * METER_TO_UM
        return self._solve_many_um(profiles_um,
                                   float(period_m) * METER_TO_UM,
                                   frequency_hz, stacklevel=5)

    def solve_many_um(self, profiles_um: np.ndarray, period_um: float,
                      frequency_hz: float) -> list[SWM2DResult]:
        """Same as :meth:`solve_many` with geometry in micrometers."""
        return self._solve_many_um(np.asarray(profiles_um, dtype=np.float64),
                                   float(period_um), frequency_hz,
                                   stacklevel=5)

    def solve_mesh_many(self, meshes: list[SurfaceMesh2D],
                        frequency_hz: float) -> list[SWM2DResult]:
        """Batched :meth:`solve_mesh` over prebuilt same-grid meshes."""
        return self._solve_mesh_many(list(meshes), frequency_hz, stacklevel=4)

    def _solve_many_um(self, profiles_um: np.ndarray, period_um: float,
                       frequency_hz: float, stacklevel: int
                       ) -> list[SWM2DResult]:
        if profiles_um.ndim != 2:
            raise ConfigurationError(
                f"batched profiles must be a (B, n) stack, got shape "
                f"{profiles_um.shape}"
            )
        meshes = [build_mesh_2d(p, period_um) for p in profiles_um]
        return self._solve_mesh_many(meshes, frequency_hz, stacklevel)

    def _validate_same_grid(self, meshes: list[SurfaceMesh2D]) -> None:
        if not meshes:
            raise ConfigurationError("batched solve needs at least one mesh")
        base = meshes[0]
        for mesh in meshes[1:]:
            if mesh.n != base.n or mesh.period != base.period:
                raise ConfigurationError(
                    "batched solve requires meshes sharing grid and period; "
                    f"got n={mesh.n} L={mesh.period} vs n={base.n} "
                    f"L={base.period}"
                )

    def _solve_mesh_many(self, meshes: list[SurfaceMesh2D],
                         frequency_hz: float, stacklevel: int
                         ) -> list[SWM2DResult]:
        self._validate_same_grid(meshes)
        self._check_resolution(meshes[0].spacing, frequency_hz,
                               stacklevel=stacklevel)
        from .solver import _auto_stack

        max_stack = self.options.batch_size or _auto_stack(meshes[0].size)
        results: list[SWM2DResult] = []
        for lo in range(0, len(meshes), max_stack):
            results.extend(self._solve_mesh_stack(meshes[lo:lo + max_stack],
                                                  frequency_hz))
        return results

    def solve_mesh_many_multi_k(self, meshes: list[SurfaceMesh2D],
                                frequencies_hz) -> list[list[SWM2DResult]]:
        """Solve a same-grid profile batch at several frequencies at once.

        The 2D multi-frequency hot path: each sample chunk's
        k-independent :class:`AssemblyPlan2D` is built once and consumed
        by every frequency's media (2 x F per-k assemblies share one
        plan and one fused Kummer mode-sum pass). Returns one
        ``list[SWM2DResult]`` per frequency (outer index follows
        ``frequencies_hz``), **bit-identical** to calling
        :meth:`solve_mesh_many` once per frequency (same chunking, same
        LAPACK path).
        """
        meshes = list(meshes)
        freqs = [float(f) for f in frequencies_hz]
        if not freqs:
            raise ConfigurationError(
                "multi-frequency solve needs at least one frequency"
            )
        self._validate_same_grid(meshes)
        base = meshes[0]
        for f in freqs:
            self._check_resolution(base.spacing, f, stacklevel=3)
        from .solver import _auto_stack

        ks = []
        for f in freqs:
            ks.append((f, self.system.k1(f) / METER_TO_UM,
                       self.system.k2(f) / METER_TO_UM))

        n = base.size
        max_stack = self.options.batch_size or _auto_stack(n)
        results: list[list[SWM2DResult]] = [[] for _ in freqs]
        for lo in range(0, len(meshes), max_stack):
            sub = meshes[lo:lo + max_stack]
            nb = len(sub)
            with span("plan", n=n, batch=nb, freqs=len(freqs)):
                plan = AssemblyPlan2D.build(sub, self.options.assembly)
            flat_ks = []
            for _, k1, k2 in ks:
                flat_ks.append(k1)
                flat_ks.append(k2)
            with span("assemble", n=n, batch=nb, freqs=len(freqs)):
                mats = assemble_media_multi_k_2d(plan, flat_ks)
            for fi, (f, k1, k2) in enumerate(ks):
                d1, s1 = mats[2 * fi]
                d2, s2 = mats[2 * fi + 1]
                a, rhs, scale_v = self._block_system_2d(
                    sub, f, k1, k2, d1, s1, d2, s2)
                sol = self._factor_stack_2d(a, rhs, n, nb)
                results[fi].extend(self._finish_many_2d(
                    sub, f, sol[:, :n], sol[:, n:] * scale_v))
        return results

    def _block_system_2d(self, meshes: list[SurfaceMesh2D],
                         frequency_hz: float, k1: complex, k2: complex,
                         d1: np.ndarray, s1: np.ndarray,
                         d2: np.ndarray, s2: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray, float]:
        """Stack the coupled ``(B, 2n, 2n)`` block systems and RHS."""
        beta = self.system.beta(frequency_hz)
        nb = len(meshes)
        n = meshes[0].size
        half = 0.5 * np.eye(n)
        scale_v = abs(k2)
        a = np.empty((nb, 2 * n, 2 * n), dtype=np.complex128)
        a[:, :n, :n] = half - d1
        a[:, :n, n:] = beta * s1 * scale_v
        a[:, n:, :n] = half + d2
        a[:, n:, n:] = -s2 * scale_v

        rhs = np.zeros((nb, 2 * n), dtype=np.complex128)
        # Materialized for the same reason as the 3D solver: the
        # -1j*k1 multiply must not elide into the stack temporary
        # (bit-exact parity with the per-sample path).
        z = np.stack([m.z for m in meshes])
        rhs[:, :n] = np.exp(-1j * k1 * z)
        return a, rhs, scale_v

    def _factor_stack_2d(self, a: np.ndarray, rhs: np.ndarray,
                         n: int, nb: int) -> np.ndarray:
        if self.options.check_finite and not np.all(np.isfinite(a)):
            raise SolverError("assembled 2D SWM matrix contains non-finite "
                              "entries")
        try:
            with span("factor", n=n, batch=nb):
                sol = np.linalg.solve(a, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"batched dense 2D solve failed: {exc}"
                              ) from exc
        return sol

    def _finish_many_2d(self, meshes: list[SurfaceMesh2D],
                        frequency_hz: float, psi: np.ndarray, v: np.ndarray
                        ) -> list[SWM2DResult]:
        """Vectorized power evaluation over the profile stack."""
        with span("power", batch=len(meshes)):
            lengths = np.stack([m.true_lengths() for m in meshes])
            pr = 0.5 * np.sum(np.real(np.conj(psi) * v) * lengths, axis=1)
            ps = self.smooth_power(meshes[0].period, frequency_hz)
        return [
            SWM2DResult(
                frequency_hz=float(frequency_hz),
                enhancement=float(pr[i]) / ps,
                absorbed_power=float(pr[i]),
                smooth_power=ps,
                psi=psi[i],
                v=v[i],
                mesh=mesh,
            )
            for i, mesh in enumerate(meshes)
        ]

    def _solve_mesh_stack(self, meshes: list[SurfaceMesh2D],
                          frequency_hz: float) -> list[SWM2DResult]:
        k1 = self.system.k1(frequency_hz) / METER_TO_UM
        k2 = self.system.k2(frequency_hz) / METER_TO_UM
        nb = len(meshes)
        n = meshes[0].size

        # Fused hot path: both media, green and gradient, one Kummer
        # mode-sum pass off one k-independent plan (bit-identical to
        # per-medium assembly).
        with span("plan", n=n, batch=nb):
            plan = AssemblyPlan2D.build(meshes, self.options.assembly)
        with span("assemble", n=n, batch=nb):
            (d1, s1), (d2, s2) = assemble_media_multi_k_2d(plan, (k1, k2))
            a, rhs, scale_v = self._block_system_2d(
                meshes, frequency_hz, k1, k2, d1, s1, d2, s2)

        sol = self._factor_stack_2d(a, rhs, n, nb)
        psi = sol[:, :n]
        v = sol[:, n:] * scale_v
        return self._finish_many_2d(meshes, frequency_hz, psi, v)

    def smooth_power(self, period_um: float, frequency_hz: float) -> float:
        """Smooth-surface absorbed power per unit y-length."""
        if period_um <= 0.0:
            raise ConfigurationError(
                f"period must be positive, got {period_um}"
            )
        delta_um = self.system.delta(frequency_hz) * METER_TO_UM
        t0 = self.system.flat_transmission(frequency_hz)
        return abs(t0) ** 2 * period_um / (2.0 * delta_um)
