"""Tabulated fast path for the doubly-periodic Ewald kernel.

Profiling shows the assembly cost is completely dominated by complex
Faddeeva (``wofz``) evaluations inside the Ewald brackets. But those
brackets are smooth *one-dimensional* functions:

- the spatial bracket depends only on the scalar distance ``R``;
- each spectral bracket depends only on ``dz`` (one per unique
  ``m^2 + n^2``, since ``gamma_mn`` depends on ``|k_mn|`` only).

So we tabulate them once per (medium wavenumber, patch period) on dense
uniform grids and evaluate by linear interpolation — O(10) flops per
matrix entry instead of O(10) ``wofz`` calls. The tables are cached by the
solver and shared across *all* Monte-Carlo / collocation samples at a
given frequency, which is what makes the paper's stochastic experiments
tractable in pure Python.

Accuracy: grids are sized so the linear-interpolation error is below
1e-6 relative; ``tests/test_swm_assembly.py`` compares the fast path
against the exact Ewald assembly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .geometry import SurfaceMesh3D
from ..greens.ewald import EwaldConfig, _gamma_mn, _primary_minus_free_limit
from ..greens.special import (
    erfc_scaled_pair,
    erfc_scaled_pair_derivative,
    ewald_spectral_bracket,
    ewald_spectral_bracket_minus,
)


def _interp_weights(x0: float, inv_h: float, x: np.ndarray, size: int
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared gather indices/weights for same-grid table lookups.

    Every table interpolated at the same abscissas reuses one
    ``(idx, idx + 1, frac, 1 - frac)`` tuple — the abscissa arithmetic
    dominates a single lookup, so sharing it across the paired
    value/derivative tables (and across all spectral tables, which share
    the dz grid) nearly halves the interpolation cost without changing a
    bit of the result.
    """
    t = (x - x0) * inv_h
    idx = np.clip(t.astype(np.int64), 0, size - 2)
    frac = t - idx
    return idx, idx + 1, frac, 1.0 - frac


def _interp_apply(table: np.ndarray, idx: np.ndarray, idx1: np.ndarray,
                  frac: np.ndarray, omf: np.ndarray) -> np.ndarray:
    return table[idx] * omf + table[idx1] * frac


def _interp_uniform(table: np.ndarray, x0: float, inv_h: float,
                    x: np.ndarray) -> np.ndarray:
    """Linear interpolation on a uniform grid (complex-valued tables)."""
    return _interp_apply(table, *_interp_weights(x0, inv_h, x, table.size))


@dataclass(frozen=True)
class _SpectralTable:
    gamma: complex
    bracket: np.ndarray
    minus: np.ndarray


class KernelTables:
    """Tabulated periodic Green's function + gradient for one medium.

    Parameters
    ----------
    k:
        Medium wavenumber (1/um).
    cfg:
        Ewald configuration (period, splitting, truncations).
    z_extent:
        Maximum |z_i - z_j| the tables must cover (um).
    nr, nz:
        Table sizes (defaults meet the 1e-6 relative target for the
        paper's parameter ranges).
    """

    def __init__(self, k: complex, cfg: EwaldConfig, z_extent: float,
                 nr: int = 4096, nz: int = 2049) -> None:
        if nr < 16 or nz < 16:
            raise ConfigurationError("table sizes must be >= 16")
        self.k = complex(k)
        self.cfg = cfg
        self.period = cfg.period
        e = cfg.effective_split
        lat = cfg.period
        nim = cfg.n_images

        z_max = max(float(z_extent), 1e-9) * 1.001 + 1e-12
        r_max = math.hypot(math.sqrt(2.0) * (nim + 0.5) * lat, z_max) * 1.001

        # --- spatial tables over R in [0, r_max] ---
        # The evaluation-time terms are ``table / R``: the constant
        # 1/(8 pi) is folded into the tables at build time so the hot
        # loop never multiplies by it.
        inv8pi = 1.0 / (8.0 * math.pi)
        r_grid = np.linspace(0.0, r_max, nr)
        bracket = erfc_scaled_pair(r_grid, k, e)
        dbracket = erfc_scaled_pair_derivative(r_grid, k, e)
        self._r0 = 0.0
        self._r_inv_h = (nr - 1) / r_max
        self._bracket = bracket * inv8pi
        self._dbracket = dbracket * inv8pi
        # Regularized primary numerator n(R) = bracket - 2 e^{jkR} and its
        # derivative (for the primary image with the free-space part
        # removed: term = n(R) / (8 pi R)), same 1/(8 pi) folding.
        exp_jkr = np.exp(1j * k * r_grid)
        self._numer = (bracket - 2.0 * exp_jkr) * inv8pi
        self._dnumer = (dbracket - 2j * k * exp_jkr) * inv8pi
        self._reg_limit = _primary_minus_free_limit(k, e)

        # --- spectral tables over dz in [-z_max, z_max] ---
        # Each unique-gamma table is pre-multiplied by its mode
        # coefficient ``coef = j / (4 L^2 gamma)`` (and the minus table
        # additionally by ``j gamma``, its derivative factor), so the
        # per-mode accumulation is a bare multiply-add.
        z_grid = np.linspace(-z_max, z_max, nz)
        self._z0 = -z_max
        self._z_inv_h = (nz - 1) / (2.0 * z_max)
        self._z_max = z_max
        area = lat * lat
        tables: dict[int, _SpectralTable] = {}
        nmod = cfg.n_modes
        for m in range(-nmod, nmod + 1):
            for n in range(-nmod, nmod + 1):
                s = m * m + n * n
                if s in tables:
                    continue
                kx = 2.0 * math.pi * m / lat
                ky = 2.0 * math.pi * n / lat
                g = complex(_gamma_mn(k, np.array(kx), np.array(ky)))
                coef = 1j / (4.0 * area * g)
                minus_coef = (1j * g) * coef
                minus = np.asarray(
                    ewald_spectral_bracket_minus(z_grid, g, e))
                tables[s] = _SpectralTable(
                    gamma=g,
                    bracket=np.asarray(
                        ewald_spectral_bracket(z_grid, g, e)) * coef,
                    minus=minus * minus_coef,
                )
        self._spectral = tables
        self._modes = [(m, n) for m in range(-nmod, nmod + 1)
                       for n in range(-nmod, nmod + 1)]
        self._images = [(p, q) for p in range(-nim, nim + 1)
                        for q in range(-nim, nim + 1)]

    # ------------------------------------------------------------------

    def covers(self, z_extent: float) -> bool:
        """Whether the tabulated dz range covers ``±z_extent``.

        Includes the same safety margin the solver's table cache uses to
        decide reuse, so ``covers`` answers "can these tables serve a
        mesh of this height range" without reaching into table
        internals.
        """
        return self._z_max >= float(z_extent) * 1.0005 + 1e-12

    def regular_at_zero(self) -> complex:
        """``(G^pq - G_free)`` at zero separation (for diagonal self terms)."""
        g = self._reg_limit
        e = self.cfg.effective_split
        lat = self.period
        # Non-primary spatial images at zero separation.
        for (p, q) in self._images:
            if p == 0 and q == 0:
                continue
            r = math.hypot(p * lat, q * lat)
            g += complex(erfc_scaled_pair(np.array(r), self.k, e)) / (8.0 * math.pi * r)
        # Spectral part at dz = 0.
        area = lat * lat
        for (m, n) in self._modes:
            s = m * m + n * n
            tab = self._spectral[s]
            b0 = complex(ewald_spectral_bracket(np.array(0.0), tab.gamma, e))
            g += b0 * (1j / (4.0 * area * tab.gamma))
        return g

    def green_and_gradient(self, dx: np.ndarray, dy: np.ndarray,
                           dz: np.ndarray, skip_mask: np.ndarray | None = None
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Regularized kernel and gradient at the given (wrapped) separations.

        Returns ``(G_reg, Gx_reg, Gy_reg, Gz_reg)`` where "reg" means the
        free-space primary singularity has been subtracted (same contract
        as ``periodic_green(..., exclude_primary=True)``). Entries where
        ``skip_mask`` is True (e.g. the diagonal) are left as zero; the
        caller patches them from :meth:`regular_at_zero`.

        The inputs broadcast against each other, so a batched assembly
        can pass shared in-plane separations ``(N, N)`` with a stacked
        ``(B, N, N)`` ``dz`` and get ``(B, N, N)`` outputs.
        """
        dx = np.asarray(dx, dtype=np.float64)
        dy = np.asarray(dy, dtype=np.float64)
        dz = np.asarray(dz, dtype=np.float64)
        if np.max(np.abs(dz)) > self._z_max:
            raise ConfigurationError(
                "dz exceeds the tabulated z range; rebuild KernelTables "
                "with a larger z_extent"
            )
        lat = self.period
        shape = np.broadcast_shapes(dx.shape, dy.shape, dz.shape)
        g = np.zeros(shape, dtype=np.complex128)
        gx = np.zeros(shape, dtype=np.complex128)
        gy = np.zeros(shape, dtype=np.complex128)
        gz = np.zeros(shape, dtype=np.complex128)

        dz2 = dz * dz  # invariant across images; hoisted out of the loop
        nr = self._bracket.size
        for (p, q) in self._images:
            rx = dx - p * lat
            ry = dy - q * lat
            r2 = rx * rx + ry * ry + dz2
            r = np.sqrt(r2)
            primary = (p == 0 and q == 0)
            safe = np.maximum(r, 1e-300) if primary else r
            # The value and derivative tables share one abscissa array,
            # so they share one set of gather weights.
            idx, idx1, frac, omf = _interp_weights(self._r0, self._r_inv_h,
                                                   r, nr)
            inv_r = 1.0 / safe
            safe2 = safe * safe
            self._accumulate_image(primary, idx, idx1, frac, omf, safe,
                                   safe2, rx * inv_r, ry * inv_r,
                                   dz * inv_r, g, gx, gy, gz)

        # Interpolate each unique-gamma table once; all spectral tables
        # share the dz grid, hence one shared set of gather weights.
        zw = _interp_weights(self._z0, self._z_inv_h, dz,
                             self._spectral[0].bracket.size)
        self._accumulate_spectral(dx, dy, zw, g, gx, gy, gz)

        if skip_mask is not None:
            g[skip_mask] = 0.0
            gx[skip_mask] = 0.0
            gy[skip_mask] = 0.0
            gz[skip_mask] = 0.0
        return g, gx, gy, gz

    def _accumulate_image(self, primary: bool, idx, idx1, frac, omf,
                          safe, safe2, rxi, ryi, dzi, g, gx, gy, gz) -> None:
        """Add one lattice image's contribution in place.

        All k-independent inputs (gather weights, distances and the
        direction cosines ``rxi = rx / r`` etc.) come from the caller so
        a two-media evaluation can share them; the tables carry the
        folded ``1/(8 pi)``.
        """
        if primary:
            b = _interp_apply(self._numer, idx, idx1, frac, omf)
            db = _interp_apply(self._dnumer, idx, idx1, frac, omf)
        else:
            b = _interp_apply(self._bracket, idx, idx1, frac, omf)
            db = _interp_apply(self._dbracket, idx, idx1, frac, omf)
        g += b / safe
        radial = db / safe - b / safe2
        gx += radial * rxi
        gy += radial * ryi
        gz += radial * dzi

    def _spectral_interp(self, zw) -> tuple[dict, dict]:
        """Interpolate every unique-gamma table at shared weights."""
        binterp = {s: _interp_apply(tab.bracket, *zw)
                   for s, tab in self._spectral.items()}
        minterp = {s: _interp_apply(tab.minus, *zw)
                   for s, tab in self._spectral.items()}
        return binterp, minterp

    def _accumulate_spectral(self, dx, dy, zw, g, gx, gy, gz) -> None:
        """Add every spectral mode's contribution in place.

        The tables carry the folded mode coefficients (and the minus
        table its ``j gamma`` derivative factor), so each mode is one
        phase multiply plus bare accumulations.
        """
        binterp, minterp = self._spectral_interp(zw)
        self._accumulate_modes(dx, dy, binterp, minterp, g, gx, gy, gz)

    def _accumulate_modes(self, dx, dy, binterp, minterp,
                          g, gx, gy, gz,
                          phases: dict | None = None) -> None:
        """Mode-sum accumulation; ``phases`` lets two media share the
        (k-independent) per-mode phase factors."""
        lat = self.period
        for (m, n) in self._modes:
            s = m * m + n * n
            if m or n:
                kx = 2.0 * math.pi * m / lat
                ky = 2.0 * math.pi * n / lat
                if phases is None:
                    phase = np.exp(1j * (kx * dx + ky * dy))
                else:
                    phase = phases.get((m, n))
                    if phase is None:
                        phase = np.exp(1j * (kx * dx + ky * dy))
                        phases[(m, n)] = phase
                pb = phase * binterp[s]
                g += pb
                gx += (1j * kx) * pb
                gy += (1j * ky) * pb
                gz += phase * minterp[s]
            else:
                # Specular mode: unit phase, no transverse gradient.
                g += binterp[s]
                gz += minterp[s]

    def _shares_grids(self, other: "KernelTables") -> bool:
        """Whether two tables can share interpolation intermediates.

        True when they were built on the same spatial/spectral grids
        (same period, abscissa origin/step/size, image and mode sets) —
        the condition for one set of gather weights and mode phases to
        serve both.
        """
        return (
            self.period == other.period
            and self._r0 == other._r0
            and self._r_inv_h == other._r_inv_h
            and self._z0 == other._z0
            and self._z_inv_h == other._z_inv_h
            and self._bracket.size == other._bracket.size
            and self._images == other._images
            and self._modes == other._modes
        )

    def green_and_gradient_pair(self, other: "KernelTables",
                                dx: np.ndarray, dy: np.ndarray,
                                dz: np.ndarray):
        """Two-media evaluation sharing all k-independent intermediates.

        The two-table case of :func:`green_and_gradient_multi` (kept as
        a method for the established call sites). Returns
        ``((g, gx, gy, gz), (g2, gx2, gy2, gz2))`` for ``self`` and
        ``other``.
        """
        return tuple(green_and_gradient_multi((self, other), dx, dy, dz))


def green_and_gradient_multi(tables, dx: np.ndarray, dy: np.ndarray,
                             dz: np.ndarray) -> list[tuple]:
    """Evaluate N tables' kernels sharing all k-independent intermediates.

    The wrapped distances, gather weights, reciprocal distances and
    mode phases depend only on the geometry, not on the medium
    wavenumber, yet per-table evaluation recomputes them on full-size
    arrays. This fused variant computes them once and runs every
    table's lookups against them — **bit-identical** to calling
    :meth:`KernelTables.green_and_gradient` on each table separately.
    One call serves two media x F stacked frequencies (the
    :class:`~repro.swm.plan.AssemblyPlan3D` consumer).

    Returns ``[(g, gx, gy, gz), ...]`` in table order. Falls back to
    independent evaluations when the tables do not all share grid
    geometry.
    """
    tables = list(tables)
    if not tables:
        raise ConfigurationError(
            "green_and_gradient_multi needs at least one KernelTables")
    first = tables[0]
    if not all(first._shares_grids(tab) for tab in tables[1:]):
        return [tab.green_and_gradient(dx, dy, dz) for tab in tables]

    dx = np.asarray(dx, dtype=np.float64)
    dy = np.asarray(dy, dtype=np.float64)
    dz = np.asarray(dz, dtype=np.float64)
    if np.max(np.abs(dz)) > min(tab._z_max for tab in tables):
        raise ConfigurationError(
            "dz exceeds the tabulated z range; rebuild KernelTables "
            "with a larger z_extent"
        )
    lat = first.period
    shape = np.broadcast_shapes(dx.shape, dy.shape, dz.shape)
    outs = [tuple(np.zeros(shape, dtype=np.complex128)
                  for _ in range(4)) for _ in tables]

    dz2 = dz * dz
    nr = first._bracket.size
    for (p, q) in first._images:
        rx = dx - p * lat
        ry = dy - q * lat
        r2 = rx * rx + ry * ry + dz2
        r = np.sqrt(r2)
        primary = (p == 0 and q == 0)
        safe = np.maximum(r, 1e-300) if primary else r
        idx, idx1, frac, omf = _interp_weights(first._r0, first._r_inv_h,
                                               r, nr)
        inv_r = 1.0 / safe
        safe2 = safe * safe
        rxi = rx * inv_r
        ryi = ry * inv_r
        dzi = dz * inv_r
        for tab, (g, gx, gy, gz) in zip(tables, outs):
            tab._accumulate_image(primary, idx, idx1, frac, omf, safe,
                                  safe2, rxi, ryi, dzi, g, gx, gy, gz)

    zw = _interp_weights(first._z0, first._z_inv_h, dz,
                         first._spectral[0].bracket.size)
    phases: dict = {}
    for tab, (g, gx, gy, gz) in zip(tables, outs):
        binterp, minterp = tab._spectral_interp(zw)
        tab._accumulate_modes(dx, dy, binterp, minterp, g, gx, gy, gz,
                              phases=phases)
    return outs


def tables_for_mesh(k: complex, mesh: SurfaceMesh3D,
                    cfg: EwaldConfig) -> KernelTables:
    """Build tables sized for a mesh's height range."""
    z_extent = float(np.max(mesh.z) - np.min(mesh.z))
    return KernelTables(k, cfg, z_extent=z_extent)
