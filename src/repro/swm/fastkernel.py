"""Tabulated fast path for the doubly-periodic Ewald kernel.

Profiling shows the assembly cost is completely dominated by complex
Faddeeva (``wofz``) evaluations inside the Ewald brackets. But those
brackets are smooth *one-dimensional* functions:

- the spatial bracket depends only on the scalar distance ``R``;
- each spectral bracket depends only on ``dz`` (one per unique
  ``m^2 + n^2``, since ``gamma_mn`` depends on ``|k_mn|`` only).

So we tabulate them once per (medium wavenumber, patch period) on dense
uniform grids and evaluate by linear interpolation — O(10) flops per
matrix entry instead of O(10) ``wofz`` calls. The tables are cached by the
solver and shared across *all* Monte-Carlo / collocation samples at a
given frequency, which is what makes the paper's stochastic experiments
tractable in pure Python.

Accuracy: grids are sized so the linear-interpolation error is below
1e-6 relative; ``tests/test_swm_assembly.py`` compares the fast path
against the exact Ewald assembly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .geometry import SurfaceMesh3D
from ..greens.ewald import EwaldConfig, _gamma_mn, _primary_minus_free_limit
from ..greens.special import (
    erfc_scaled_pair,
    erfc_scaled_pair_derivative,
    ewald_spectral_bracket,
    ewald_spectral_bracket_minus,
)


def _interp_uniform(table: np.ndarray, x0: float, inv_h: float,
                    x: np.ndarray) -> np.ndarray:
    """Linear interpolation on a uniform grid (complex-valued tables)."""
    t = (x - x0) * inv_h
    idx = np.clip(t.astype(np.int64), 0, table.size - 2)
    frac = t - idx
    return table[idx] * (1.0 - frac) + table[idx + 1] * frac


@dataclass(frozen=True)
class _SpectralTable:
    gamma: complex
    bracket: np.ndarray
    minus: np.ndarray


class KernelTables:
    """Tabulated periodic Green's function + gradient for one medium.

    Parameters
    ----------
    k:
        Medium wavenumber (1/um).
    cfg:
        Ewald configuration (period, splitting, truncations).
    z_extent:
        Maximum |z_i - z_j| the tables must cover (um).
    nr, nz:
        Table sizes (defaults meet the 1e-6 relative target for the
        paper's parameter ranges).
    """

    def __init__(self, k: complex, cfg: EwaldConfig, z_extent: float,
                 nr: int = 4096, nz: int = 2049) -> None:
        if nr < 16 or nz < 16:
            raise ConfigurationError("table sizes must be >= 16")
        self.k = complex(k)
        self.cfg = cfg
        self.period = cfg.period
        e = cfg.effective_split
        lat = cfg.period
        nim = cfg.n_images

        z_max = max(float(z_extent), 1e-9) * 1.001 + 1e-12
        r_max = math.hypot(math.sqrt(2.0) * (nim + 0.5) * lat, z_max) * 1.001

        # --- spatial tables over R in [0, r_max] ---
        r_grid = np.linspace(0.0, r_max, nr)
        bracket = erfc_scaled_pair(r_grid, k, e)
        dbracket = erfc_scaled_pair_derivative(r_grid, k, e)
        self._r0 = 0.0
        self._r_inv_h = (nr - 1) / r_max
        self._bracket = bracket
        self._dbracket = dbracket
        # Regularized primary numerator n(R) = bracket - 2 e^{jkR} and its
        # derivative (for the primary image with the free-space part
        # removed: term = n(R) / (8 pi R)).
        exp_jkr = np.exp(1j * k * r_grid)
        self._numer = bracket - 2.0 * exp_jkr
        self._dnumer = dbracket - 2j * k * exp_jkr
        self._reg_limit = _primary_minus_free_limit(k, e)

        # --- spectral tables over dz in [-z_max, z_max] ---
        z_grid = np.linspace(-z_max, z_max, nz)
        self._z0 = -z_max
        self._z_inv_h = (nz - 1) / (2.0 * z_max)
        self._z_max = z_max
        tables: dict[int, _SpectralTable] = {}
        nmod = cfg.n_modes
        for m in range(-nmod, nmod + 1):
            for n in range(-nmod, nmod + 1):
                s = m * m + n * n
                if s in tables:
                    continue
                kx = 2.0 * math.pi * m / lat
                ky = 2.0 * math.pi * n / lat
                g = complex(_gamma_mn(k, np.array(kx), np.array(ky)))
                tables[s] = _SpectralTable(
                    gamma=g,
                    bracket=np.asarray(ewald_spectral_bracket(z_grid, g, e)),
                    minus=np.asarray(ewald_spectral_bracket_minus(z_grid, g, e)),
                )
        self._spectral = tables
        self._modes = [(m, n) for m in range(-nmod, nmod + 1)
                       for n in range(-nmod, nmod + 1)]
        self._images = [(p, q) for p in range(-nim, nim + 1)
                        for q in range(-nim, nim + 1)]

    # ------------------------------------------------------------------

    def regular_at_zero(self) -> complex:
        """``(G^pq - G_free)`` at zero separation (for diagonal self terms)."""
        g = self._reg_limit
        e = self.cfg.effective_split
        lat = self.period
        # Non-primary spatial images at zero separation.
        for (p, q) in self._images:
            if p == 0 and q == 0:
                continue
            r = math.hypot(p * lat, q * lat)
            g += complex(erfc_scaled_pair(np.array(r), self.k, e)) / (8.0 * math.pi * r)
        # Spectral part at dz = 0.
        area = lat * lat
        for (m, n) in self._modes:
            s = m * m + n * n
            tab = self._spectral[s]
            b0 = complex(ewald_spectral_bracket(np.array(0.0), tab.gamma, e))
            g += b0 * (1j / (4.0 * area * tab.gamma))
        return g

    def green_and_gradient(self, dx: np.ndarray, dy: np.ndarray,
                           dz: np.ndarray, skip_mask: np.ndarray | None = None
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Regularized kernel and gradient at the given (wrapped) separations.

        Returns ``(G_reg, Gx_reg, Gy_reg, Gz_reg)`` where "reg" means the
        free-space primary singularity has been subtracted (same contract
        as ``periodic_green(..., exclude_primary=True)``). Entries where
        ``skip_mask`` is True (e.g. the diagonal) are left as zero; the
        caller patches them from :meth:`regular_at_zero`.
        """
        dx = np.asarray(dx, dtype=np.float64)
        dy = np.asarray(dy, dtype=np.float64)
        dz = np.asarray(dz, dtype=np.float64)
        if np.max(np.abs(dz)) > self._z_max:
            raise ConfigurationError(
                "dz exceeds the tabulated z range; rebuild KernelTables "
                "with a larger z_extent"
            )
        lat = self.period
        g = np.zeros(dx.shape, dtype=np.complex128)
        gx = np.zeros(dx.shape, dtype=np.complex128)
        gy = np.zeros(dx.shape, dtype=np.complex128)
        gz = np.zeros(dx.shape, dtype=np.complex128)

        inv8pi = 1.0 / (8.0 * math.pi)
        for (p, q) in self._images:
            rx = dx - p * lat
            ry = dy - q * lat
            r2 = rx * rx + ry * ry + dz * dz
            r = np.sqrt(r2)
            primary = (p == 0 and q == 0)
            if primary:
                safe = np.maximum(r, 1e-300)
                numer = _interp_uniform(self._numer, self._r0,
                                        self._r_inv_h, r)
                dnumer = _interp_uniform(self._dnumer, self._r0,
                                         self._r_inv_h, r)
                g += numer / safe * inv8pi
                radial = (dnumer / safe - numer / (safe * safe)) * inv8pi
            else:
                safe = r
                bracket = _interp_uniform(self._bracket, self._r0,
                                          self._r_inv_h, r)
                dbracket = _interp_uniform(self._dbracket, self._r0,
                                           self._r_inv_h, r)
                g += bracket / safe * inv8pi
                radial = (dbracket / safe - bracket / (safe * safe)) * inv8pi
            inv_r = 1.0 / np.maximum(safe, 1e-300)
            gx += radial * rx * inv_r
            gy += radial * ry * inv_r
            gz += radial * dz * inv_r

        area = lat * lat
        # Interpolate each unique-gamma table once.
        binterp: dict[int, np.ndarray] = {}
        minterp: dict[int, np.ndarray] = {}
        for s, tab in self._spectral.items():
            binterp[s] = _interp_uniform(tab.bracket, self._z0,
                                         self._z_inv_h, dz)
            minterp[s] = _interp_uniform(tab.minus, self._z0,
                                         self._z_inv_h, dz)
        for (m, n) in self._modes:
            s = m * m + n * n
            tab = self._spectral[s]
            kx = 2.0 * math.pi * m / lat
            ky = 2.0 * math.pi * n / lat
            coef = 1j / (4.0 * area * tab.gamma)
            phase = np.exp(1j * (kx * dx + ky * dy)) if (m or n) else 1.0
            pb = phase * binterp[s]
            g += pb * coef
            gx += (1j * kx) * pb * coef
            gy += (1j * ky) * pb * coef
            gz += phase * minterp[s] * ((1j * tab.gamma) * coef)

        if skip_mask is not None:
            g[skip_mask] = 0.0
            gx[skip_mask] = 0.0
            gy[skip_mask] = 0.0
            gz[skip_mask] = 0.0
        return g, gx, gy, gz


def tables_for_mesh(k: complex, mesh: SurfaceMesh3D,
                    cfg: EwaldConfig) -> KernelTables:
    """Build tables sized for a mesh's height range."""
    z_extent = float(np.max(mesh.z) - np.min(mesh.z))
    return KernelTables(k, cfg, z_extent=z_extent)
