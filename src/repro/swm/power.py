"""Power bookkeeping helpers shared by the SWM solvers.

The paper's eqs. (10)-(11) in one place, plus diagnostics used by the
examples: the geometric area ratio (the high-frequency loss bound for
*gentle* roughness) and the per-cell absorbed-power density map, which
visualizes where on the rough surface the loss concentrates.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .geometry import SurfaceMesh2D, SurfaceMesh3D


def absorbed_power_3d(psi: np.ndarray, v: np.ndarray,
                      mesh: SurfaceMesh3D) -> float:
    """Eq. (10): ``Pr = 1/2 int Re{psi* v} dS`` over the true surface."""
    psi = np.asarray(psi)
    v = np.asarray(v)
    if psi.shape != v.shape or psi.shape != (mesh.size,):
        raise ConfigurationError("psi/v must match the mesh size")
    return float(0.5 * np.sum(np.real(np.conj(psi) * v)
                              * mesh.true_areas()))


def absorbed_power_density_3d(psi: np.ndarray, v: np.ndarray,
                              mesh: SurfaceMesh3D) -> np.ndarray:
    """Per-cell absorbed power density (n x n map), same units as eq. (10).

    Useful for seeing loss concentrate in valleys/peaks as the skin depth
    shrinks (the physics behind the enhancement factor).
    """
    psi = np.asarray(psi)
    v = np.asarray(v)
    if psi.shape != v.shape or psi.shape != (mesh.size,):
        raise ConfigurationError("psi/v must match the mesh size")
    dens = 0.5 * np.real(np.conj(psi) * v) * mesh.jac
    return dens.reshape(mesh.n, mesh.n)


def absorbed_power_2d(psi: np.ndarray, v: np.ndarray,
                      mesh: SurfaceMesh2D) -> float:
    """2D analogue of eq. (10): power per unit length along y."""
    psi = np.asarray(psi)
    v = np.asarray(v)
    if psi.shape != v.shape or psi.shape != (mesh.size,):
        raise ConfigurationError("psi/v must match the mesh size")
    return float(0.5 * np.sum(np.real(np.conj(psi) * v)
                              * mesh.true_lengths()))


def area_ratio_3d(mesh: SurfaceMesh3D) -> float:
    """True-area / flat-area ratio of the patch (geometric loss bound for
    gentle roughness at vanishing skin depth)."""
    return mesh.total_true_area() / (mesh.period ** 2)


def area_ratio_2d(mesh: SurfaceMesh2D) -> float:
    """Arc-length / period ratio of the profile."""
    return mesh.total_true_length() / mesh.period
