"""Fleet telemetry federation: merge worker snapshots into one plane.

Pull workers are separate processes (usually separate machines): their
:class:`~repro.telemetry.metrics.MetricsRegistry` and log buffers are
invisible to the server's ``GET /v1/metrics``. Each worker therefore
ships a telemetry snapshot inside its heartbeats (wire v4's
``WorkerTelemetry`` message) and this module is the server-side merge:

- **metrics** — the worker's full *cumulative* registry snapshot
  replaces the previous one, so re-delivering a heartbeat (the worker
  retries; the network duplicates) is idempotent by construction.
  :meth:`FederatedTelemetry.render_prometheus` re-renders every
  worker's series with a ``worker="<id>"`` label appended, and the
  server concatenates that below its own exposition document — one
  scrape shows the whole fleet.
- **logs** — records arrive with the worker-side buffer's monotonic
  ``seq`` (:mod:`repro.telemetry.logs`); the federation keeps the
  highest seq seen per worker and drops anything at or below it, so a
  retried heartbeat never duplicates a line. Merged records serve
  ``GET /v1/logs?worker=&level=&since=``.

Everything is plain dicts + one lock; no wire or HTTP types leak in,
so the module is testable (and reusable) without a server.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Mapping

from .logs import LogBuffer
from .metrics import _format_value, _series_name

#: Merged fleet log records retained for ``GET /v1/logs``.
DEFAULT_FLEET_LOG_RECORDS = 4096


def _split_series_key(key: str, labels: list[str]) -> tuple[str, ...]:
    """Label values back out of a snapshot series key.

    Snapshot keys join label values with ``","`` (see
    :meth:`MetricsRegistry.snapshot`); a single-label family takes the
    key verbatim so commas inside the one value survive. Multi-label
    families with commas *inside* values are ambiguous — the split is
    best-effort there, which matches the snapshot format's guarantee.
    """
    if not labels:
        return ()
    if len(labels) == 1:
        return (key,)
    return tuple(key.split(",", len(labels) - 1))


def _render_family(name: str, family: Mapping[str, Any],
                   worker: str, out: list[str]) -> None:
    """Append one worker's series of one family, worker-labeled."""
    labels = [str(label) for label in family.get("labels", [])]
    extra = (("worker", worker),)
    kind = family.get("type", "untyped")
    for key in sorted(family.get("series", {})):
        values = _split_series_key(key, labels)
        series = family["series"][key]
        if kind == "histogram":
            cumulative = 0
            for bound, count in series.get("buckets", {}).items():
                cumulative += int(count)
                out.append(
                    f"{_series_name(name + '_bucket', tuple(labels), values, extra + (('le', str(bound)),))} "
                    f"{cumulative}")
            out.append(
                f"{_series_name(name + '_sum', tuple(labels), values, extra)}"
                f" {_format_value(float(series.get('sum', 0.0)))}")
            out.append(
                f"{_series_name(name + '_count', tuple(labels), values, extra)}"
                f" {int(series.get('count', 0))}")
        else:
            out.append(
                f"{_series_name(name, tuple(labels), values, extra)} "
                f"{_format_value(float(series))}")


class FederatedTelemetry:
    """Per-worker metric snapshots + merged fleet logs, one lock."""

    def __init__(self,
                 max_log_records: int = DEFAULT_FLEET_LOG_RECORDS) -> None:
        self._lock = threading.Lock()
        #: worker id -> latest cumulative MetricsRegistry.snapshot().
        self._metrics: dict[str, dict] = {}
        #: worker id -> {"time_unix", "stats", "log_seq"} bookkeeping.
        self._meta: dict[str, dict] = {}
        self._logs = LogBuffer(maxlen=max_log_records)

    # ------------------------------------------------------------------

    def ingest(self, worker: str,
               metrics: Mapping[str, Any] | None = None,
               logs: Iterable[Mapping[str, Any]] = (),
               stats: Mapping[str, Any] | None = None,
               time_unix: float | None = None) -> int:
        """Merge one worker snapshot; returns newly accepted log count.

        Metrics replace the worker's previous snapshot wholesale
        (cumulative snapshots make replacement the idempotent merge);
        log records at or below the worker's last-seen ``seq`` are
        dropped, so re-delivery adds nothing.
        """
        if not worker:
            return 0
        with self._lock:
            meta = self._meta.setdefault(
                worker, {"time_unix": 0.0, "stats": {}, "log_seq": 0})
            meta["time_unix"] = float(time_unix if time_unix is not None
                                      else time.time())
            if stats is not None:
                meta["stats"] = dict(stats)
            if metrics is not None:
                self._metrics[worker] = {
                    name: {"type": fam.get("type", "untyped"),
                           "labels": list(fam.get("labels", [])),
                           "series": dict(fam.get("series", {}))}
                    for name, fam in metrics.items()
                    if isinstance(fam, Mapping)
                }
            fresh = []
            for record in logs:
                if not isinstance(record, Mapping):
                    continue
                seq = int(record.get("seq", 0))
                if seq <= meta["log_seq"]:
                    continue
                meta["log_seq"] = seq
                record = dict(record)
                record.setdefault("worker_id", worker)
                fresh.append(record)
            n = self._logs.ingest(fresh)
            return n

    def forget(self, worker: str) -> None:
        """Drop a worker's metric snapshot (its logs stay merged)."""
        with self._lock:
            self._metrics.pop(worker, None)
            self._meta.pop(worker, None)

    # ------------------------------------------------------------------

    def workers(self) -> list[str]:
        with self._lock:
            return sorted(self._meta)

    def worker_snapshot(self, worker: str) -> dict | None:
        """One worker's latest federated state (or None if unseen)."""
        with self._lock:
            meta = self._meta.get(worker)
            if meta is None:
                return None
            return {
                "worker": worker,
                "time_unix": meta["time_unix"],
                "stats": dict(meta["stats"]),
                "metrics": self._metrics.get(worker, {}),
            }

    def logs(self, worker: str | None = None, level: str | None = None,
             since_unix: float | None = None,
             limit: int | None = None) -> list[dict]:
        """Merged fleet log records, oldest first, filtered."""
        return self._logs.records(level=level, worker=worker,
                                  since_unix=since_unix, limit=limit)

    def render_prometheus(self) -> str:
        """Every worker's series, ``worker``-labeled, one document.

        Families are grouped by name across workers (one ``# TYPE``
        line each). Returns ``""`` with no federated workers, so the
        server can blindly append it to its own exposition text.
        """
        with self._lock:
            families: dict[str, str] = {}
            for snapshot in self._metrics.values():
                for name, fam in snapshot.items():
                    families.setdefault(name, fam.get("type", "untyped"))
            out: list[str] = []
            for name in sorted(families):
                out.append(f"# TYPE {name} {families[name]}")
                for worker in sorted(self._metrics):
                    fam = self._metrics[worker].get(name)
                    if fam is not None:
                        _render_family(name, fam, worker, out)
        return "\n".join(out) + "\n" if out else ""

    def reset(self) -> None:
        """Drop all federated state (tests)."""
        with self._lock:
            self._metrics.clear()
            self._meta.clear()
            self._logs.clear()
