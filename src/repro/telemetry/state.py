"""Global telemetry switch.

Telemetry is **off** by default: every :func:`repro.telemetry.span` and
metric mutation must cost no more than a flag check on the solver hot
paths when nobody is looking. Long-lived entry points that want
visibility (the sweep service, ``repro-experiments --profile``) flip it
on explicitly; the ``REPRO_TELEMETRY`` environment variable enables it
for anything else (including forked pool workers, which inherit both
the environment and the flag state at fork time).
"""

from __future__ import annotations

import os

_ENABLED: bool = os.environ.get("REPRO_TELEMETRY", "") not in ("", "0")


def enabled() -> bool:
    """True iff spans and metrics are being recorded."""
    return _ENABLED


def enable() -> None:
    """Turn telemetry on (spans recorded, metrics mutated).

    Also exported through the environment so *spawned* pool workers
    (which re-import this module instead of inheriting memory) come up
    enabled and their payloads carry spans.
    """
    global _ENABLED
    _ENABLED = True
    os.environ["REPRO_TELEMETRY"] = "1"


def disable() -> None:
    """Turn telemetry off (spans and metric updates become no-ops)."""
    global _ENABLED
    _ENABLED = False
    os.environ["REPRO_TELEMETRY"] = "0"
