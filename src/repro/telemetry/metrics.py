"""Thread-safe, label-aware metrics (counters, gauges, histograms).

A deliberately small Prometheus-shaped subset, stdlib only:

- metric *families* are registered once by name on a
  :class:`MetricsRegistry` (re-registering the same name with the same
  type/labels returns the existing family, so modules can declare their
  metrics at import/construction time without coordinating);
- a family with labels materializes one *series* per observed label
  combination (``counter.inc(1, status="completed")``);
- histograms use fixed bucket layouts chosen at registration
  (cumulative ``le`` buckets, plus ``_sum``/``_count``), so two
  processes scraping the same layout aggregate correctly;
- every mutation is a no-op while :func:`repro.telemetry.enabled` is
  false, and all reads (:meth:`MetricsRegistry.render` /
  :meth:`MetricsRegistry.snapshot`) are atomic snapshots under the
  registry lock.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (``GET /v1/metrics`` serves it verbatim).
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from . import state

#: Default histogram layout: latencies from 100 us to ~2 min (seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def _format_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(v: str) -> str:
    """Inverse of :func:`_escape_label` (exposition-format escapes)."""
    out: list[str] = []
    i = 0
    while i < len(v):
        ch = v[i]
        if ch == "\\" and i + 1 < len(v):
            nxt = v[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt,
                                                             "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> dict[str, str]:
    """Parse one ``{k="v",...}`` label block (escapes honored)."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ConfigurationError(
                f"malformed label value in {text!r} (missing quote)")
        j = eq + 2
        raw: list[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                raw.append(text[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ConfigurationError(
                f"unterminated label value in {text!r}")
        labels[key] = _unescape_label("".join(raw))
        i = j + 1
    return labels


def parse_prometheus(text: str
                     ) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse a Prometheus text exposition document.

    Returns ``{series_name: [(labels, value), ...]}`` with label-value
    escapes decoded — the exact inverse of
    :meth:`MetricsRegistry.render` for the subset this module emits
    (``repro-experiments top`` and the federation tests both read
    scraped documents back through it).
    """
    out: dict[str, list[tuple[dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        if not head:
            continue
        if "{" in head:
            name, _, rest = head.partition("{")
            labels = _parse_labels(rest.rstrip().rstrip("}"))
        else:
            name, labels = head, {}
        out.setdefault(name, []).append((labels, float(value)))
    return out


def _series_name(name: str, labels: tuple[str, ...],
                 values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in zip(labels, values)]
    pairs += [f'{k}="{_escape_label(v)}"' for k, v in extra]
    return f"{name}{{{','.join(pairs)}}}" if pairs else name


class _Family:
    """Shared machinery of one named metric family."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labels: tuple[str, ...]) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = registry._lock

    def _key(self, label_values: Mapping[str, str]) -> tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {list(self.labels)}, "
                f"got {sorted(label_values)}"
            )
        return tuple(str(label_values[k]) for k in self.labels)


class Counter(_Family):
    """Monotonically increasing value (per label combination)."""

    kind = "counter"

    def __init__(self, registry, name, help, labels) -> None:
        super().__init__(registry, name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not state.enabled():
            return
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def _render(self, out: list[str]) -> None:
        for key in sorted(self._values):
            out.append(f"{_series_name(self.name, self.labels, key)} "
                       f"{_format_value(self._values[key])}")

    def _snapshot(self) -> dict:
        return {",".join(k) if k else "": v
                for k, v in self._values.items()}


class Gauge(_Family):
    """Point-in-time value; supports set/inc/dec."""

    kind = "gauge"

    def __init__(self, registry, name, help, labels) -> None:
        super().__init__(registry, name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        if not state.enabled():
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not state.enabled():
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    _render = Counter._render
    _snapshot = Counter._snapshot


class Histogram(_Family):
    """Fixed-bucket distribution (cumulative ``le`` buckets)."""

    kind = "histogram"

    def __init__(self, registry, name, help, labels,
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(registry, name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(
                f"histogram {self.name!r} needs at least one bucket"
            )
        self.buckets = bounds
        # per series: [counts per bucket..., +Inf count], sum
        self._series: dict[tuple[str, ...], tuple[list[int], float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        if not state.enabled():
            return
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = ([0] * (len(self.buckets) + 1), 0.0)
            counts, total = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._series[key] = (counts, total + value)

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return sum(series[0]) if series is not None else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series[1] if series is not None else 0.0

    def _render(self, out: list[str]) -> None:
        for key in sorted(self._series):
            counts, total = self._series[key]
            cumulative = 0
            for bound, n in zip(self.buckets, counts):
                cumulative += n
                out.append(
                    f"{_series_name(self.name + '_bucket', self.labels, key, (('le', _format_value(bound)),))} "
                    f"{cumulative}")
            cumulative += counts[-1]
            out.append(
                f"{_series_name(self.name + '_bucket', self.labels, key, (('le', '+Inf'),))} "
                f"{cumulative}")
            out.append(f"{_series_name(self.name + '_sum', self.labels, key)}"
                       f" {_format_value(total)}")
            out.append(f"{_series_name(self.name + '_count', self.labels, key)}"
                       f" {cumulative}")

    def _snapshot(self) -> dict:
        return {
            ",".join(k) if k else "": {
                "count": sum(counts),
                "sum": total,
                "buckets": dict(zip(
                    [_format_value(b) for b in self.buckets] + ["+Inf"],
                    counts)),
            }
            for k, (counts, total) in self._series.items()
        }


class MetricsRegistry:
    """A named collection of metric families with one shared lock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    def _register(self, cls, name: str, help: str,
                  labels: tuple[str, ...], **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labels != labels:
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels "
                        f"{list(existing.labels)}"
                    )
                return existing
            family = cls(self, name, help, labels, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help, tuple(labels))

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, tuple(labels))

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, tuple(labels),
                              buckets=buckets)

    def render(self) -> str:
        """The Prometheus text exposition format, one atomic snapshot.

        An empty registry renders to the empty string (a valid, if
        silent, exposition document)."""
        out: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    out.append(f"# HELP {name} {family.help}")
                out.append(f"# TYPE {name} {family.kind}")
                family._render(out)
        return "\n".join(out) + "\n" if out else ""

    def snapshot(self) -> dict:
        """Plain-dict snapshot (tests, JSON endpoints, federation).

        Each family carries its label *names* alongside the per-series
        values, so a remote consumer (the scheduler merging worker
        heartbeats) can re-render the series with full label pairs.
        """
        with self._lock:
            return {name: {"type": fam.kind,
                           "labels": list(fam.labels),
                           "series": fam._snapshot()}
                    for name, fam in self._families.items()}

    def reset(self) -> None:
        """Drop every family (tests; fresh processes keep declarations)."""
        with self._lock:
            self._families.clear()


#: Process-wide default registry (what ``GET /v1/metrics`` serves).
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "",
            labels: Iterable[str] = ()) -> Counter:
    """Register (or fetch) a counter on the default registry."""
    return REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
    """Register (or fetch) a gauge on the default registry."""
    return REGISTRY.gauge(name, help, labels)


def histogram(name: str, help: str = "", labels: Iterable[str] = (),
              buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
    """Register (or fetch) a histogram on the default registry."""
    return REGISTRY.histogram(name, help, labels, buckets)


def render_prometheus() -> str:
    """Render the default registry in Prometheus text format."""
    return REGISTRY.render()
