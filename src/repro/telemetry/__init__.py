"""repro.telemetry — metrics, span tracing, and cost calibration.

The observability layer of the stack, stdlib only and **off by
default**: with telemetry disabled every :func:`span` and metric update
is a flag check, so library users and benchmarks pay nothing. The sweep
service (:mod:`repro.service.server`) and the experiments runner's
``--profile``/``--trace-out`` flags enable it; set ``REPRO_TELEMETRY=1``
to enable it anywhere else.

Three pieces:

- :mod:`~repro.telemetry.metrics` — thread-safe, label-aware counters,
  gauges and fixed-bucket histograms on a process-global registry,
  rendered in Prometheus text format (``GET /v1/metrics``);
- :mod:`~repro.telemetry.tracing` — ``with span("assemble"): ...``
  section timing inside the solvers, engine jobs, scheduler rounds and
  HTTP handlers; finished spans are JSON-ready dicts that ride job
  payloads across processes and the wire, feed the ``trace`` events on
  the NDJSON stream, and export as Chrome trace JSON;
- :mod:`~repro.telemetry.calibration` — the online per-scenario-kind
  regression that turns the scheduler's relative ``evals x N^3`` cost
  model into wall-clock ETAs on ticket status responses;
- :mod:`~repro.telemetry.logs` — structured JSON-lines logging with
  levels, a bounded ring buffer, and bindable correlation fields
  (worker_id, lease token, job hash, ticket id) behind
  ``GET /v1/logs``;
- :mod:`~repro.telemetry.federation` — the server-side merge of worker
  heartbeat telemetry (wire v4): per-worker-labeled metric series on
  ``GET /v1/metrics`` and fleet-merged logs, deduplicated by the log
  buffer's monotonic ``seq``.
"""

from .state import enable, disable, enabled
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    render_prometheus,
)
from .tracing import (
    chrome_trace,
    ingest_spans,
    phase_stats,
    record_spans,
    reset_tracing,
    span,
)
from .calibration import CostCalibrator
from .metrics import parse_prometheus
from .logs import (
    GLOBAL_BUFFER,
    LEVELS,
    LogBuffer,
    StructuredLogger,
    format_human,
    get_logger,
    level_rank,
    stderr_logger,
)
from .federation import FederatedTelemetry

__all__ = [
    "enable", "disable", "enabled",
    "DEFAULT_BUCKETS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "REGISTRY", "counter", "gauge", "histogram", "render_prometheus",
    "parse_prometheus",
    "chrome_trace", "ingest_spans", "phase_stats", "record_spans",
    "reset_tracing", "span",
    "CostCalibrator",
    "GLOBAL_BUFFER", "LEVELS", "LogBuffer", "StructuredLogger",
    "format_human", "get_logger", "level_rank", "stderr_logger",
    "FederatedTelemetry",
]
