"""Lightweight span tracing.

A *span* is one timed section of work — ``span("assemble")`` around the
solver's matrix assembly, ``span("job")`` around a whole engine job.
Finished spans become plain JSON-ready dicts::

    {"name": "factor", "start_unix": 1723...,  # wall-clock start
     "duration_s": 0.0123, "pid": 1234, "tid": 140..., "meta": {...}}

so they cross process boundaries inside job payloads and the service
wire format untouched. Two sinks receive every finished span:

- the **thread-local recorder** installed by :func:`record_spans` —
  this is how :func:`repro.engine.runtime.execute_job` captures the
  spans of exactly one job, whatever thread or worker process runs it;
- the **process-global aggregate**: per-name count/total statistics
  (:func:`phase_stats`, the ``--profile`` table) and a bounded buffer
  of raw spans (:func:`chrome_trace`, the ``--trace-out`` export).

Spans produced in *another* process (pool workers, remote services)
re-enter the global aggregate via :func:`ingest_spans` when their
payloads are committed.

When telemetry is disabled (:mod:`repro.telemetry.state`),
:func:`span` returns a shared no-op context manager: the hot-path cost
is one flag check and no allocation.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Iterable, Iterator, Mapping

from . import state

#: Raw spans retained for Chrome-trace export (ring buffer).
MAX_TRACE_SPANS = 50_000

_local = threading.local()
_agg_lock = threading.Lock()
_phase_stats: dict[str, list[float]] = {}  # name -> [count, total_s]
_trace: deque = deque(maxlen=MAX_TRACE_SPANS)


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL = _NullSpan()


class _Span:
    __slots__ = ("name", "meta", "_start", "_unix")

    def __init__(self, name: str, meta: dict | None) -> None:
        self.name = name
        self.meta = meta

    def __enter__(self) -> "_Span":
        self._unix = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._start
        record = {
            "name": self.name,
            "start_unix": self._unix,
            "duration_s": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self.meta:
            record["meta"] = self.meta
        buf = getattr(_local, "spans", None)
        if buf is not None:
            buf.append(record)
        _aggregate(record)


def span(name: str, **meta: Any) -> _Span | _NullSpan:
    """Context manager timing one named section (no-op when disabled)."""
    if not state.enabled():
        return _NULL
    return _Span(name, meta or None)


class record_spans:
    """Install a per-thread span recorder; yields the list it fills.

    Nested recorders shadow each other (each ``with`` gets only its own
    spans). When telemetry is disabled, the list stays empty and spans
    cost nothing.
    """

    def __enter__(self) -> list[dict]:
        self._previous = getattr(_local, "spans", None)
        buf: list[dict] = []
        if state.enabled():
            _local.spans = buf
        return buf

    def __exit__(self, *exc) -> None:
        _local.spans = self._previous
        return None


def _aggregate(record: Mapping[str, Any]) -> None:
    name = record["name"]
    with _agg_lock:
        stats = _phase_stats.get(name)
        if stats is None:
            _phase_stats[name] = [1, float(record["duration_s"])]
        else:
            stats[0] += 1
            stats[1] += float(record["duration_s"])
        _trace.append(dict(record))


def ingest_spans(spans: Iterable[Mapping[str, Any]]) -> None:
    """Feed externally produced span dicts (worker payloads, remote
    results) into the global aggregate, so ``--profile`` and
    ``--trace-out`` see cross-process work."""
    if not state.enabled():
        return
    for record in spans:
        if isinstance(record, Mapping) and "name" in record \
                and "duration_s" in record:
            _aggregate(record)


def phase_stats() -> dict[str, dict[str, float]]:
    """Per-span-name aggregate: ``{name: {count, total_s, mean_s}}``."""
    with _agg_lock:
        return {
            name: {"count": int(count), "total_s": total,
                   "mean_s": total / count if count else 0.0}
            for name, (count, total) in _phase_stats.items()
        }


def iter_trace() -> Iterator[dict]:
    """Snapshot iterator over the retained raw spans (oldest first)."""
    with _agg_lock:
        return iter(list(_trace))


def _record_worker(rec: Mapping[str, Any]) -> str | None:
    """The worker attribution of a span record, if it carries one."""
    worker = rec.get("worker_id")
    if worker is None:
        meta = rec.get("meta")
        if isinstance(meta, Mapping):
            worker = meta.get("worker_id")
    return None if worker is None else str(worker)


def chrome_trace(records: Iterable[Mapping[str, Any]] | None = None
                 ) -> list[dict]:
    """Span records as Chrome trace-format complete events.

    Load the written JSON in ``chrome://tracing`` / Perfetto. Wall-clock
    microsecond timestamps, one row per pid/tid. Defaults to this
    process's retained span buffer; pass ``records`` to render an
    externally merged set (the per-sweep flight recorder).

    Lanes whose spans carry a ``worker_id`` (top-level or in ``meta``)
    get a ``process_name`` metadata event, so a merged fleet trace shows
    ``worker <id>`` lanes instead of anonymous pids.
    """
    if records is None:
        records = iter_trace()
    events = []
    lanes: dict[int, str] = {}
    for rec in records:
        pid = int(rec.get("pid", 0))
        event = {
            "name": rec["name"],
            "ph": "X",
            "ts": float(rec["start_unix"]) * 1e6,
            "dur": float(rec["duration_s"]) * 1e6,
            "pid": pid,
            "tid": int(rec.get("tid", 0)),
        }
        meta = rec.get("meta")
        if meta:
            event["args"] = dict(meta)
        worker = _record_worker(rec)
        if worker is not None:
            lanes.setdefault(pid, worker)
        events.append(event)
    named = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
              "args": {"name": worker if worker == "server"
                       else f"worker {worker}"}}
             for pid, worker in sorted(lanes.items())]
    return named + events


def reset_tracing() -> None:
    """Drop aggregated phase stats and the raw-span buffer (tests)."""
    with _agg_lock:
        _phase_stats.clear()
        _trace.clear()
