"""Online calibration of the plan-level cost model into wall seconds.

The scheduler orders work by :func:`repro.service.scheduler
.estimate_job_cost` — a *relative* ``evals x N^3`` figure with no
absolute scale. This module learns the scale: every committed job
contributes one ``(cost, wall_time_s)`` observation to its scenario
kind's running least-squares fit, and :meth:`CostCalibrator.predict`
turns the cost of a still-pending job into predicted seconds (the
``eta_s`` on ticket status responses).

Fits are kept **per scenario kind** (``stochastic`` / ``profile`` /
``deterministic``) because the kinds have different assembly/factor
mixes — one global slope would let a fleet of cheap 2D profile jobs
drag down the 3D predictions (and vice versa).

The accumulator is a standard five-sum linear regression, centered on
running means for numerical stability (raw costs reach ``1e9+``, so
naive ``sum(x^2)`` would lose precision). With one observation the fit
degrades to the through-origin ratio; with none, :meth:`predict`
returns ``None`` — an honest "no ETA yet", not a guess.

Cache-replayed payloads must never be observed: their ``wall_time_s``
is the *original* compute time, unrelated to this process's hardware or
current load (the scheduler tags them ``cached: true`` and skips them).
"""

from __future__ import annotations

import threading

#: Relative weight of one 2D assembly (O(n^2) kernel-table work) in
#: units of n^3 LU flops — assembly dominates small 2D solves, so a
#: pure-LU cost form would undersell them badly at the profile sizes
#: the experiments use (n ~ 30..100).
_PROFILE_ASSEMBLY_WEIGHT = 200.0

#: The single ``job_kind``-keyed table of plan-level cost forms,
#: ``kind -> (evals, n_unknowns) -> relative cost``. Both layers that
#: reason about cost resolve through it — the scheduler's
#: :func:`repro.engine.cost.estimate_job_cost` (queue ordering, grouped
#: wall-time attribution) and this module's per-kind calibration fits —
#: so a new scenario kind cannot get a cost model in one layer but not
#: the other: adding its entry here is the one registration point, and
#: an unregistered kind fails loudly at estimate time instead of
#: silently sorting (and calibrating) as free.
#:
#: 3D kinds solve N x N systems: ``evals * N^3``. 2D profiles solve
#: ``2n x 2n`` systems (incident + scattered blocks), so their LU term
#: is ``(2n)^3 = 8 n^3``, plus the assembly term that dominates at
#: small n.
COST_MODELS: dict = {
    "deterministic": lambda evals, n: float(evals) * float(n) ** 3,
    "stochastic": lambda evals, n: float(evals) * float(n) ** 3,
    "profile": lambda evals, n: float(evals) * (
        8.0 * float(n) ** 3 + _PROFILE_ASSEMBLY_WEIGHT * float(n) ** 2),
}


class _Fit:
    """Running least squares of ``wall_s`` on ``cost`` (Welford-style)."""

    __slots__ = ("n", "mean_x", "mean_y", "sxx", "sxy")

    def __init__(self) -> None:
        self.n = 0
        self.mean_x = 0.0
        self.mean_y = 0.0
        self.sxx = 0.0  # sum (x - mean_x)^2
        self.sxy = 0.0  # sum (x - mean_x)(y - mean_y)

    def observe(self, x: float, y: float) -> None:
        self.n += 1
        dx = x - self.mean_x
        self.mean_x += dx / self.n
        self.mean_y += (y - self.mean_y) / self.n
        # dx uses the pre-update mean, the second factor the post-update
        # one — the textbook covariance update.
        self.sxx += dx * (x - self.mean_x)
        self.sxy += dx * (y - self.mean_y)

    def predict(self, x: float) -> float | None:
        if self.n == 0:
            return None
        if self.sxx <= 0.0:
            # One observation, or all costs identical: scale by ratio.
            if self.mean_x <= 0.0:
                return max(self.mean_y, 0.0)
            return max(self.mean_y / self.mean_x * x, 0.0)
        slope = self.sxy / self.sxx
        intercept = self.mean_y - slope * self.mean_x
        # A negative slope means the cost model is anti-correlated over
        # the observed window (tiny n, noisy timings); the mean is a
        # better estimate than an extrapolated negative time.
        if slope < 0.0:
            return max(self.mean_y, 0.0)
        return max(intercept + slope * x, 0.0)

    def snapshot(self) -> dict:
        slope = self.sxy / self.sxx if self.sxx > 0.0 else (
            self.mean_y / self.mean_x if self.mean_x > 0.0 else None)
        return {
            "n": self.n,
            "mean_cost": self.mean_x,
            "mean_wall_s": self.mean_y,
            "seconds_per_cost_unit": slope,
        }


class CostCalibrator:
    """Thread-safe per-kind ``cost -> seconds`` regression."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fits: dict[str, _Fit] = {}

    def observe(self, kind: str, cost: float, wall_s: float) -> None:
        """Record one completed job's (estimated cost, measured wall)."""
        if cost < 0.0 or wall_s < 0.0:
            return
        with self._lock:
            fit = self._fits.get(kind)
            if fit is None:
                fit = self._fits[kind] = _Fit()
            fit.observe(float(cost), float(wall_s))

    def predict(self, kind: str, cost: float) -> float | None:
        """Predicted wall seconds for one job, or ``None`` if this kind
        has never been observed."""
        with self._lock:
            fit = self._fits.get(kind)
            return None if fit is None else fit.predict(float(cost))

    def predict_total(self, jobs: list[tuple[str, float]]
                      ) -> float | None:
        """Summed prediction over ``(kind, cost)`` pairs.

        ``None`` if *any* kind is unobserved — a partial sum would be a
        confidently wrong ETA, worse than none.
        """
        total = 0.0
        for kind, cost in jobs:
            predicted = self.predict(kind, cost)
            if predicted is None:
                return None
            total += predicted
        return total

    def observations(self, kind: str) -> int:
        with self._lock:
            fit = self._fits.get(kind)
            return 0 if fit is None else fit.n

    def snapshot(self) -> dict[str, dict]:
        """Per-kind fit summary (the ``/v1/metrics`` companion data)."""
        with self._lock:
            return {kind: fit.snapshot()
                    for kind, fit in self._fits.items()}
