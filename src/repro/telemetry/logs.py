"""Structured JSON-lines logging with correlation fields.

The fleet made execution multi-process; this module makes its output
*mergeable*. A log record is a plain JSON-ready dict::

    {"seq": 17, "time_unix": 1723..., "level": "warning",
     "logger": "fleet.worker", "message": "lease lost",
     "worker_id": "host-123-ab", "slot": "9f2c...", "ticket": "..."}

``seq`` is a per-buffer monotonically increasing integer — it is what
lets the federation layer (:mod:`repro.telemetry.federation`)
deduplicate records that were re-delivered inside a retried heartbeat,
so shipping logs is idempotent by construction.

Pieces:

- :class:`LogBuffer` — a bounded, thread-safe ring of records with the
  ``seq`` counter and a filtering :meth:`~LogBuffer.records` reader
  (level / worker / since-time / since-seq), the store behind
  ``GET /v1/logs``;
- :class:`StructuredLogger` — leveled logger bound to a buffer and an
  optional stream; :meth:`~StructuredLogger.bind` returns a child
  sharing both but carrying extra correlation fields (worker_id, slot,
  ticket, job key, ...), so call sites never re-thread context;
- :func:`get_logger` — loggers over the process-global buffer (what
  the server's ``/v1/logs`` endpoint reads and fleet workers federate
  from).

Stream emission is human-readable by default (one aligned line per
record) and JSON-lines in ``json_lines`` mode (the fleet worker's
``--log-json`` flag) — the buffer always stores the structured record
either way.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from typing import Any, Iterable, Mapping, TextIO

from ..errors import ConfigurationError

#: Level names in increasing severity, mapped to comparable ranks.
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40}

#: Records retained by the process-global buffer.
DEFAULT_BUFFER_RECORDS = 2048

#: Correlation fields rendered inline (bracketed) in human output.
_CORRELATION_FIELDS = ("worker_id", "ticket", "slot", "token", "key")


def level_rank(level: str) -> int:
    """Numeric rank of a level name (raises on unknown levels)."""
    try:
        return LEVELS[level]
    except KeyError:
        raise ConfigurationError(
            f"unknown log level {level!r} (choose from {sorted(LEVELS)})"
        ) from None


class LogBuffer:
    """Bounded thread-safe ring of structured log records.

    Every appended record is stamped with the buffer's monotonically
    increasing ``seq``; readers filter by seq/time/level/worker without
    consuming (the ring is a window, not a queue).
    """

    def __init__(self, maxlen: int = DEFAULT_BUFFER_RECORDS) -> None:
        if maxlen < 1:
            raise ConfigurationError(
                f"LogBuffer maxlen must be >= 1, got {maxlen}")
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=int(maxlen))
        self._seq = 0

    def append(self, record: dict) -> int:
        """Stamp ``record`` with the next seq, retain it, return seq."""
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._records.append(record)
            return self._seq

    def ingest(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Merge externally produced records (already seq-stamped by
        their producer), keeping this buffer's own counter ahead so
        local appends never collide. Returns the number ingested."""
        n = 0
        with self._lock:
            for record in records:
                record = dict(record)
                self._seq = max(self._seq, int(record.get("seq", 0)))
                self._records.append(record)
                n += 1
            return n

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def records(self, level: str | None = None,
                worker: str | None = None,
                since_unix: float | None = None,
                since_seq: int = 0,
                limit: int | None = None) -> list[dict]:
        """Snapshot of retained records matching every given filter.

        ``level`` is a *minimum* severity; ``worker`` matches the
        record's ``worker_id``; ``since_unix``/``since_seq`` are
        exclusive lower bounds. Oldest first; ``limit`` keeps the most
        recent N of the matches.
        """
        floor = level_rank(level) if level is not None else 0
        with self._lock:
            out = [dict(r) for r in self._records
                   if LEVELS.get(r.get("level", "info"), 20) >= floor
                   and (worker is None or r.get("worker_id") == worker)
                   and (since_unix is None
                        or float(r.get("time_unix", 0.0)) > since_unix)
                   and int(r.get("seq", 0)) > since_seq]
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    def clear(self) -> None:
        """Drop every retained record (tests). The seq counter keeps
        counting — cleared history must not recycle sequence numbers."""
        with self._lock:
            self._records.clear()


def format_human(record: Mapping[str, Any]) -> str:
    """One aligned human-readable line for a structured record."""
    stamp = time.strftime("%H:%M:%S",
                          time.localtime(record.get("time_unix", 0.0)))
    level = str(record.get("level", "info")).upper()
    context = " ".join(
        f"{k}={record[k]}" for k in _CORRELATION_FIELDS if k in record)
    extras = " ".join(
        f"{k}={record[k]}" for k in sorted(record)
        if k not in _CORRELATION_FIELDS
        and k not in ("seq", "time_unix", "level", "logger", "message"))
    parts = [f"{stamp} {level:<7} [{record.get('logger', '-')}]",
             str(record.get("message", ""))]
    if context:
        parts.append(f"({context})")
    if extras:
        parts.append(extras)
    return " ".join(parts)


class StructuredLogger:
    """Leveled logger writing structured records to one buffer.

    Parameters
    ----------
    name:
        The ``logger`` field on every record (dotted module style).
    buffer:
        Ring the records are retained in (default: the process-global
        buffer behind ``GET /v1/logs``).
    stream:
        Optional text stream (stderr, a file) each record at or above
        ``level`` is also written to; ``None`` buffers silently.
    json_lines:
        Emit the raw JSON record per line instead of the human format.
    level:
        Minimum severity written to ``stream`` (the buffer always
        receives everything down to ``debug``).
    fields:
        Correlation fields merged into every record (see :meth:`bind`).
    """

    def __init__(self, name: str,
                 buffer: LogBuffer | None = None,
                 stream: TextIO | None = None,
                 json_lines: bool = False,
                 level: str = "info",
                 fields: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.buffer = buffer if buffer is not None else GLOBAL_BUFFER
        self.stream = stream
        self.json_lines = bool(json_lines)
        self._rank = level_rank(level)
        self.level = level
        self.fields = dict(fields or {})

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger carrying extra correlation fields, sharing
        this logger's buffer, stream, and threshold."""
        merged = dict(self.fields)
        merged.update(fields)
        return StructuredLogger(self.name, buffer=self.buffer,
                                stream=self.stream,
                                json_lines=self.json_lines,
                                level=self.level, fields=merged)

    def log(self, level: str, message: str, **fields: Any) -> dict:
        """Build, retain, and (maybe) emit one record; returns it."""
        rank = level_rank(level)
        record: dict[str, Any] = {
            "time_unix": time.time(),
            "level": level,
            "logger": self.name,
            "message": str(message),
        }
        record.update(self.fields)
        record.update(fields)
        self.buffer.append(record)
        if self.stream is not None and rank >= self._rank:
            try:
                line = (json.dumps(record, default=str) if self.json_lines
                        else format_human(record))
                self.stream.write(line + "\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass  # a dead stream must never take the worker down
        return record

    def debug(self, message: str, **fields: Any) -> dict:
        return self.log("debug", message, **fields)

    def info(self, message: str, **fields: Any) -> dict:
        return self.log("info", message, **fields)

    def warning(self, message: str, **fields: Any) -> dict:
        return self.log("warning", message, **fields)

    def error(self, message: str, **fields: Any) -> dict:
        return self.log("error", message, **fields)


#: Process-global record ring — what ``GET /v1/logs`` serves and what
#: fleet workers federate from on heartbeats.
GLOBAL_BUFFER = LogBuffer()


def get_logger(name: str, stream: TextIO | None = None,
               json_lines: bool = False, level: str = "info",
               **fields: Any) -> StructuredLogger:
    """A logger over the process-global buffer.

    ``stream=sys.stderr`` makes it chatty; leave it ``None`` for
    buffer-only logging (still visible through ``GET /v1/logs``).
    """
    return StructuredLogger(name, buffer=GLOBAL_BUFFER, stream=stream,
                            json_lines=json_lines, level=level,
                            fields=fields)


def stderr_logger(name: str, json_lines: bool = False,
                  level: str = "info", **fields: Any) -> StructuredLogger:
    """A global-buffer logger that also writes to ``sys.stderr``."""
    return get_logger(name, stream=sys.stderr, json_lines=json_lines,
                      level=level, **fields)
