"""The fleet's pull worker: claim, execute, upload, repeat.

One :class:`FleetWorker` is one process's worth of fleet capacity. A
single control loop owns all HTTP traffic (claims, heartbeats,
uploads) while a :class:`~concurrent.futures.ThreadPoolExecutor` of
``concurrency`` threads runs the solves — dense LAPACK factorizations
release the GIL, so threads scale the same way the engine's in-process
``ParallelExecutor`` does, without a second process tree on the worker
host.

Failure handling mirrors the lease protocol's guarantees:

- transport errors on claim/upload back off exponentially with jitter
  (capped), so a recovering server is not stampeded;
- a heartbeat answered ``False`` means the lease was reclaimed — the
  job is abandoned locally and its result never uploaded (the re-lease
  owns it now);
- ``stop()`` (the CLI wires it to SIGTERM/SIGINT) drains gracefully:
  no new claims, in-flight jobs finish and upload, then ``run()``
  returns its counters.

Diagnostics go through the structured logger
(:mod:`repro.telemetry.logs`) bound to this worker's ``worker_id`` —
human-readable stderr by default, JSON lines with ``log_json=True``
(the CLI's ``--log-json``), silent with ``quiet=True``. Every record
lands in the process log buffer regardless, and with telemetry enabled
each heartbeat federates the worker's metric snapshot plus the not-yet
-acknowledged log records to the server (wire v4), which is how the
fleet shows up in the server's ``GET /v1/metrics`` / ``/v1/logs``.
"""

from __future__ import annotations

import os
import random
import socket
import sys
import threading
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait

from .. import telemetry
from ..errors import ConfigurationError
from ..engine.runtime import (
    execute_job,
    execute_job_group,
    group_by_scenario,
)
from ..service.client import ServiceClient, ServiceUnavailable
from ..service.wire import WorkerClaim, WorkerResult, WorkerTelemetry

#: Log records shipped per heartbeat, at most (the rest follow on the
#: next beat — the buffer's seq ordering makes catch-up lossless until
#: the ring itself overwrites).
_MAX_HEARTBEAT_LOGS = 256

# Worker-side instruments (no-ops until telemetry is enabled). They
# carry no worker label on purpose: the federation layer appends
# ``worker="<id>"`` when re-rendering them server-side, and a label of
# the same name here would collide with it.
_M_JOBS = telemetry.counter(
    "repro_worker_jobs_total",
    "Jobs executed by this fleet worker, by outcome (ok/error).",
    labels=("outcome",))
_M_INFLIGHT = telemetry.gauge(
    "repro_worker_inflight",
    "Leased jobs currently executing on this worker's pool.")
_M_JOB_SECONDS = telemetry.histogram(
    "repro_worker_job_seconds",
    "Wall time per job executed on this fleet worker.")


def default_worker_id() -> str:
    """``host-pid-suffix`` — unique per process, readable in snapshots."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class FleetWorker:
    """Pull loop against one sweep service.

    Parameters
    ----------
    server:
        Base URL, or a configured :class:`ServiceClient` (the way to
        pass a bearer token or custom retry policy).
    concurrency:
        Jobs executed at once on the local thread pool; claims are
        sized to keep the pool full.
    lease_s:
        Lease duration requested per claim; heartbeats go out at a
        third of it.
    exit_when_idle:
        Return from :meth:`run` once a claim comes back empty with
        nothing in flight (batch mode / tests); default is to keep
        polling forever.
    quiet:
        Suppress the stderr stream (records still reach the process
        log buffer, so they still federate and serve ``/v1/logs``).
    log_json:
        Emit stderr diagnostics as JSON lines (one structured record
        per line) instead of the human-readable format.
    """

    def __init__(self, server: str | ServiceClient,
                 worker_id: str | None = None,
                 concurrency: int = 1,
                 lease_s: float = 30.0,
                 idle_poll_s: float = 0.5,
                 backoff_base_s: float = 0.5,
                 backoff_cap_s: float = 30.0,
                 max_upload_retries: int = 5,
                 exit_when_idle: bool = False,
                 quiet: bool = True,
                 log_json: bool = False) -> None:
        if concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {concurrency}")
        if lease_s <= 0:
            raise ConfigurationError(f"lease_s must be > 0, got {lease_s}")
        self.client = (server if isinstance(server, ServiceClient)
                       else ServiceClient(server))
        self.worker_id = worker_id or default_worker_id()
        self.concurrency = int(concurrency)
        self.lease_s = float(lease_s)
        self.idle_poll_s = float(idle_poll_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.max_upload_retries = int(max_upload_retries)
        self.exit_when_idle = bool(exit_when_idle)
        self.quiet = bool(quiet)
        #: Structured logger bound to this worker's id: every record
        #: carries ``worker_id`` (plus per-call slot/key fields), lands
        #: in the process buffer, and — unless ``quiet`` — streams to
        #: stderr (human format, or JSON lines with ``log_json``).
        self.log = telemetry.get_logger(
            "fleet.worker",
            stream=None if self.quiet else sys.stderr,
            json_lines=log_json,
        ).bind(worker_id=self.worker_id)
        self._stop = threading.Event()
        #: Highest log seq the server has acknowledged receiving.
        self._shipped_seq = 0
        self._inflight_count = 0
        #: Lifetime counters, also returned by :meth:`run`.
        self.stats = {"claimed": 0, "completed": 0, "failed": 0,
                      "stale": 0, "abandoned": 0}

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Request a graceful drain (thread/signal-handler safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def _log(self, message: str, *, level: str = "info",
             **fields) -> None:
        self.log.log(level, message, **fields)

    def _sleep_backoff(self, attempt: int) -> None:
        """Jittered, capped exponential backoff (interruptible by
        :meth:`stop`, so a drain never waits out a long retry)."""
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2.0 ** (attempt - 1)))
        self._stop.wait(delay * random.uniform(0.5, 1.0))

    # ------------------------------------------------------------------

    def _execute(self, claim: WorkerClaim) -> tuple[dict | None,
                                                    str | None]:
        """Run one leased job; ``(payload, None)`` or ``(None, error)``.

        Job failures are data, not worker crashes — they upload as
        ``WorkerResult.error`` and fail only the tickets waiting on
        this job, exactly like the scheduler's in-process capture.
        """
        start = time.perf_counter()
        try:
            payload = execute_job(claim.job)
        except Exception as exc:  # noqa: BLE001 — reported to the server
            _M_JOBS.inc(outcome="error")
            return None, f"{type(exc).__name__}: {exc}"
        _M_JOBS.inc(outcome="ok")
        _M_JOB_SECONDS.observe(time.perf_counter() - start)
        return payload, None

    def _execute_many(self, claims: list[WorkerClaim]
                      ) -> list[tuple[dict | None, str | None]]:
        """Run one claimed scenario group; one result tuple per claim.

        Groups take the fused frequency-stack path of
        :func:`repro.engine.runtime.execute_job_group` (bit-identical
        payloads, shared assembly plan); any grouped-path failure falls
        back to per-claim :meth:`_execute` so a bad job fails only its
        own lease.
        """
        if len(claims) == 1:
            return [self._execute(claims[0])]
        try:
            payloads = execute_job_group([c.job for c in claims])
        except Exception:  # noqa: BLE001 — isolate failures per claim
            return [self._execute(claim) for claim in claims]
        if len(payloads) != len(claims):  # defensive: keep slots aligned
            return [self._execute(claim) for claim in claims]
        for payload in payloads:
            _M_JOBS.inc(outcome="ok")
            # The group's wall time arrives pre-attributed per job (by
            # cost weight), so the per-job histogram stays meaningful.
            _M_JOB_SECONDS.observe(float(payload.get("wall_time_s", 0.0)))
        return [(payload, None) for payload in payloads]

    def _push(self, claim: WorkerClaim, payload: dict | None,
              error: str | None) -> str:
        """Upload one result; 'committed', 'stale', or 'abandoned'.

        Transport errors retry with backoff; past the budget the job is
        abandoned — safe, because the unrenewed lease expires and the
        scheduler re-queues the work.
        """
        result = WorkerResult(slot=claim.slot, token=claim.token,
                              worker=self.worker_id, key=claim.key,
                              payload=payload, error=error)
        encoded = None
        for attempt in range(1, self.max_upload_retries + 2):
            try:
                return self.client.push_result(result)
            except ServiceUnavailable as exc:
                encoded = exc
                if attempt > self.max_upload_retries:
                    break
                self._log("upload retry", level="warning",
                          slot=claim.slot, key=claim.key,
                          attempt=attempt, error=str(exc))
                self._sleep_backoff(attempt)
        self._log("abandoning upload", level="error",
                  slot=claim.slot, key=claim.key,
                  retries=self.max_upload_retries, error=str(encoded))
        return "abandoned"

    def _count_push(self, status: str, error: str | None) -> None:
        if status == "committed":
            self.stats["failed" if error is not None else "completed"] += 1
        elif status == "stale":
            self.stats["stale"] += 1
        else:
            self.stats["abandoned"] += 1

    # ------------------------------------------------------------------
    # Telemetry federation (wire v4)
    # ------------------------------------------------------------------

    def _telemetry_snapshot(self) -> WorkerTelemetry:
        """This worker's federated snapshot for one heartbeat.

        Metrics are the full cumulative registry snapshot (families
        with no series yet are skipped — they would only re-declare
        TYPE lines server-side); logs are this worker's records past
        the last server-acknowledged seq, capped per beat.
        """
        records = telemetry.GLOBAL_BUFFER.records(
            worker=self.worker_id, since_seq=self._shipped_seq,
            limit=_MAX_HEARTBEAT_LOGS)
        seq = max((int(r.get("seq", 0)) for r in records),
                  default=self._shipped_seq)
        metrics = {name: fam
                   for name, fam in telemetry.REGISTRY.snapshot().items()
                   if fam.get("series")}
        return WorkerTelemetry(
            worker=self.worker_id, time_unix=time.time(), seq=seq,
            metrics=metrics, logs=tuple(records),
            stats={"concurrency": self.concurrency,
                   "inflight": self._inflight_count, **self.stats})

    def _heartbeat(self, slots: dict[str, str]) -> dict[str, bool]:
        """One heartbeat (possibly with no slots, purely to federate
        telemetry); returns per-slot aliveness, ``{}`` on failure."""
        snapshot = (self._telemetry_snapshot()
                    if telemetry.enabled() else None)
        try:
            alive = self.client.heartbeat(
                self.worker_id, slots, lease_s=self.lease_s,
                telemetry=snapshot)
        except (ServiceUnavailable, ConfigurationError) as exc:
            # Missed heartbeats only shorten the lease; the upload's
            # own retry path owns recovery. Unshipped telemetry stays
            # queued behind _shipped_seq for the next beat.
            self._log("heartbeat failed", level="warning",
                      error=str(exc))
            return {}
        if snapshot is not None:
            self._shipped_seq = snapshot.seq
        return alive

    # ------------------------------------------------------------------

    def run(self) -> dict:
        """Pull until stopped (or idle, with ``exit_when_idle``).

        Returns the lifetime counters: claimed / completed / failed /
        stale / abandoned.
        """
        heartbeat_every = max(self.lease_s / 3.0, 0.05)
        next_heartbeat = time.monotonic() + heartbeat_every
        claim_failures = 0
        self._log("pulling", server=self.client.base_url,
                  concurrency=self.concurrency, lease_s=self.lease_s)
        with ThreadPoolExecutor(max_workers=self.concurrency,
                                thread_name_prefix="fleet-job") as pool:
            inflight: dict[Future, list[WorkerClaim]] = {}
            abandoned: set[str] = set()  # leases lost to reclaim
            while True:
                draining = self._stop.is_set()
                queue_drained = False
                free = self.concurrency - len(inflight)
                if not draining and free > 0:
                    try:
                        claims = self.client.claim_jobs(
                            self.worker_id, max_jobs=free,
                            lease_s=self.lease_s)
                        claim_failures = 0
                        queue_drained = not claims
                    except ServiceUnavailable as exc:
                        claims = []
                        claim_failures += 1
                        self._log("claim retry", level="warning",
                                  attempt=claim_failures, error=str(exc))
                        self._sleep_backoff(claim_failures)
                    # Same-scenario claims execute as one fused
                    # frequency stack (the server hands them out
                    # adjacently); singletons run as before.
                    for bunch in group_by_scenario(
                            claims, lambda c: c.job):
                        inflight[pool.submit(self._execute_many,
                                             bunch)] = bunch
                        self.stats["claimed"] += len(bunch)
                    if claims:
                        self._log(f"claimed {len(claims)} job(s)",
                                  inflight=len(inflight))
                n_inflight = sum(len(b) for b in inflight.values())
                self._inflight_count = n_inflight
                _M_INFLIGHT.set(n_inflight)
                if not inflight:
                    if draining:
                        break
                    if self.exit_when_idle and queue_drained:
                        break
                    if time.monotonic() >= next_heartbeat:
                        # Nothing leased, but federate telemetry so an
                        # idle worker still reports to the fleet plane.
                        self._heartbeat({})
                        next_heartbeat = time.monotonic() + heartbeat_every
                    self._stop.wait(self.idle_poll_s)
                    continue
                # Wait for completions, but wake in time to heartbeat.
                budget = max(next_heartbeat - time.monotonic(), 0.05)
                done, _ = futures_wait(list(inflight), timeout=budget,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    bunch = inflight.pop(future)
                    for claim, (payload, error) in zip(bunch,
                                                       future.result()):
                        if claim.slot in abandoned:
                            abandoned.discard(claim.slot)
                            self.stats["abandoned"] += 1
                            continue
                        status = self._push(claim, payload, error)
                        self._count_push(status, error)
                n_inflight = sum(len(b) for b in inflight.values())
                self._inflight_count = n_inflight
                _M_INFLIGHT.set(n_inflight)
                if inflight and time.monotonic() >= next_heartbeat:
                    slots = {c.slot: c.token
                             for b in inflight.values() for c in b
                             if c.slot not in abandoned}
                    alive = self._heartbeat(slots)
                    for slot_id, ok in alive.items():
                        if not ok:
                            self._log("lease lost; abandoning",
                                      level="warning", slot=slot_id)
                            abandoned.add(slot_id)
                    next_heartbeat = time.monotonic() + heartbeat_every
        self._inflight_count = 0
        _M_INFLIGHT.set(0)
        if telemetry.enabled():
            # Final federated snapshot, so the server sees this
            # worker's finished counters and last log records even when
            # the run was shorter than one heartbeat interval.
            self._heartbeat({})
        self._log("done", **self.stats)
        return dict(self.stats)
