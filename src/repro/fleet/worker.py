"""The fleet's pull worker: claim, execute, upload, repeat.

One :class:`FleetWorker` is one process's worth of fleet capacity. A
single control loop owns all HTTP traffic (claims, heartbeats,
uploads) while a :class:`~concurrent.futures.ThreadPoolExecutor` of
``concurrency`` threads runs the solves — dense LAPACK factorizations
release the GIL, so threads scale the same way the engine's in-process
``ParallelExecutor`` does, without a second process tree on the worker
host.

Failure handling mirrors the lease protocol's guarantees:

- transport errors on claim/upload back off exponentially with jitter
  (capped), so a recovering server is not stampeded;
- a heartbeat answered ``False`` means the lease was reclaimed — the
  job is abandoned locally and its result never uploaded (the re-lease
  owns it now);
- ``stop()`` (the CLI wires it to SIGTERM/SIGINT) drains gracefully:
  no new claims, in-flight jobs finish and upload, then ``run()``
  returns its counters.
"""

from __future__ import annotations

import os
import random
import socket
import sys
import threading
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait

from ..errors import ConfigurationError
from ..engine.runtime import execute_job
from ..service.client import ServiceClient, ServiceUnavailable
from ..service.wire import WorkerClaim, WorkerResult


def default_worker_id() -> str:
    """``host-pid-suffix`` — unique per process, readable in snapshots."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class FleetWorker:
    """Pull loop against one sweep service.

    Parameters
    ----------
    server:
        Base URL, or a configured :class:`ServiceClient` (the way to
        pass a bearer token or custom retry policy).
    concurrency:
        Jobs executed at once on the local thread pool; claims are
        sized to keep the pool full.
    lease_s:
        Lease duration requested per claim; heartbeats go out at a
        third of it.
    exit_when_idle:
        Return from :meth:`run` once a claim comes back empty with
        nothing in flight (batch mode / tests); default is to keep
        polling forever.
    """

    def __init__(self, server: str | ServiceClient,
                 worker_id: str | None = None,
                 concurrency: int = 1,
                 lease_s: float = 30.0,
                 idle_poll_s: float = 0.5,
                 backoff_base_s: float = 0.5,
                 backoff_cap_s: float = 30.0,
                 max_upload_retries: int = 5,
                 exit_when_idle: bool = False,
                 quiet: bool = True) -> None:
        if concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {concurrency}")
        if lease_s <= 0:
            raise ConfigurationError(f"lease_s must be > 0, got {lease_s}")
        self.client = (server if isinstance(server, ServiceClient)
                       else ServiceClient(server))
        self.worker_id = worker_id or default_worker_id()
        self.concurrency = int(concurrency)
        self.lease_s = float(lease_s)
        self.idle_poll_s = float(idle_poll_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.max_upload_retries = int(max_upload_retries)
        self.exit_when_idle = bool(exit_when_idle)
        self.quiet = bool(quiet)
        self._stop = threading.Event()
        #: Lifetime counters, also returned by :meth:`run`.
        self.stats = {"claimed": 0, "completed": 0, "failed": 0,
                      "stale": 0, "abandoned": 0}

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Request a graceful drain (thread/signal-handler safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {message}", file=sys.stderr)

    def _sleep_backoff(self, attempt: int) -> None:
        """Jittered, capped exponential backoff (interruptible by
        :meth:`stop`, so a drain never waits out a long retry)."""
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2.0 ** (attempt - 1)))
        self._stop.wait(delay * random.uniform(0.5, 1.0))

    # ------------------------------------------------------------------

    @staticmethod
    def _execute(claim: WorkerClaim) -> tuple[dict | None, str | None]:
        """Run one leased job; ``(payload, None)`` or ``(None, error)``.

        Job failures are data, not worker crashes — they upload as
        ``WorkerResult.error`` and fail only the tickets waiting on
        this job, exactly like the scheduler's in-process capture.
        """
        try:
            return execute_job(claim.job), None
        except Exception as exc:  # noqa: BLE001 — reported to the server
            return None, f"{type(exc).__name__}: {exc}"

    def _push(self, claim: WorkerClaim, payload: dict | None,
              error: str | None) -> str:
        """Upload one result; 'committed', 'stale', or 'abandoned'.

        Transport errors retry with backoff; past the budget the job is
        abandoned — safe, because the unrenewed lease expires and the
        scheduler re-queues the work.
        """
        result = WorkerResult(slot=claim.slot, token=claim.token,
                              worker=self.worker_id, key=claim.key,
                              payload=payload, error=error)
        encoded = None
        for attempt in range(1, self.max_upload_retries + 2):
            try:
                return self.client.push_result(result)
            except ServiceUnavailable as exc:
                encoded = exc
                if attempt > self.max_upload_retries:
                    break
                self._log(f"upload retry {attempt} for {claim.slot[:8]}: "
                          f"{exc}")
                self._sleep_backoff(attempt)
        self._log(f"abandoning {claim.slot[:8]} after "
                  f"{self.max_upload_retries} upload retries: {encoded}")
        return "abandoned"

    def _count_push(self, status: str, error: str | None) -> None:
        if status == "committed":
            self.stats["failed" if error is not None else "completed"] += 1
        elif status == "stale":
            self.stats["stale"] += 1
        else:
            self.stats["abandoned"] += 1

    # ------------------------------------------------------------------

    def run(self) -> dict:
        """Pull until stopped (or idle, with ``exit_when_idle``).

        Returns the lifetime counters: claimed / completed / failed /
        stale / abandoned.
        """
        heartbeat_every = max(self.lease_s / 3.0, 0.05)
        next_heartbeat = time.monotonic() + heartbeat_every
        claim_failures = 0
        self._log(f"pulling from {self.client.base_url} "
                  f"(concurrency={self.concurrency}, "
                  f"lease_s={self.lease_s})")
        with ThreadPoolExecutor(max_workers=self.concurrency,
                                thread_name_prefix="fleet-job") as pool:
            inflight: dict[Future, WorkerClaim] = {}
            abandoned: set[str] = set()  # leases lost to reclaim
            while True:
                draining = self._stop.is_set()
                queue_drained = False
                free = self.concurrency - len(inflight)
                if not draining and free > 0:
                    try:
                        claims = self.client.claim_jobs(
                            self.worker_id, max_jobs=free,
                            lease_s=self.lease_s)
                        claim_failures = 0
                        queue_drained = not claims
                    except ServiceUnavailable as exc:
                        claims = []
                        claim_failures += 1
                        self._log(f"claim retry {claim_failures}: {exc}")
                        self._sleep_backoff(claim_failures)
                    for claim in claims:
                        inflight[pool.submit(self._execute, claim)] = claim
                        self.stats["claimed"] += 1
                    if claims:
                        self._log(f"claimed {len(claims)} job(s), "
                                  f"{len(inflight)} in flight")
                if not inflight:
                    if draining:
                        break
                    if self.exit_when_idle and queue_drained:
                        break
                    self._stop.wait(self.idle_poll_s)
                    continue
                # Wait for completions, but wake in time to heartbeat.
                budget = max(next_heartbeat - time.monotonic(), 0.05)
                done, _ = futures_wait(list(inflight), timeout=budget,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    claim = inflight.pop(future)
                    payload, error = future.result()
                    if claim.slot in abandoned:
                        abandoned.discard(claim.slot)
                        self.stats["abandoned"] += 1
                        continue
                    status = self._push(claim, payload, error)
                    self._count_push(status, error)
                if inflight and time.monotonic() >= next_heartbeat:
                    slots = {c.slot: c.token for c in inflight.values()
                             if c.slot not in abandoned}
                    try:
                        alive = self.client.heartbeat(
                            self.worker_id, slots, lease_s=self.lease_s)
                    except (ServiceUnavailable, ConfigurationError) as exc:
                        # Missed heartbeats only shorten the lease; the
                        # upload's own retry path owns recovery.
                        self._log(f"heartbeat failed: {exc}")
                        alive = {}
                    for slot_id, ok in alive.items():
                        if not ok:
                            self._log(f"lease lost for {slot_id[:8]}; "
                                      "abandoning")
                            abandoned.add(slot_id)
                    next_heartbeat = time.monotonic() + heartbeat_every
        self._log(f"done: {self.stats}")
        return dict(self.stats)
