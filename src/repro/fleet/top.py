"""``repro-experiments top`` — a polling terminal fleet dashboard.

A read-only loop over the service's public observability endpoints
(``/v1/healthz``, ``/v1/workers``, ``/v1/metrics``, ``/v1/logs`` and
the sweep list): queue depth, per-worker throughput and straggler
flags, running sweeps with their ETAs, the cache hit ratio, and the
most recent warning-or-worse log records — one screen, refreshed every
``interval`` seconds.

Split deliberately into :func:`fetch_view` (HTTP -> plain dict) and
:func:`render_view` (dict -> string) so tests can exercise the layout
without a server, and other frontends can reuse the snapshot.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

from .. import telemetry
from ..errors import ReproError
from ..service.client import ServiceClient

#: Warning-or-worse records shown at the bottom of the screen.
_MAX_WARNINGS = 5

#: Running sweeps listed (newest first).
_MAX_SWEEPS = 4

#: ANSI clear-screen + cursor-home, used between refreshes.
_CLEAR = "\x1b[2J\x1b[H"


def _counter_total(series: list[tuple[dict, float]],
                   **match: str) -> float:
    """Sum a parsed metric's samples whose labels include ``match``."""
    return sum(value for labels, value in series
               if all(labels.get(k) == v for k, v in match.items()))


def fetch_view(client: ServiceClient) -> dict[str, Any]:
    """One dashboard snapshot from the service's read endpoints."""
    health = client._get("/v1/healthz")
    fleet = client.workers()
    metrics = telemetry.parse_prometheus(client.metrics_text())
    cache = metrics.get("repro_cache_stats", [])
    hits = _counter_total(cache, counter="hits")
    misses = _counter_total(cache, counter="misses")
    sweeps = [t for t in client._get("/v1/sweeps").get("sweeps", [])
              if t.get("state") in ("pending", "running")]
    etas = {}
    for ticket in sweeps[:_MAX_SWEEPS]:
        try:
            etas[ticket["id"]] = client.status(ticket["id"]).get("eta_s")
        except ReproError:
            etas[ticket["id"]] = None
    try:
        warnings = client.logs(level="warning", limit=_MAX_WARNINGS)
    except ReproError:
        warnings = []  # pre-PR-8 servers have no /v1/logs
    return {
        "base_url": client.base_url,
        "time_unix": time.time(),
        "health": health,
        "fleet": fleet,
        "sweeps": sweeps,
        "etas": etas,
        "cache_hit_ratio": (hits / (hits + misses)
                            if hits + misses > 0 else None),
        "warnings": warnings,
        # Federated per-worker jobs, if any worker heartbeated them in.
        "worker_jobs": metrics.get("repro_worker_jobs_total", []),
    }


def _fmt_rate(rate: float) -> str:
    return f"{rate:.3g}" if rate else "-"


def _fmt_eta(eta: Any) -> str:
    if not isinstance(eta, (int, float)):
        return "eta ?"
    return f"eta {eta:.1f}s"


def render_view(view: dict[str, Any]) -> str:
    """Render one :func:`fetch_view` snapshot as a terminal screen."""
    health = view.get("health", {})
    fleet = view.get("fleet", {})
    lines = []
    telem = "on" if health.get("telemetry") else "OFF"
    uptime = health.get("uptime_s")
    uptime_s = f"up {uptime:.0f}s" if isinstance(uptime, (int, float)) \
        else "up ?"
    lines.append(f"repro sweep service — {view.get('base_url', '?')}  "
                 f"[{uptime_s}, telemetry {telem}]")
    ratio = view.get("cache_hit_ratio")
    lines.append(
        f"queue: {health.get('queue_depth', '?')} queued, "
        f"{health.get('jobs_in_flight', '?')} in flight, "
        f"dispatch={'local' if health.get('local_dispatch') else 'fleet'}"
        f"  cache hits: "
        + (f"{100.0 * ratio:.1f}%" if ratio is not None else "n/a"))
    sweeps = view.get("sweeps", [])
    if sweeps:
        etas = view.get("etas", {})
        shown = ", ".join(
            f"{t['id'][:8]} {t.get('done', '?')}/{t.get('total', '?')} "
            f"({_fmt_eta(etas.get(t['id']))})"
            for t in sweeps[:_MAX_SWEEPS])
        extra = len(sweeps) - _MAX_SWEEPS
        lines.append(f"sweeps: {shown}"
                     + (f" (+{extra} more)" if extra > 0 else ""))
    else:
        lines.append("sweeps: none running")
    lines.append("")
    workers = fleet.get("workers", [])
    lines.append(f"{'WORKER':<28} {'LEASES':>6} {'DONE':>6} {'FAIL':>5} "
                 f"{'EXPIRED':>7} {'RATE':>9}  FLAGS")
    if workers:
        for w in workers:
            flags = "SLOW" if w.get("slow") else ""
            lines.append(
                f"{str(w.get('id', '?'))[:28]:<28} "
                f"{w.get('leases_held', 0):>6} "
                f"{w.get('completed', 0):>6} {w.get('failed', 0):>5} "
                f"{w.get('expired', 0):>7} "
                f"{_fmt_rate(float(w.get('rate_ewma') or 0.0)):>9}  "
                f"{flags}")
    else:
        lines.append("  (no workers registered)")
    warnings = view.get("warnings", [])
    lines.append("")
    if warnings:
        lines.append("recent warnings:")
        for record in warnings[-_MAX_WARNINGS:]:
            lines.append("  " + telemetry.format_human(record))
    else:
        lines.append("recent warnings: none")
    return "\n".join(lines) + "\n"


def top(server: str, interval: float = 2.0, once: bool = False,
        out: TextIO | None = None) -> int:
    """Poll and render until interrupted (the CLI entry point).

    ``once=True`` prints a single snapshot and returns (useful in
    scripts and CI smokes); otherwise the screen clears between
    refreshes like its namesake.
    """
    client = ServiceClient(server)
    out = out if out is not None else sys.stdout
    try:
        while True:
            reachable = True
            try:
                screen = render_view(fetch_view(client))
            except ReproError as exc:
                reachable = False
                screen = (f"repro sweep service — {client.base_url}: "
                          f"unreachable ({exc})\n")
            if once:
                out.write(screen)
                return 0 if reachable else 1
            out.write(_CLEAR + screen)
            out.flush()
            time.sleep(max(float(interval), 0.1))
    except KeyboardInterrupt:
        return 0
