"""Pull-based worker fleet over the sweep service's job leases.

:mod:`repro.service` made the engine a shared server; this package
makes it *horizontally scalable*. The scheduler's global deduplicating
queue is claimable over HTTP (``POST /v1/workers/claim`` leases jobs,
heartbeats keep them, ``POST /v1/workers/result`` commits), and
:class:`FleetWorker` is the pull loop that lives on the other end:
claim a batch, execute each job via :func:`repro.engine.execute_job`
on a local thread pool (the solver's LAPACK calls release the GIL),
upload the payloads, repeat until drained or told to stop.

The protocol is crash-safe by leasing, not by trust: a worker that
dies silently simply stops heartbeating, its leases expire, and the
scheduler re-queues the jobs for the next claimant — with a rotated
lease token, so if the "dead" worker comes back and uploads late, the
stale commit is recognized and dropped. Content hashes ride every
lease and are verified on commit, results flow through the exact same
commit path as in-process execution, and the jobs themselves are
deterministic — so a fleet-executed sweep is bit-identical to a local
one no matter how many workers died along the way.

Run a fleet from the CLI::

    repro-experiments serve --fleet --port 8321 --cache-dir ./cache
    repro-experiments worker --server http://host:8321 --concurrency 4
    repro-experiments worker --server http://host:8321 --concurrency 4

Set ``REPRO_SERVICE_TOKEN`` on both ends to require bearer auth on
every mutating endpoint.

Artifact persistence is pluggable on the server side: the result
cache's disk tier speaks :class:`repro.engine.ArtifactStore`
(:class:`~repro.engine.LocalDirStore` by default), so pointing the
fleet's shared cache at a different backend is one constructor
argument, not a cache rewrite.
"""

from ..engine.artifacts import (
    ArtifactEntry,
    ArtifactStore,
    LocalDirStore,
    MemoryStore,
)
from ..service.wire import WorkerClaim, WorkerResult, WorkerTelemetry
from .top import fetch_view, render_view
from .worker import FleetWorker

__all__ = [
    "ArtifactEntry",
    "ArtifactStore",
    "FleetWorker",
    "LocalDirStore",
    "MemoryStore",
    "WorkerClaim",
    "WorkerResult",
    "WorkerTelemetry",
    "fetch_view",
    "render_view",
]
