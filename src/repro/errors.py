"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so downstream
users can catch one base class. Specific subclasses mark which subsystem
rejected the input, which matters in long stochastic sweeps where a single
bad sample must be distinguishable from a configuration mistake.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Invalid user-facing configuration (bad parameter values/combinations)."""


class MeshError(ConfigurationError):
    """Surface mesh construction failed (non-positive spacing, size mismatch...)."""


class ConvergenceError(ReproError):
    """An iterative solver or series summation failed to converge."""


class SolverError(ReproError):
    """The linear system could not be solved (singular/ill-conditioned)."""


class StochasticError(ReproError):
    """Stochastic machinery failure (KL truncation, sparse grid, surrogate)."""
