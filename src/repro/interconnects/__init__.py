"""Interconnect application layer: the "why" of the paper.

Transmission-line (RLGC/ABCD/S-parameter) analysis with
roughness-corrected conductor loss, plus microstrip synthesis, so the
loss-enhancement factor Pr/Ps computed by SWM can be turned into the
insertion-loss numbers designers actually budget.
"""

from .microstrip import Microstrip
from .roughloss import EnhancementTable, extra_loss_db, smooth_factor
from .tline import (
    RLGC,
    abcd_line,
    abcd_to_s,
    cascade,
    constant,
    insertion_loss_db,
    return_loss_db,
)

__all__ = [
    "EnhancementTable",
    "Microstrip",
    "RLGC",
    "abcd_line",
    "abcd_to_s",
    "cascade",
    "constant",
    "extra_loss_db",
    "insertion_loss_db",
    "return_loss_db",
    "smooth_factor",
]
