"""Transmission-line network layer (RLGC -> ABCD -> S-parameters).

This is the application substrate the paper's introduction motivates:
surface roughness matters because it degrades the *insertion loss and
signal integrity of interconnects*. The classes here turn per-unit-length
RLGC profiles (with or without roughness-corrected resistance) into ABCD
chains and S-parameters, so the examples can show eye-level consequences
of the loss-enhancement factor.

Conventions: ``exp(-j*omega*t)`` (consistent with the solvers — note the
propagation factor is then ``exp(+j*gamma_prop*z)`` with our complex
gamma; we use the engineering ``gamma = alpha + j*beta`` and ``exp(-gamma
l)`` forms below, which are convention-independent for loss quantities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigurationError

FrequencyFunction = Callable[[np.ndarray], np.ndarray]


def _as_freqs(frequency_hz: np.ndarray) -> np.ndarray:
    f = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
    if np.any(f <= 0.0):
        raise ConfigurationError("frequencies must be positive")
    return f


@dataclass(frozen=True)
class RLGC:
    """Per-unit-length line parameters as functions of frequency.

    Each attribute is a callable ``f_hz_array -> array`` (constants can
    be wrapped with :func:`constant`). Units: ohm/m, H/m, S/m, F/m.
    """

    resistance: FrequencyFunction
    inductance: FrequencyFunction
    conductance: FrequencyFunction
    capacitance: FrequencyFunction

    def gamma(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Propagation constant ``sqrt((R + jwL)(G + jwC))`` (Re >= 0)."""
        f = _as_freqs(frequency_hz)
        w = 2.0 * math.pi * f
        z = self.resistance(f) + 1j * w * self.inductance(f)
        y = self.conductance(f) + 1j * w * self.capacitance(f)
        g = np.sqrt(z * y)
        return np.where(g.real < 0.0, -g, g)

    def characteristic_impedance(self, frequency_hz: np.ndarray) -> np.ndarray:
        """``Z0 = sqrt((R + jwL)/(G + jwC))``."""
        f = _as_freqs(frequency_hz)
        w = 2.0 * math.pi * f
        z = self.resistance(f) + 1j * w * self.inductance(f)
        y = self.conductance(f) + 1j * w * self.capacitance(f)
        return np.sqrt(z / y)

    def attenuation_np_per_m(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Attenuation constant alpha in nepers/m."""
        return self.gamma(frequency_hz).real

    def attenuation_db_per_m(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Attenuation in dB/m (``20 log10(e) * alpha``)."""
        return self.attenuation_np_per_m(frequency_hz) * (20.0 / math.log(10.0))


def constant(value: float) -> FrequencyFunction:
    """Wrap a constant as a frequency function."""
    def fn(f: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(f, dtype=np.float64), value)
    return fn


def abcd_line(rlgc: RLGC, length_m: float,
              frequency_hz: np.ndarray) -> np.ndarray:
    """ABCD matrices of a uniform line: shape (F, 2, 2) complex.

    ``[[cosh(g l), Z0 sinh(g l)], [sinh(g l)/Z0, cosh(g l)]]``.
    """
    if length_m <= 0.0:
        raise ConfigurationError(f"length must be positive, got {length_m}")
    f = _as_freqs(frequency_hz)
    g = rlgc.gamma(f) * length_m
    z0 = rlgc.characteristic_impedance(f)
    out = np.empty((f.size, 2, 2), dtype=np.complex128)
    ch, sh = np.cosh(g), np.sinh(g)
    out[:, 0, 0] = ch
    out[:, 0, 1] = z0 * sh
    out[:, 1, 0] = sh / z0
    out[:, 1, 1] = ch
    return out


def cascade(*abcd_chains: np.ndarray) -> np.ndarray:
    """Matrix-multiply ABCD chains (same frequency axis)."""
    if not abcd_chains:
        raise ConfigurationError("cascade needs at least one ABCD chain")
    out = abcd_chains[0]
    for nxt in abcd_chains[1:]:
        if nxt.shape != out.shape:
            raise ConfigurationError("ABCD chain shapes differ")
        out = np.einsum("fij,fjk->fik", out, nxt)
    return out


def abcd_to_s(abcd: np.ndarray, z_ref: float = 50.0) -> np.ndarray:
    """Convert ABCD to S-parameters w.r.t. a real reference impedance."""
    if z_ref <= 0.0:
        raise ConfigurationError(f"z_ref must be positive, got {z_ref}")
    a = abcd[:, 0, 0]
    b = abcd[:, 0, 1]
    c = abcd[:, 1, 0]
    d = abcd[:, 1, 1]
    denom = a + b / z_ref + c * z_ref + d
    s = np.empty_like(abcd)
    s[:, 0, 0] = (a + b / z_ref - c * z_ref - d) / denom
    s[:, 0, 1] = 2.0 * (a * d - b * c) / denom
    s[:, 1, 0] = 2.0 / denom
    s[:, 1, 1] = (-a + b / z_ref - c * z_ref + d) / denom
    return s


def insertion_loss_db(s: np.ndarray) -> np.ndarray:
    """``-20 log10 |S21|`` (positive numbers = loss)."""
    mag = np.abs(s[:, 1, 0])
    mag = np.maximum(mag, 1e-300)
    return -20.0 * np.log10(mag)


def return_loss_db(s: np.ndarray) -> np.ndarray:
    """``-20 log10 |S11|``."""
    mag = np.maximum(np.abs(s[:, 0, 0]), 1e-300)
    return -20.0 * np.log10(mag)
