"""Glue between roughness-loss models and transmission-line analysis.

``EnhancementTable`` captures a computed (frequency, Pr/Ps) curve — from
SWM, SPM2, HBM, Huray or the empirical formula — as an interpolable
roughness factor ``K(f)`` that the RLGC layer multiplies into the AC
resistance. This is the "interconnect-aware design methodology" loop the
paper's introduction describes: extract the surface statistics, simulate
Pr/Ps once, then reuse it across line lengths and stackups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class EnhancementTable:
    """Piecewise-linear roughness factor K(f) from sampled values.

    Extrapolation holds the end values (K is monotone and saturating in
    practice, so constant extension is the conservative choice).
    """

    frequencies_hz: np.ndarray
    factors: np.ndarray

    def __post_init__(self) -> None:
        f = np.asarray(self.frequencies_hz, dtype=np.float64)
        k = np.asarray(self.factors, dtype=np.float64)
        if f.ndim != 1 or f.shape != k.shape or f.size < 2:
            raise ConfigurationError(
                "need matching 1D frequency/factor arrays with >= 2 points"
            )
        if np.any(np.diff(f) <= 0.0):
            raise ConfigurationError("frequencies must be strictly increasing")
        if np.any(f <= 0.0):
            raise ConfigurationError("frequencies must be positive")
        if np.any(k <= 0.0):
            raise ConfigurationError("enhancement factors must be positive")
        object.__setattr__(self, "frequencies_hz", f)
        object.__setattr__(self, "factors", k)

    def __call__(self, frequency_hz: np.ndarray) -> np.ndarray:
        f = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
        return np.interp(f, self.frequencies_hz, self.factors)


def smooth_factor() -> Callable[[np.ndarray], np.ndarray]:
    """The K(f) = 1 reference (perfectly smooth conductor)."""
    def fn(f: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(f, dtype=np.float64))
    return fn


def extra_loss_db(insertion_loss_rough_db: np.ndarray,
                  insertion_loss_smooth_db: np.ndarray) -> np.ndarray:
    """Roughness-induced extra insertion loss (dB), elementwise."""
    a = np.asarray(insertion_loss_rough_db, dtype=np.float64)
    b = np.asarray(insertion_loss_smooth_db, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigurationError("loss arrays must have the same shape")
    return a - b
