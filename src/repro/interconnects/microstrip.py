"""Microstrip line models (Hammerstad-Jensen) with skin-effect resistance.

Synthesizes the smooth-conductor RLGC profile of a PCB microstrip from
geometry + materials, so the roughness layer can scale its resistance.
Standard formulas:

- effective permittivity and Z0: Hammerstad-Jensen;
- conductor resistance: DC floor + ``Rs / w`` skin crowding (wide-strip
  approximation with a current-crowding factor for w/h < 2);
- dielectric conductance from the loss tangent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import C_0, EPS_0, MU_0
from ..errors import ConfigurationError
from ..materials import Conductor
from .tline import RLGC


@dataclass(frozen=True)
class Microstrip:
    """Microstrip geometry/material description (SI units).

    Attributes
    ----------
    width_m / height_m / thickness_m:
        Trace width, substrate height, trace (copper) thickness.
    eps_r:
        Substrate relative permittivity.
    loss_tangent:
        Substrate loss tangent.
    conductor:
        Trace conductor material.
    """

    width_m: float
    height_m: float
    thickness_m: float = 35e-6
    eps_r: float = 4.1
    loss_tangent: float = 0.02
    conductor: Conductor = Conductor()

    def __post_init__(self) -> None:
        if min(self.width_m, self.height_m, self.thickness_m) <= 0.0:
            raise ConfigurationError("microstrip dimensions must be positive")
        if self.eps_r < 1.0:
            raise ConfigurationError(f"eps_r must be >= 1, got {self.eps_r}")
        if self.loss_tangent < 0.0:
            raise ConfigurationError("loss tangent must be >= 0")

    # -- Hammerstad-Jensen statics ---------------------------------------

    def effective_permittivity(self) -> float:
        """Quasi-static effective permittivity."""
        u = self.width_m / self.height_m
        a = (1.0 + (1.0 / 49.0) * math.log((u ** 4 + (u / 52.0) ** 2)
                                           / (u ** 4 + 0.432))
             + (1.0 / 18.7) * math.log(1.0 + (u / 18.1) ** 3))
        b = 0.564 * ((self.eps_r - 0.9) / (self.eps_r + 3.0)) ** 0.053
        return (0.5 * (self.eps_r + 1.0)
                + 0.5 * (self.eps_r - 1.0) * (1.0 + 10.0 / u) ** (-a * b))

    def characteristic_impedance(self) -> float:
        """Quasi-static Z0 (ohm)."""
        u = self.width_m / self.height_m
        eps_eff = self.effective_permittivity()
        fu = 6.0 + (2.0 * math.pi - 6.0) * math.exp(-((30.666 / u) ** 0.7528))
        z01 = (376.730313668 / (2.0 * math.pi)) * math.log(
            fu / u + math.sqrt(1.0 + (2.0 / u) ** 2))
        return z01 / math.sqrt(eps_eff)

    # -- RLGC synthesis ---------------------------------------------------

    def inductance_per_m(self) -> float:
        """L from Z0 and phase velocity: ``L = Z0 sqrt(eps_eff) / c``."""
        return self.characteristic_impedance() * math.sqrt(
            self.effective_permittivity()) / C_0

    def capacitance_per_m(self) -> float:
        """C from Z0 and phase velocity: ``C = sqrt(eps_eff) / (Z0 c)``."""
        return math.sqrt(self.effective_permittivity()) / (
            self.characteristic_impedance() * C_0)

    def resistance_per_m(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Skin-effect resistance with a DC floor.

        ``R_ac = Rs / w * Kc`` with a crowding factor
        ``Kc = 1 + (2/pi) atan(1.4 (t/h)^...)`` simplified to the common
        ``1 + 2h/(pi w)`` ground-return correction; combined with the DC
        resistance as ``sqrt(R_dc^2 + R_ac^2)`` for a smooth transition.
        """
        f = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
        if np.any(f <= 0.0):
            raise ConfigurationError("frequencies must be positive")
        rho = self.conductor.resistivity
        r_dc = rho / (self.width_m * self.thickness_m)
        rs = np.sqrt(math.pi * f * MU_0 * self.conductor.mu_r * rho)
        crowding = 1.0 + 2.0 * self.height_m / (math.pi * self.width_m)
        r_ac = rs / self.width_m * crowding
        return np.sqrt(r_dc ** 2 + r_ac ** 2)

    def conductance_per_m(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Dielectric loss: ``G = omega C tan(delta) * filling``."""
        f = np.atleast_1d(np.asarray(frequency_hz, dtype=np.float64))
        w = 2.0 * math.pi * f
        eps_eff = self.effective_permittivity()
        # Filling-factor-corrected effective loss tangent.
        q = ((eps_eff - 1.0) * self.eps_r) / ((self.eps_r - 1.0) * eps_eff) \
            if self.eps_r > 1.0 else 1.0
        return w * self.capacitance_per_m() * self.loss_tangent * q

    def rlgc(self, roughness_factor=None) -> RLGC:
        """Build the RLGC profile, optionally with a roughness factor.

        ``roughness_factor`` is a callable ``f -> K(f)`` multiplying the
        *AC part* of the conductor resistance (the paper's Pr/Ps).
        """
        def resistance(f: np.ndarray) -> np.ndarray:
            r = self.resistance_per_m(f)
            if roughness_factor is None:
                return r
            k = np.asarray(roughness_factor(f), dtype=np.float64)
            return r * k

        lum = self.inductance_per_m()
        cap = self.capacitance_per_m()
        return RLGC(
            resistance=resistance,
            inductance=lambda f: np.full_like(
                np.asarray(f, dtype=np.float64), lum),
            conductance=self.conductance_per_m,
            capacitance=lambda f: np.full_like(
                np.asarray(f, dtype=np.float64), cap),
        )
