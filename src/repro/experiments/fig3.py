"""Fig. 3 — SWM vs SPM2 vs empirical formula, Gaussian CF.

Paper setting: sigma = 1 um fixed, eta in {1, 2, 3} um, f = 0-9 GHz.
Expected shape (what :func:`run` checks):

- every curve rises with frequency from ~1;
- smaller eta (rougher surface) => higher loss at fixed f;
- SWM tracks SPM2 closely for the smoothest case (eta = 3 um) and
  deviates increasingly as eta shrinks (SPM2 overshoots for strong
  roughness in this scalar setting);
- the empirical eq. (1) is a single curve for all eta (it only sees
  sigma), lying between the family members.
"""

from __future__ import annotations

import numpy as np

from ..constants import GHZ, UM
from ..core import StochasticLossConfig, StochasticLossModel
from ..models.empirical import hammerstad_enhancement
from ..models.spm2 import spm2_enhancement
from ..surfaces import GaussianCorrelation
from .base import ExperimentResult
from .presets import QUICK, Scale

ETAS_UM = (1.0, 2.0, 3.0)


#: Agreement tolerance on |SWM - SPM2| for the smoothest case (eta = 3 um),
#: per scale: coarse grids bias the SWM mean low.
_SMOOTH_TOL = {"quick": 0.25, "standard": 0.17, "paper": 0.12}


def run(scale: Scale = QUICK, sigma_um: float = 1.0) -> ExperimentResult:
    freqs = np.linspace(1.0, scale.f_max_ghz, scale.n_frequencies) * GHZ
    result = ExperimentResult(
        experiment="Fig. 3",
        description=(f"SWM vs SPM2 vs empirical, Gaussian CF, "
                     f"sigma={sigma_um}um, eta={ETAS_UM}um "
                     f"(scale {scale.name}, M<={scale.max_modes})"),
        x_label="f (GHz)",
        x=freqs / GHZ,
    )

    swm_curves: dict[float, np.ndarray] = {}
    spm_curves: dict[float, np.ndarray] = {}
    for eta in ETAS_UM:
        cf = GaussianCorrelation(sigma=sigma_um * UM, eta=eta * UM)
        n = scale.points_for(5.0 * eta, eta, scale.f_max_hz)
        model = StochasticLossModel(
            cf, StochasticLossConfig(points_per_side=n,
                                     max_modes=scale.max_modes))
        swm = model.mean_enhancement(freqs, order=1)
        spm = spm2_enhancement(freqs, cf)
        swm_curves[eta] = swm
        spm_curves[eta] = spm
        result.add_series(f"SWM(eta={eta:g}um)", swm)
        result.add_series(f"SPM2(eta={eta:g}um)", spm)
        result.notes.append(f"eta={eta:g}um: {n}x{n} grid")

    emp = hammerstad_enhancement(freqs, sigma_um * UM)
    result.add_series("Empirical", emp)

    # Shape checks mirroring the paper's reading of the figure. The
    # eta = 3 um curve's rise (~1.13 -> 1.21 in truth) is within the
    # discretization bias of sub-paper grids, so the rise check covers
    # eta = 1, 2 um and the eta = 3 um curve only has to stay sane.
    result.check("swm_rises_with_f", all(
        swm_curves[eta][-1] > swm_curves[eta][0] for eta in (1.0, 2.0)))
    result.check("eta3_not_collapsing", bool(
        np.all(swm_curves[3.0] > 0.95)))
    result.check("rougher_is_lossier_swm", bool(
        np.all(swm_curves[1.0] >= swm_curves[2.0] - 0.02)
        and np.all(swm_curves[2.0] >= swm_curves[3.0] - 0.02)))
    dev = {eta: float(np.max(np.abs(swm_curves[eta] - spm_curves[eta])))
           for eta in ETAS_UM}
    result.check("smooth_case_agrees",
                 dev[3.0] < _SMOOTH_TOL.get(scale.name, 0.25))
    result.check("deviation_grows_with_roughness",
                 dev[1.0] > dev[3.0])
    result.check("empirical_single_curve_between", bool(
        np.all(emp <= np.maximum(swm_curves[1.0], spm_curves[1.0]) + 0.05)))
    result.notes.append(
        "max |SWM-SPM2|: " + ", ".join(
            f"eta={e:g}: {dev[e]:.3f}" for e in ETAS_UM))
    return result
