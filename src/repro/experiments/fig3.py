"""Fig. 3 — SWM vs SPM2 vs empirical formula, Gaussian CF.

Paper setting: sigma = 1 um fixed, eta in {1, 2, 3} um, f = 0-9 GHz.
Expected shape (what the checks encode):

- every curve rises with frequency from ~1;
- smaller eta (rougher surface) => higher loss at fixed f;
- SWM tracks SPM2 closely for the smoothest case (eta = 3 um) and
  deviates increasingly as eta shrinks (SPM2 overshoots for strong
  roughness in this scalar setting);
- the empirical eq. (1) is a single curve for all eta (it only sees
  sigma), lying between the family members.

The whole figure is one :class:`~repro.engine.SweepSpec` — three
stochastic scenarios (one per eta) x the frequency grid x the order-1
SSCM estimator — so all curves parallelize together and replay from the
content-addressed cache point by point.
"""

from __future__ import annotations

import numpy as np

from ..constants import GHZ, UM
from ..core import StochasticLossConfig
from ..models.empirical import hammerstad_enhancement
from ..models.spm2 import spm2_enhancement
from ..surfaces import GaussianCorrelation
from .base import Experiment, ExperimentResult, warn_deprecated_run
from .presets import QUICK, Scale
from .registry import register

ETAS_UM = (1.0, 2.0, 3.0)


#: Agreement tolerance on |SWM - SPM2| for the smoothest case (eta = 3 um),
#: per scale: coarse grids bias the SWM mean low.
_SMOOTH_TOL = {"quick": 0.25, "standard": 0.17, "paper": 0.12}


@register
class Fig3GaussianFamily(Experiment):
    """SWM/SPM2/empirical comparison across the Gaussian-CF family."""

    name = "fig3"
    title = "Fig. 3"

    def __init__(self, sigma_um: float = 1.0) -> None:
        self.sigma_um = sigma_um

    def _frequencies_hz(self, scale: Scale) -> np.ndarray:
        return scale.frequency_grid_hz()

    def _grid_points(self, scale: Scale, eta: float) -> int:
        return scale.points_for(5.0 * eta, eta, scale.f_max_hz)

    @staticmethod
    def _scenario_name(eta: float) -> str:
        return f"eta{eta:g}um"

    def plan(self, scale: Scale):
        from ..engine import EstimatorSpec, StochasticScenario, SweepSpec

        scenarios = []
        for eta in ETAS_UM:
            cf = GaussianCorrelation(sigma=self.sigma_um * UM, eta=eta * UM)
            n = self._grid_points(scale, eta)
            scenarios.append(StochasticScenario(
                self._scenario_name(eta), cf,
                StochasticLossConfig(points_per_side=n,
                                     max_modes=scale.max_modes)))
        return SweepSpec(
            scenarios=scenarios,
            frequencies_hz=self._frequencies_hz(scale),
            estimators=EstimatorSpec(kind="sscm", order=1),
            tags={"experiment": self.name, "scale": scale.name})

    def reduce(self, sweep, scale: Scale) -> ExperimentResult:
        freqs = self._frequencies_hz(scale)
        sigma_um = self.sigma_um
        result = ExperimentResult(
            experiment=self.title,
            description=(f"SWM vs SPM2 vs empirical, Gaussian CF, "
                         f"sigma={sigma_um}um, eta={ETAS_UM}um "
                         f"(scale {scale.name}, M<={scale.max_modes})"),
            x_label="f (GHz)",
            x=freqs / GHZ,
        )

        swm_curves: dict[float, np.ndarray] = {}
        spm_curves: dict[float, np.ndarray] = {}
        for eta in ETAS_UM:
            cf = GaussianCorrelation(sigma=sigma_um * UM, eta=eta * UM)
            swm = sweep.mean_curve(self._scenario_name(eta))
            spm = spm2_enhancement(freqs, cf)
            swm_curves[eta] = swm
            spm_curves[eta] = spm
            result.add_series(f"SWM(eta={eta:g}um)", swm)
            result.add_series(f"SPM2(eta={eta:g}um)", spm)
            n = self._grid_points(scale, eta)
            result.notes.append(f"eta={eta:g}um: {n}x{n} grid")

        emp = hammerstad_enhancement(freqs, sigma_um * UM)
        result.add_series("Empirical", emp)

        # Shape checks mirroring the paper's reading of the figure. The
        # eta = 3 um curve's rise (~1.13 -> 1.21 in truth) is within the
        # discretization bias of sub-paper grids, so the rise check covers
        # eta = 1, 2 um and the eta = 3 um curve only has to stay sane.
        result.check("swm_rises_with_f", all(
            swm_curves[eta][-1] > swm_curves[eta][0] for eta in (1.0, 2.0)))
        result.check("eta3_not_collapsing", bool(
            np.all(swm_curves[3.0] > 0.95)))
        result.check("rougher_is_lossier_swm", bool(
            np.all(swm_curves[1.0] >= swm_curves[2.0] - 0.02)
            and np.all(swm_curves[2.0] >= swm_curves[3.0] - 0.02)))
        dev = {eta: float(np.max(np.abs(swm_curves[eta] - spm_curves[eta])))
               for eta in ETAS_UM}
        result.check("smooth_case_agrees",
                     dev[3.0] < _SMOOTH_TOL.get(scale.name, 0.25))
        result.check("deviation_grows_with_roughness",
                     dev[1.0] > dev[3.0])
        result.check("empirical_single_curve_between", bool(
            np.all(emp <= np.maximum(swm_curves[1.0],
                                     spm_curves[1.0]) + 0.05)))
        result.notes.append(
            "max |SWM-SPM2|: " + ", ".join(
                f"eta={e:g}: {dev[e]:.3f}" for e in ETAS_UM))
        return result


def run(scale: Scale = QUICK, sigma_um: float = 1.0) -> ExperimentResult:
    """Deprecated shim: use ``repro.api.run("fig3", scale=...)``."""
    warn_deprecated_run("fig3")
    return Fig3GaussianFamily(sigma_um=sigma_um).run(scale)
