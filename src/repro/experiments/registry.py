"""Discoverable registry of the paper's experiments.

Each figure/table module registers its :class:`~.base.Experiment`
subclass with the :func:`register` decorator; consumers (the
:mod:`repro.api` facade, the CLI runner, tests) look experiments up by
name instead of importing figure modules directly. This replaces the
old hand-maintained ``ALL_EXPERIMENTS`` dict — registration lives next
to the experiment it describes, so adding a figure is one decorator,
not an edit in two files.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import Experiment

_REGISTRY: dict[str, type[Experiment]] = {}


def register(cls: type[Experiment]) -> type[Experiment]:
    """Class decorator registering an Experiment under ``cls.name``."""
    if not isinstance(cls, type) or not issubclass(cls, Experiment):
        raise ConfigurationError(
            f"@register expects an Experiment subclass, got {cls!r}"
        )
    name = cls.name
    if not name:
        raise ConfigurationError(
            f"{cls.__name__} must set a non-empty 'name' to be registered"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"experiment name {name!r} already registered by "
            f"{existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def names() -> list[str]:
    """Registered experiment names, sorted."""
    return sorted(_REGISTRY)


def get_class(name: str) -> type[Experiment]:
    """The registered Experiment class for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r} (choose from {names()})"
        ) from None


def create(name: str, **params) -> Experiment:
    """A fresh default-parameter instance (``params`` override)."""
    return get_class(name)(**params)
