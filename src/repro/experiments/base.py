"""Common result container and table formatting for experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExperimentResult:
    """A reproduced table/figure: named series over a shared x-axis.

    ``series`` maps a legend label to a 1D array aligned with ``x``.
    ``checks`` collects named boolean shape assertions (the qualitative
    claims the paper's figure makes), so benches can both print the data
    and verify the story.
    """

    experiment: str
    description: str
    x_label: str
    x: np.ndarray
    series: dict[str, np.ndarray] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, label: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.x.shape:
            raise ValueError(
                f"series {label!r} shape {values.shape} does not match "
                f"x shape {self.x.shape}"
            )
        self.series[label] = values

    def check(self, name: str, passed: bool) -> None:
        self.checks[name] = bool(passed)

    def all_checks_pass(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def format_table(self, float_fmt: str = "{:8.4f}") -> str:
        """Render the series as a fixed-width text table (paper-style)."""
        labels = list(self.series)
        header = f"{self.x_label:>12} | " + " | ".join(
            f"{lab:>18}" for lab in labels)
        lines = [self.experiment, self.description, "-" * len(header), header,
                 "-" * len(header)]
        for i, xv in enumerate(self.x):
            row = f"{xv:12.4g} | " + " | ".join(
                f"{float_fmt.format(self.series[lab][i]):>18}"
                for lab in labels)
            lines.append(row)
        lines.append("-" * len(header))
        for name, ok in self.checks.items():
            lines.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
