"""Experiment abstraction: declarative plan/reduce over the sweep engine.

An :class:`Experiment` is one figure/table of the paper expressed as

- ``plan(scale) -> SweepSpec | None`` — every solver-backed point of the
  figure (all scenarios x frequencies x estimators) as **one**
  declarative spec, so the engine can run a whole figure (or, via
  :func:`repro.engine.run_batch`, the whole figure set) as a single
  parallel, content-addressed job stream. Experiments with no SWM
  solves (Fig. 2's statistics round trip, Table I's counts) return
  ``None``.
- ``reduce(sweep, scale) -> ExperimentResult`` — series assembly from
  the executed sweep plus the closed-form baselines and the qualitative
  checks encoding the figure's claims. Reduction is cheap and
  deterministic: it performs no solver calls, so a cached sweep replays
  the entire figure for free.

:class:`ExperimentResult` is the common output container; it renders as
a paper-style text table and serializes to JSON for machine-readable
artifacts.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..engine import ResultCache, SweepResult, SweepSpec
    from ..engine.executors import Executor, ProgressFn
    from .presets import Scale


@dataclass
class ExperimentResult:
    """A reproduced table/figure: named series over a shared x-axis.

    ``series`` maps a legend label to a 1D array aligned with ``x``.
    ``checks`` collects named boolean shape assertions (the qualitative
    claims the paper's figure makes), so benches can both print the data
    and verify the story.
    """

    experiment: str
    description: str
    x_label: str
    x: np.ndarray
    series: dict[str, np.ndarray] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, label: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.x.shape:
            raise ValueError(
                f"series {label!r} shape {values.shape} does not match "
                f"x shape {self.x.shape}"
            )
        self.series[label] = values

    def check(self, name: str, passed: bool) -> None:
        self.checks[name] = bool(passed)

    def all_checks_pass(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def failing_checks(self) -> list[str]:
        """Names of the checks that failed, in insertion order."""
        return [name for name, ok in self.checks.items() if not ok]

    def to_dict(self) -> dict:
        """JSON-ready dict of the full result (arrays become lists)."""
        return {
            "experiment": self.experiment,
            "description": self.description,
            "x_label": self.x_label,
            "x": np.asarray(self.x, dtype=np.float64).tolist(),
            "series": {label: np.asarray(values, dtype=np.float64).tolist()
                       for label, values in self.series.items()},
            "checks": dict(self.checks),
            "all_checks_pass": self.all_checks_pass(),
            "notes": list(self.notes),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The result as a JSON document (machine-readable artifact)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format_table(self, float_fmt: str = "{:8.4f}") -> str:
        """Render the series as a fixed-width text table (paper-style)."""
        labels = list(self.series)
        header = f"{self.x_label:>12} | " + " | ".join(
            f"{lab:>18}" for lab in labels)
        lines = [self.experiment, self.description, "-" * len(header), header,
                 "-" * len(header)]
        for i, xv in enumerate(self.x):
            row = f"{xv:12.4g} | " + " | ".join(
                f"{float_fmt.format(self.series[lab][i]):>18}"
                for lab in labels)
            lines.append(row)
        lines.append("-" * len(header))
        for name, ok in self.checks.items():
            lines.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


class Experiment(ABC):
    """One paper figure/table as a declarative plan/reduce pair.

    Subclasses set ``name`` (the registry key, e.g. ``"fig3"``) and
    ``title`` (the paper label, e.g. ``"Fig. 3"``); constructor
    parameters capture the physics knobs the old module-level ``run``
    signatures exposed, so non-default variants stay expressible.
    """

    #: registry key (``repro.api.run(name)``)
    name: str = ""
    #: paper label for tables/logs
    title: str = ""

    @abstractmethod
    def plan(self, scale: Scale) -> SweepSpec | None:
        """Every solver-backed point of the figure as one spec.

        Returns ``None`` for experiments with no SWM solves.
        """

    @abstractmethod
    def reduce(self, sweep: SweepResult | None, scale: Scale
               ) -> ExperimentResult:
        """Assemble series/checks from an executed sweep (no solves)."""

    def run(self, scale: Scale | str | None = None,
            executor: Executor | None = None,
            cache: ResultCache | None = None,
            progress: ProgressFn | None = None) -> ExperimentResult:
        """plan -> run_sweep -> reduce under the active engine policy."""
        from ..engine import run_sweep
        from .presets import resolve_scale

        scale = resolve_scale(scale)
        spec = self.plan(scale)
        sweep = None
        if spec is not None:
            sweep = run_sweep(spec, executor=executor, cache=cache,
                              progress=progress)
        return self.reduce(sweep, scale)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def warn_deprecated_run(name: str) -> None:
    """Deprecation notice emitted by the module-level ``run()`` shims."""
    import warnings

    warnings.warn(
        f"repro.experiments.{name}.run() is deprecated; use "
        f"repro.api.run({name!r}, scale=...) instead",
        DeprecationWarning, stacklevel=3)
