"""Reproductions of every figure and table in the paper's evaluation.

Each module defines a declarative :class:`~.base.Experiment` —
``plan(scale) -> SweepSpec`` (every solver-backed point of the figure as
one engine spec) and ``reduce(sweep, scale) -> ExperimentResult``
(series assembly + qualitative checks) — registered by name in
:mod:`.registry`. Drive them through the :mod:`repro.api` facade::

    import repro.api
    result = repro.api.run("fig3", scale="quick", jobs=4)

========  =====================================================
name      paper content
========  =====================================================
fig2      simulated 3D Gaussian rough surface (+ statistics round trip)
fig3      SWM vs SPM2 vs empirical, Gaussian CF, eta = 1, 2, 3 um
fig4      SWM vs SPM2, extracted CF eq. (12)
fig5      SWM vs HBM, half-spheroid boss
fig6      3D SWM vs 2D SWM
fig7      CDF of Pr/Ps: MC vs 1st/2nd-order SSCM
table1    sampling-point counts: MC vs sparse-grid SSCM
========  =====================================================

The module-level ``run(scale)`` functions are kept as deprecation
shims, and ``ALL_EXPERIMENTS`` remains as a deprecated view over them;
new code should use the registry (:func:`registry.names`,
:func:`registry.create`) or :mod:`repro.api`.
"""

from . import fig2, fig3, fig4, fig5, fig6, fig7, registry, table1
from .base import Experiment, ExperimentResult
from .presets import (
    PAPER,
    QUICK,
    SCALES,
    STANDARD,
    Scale,
    resolve_scale,
    scale_from_env,
)

#: Deprecated: name -> module-level ``run`` shim. Use
#: :func:`registry.create`/:mod:`repro.api` instead.
ALL_EXPERIMENTS = {
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table1": table1.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "PAPER",
    "QUICK",
    "SCALES",
    "STANDARD",
    "Scale",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "registry",
    "resolve_scale",
    "scale_from_env",
    "table1",
]
