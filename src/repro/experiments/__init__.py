"""Reproductions of every figure and table in the paper's evaluation.

Each module exposes ``run(scale) -> ExperimentResult`` with the paper's
parameters baked in and shape checks encoding the figure's claims.

========  =====================================================
module    paper content
========  =====================================================
fig2      simulated 3D Gaussian rough surface (+ statistics round trip)
fig3      SWM vs SPM2 vs empirical, Gaussian CF, eta = 1, 2, 3 um
fig4      SWM vs SPM2, extracted CF eq. (12)
fig5      SWM vs HBM, half-spheroid boss
fig6      3D SWM vs 2D SWM
fig7      CDF of Pr/Ps: MC vs 1st/2nd-order SSCM
table1    sampling-point counts: MC vs sparse-grid SSCM
========  =====================================================
"""

from . import fig2, fig3, fig4, fig5, fig6, fig7, table1
from .base import ExperimentResult
from .presets import PAPER, QUICK, STANDARD, Scale, scale_from_env

ALL_EXPERIMENTS = {
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table1": table1.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "PAPER",
    "QUICK",
    "STANDARD",
    "Scale",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "scale_from_env",
    "table1",
]
