"""Fig. 5 — SWM vs HBM for a single conducting half-spheroid.

Paper setting: half-spheroid with height 5.8 um, base diameter 9.4 um
(from Hall et al. [5]); f = 1-20 GHz (skin depth small against the
protrusion). Expected shape:

- both SWM and HBM show a strong enhancement, rising with frequency;
- SWM tracks HBM (the reference in this regime) within tens of percent,
  from below;
- SPM2 (fed the boss's equivalent sigma/slope) is far outside its valid
  range here and disagrees strongly with both — the paper's closing
  remark on this figure.

Two documented substitutions (see DESIGN.md section 5):

1. *Similarity transform.* The paper meshes at delta/5, which at 20 GHz
   needs >200 points per side — far beyond a dense pure-Python solve.
   Because the two-medium problem is scale-invariant up to O(k1*L) ~ 1e-3
   corrections, we simulate a 4x smaller boss at 16x higher frequency
   (verified to 1e-4 relative in the tests) and report against the
   original frequency axis. This buys a 4x finer effective mesh.
2. *Resolution-limited band.* Even scaled, the skin depth inside the
   boss must stay >= ~2.2 grid steps for the absorbed power to be
   trustworthy; the sweep is truncated at that frequency and the note
   records it. The tile size L (the paper leaves it unspecified) sets
   the absolute level of both SWM and HBM identically; we use 12 um.

The plan is one :class:`~repro.engine.DeterministicScenario` swept over
the *similarity-scaled* frequencies; ``reduce`` reports the curve back
on the original axis.
"""

from __future__ import annotations

import numpy as np

from ..constants import COPPER_RESISTIVITY, GHZ, UM
from ..models.hbm import HemisphericalBossModel
from ..models.spm2 import spm2_enhancement
from ..surfaces import GaussianCorrelation
from ..surfaces.deterministic import half_spheroid
from ..surfaces.statistics import rms_slope_2d
from .base import Experiment, ExperimentResult, warn_deprecated_run
from .presets import QUICK, Scale
from .registry import register

HEIGHT_UM = 5.8
BASE_DIAMETER_UM = 9.4
PATCH_UM = 12.0
#: geometric down-scaling of the simulated system (frequencies scale by
#: the square): verified exact to O(k1 L) by the integration tests.
SIMILARITY = 4.0
#: minimum skin-depth-per-grid-step ratio for a trustworthy boss solve.
MIN_DELTA_PER_STEP = 2.2


def _resolution_limited_f_max_ghz(n: int) -> float:
    """Largest original-axis frequency the scaled mesh resolves."""
    step_um = (PATCH_UM / SIMILARITY) / n
    # delta_sim(f_orig) = skin_depth(f_orig * SIMILARITY^2); require
    # delta_sim >= MIN_DELTA_PER_STEP * step.
    target_delta_m = MIN_DELTA_PER_STEP * step_um * UM
    # delta = sqrt(rho / (pi f mu)) => f = rho / (pi mu delta^2)
    f_sim = COPPER_RESISTIVITY / (np.pi * 4e-7 * np.pi * target_delta_m ** 2)
    return float(f_sim / SIMILARITY ** 2 / GHZ)


@register
class Fig5SpheroidBoss(Experiment):
    """SWM vs HBM vs (out-of-regime) SPM2 on the half-spheroid boss."""

    name = "fig5"
    title = "Fig. 5"

    def _band(self, scale: Scale) -> tuple[int, float, np.ndarray]:
        """(grid n, truncated f_top_ghz, original-axis frequencies)."""
        n = scale.spheroid_grid_n
        f_top = min(scale.fig5_f_max_ghz, _resolution_limited_f_max_ghz(n))
        f_top = max(f_top, 2.0)
        return n, f_top, scale.frequency_grid_hz(1.0, f_top)

    def plan(self, scale: Scale):
        from ..engine import DeterministicScenario, SweepSpec

        n, _, freqs = self._band(scale)
        patch_sim_um = PATCH_UM / SIMILARITY
        heights_sim_um = half_spheroid(n, patch_sim_um,
                                       HEIGHT_UM / SIMILARITY,
                                       BASE_DIAMETER_UM / SIMILARITY)
        scenario = DeterministicScenario(
            "spheroid", heights_sim_um * UM, patch_sim_um * UM)
        return SweepSpec(
            scenarios=scenario,
            frequencies_hz=freqs * SIMILARITY ** 2,
            tags={"experiment": self.name, "scale": scale.name,
                  "similarity": SIMILARITY})

    def reduce(self, sweep, scale: Scale) -> ExperimentResult:
        n, f_top, freqs = self._band(scale)
        swm = sweep.mean_curve("spheroid")

        hbm_model = HemisphericalBossModel(
            height_m=HEIGHT_UM * UM,
            base_diameter_m=BASE_DIAMETER_UM * UM,
            tile_area_m2=(PATCH_UM * UM) ** 2,
        )
        hbm = hbm_model.enhancement(freqs)

        # SPM2 fed the boss's equivalent statistics (same RMS height and
        # slope): far outside its small-roughness regime.
        heights_full = half_spheroid(n, PATCH_UM, HEIGHT_UM,
                                     BASE_DIAMETER_UM)
        sigma_eq = float(np.sqrt(np.mean(heights_full ** 2))) * UM
        slope_eq = rms_slope_2d(heights_full, PATCH_UM)
        eta_eq = 2.0 * sigma_eq / max(slope_eq, 0.5)
        spm = spm2_enhancement(freqs, GaussianCorrelation(sigma_eq, eta_eq))

        result = ExperimentResult(
            experiment=self.title,
            description=(f"SWM vs HBM, half-spheroid h={HEIGHT_UM}um, "
                         f"d={BASE_DIAMETER_UM}um on {PATCH_UM}um tile; "
                         f"similarity-scaled mesh {n}x{n}, "
                         f"band 1-{f_top:.1f} GHz"),
            x_label="f (GHz)",
            x=freqs / GHZ,
        )
        result.add_series("SWM", swm)
        result.add_series("HBM", hbm)
        result.add_series("SPM2(equiv)", spm)

        result.check("hbm_rises", bool(hbm[-1] > hbm[0]))
        result.check("swm_rises", bool(swm[-1] > swm[0] - 0.02))
        result.check("strong_enhancement", bool(
            np.all(hbm[1:] > 1.25) and np.all(swm > 1.25)))
        gap = np.abs(swm - hbm) / hbm
        result.check("swm_tracks_hbm", float(np.max(gap)) < 0.35)
        result.check("swm_below_hbm", bool(np.all(swm <= hbm + 0.05)))
        # SPM2's prediction diverges from the in-regime reference at the
        # top of the band — it cannot be trusted for large roughness.
        result.check("spm2_out_of_regime",
                     bool(abs(spm[-1] - swm[-1]) > 0.25
                          or abs(spm[-1] - hbm[-1]) > 0.25))
        result.notes.append(
            f"SWM/HBM relative gap: max {np.max(gap):.3f}")
        result.notes.append(
            f"band truncated at {f_top:.1f} GHz by the delta >= "
            f"{MIN_DELTA_PER_STEP} dx mesh rule (paper: delta/5 meshing)")
        result.notes.append(
            f"SPM2 equivalent surface: sigma={sigma_eq / UM:.2f}um, "
            f"eta={eta_eq / UM:.2f}um (sigma ~ eta: out of SPM2's regime)")
        return result


def run(scale: Scale = QUICK) -> ExperimentResult:
    """Deprecated shim: use ``repro.api.run("fig5", scale=...)``."""
    warn_deprecated_run("fig5")
    return Fig5SpheroidBoss().run(scale)
