"""Command-line runner for the paper-experiment reproductions.

Usage::

    python -m repro.experiments.runner             # run everything, quick
    python -m repro.experiments.runner fig3 fig7   # selected experiments
    python -m repro.experiments.runner --scale standard table1

Prints each experiment's series table (the data behind the paper's
figure) and the pass/fail status of its qualitative checks; exits
non-zero if any check fails.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings

from . import ALL_EXPERIMENTS
from .presets import PAPER, QUICK, STANDARD

_SCALES = {"quick": QUICK, "standard": STANDARD, "paper": PAPER}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*sorted(ALL_EXPERIMENTS), []],
                        help="experiments to run (default: all)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(_SCALES),
                        help="execution scale (default: quick)")
    args = parser.parse_args(argv)

    names = args.experiments or sorted(ALL_EXPERIMENTS)
    scale = _SCALES[args.scale]

    all_pass = True
    for name in names:
        runner = ALL_EXPERIMENTS[name]
        start = time.time()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = runner(scale)
        elapsed = time.time() - start
        print(result.format_table())
        print(f"[{name}: {elapsed:.1f} s at scale {scale.name!r}]")
        print()
        all_pass = all_pass and result.all_checks_pass()
    if not all_pass:
        print("SOME CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
