"""Command-line runner for the paper-experiment reproductions.

Usage::

    python -m repro.experiments.runner             # run everything, quick
    python -m repro.experiments.runner fig3 fig7   # selected experiments
    python -m repro.experiments.runner --scale standard table1
    python -m repro.experiments.runner --list      # available experiments
    python -m repro.experiments.runner --jobs 4 --cache-dir ./sweep-cache
    python -m repro.experiments.runner --format json --output results/
    python -m repro.experiments.runner serve --port 8321 --jobs 4
    python -m repro.experiments.runner worker --server http://host:8321
    python -m repro.experiments.runner top --server http://host:8321

A thin argument-parsing layer over :mod:`repro.api`: the selected
experiments execute as **one merged engine batch**
(:func:`repro.api.run_many`), so ``--jobs N`` parallelizes across the
whole figure set and ``--cache-dir`` replays every previously computed
point. ``--format table`` (default) prints each experiment's
paper-style series table; ``--format json`` prints one machine-readable
document; ``--output DIR`` additionally writes one ``<name>.json``
artifact per experiment. Exits non-zero if any qualitative check fails,
with a stderr summary naming each failing check per experiment.

The ``serve`` subcommand runs the async sweep service instead
(:mod:`repro.service`): a long-lived HTTP server that accepts wire
``SweepSpec`` documents, answers cached points immediately, and
streams NDJSON progress — see the README's "Running as a service".
With ``--fleet`` the server stops executing jobs itself and only hands
them out as leases; the ``worker`` subcommand (:mod:`repro.fleet`)
runs the matching pull worker — see "Scaling out with workers". The
``top`` subcommand is a polling terminal dashboard over a running
service's observability endpoints (queue depth, per-worker rates,
straggler flags, cache hit ratio, recent warnings).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

from ..errors import ConfigurationError
from . import registry
from .presets import SCALES


def _serve_main(argv: list[str]) -> int:
    """``repro-experiments serve ...`` — run the async sweep service."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Serve sweeps over HTTP (async job queue, "
                    "content-addressed cache, NDJSON progress).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port (default: 8321; 0 = ephemeral)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per dispatch round "
                             "(default: 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persistent result-cache directory (also "
                             "the /v1/jobs/<hash> artifact store)")
    parser.add_argument("--max-disk-bytes", type=int, default=None,
                        metavar="B",
                        help="disk-cache budget; least-recently-used "
                             "artifacts are evicted beyond it")
    parser.add_argument("--fleet", action="store_true",
                        help="do not execute jobs in-process; only hand "
                             "them out as leases to pull workers "
                             "('repro-experiments worker')")
    parser.add_argument("--token", default=None, metavar="TOKEN",
                        help="require this bearer token on mutating "
                             "endpoints (default: $REPRO_SERVICE_TOKEN "
                             "if set)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    from ..service.server import serve

    try:
        return serve(host=args.host, port=args.port, jobs=args.jobs,
                     cache_dir=args.cache_dir,
                     max_disk_bytes=args.max_disk_bytes,
                     quiet=not args.verbose, fleet=args.fleet,
                     token=args.token)
    except ConfigurationError as exc:
        parser.error(str(exc))


def _worker_main(argv: list[str]) -> int:
    """``repro-experiments worker ...`` — run a fleet pull worker."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments worker",
        description="Pull-based fleet worker: claim leased jobs from a "
                    "sweep service, execute them locally, upload the "
                    "results. SIGTERM/SIGINT drain gracefully.")
    parser.add_argument("--server", required=True, metavar="URL",
                        help="sweep-service base URL, e.g. "
                             "http://127.0.0.1:8321")
    parser.add_argument("--concurrency", type=int, default=1, metavar="N",
                        help="jobs executed at once (default: 1)")
    parser.add_argument("--worker-id", default=None, metavar="ID",
                        help="stable worker id (default: host-pid-rand)")
    parser.add_argument("--lease-s", type=float, default=30.0, metavar="S",
                        help="lease duration per claim (default: 30)")
    parser.add_argument("--token", default=None, metavar="TOKEN",
                        help="bearer token for the server (default: "
                             "$REPRO_SERVICE_TOKEN if set)")
    parser.add_argument("--exit-when-idle", action="store_true",
                        help="exit once the queue is drained instead of "
                             "polling forever")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-claim progress on stderr")
    parser.add_argument("--log-json", action="store_true",
                        help="emit worker progress as JSON lines instead "
                             "of human-readable stderr text")
    args = parser.parse_args(argv)
    if args.concurrency < 1:
        parser.error(f"--concurrency must be >= 1, got {args.concurrency}")
    if args.lease_s <= 0:
        parser.error(f"--lease-s must be > 0, got {args.lease_s}")

    import signal

    from .. import telemetry
    from ..fleet import FleetWorker
    from ..service.client import ServiceClient

    # Workers record solver spans so traces ride the uploaded payloads
    # back to the server's NDJSON stream.
    telemetry.enable()
    try:
        worker = FleetWorker(
            ServiceClient(args.server, token=args.token),
            worker_id=args.worker_id, concurrency=args.concurrency,
            lease_s=args.lease_s, exit_when_idle=args.exit_when_idle,
            quiet=args.quiet, log_json=args.log_json)
    except ConfigurationError as exc:
        parser.error(str(exc))

    def _drain(signum, frame):  # noqa: ARG001 — signal API
        worker.stop()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    stats = worker.run()
    print(f"[worker {worker.worker_id}] "
          + ", ".join(f"{k}={v}" for k, v in stats.items()))
    return 0


def _top_main(argv: list[str]) -> int:
    """``repro-experiments top ...`` — live fleet dashboard."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments top",
        description="Polling terminal dashboard for a running sweep "
                    "service: queue depth, per-worker throughput and "
                    "straggler flags, cache hit ratio, recent warnings.")
    parser.add_argument("--server", required=True, metavar="URL",
                        help="sweep-service base URL, e.g. "
                             "http://127.0.0.1:8321")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="refresh period in seconds (default: 2)")
    parser.add_argument("--once", action="store_true",
                        help="print a single snapshot and exit (no "
                             "screen clearing; script/CI friendly)")
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error(f"--interval must be > 0, got {args.interval}")

    from ..fleet.top import top

    return top(args.server, interval=args.interval, once=args.once)


def _format_phase_table(stats: dict[str, dict]) -> str:
    """Per-phase profile table from :func:`repro.telemetry.phase_stats`.

    Sorted by total time so the dominant phase reads first; the share
    column is of the *summed* span time (phases nest — ``job`` contains
    ``assemble``/``factor`` — so shares can exceed 100 together).
    """
    if not stats:
        return "[profile] no spans recorded"
    rows = sorted(stats.items(), key=lambda kv: kv[1]["total_s"],
                  reverse=True)
    top = max(r["total_s"] for _, r in rows) or 1.0
    lines = [f"{'phase':<16} {'calls':>8} {'total s':>10} "
             f"{'mean ms':>10} {'share':>7}",
             "-" * 55]
    for name, r in rows:
        lines.append(
            f"{name:<16} {r['count']:>8d} {r['total_s']:>10.3f} "
            f"{1e3 * r['mean_s']:>10.3f} {100.0 * r['total_s'] / top:>6.1f}%")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "lint":
        # The invariant linter (lock discipline, hash purity, wire
        # compat, kernel numerics); see `repro-experiments lint --help`.
        from ..analysis.cli import main as _lint_main
        return _lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures "
                    "(or 'serve' them over HTTP: see "
                    "'repro-experiments serve --help').")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiments to run (default: all; "
                             "see --list)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES),
                        help="execution scale (default: quick)")
    parser.add_argument("--list", action="store_true", dest="list_",
                        help="list available experiments and exit")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep engine "
                             "(default: 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persistent result-cache directory "
                             "(re-runs replay cached sweep points)")
    parser.add_argument("--format", default="table",
                        choices=("table", "json"), dest="format_",
                        help="stdout format (default: table)")
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="write one machine-readable <name>.json "
                             "per experiment into DIR")
    parser.add_argument("--profile", action="store_true",
                        help="enable telemetry and print a per-phase "
                             "breakdown (assemble/factor/power/...) "
                             "after the run")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="enable telemetry and write the run's "
                             "spans as Chrome trace JSON "
                             "(chrome://tracing, Perfetto)")
    args = parser.parse_args(argv)

    if args.list_:
        for name in registry.names():
            print(name)
        return 0

    unknown = sorted(set(args.experiments) - set(registry.names()))
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(registry.names())})")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    from ..engine import ResultCache

    cache = None
    if args.cache_dir is not None:
        try:
            cache = ResultCache(disk_dir=args.cache_dir)
        except ConfigurationError as exc:
            parser.error(f"--cache-dir: {exc}")

    output_dir = None
    if args.output is not None:
        output_dir = Path(args.output)
        try:
            output_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            parser.error(f"--output: cannot create {output_dir}: {exc}")

    from .. import api, telemetry

    trace_out = None
    if args.trace_out is not None:
        trace_out = Path(args.trace_out)
        if trace_out.parent and not trace_out.parent.is_dir():
            try:
                trace_out.parent.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                parser.error(f"--trace-out: cannot create "
                             f"{trace_out.parent}: {exc}")
    if args.profile or trace_out is not None:
        telemetry.enable()

    # Repeated names on the command line would recompute nothing (the
    # engine dedups the jobs) but run_many rejects duplicates, so fold
    # them here, first occurrence wins.
    names = list(dict.fromkeys(args.experiments)) or registry.names()
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        results = api.run_many(names, scale=args.scale, jobs=args.jobs,
                               cache=cache)
    elapsed = time.perf_counter() - start

    if args.format_ == "json":
        print(json.dumps({name: result.to_dict()
                          for name, result in results.items()}, indent=2))
    else:
        for name, result in results.items():
            print(result.format_table())
            print()
        print(f"[{len(results)} experiment(s) at scale {args.scale!r} "
              f"in {elapsed:.1f} s, jobs={args.jobs}]")

    if output_dir is not None:
        for name, result in results.items():
            (output_dir / f"{name}.json").write_text(result.to_json(),
                                                     encoding="utf-8")

    if args.profile:
        print()
        print(_format_phase_table(telemetry.phase_stats()))
    if trace_out is not None:
        trace_out.write_text(json.dumps(telemetry.chrome_trace()),
                             encoding="utf-8")
        print(f"[trace] wrote {trace_out}", file=sys.stderr)

    failed = {name: result.failing_checks()
              for name, result in results.items()
              if not result.all_checks_pass()}
    if failed:
        for name, checks in failed.items():
            print(f"{name}: failing check(s): {', '.join(checks)}",
                  file=sys.stderr)
        print("SOME CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
