"""Command-line runner for the paper-experiment reproductions.

Usage::

    python -m repro.experiments.runner             # run everything, quick
    python -m repro.experiments.runner fig3 fig7   # selected experiments
    python -m repro.experiments.runner --scale standard table1
    python -m repro.experiments.runner --list      # available experiments
    python -m repro.experiments.runner --jobs 4 --cache-dir ./sweep-cache

Prints each experiment's series table (the data behind the paper's
figure) and the pass/fail status of its qualitative checks; exits
non-zero if any check fails. ``--jobs``/``--cache-dir`` scope an
engine session, so every sweep inside the experiments runs on a process
pool and/or replays from a persistent result cache.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings

from . import ALL_EXPERIMENTS
from .presets import PAPER, QUICK, STANDARD

_SCALES = {"quick": QUICK, "standard": STANDARD, "paper": PAPER}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiments to run (default: all; "
                             "see --list)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(_SCALES),
                        help="execution scale (default: quick)")
    parser.add_argument("--list", action="store_true", dest="list_",
                        help="list available experiments and exit")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep engine "
                             "(default: 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persistent result-cache directory "
                             "(re-runs replay cached sweep points)")
    args = parser.parse_args(argv)

    if args.list_:
        for name in sorted(ALL_EXPERIMENTS):
            print(name)
        return 0

    unknown = sorted(set(args.experiments) - set(ALL_EXPERIMENTS))
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(ALL_EXPERIMENTS))})")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    names = args.experiments or sorted(ALL_EXPERIMENTS)
    scale = _SCALES[args.scale]

    from ..engine import ResultCache, engine_session
    from ..errors import ConfigurationError

    cache = None
    if args.cache_dir is not None:
        try:
            cache = ResultCache(disk_dir=args.cache_dir)
        except ConfigurationError as exc:
            parser.error(f"--cache-dir: {exc}")

    all_pass = True
    with engine_session(n_jobs=args.jobs, cache=cache):
        for name in names:
            runner = ALL_EXPERIMENTS[name]
            start = time.time()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = runner(scale)
            elapsed = time.time() - start
            print(result.format_table())
            print(f"[{name}: {elapsed:.1f} s at scale {scale.name!r}]")
            print()
            all_pass = all_pass and result.all_checks_pass()
    if not all_pass:
        print("SOME CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
