"""Execution scales for the paper-experiment reproductions.

Every experiment can run at three scales:

- ``QUICK`` — minutes-scale, for benchmarks and CI; coarser mesh, fewer
  frequencies/samples, and a reduced top frequency so the mesh still
  resolves the skin depth. Preserves the qualitative shape (who wins,
  what rises, what crosses).
- ``STANDARD`` — the default for EXPERIMENTS.md numbers.
- ``PAPER`` — the paper's own discretization (step eta/8, 5000-sample
  MC, full frequency ranges); hours-scale in pure Python.

The mesh for a stochastic experiment is chosen per correlation length:
the grid step must resolve both the surface (``ref / spacing_divisor``)
and the conductor skin depth at the top frequency (``0.85 delta``), so
the point count *grows* with the patch size L = 5 eta. ``grid_cap``
bounds the cost; when it binds, the result is discretization-limited and
the experiment notes say so.

Select via the ``REPRO_SCALE`` environment variable (``quick`` /
``standard`` / ``paper``) or pass a :class:`Scale` explicitly.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from ..constants import COPPER_RESISTIVITY, GHZ
from ..errors import ConfigurationError
from ..materials import skin_depth


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for runtime."""

    name: str
    #: baseline grid points per side (used when no finer need arises)
    grid_n: int
    #: surface-resolution divisor: target step = correlation_length / this
    spacing_divisor: float
    #: hard cap on points per side (cost control)
    grid_cap: int
    #: top frequency for the random-surface sweeps (Figs. 3, 4, 6) [GHz]
    f_max_ghz: float
    #: grid for the deterministic Fig. 5 spheroid patch
    spheroid_grid_n: int
    #: top frequency for Fig. 5 [GHz]
    fig5_f_max_ghz: float
    #: number of frequency points per sweep
    n_frequencies: int
    #: retained KL modes cap
    max_modes: int
    #: Monte-Carlo sample count (Fig. 7 reference)
    mc_samples: int
    #: SSCM surrogate sampling for CDFs
    surrogate_samples: int

    def __post_init__(self) -> None:
        if self.grid_n < 4 or self.spheroid_grid_n < 4:
            raise ConfigurationError("grids must be >= 4 points per side")
        if self.n_frequencies < 2:
            raise ConfigurationError("need >= 2 frequency points")
        if self.mc_samples < 8:
            raise ConfigurationError("need >= 8 MC samples")
        if self.spacing_divisor <= 0 or self.grid_cap < self.grid_n:
            raise ConfigurationError("invalid spacing/cap configuration")

    def points_for(self, period_um: float, ref_um: float,
                   f_max_hz: float | None = None) -> int:
        """Grid points per side resolving surface and skin depth.

        ``step = min(ref / spacing_divisor, 0.85 * delta(f_max))``,
        clipped to ``[grid_n, grid_cap]``.
        """
        step = ref_um / self.spacing_divisor
        if f_max_hz is not None:
            delta_um = skin_depth(f_max_hz, COPPER_RESISTIVITY) * 1e6
            step = min(step, 0.85 * delta_um)
        n = int(math.ceil(period_um / step))
        return int(min(max(n, self.grid_n), self.grid_cap))

    def frequency_grid_hz(self, f_min_ghz: float = 1.0,
                          f_max_ghz: float | None = None) -> np.ndarray:
        """The sweep's frequency points [Hz].

        Defaults to the paper's band (1 GHz up to this scale's top);
        experiments with their own band pass explicit endpoints.
        """
        top = self.f_max_ghz if f_max_ghz is None else f_max_ghz
        return np.linspace(f_min_ghz, top, self.n_frequencies) * GHZ

    @property
    def f_max_hz(self) -> float:
        return self.f_max_ghz * GHZ

    @property
    def fig5_f_max_hz(self) -> float:
        return self.fig5_f_max_ghz * GHZ


QUICK = Scale(name="quick", grid_n=10, spacing_divisor=4.0, grid_cap=22,
              f_max_ghz=5.0, spheroid_grid_n=24, fig5_f_max_ghz=6.0,
              n_frequencies=4, max_modes=8, mc_samples=24,
              surrogate_samples=20000)

STANDARD = Scale(name="standard", grid_n=14, spacing_divisor=6.0,
                 grid_cap=30, f_max_ghz=8.0, spheroid_grid_n=32,
                 fig5_f_max_ghz=12.0, n_frequencies=6, max_modes=16,
                 mc_samples=150, surrogate_samples=100000)

PAPER = Scale(name="paper", grid_n=20, spacing_divisor=8.0, grid_cap=48,
              f_max_ghz=9.0, spheroid_grid_n=48, fig5_f_max_ghz=20.0,
              n_frequencies=9, max_modes=16, mc_samples=5000,
              surrogate_samples=100000)

#: Name -> preset mapping (the CLI's ``--scale`` choices).
SCALES = {"quick": QUICK, "standard": STANDARD, "paper": PAPER}


def resolve_scale(scale: Scale | str | None) -> Scale:
    """Coerce a scale name (or ``None``) to a :class:`Scale` instance.

    Accepts a :class:`Scale` (returned as-is), one of the preset names,
    or ``None`` (meaning :data:`QUICK`). This is what lets the
    :mod:`repro.api` facade take ``scale="standard"`` strings.
    """
    if scale is None:
        return QUICK
    if isinstance(scale, Scale):
        return scale
    name = str(scale).lower()
    if name not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}; use one of {sorted(SCALES)} "
            "or pass a Scale instance"
        )
    return SCALES[name]


def scale_from_env(default: Scale = QUICK) -> Scale:
    """Read the scale from ``REPRO_SCALE`` (defaults to ``quick``)."""
    name = os.environ.get("REPRO_SCALE", default.name).lower()
    if name not in SCALES:
        raise ConfigurationError(
            f"unknown REPRO_SCALE {name!r}; use one of {sorted(SCALES)}"
        )
    return SCALES[name]
