"""Fig. 6 — 3D SWM vs 2D SWM (Gaussian CF, sigma = 1 um, eta = 1, 2 um).

The paper's point (after Gu et al. [8]): a genuinely 3D rough surface
absorbs markedly more than a 2D (y-uniform, ridged) surface with the same
sigma and eta — so 2D roughness models systematically underestimate the
loss.

We reproduce this two ways:

1. *Closed form.* The scalar SPM2 derived in :mod:`repro.models.spm2`
   evaluated with the 2D spectrum (3D surface) and the 1D spectrum
   (y-uniform surface). The 3D > 2D ordering is exact here and is the
   robust check at every scale.
2. *BEM.* SSCM means from the 3D solver vs Monte-Carlo means from the 2D
   solver. The 2D solver converges much faster in the grid step than the
   3D one, so at reduced scales the raw 3D mean is biased low and can sit
   *below* the converged 2D curve; the ordering check on the BEM pair is
   therefore enforced only at the ``paper`` scale (step = eta/8, the
   paper's own mesh). The notes record the bias.
"""

from __future__ import annotations

import numpy as np

from ..constants import GHZ, UM
from ..core import StochasticLossConfig, StochasticLossModel
from ..materials import PAPER_SYSTEM
from ..models.spm2 import spm2_enhancement, spm2_enhancement_profile
from ..stochastic.montecarlo import MonteCarloEstimator
from ..surfaces import GaussianCorrelation, ProfileGenerator
from ..swm.solver2d import SWMSolver2D
from .base import ExperimentResult
from .presets import QUICK, Scale

ETAS_UM = (1.0, 2.0)


def _mean_2d(cf_um: GaussianCorrelation, period_um: float, n: int,
             freqs: np.ndarray, n_samples: int, seed: int) -> np.ndarray:
    """Ensemble-mean 2D SWM enhancement over the frequency sweep."""
    gen = ProfileGenerator(cf_um, period=period_um, n=n, normalize=True)
    solver = SWMSolver2D(PAPER_SYSTEM)
    out = np.empty(freqs.shape)
    for i, f in enumerate(freqs):
        def model(xi: np.ndarray) -> float:
            profile = gen.from_white_noise(xi)
            return solver.solve_um(profile, period_um, float(f)).enhancement
        est = MonteCarloEstimator(model, dimension=n)
        out[i] = est.run(n_samples, seed=seed).mean
    return out


def run(scale: Scale = QUICK, sigma_um: float = 1.0) -> ExperimentResult:
    freqs = np.linspace(1.0, scale.f_max_ghz, scale.n_frequencies) * GHZ
    n_samples_2d = max(16, scale.mc_samples // 2)

    result = ExperimentResult(
        experiment="Fig. 6",
        description=(f"3D SWM vs 2D SWM, Gaussian CF, sigma={sigma_um}um, "
                     f"eta={ETAS_UM}um (scale {scale.name})"),
        x_label="f (GHz)",
        x=freqs / GHZ,
    )

    bem3: dict[float, np.ndarray] = {}
    bem2: dict[float, np.ndarray] = {}
    spm3: dict[float, np.ndarray] = {}
    spm1: dict[float, np.ndarray] = {}
    for eta in ETAS_UM:
        cf_si = GaussianCorrelation(sigma=sigma_um * UM, eta=eta * UM)
        n3 = scale.points_for(5.0 * eta, eta, scale.f_max_hz)
        model3 = StochasticLossModel(
            cf_si, StochasticLossConfig(points_per_side=n3,
                                        max_modes=scale.max_modes))
        bem3[eta] = model3.mean_enhancement(freqs, order=1)
        cf_um = GaussianCorrelation(sigma=sigma_um, eta=eta)
        n2d = max(96, 8 * n3)
        bem2[eta] = _mean_2d(cf_um, 5.0 * eta, n2d, freqs,
                             n_samples_2d, seed=2009)
        spm3[eta] = spm2_enhancement(freqs, cf_si)
        spm1[eta] = spm2_enhancement_profile(freqs, cf_si)
        result.add_series(f"3D SWM(eta={eta:g}um)", bem3[eta])
        result.add_series(f"2D SWM(eta={eta:g}um)", bem2[eta])
        result.add_series(f"3D SPM2(eta={eta:g}um)", spm3[eta])
        result.add_series(f"2D SPM2(eta={eta:g}um)", spm1[eta])
        result.notes.append(f"eta={eta:g}um: 3D {n3}x{n3}, 2D n={n2d}")

    # The dimensionality claim, robust at every scale (closed form).
    for eta in ETAS_UM:
        result.check(f"spm2_3d_above_2d_eta{eta:g}",
                     bool(np.all(spm3[eta] > spm1[eta])))
    result.check("bem_curves_rise", all(
        bem3[e][-1] > bem3[e][0] - 0.02 and bem2[e][-1] > bem2[e][0]
        for e in ETAS_UM))
    # BEM ordering only where the 3D mesh is at the paper's resolution.
    if scale.name == "paper":
        for eta in ETAS_UM:
            result.check(f"bem_3d_above_2d_eta{eta:g}", bool(
                np.all(bem3[eta][1:] >= bem2[eta][1:] - 0.03)))
    else:
        result.notes.append(
            "BEM 3D-vs-2D ordering not asserted at this scale: the 3D "
            "solver needs the paper's eta/8 mesh to converge, while the "
            "2D solver is already converged (see DESIGN.md)")
    gap = {e: float(np.mean(bem3[e] - bem2[e])) for e in ETAS_UM}
    result.notes.append("mean BEM 3D-2D gap: " + ", ".join(
        f"eta={e:g}: {gap[e]:+.3f}" for e in ETAS_UM))
    return result
