"""Fig. 6 — 3D SWM vs 2D SWM (Gaussian CF, sigma = 1 um, eta = 1, 2 um).

The paper's point (after Gu et al. [8]): a genuinely 3D rough surface
absorbs markedly more than a 2D (y-uniform, ridged) surface with the same
sigma and eta — so 2D roughness models systematically underestimate the
loss.

We reproduce this two ways:

1. *Closed form.* The scalar SPM2 derived in :mod:`repro.models.spm2`
   evaluated with the 2D spectrum (3D surface) and the 1D spectrum
   (y-uniform surface). The 3D > 2D ordering is exact here and is the
   robust check at every scale.
2. *BEM.* SSCM means from the 3D solver vs Monte-Carlo means from the 2D
   solver. The 2D solver converges much faster in the grid step than the
   3D one, so at reduced scales the raw 3D mean is biased low and can sit
   *below* the converged 2D curve; the ordering check on the BEM pair is
   therefore enforced only at the ``paper`` scale (step = eta/8, the
   paper's own mesh). The notes record the bias.

The BEM halves are one heterogeneous sweep: 3D
:class:`~repro.engine.StochasticScenario` rows under the SSCM estimator
and 2D :class:`~repro.engine.ProfileScenario` rows under seeded
Monte-Carlo, paired via the spec's ``estimator_map``.
"""

from __future__ import annotations

import numpy as np

from ..constants import GHZ, UM
from ..core import StochasticLossConfig
from ..models.spm2 import spm2_enhancement, spm2_enhancement_profile
from ..surfaces import GaussianCorrelation
from .base import Experiment, ExperimentResult, warn_deprecated_run
from .presets import QUICK, Scale
from .registry import register

ETAS_UM = (1.0, 2.0)

_2D_SEED = 2009


@register
class Fig6Dimensionality(Experiment):
    """3D-vs-2D roughness comparison (BEM pair + closed-form pair)."""

    name = "fig6"
    title = "Fig. 6"

    def __init__(self, sigma_um: float = 1.0) -> None:
        self.sigma_um = sigma_um

    def _frequencies_hz(self, scale: Scale) -> np.ndarray:
        return scale.frequency_grid_hz()

    def _grids(self, scale: Scale, eta: float) -> tuple[int, int]:
        """(3D points per side, 2D profile points) for one eta."""
        n3 = scale.points_for(5.0 * eta, eta, scale.f_max_hz)
        return n3, max(96, 8 * n3)

    def plan(self, scale: Scale):
        from ..engine import (
            EstimatorSpec,
            ProfileScenario,
            StochasticScenario,
            SweepSpec,
        )

        n_samples_2d = max(16, scale.mc_samples // 2)
        scenarios = []
        estimator_map = {}
        for eta in ETAS_UM:
            n3, n2d = self._grids(scale, eta)
            cf_si = GaussianCorrelation(sigma=self.sigma_um * UM,
                                        eta=eta * UM)
            scenarios.append(StochasticScenario(
                f"bem3-eta{eta:g}um", cf_si,
                StochasticLossConfig(points_per_side=n3,
                                     max_modes=scale.max_modes)))
            cf_um = GaussianCorrelation(sigma=self.sigma_um, eta=eta)
            scenarios.append(ProfileScenario(
                f"bem2-eta{eta:g}um", cf_um, period_um=5.0 * eta, n=n2d,
                normalize=True))
            estimator_map[f"bem2-eta{eta:g}um"] = EstimatorSpec(
                kind="montecarlo", n_samples=n_samples_2d, seed=_2D_SEED)
        return SweepSpec(
            scenarios=scenarios,
            frequencies_hz=self._frequencies_hz(scale),
            estimators=EstimatorSpec(kind="sscm", order=1),
            estimator_map=estimator_map,
            tags={"experiment": self.name, "scale": scale.name})

    def reduce(self, sweep, scale: Scale) -> ExperimentResult:
        freqs = self._frequencies_hz(scale)
        sigma_um = self.sigma_um
        result = ExperimentResult(
            experiment=self.title,
            description=(f"3D SWM vs 2D SWM, Gaussian CF, "
                         f"sigma={sigma_um}um, eta={ETAS_UM}um "
                         f"(scale {scale.name})"),
            x_label="f (GHz)",
            x=freqs / GHZ,
        )

        bem3: dict[float, np.ndarray] = {}
        bem2: dict[float, np.ndarray] = {}
        spm3: dict[float, np.ndarray] = {}
        spm1: dict[float, np.ndarray] = {}
        for eta in ETAS_UM:
            n3, n2d = self._grids(scale, eta)
            cf_si = GaussianCorrelation(sigma=sigma_um * UM, eta=eta * UM)
            bem3[eta] = sweep.mean_curve(f"bem3-eta{eta:g}um")
            bem2[eta] = sweep.mean_curve(f"bem2-eta{eta:g}um")
            spm3[eta] = spm2_enhancement(freqs, cf_si)
            spm1[eta] = spm2_enhancement_profile(freqs, cf_si)
            result.add_series(f"3D SWM(eta={eta:g}um)", bem3[eta])
            result.add_series(f"2D SWM(eta={eta:g}um)", bem2[eta])
            result.add_series(f"3D SPM2(eta={eta:g}um)", spm3[eta])
            result.add_series(f"2D SPM2(eta={eta:g}um)", spm1[eta])
            result.notes.append(f"eta={eta:g}um: 3D {n3}x{n3}, 2D n={n2d}")

        # The dimensionality claim, robust at every scale (closed form).
        for eta in ETAS_UM:
            result.check(f"spm2_3d_above_2d_eta{eta:g}",
                         bool(np.all(spm3[eta] > spm1[eta])))
        result.check("bem_curves_rise", all(
            bem3[e][-1] > bem3[e][0] - 0.02 and bem2[e][-1] > bem2[e][0]
            for e in ETAS_UM))
        # BEM ordering only where the 3D mesh is at the paper's resolution.
        if scale.name == "paper":
            for eta in ETAS_UM:
                result.check(f"bem_3d_above_2d_eta{eta:g}", bool(
                    np.all(bem3[eta][1:] >= bem2[eta][1:] - 0.03)))
        else:
            result.notes.append(
                "BEM 3D-vs-2D ordering not asserted at this scale: the 3D "
                "solver needs the paper's eta/8 mesh to converge, while the "
                "2D solver is already converged (see DESIGN.md)")
        gap = {e: float(np.mean(bem3[e] - bem2[e])) for e in ETAS_UM}
        result.notes.append("mean BEM 3D-2D gap: " + ", ".join(
            f"eta={e:g}: {gap[e]:+.3f}" for e in ETAS_UM))
        return result


def run(scale: Scale = QUICK, sigma_um: float = 1.0) -> ExperimentResult:
    """Deprecated shim: use ``repro.api.run("fig6", scale=...)``."""
    warn_deprecated_run("fig6")
    return Fig6Dimensionality(sigma_um=sigma_um).run(scale)
