"""Table I — number of sampling points: MC vs 1st/2nd-order SSCM.

Paper values (for its KL truncation):

    CF        | MC   | 1st-SSCM | 2nd-SSCM
    Gaussian  | 5000 | 33       | 345
    eq. (12)  | 5000 | 39       | 462

The level-1 sparse-grid size is ``2M + 1`` (M = retained KL modes), so
the paper's 33/39 imply M = 16 and M = 19. We reproduce the counts from
our own KL truncation of the same correlation functions; level-1 counts
match the ``2M + 1`` law exactly, level-2 counts depend on the 1D-rule
growth (ours: sizes 1, 3, 5 => ``2M^2 + 4M + 1``), so the paper's 345
corresponds to a slightly leaner rule — the order-of-magnitude-vs-MC
story is scale-independent.

Counting sampling points needs the KL truncation but zero SWM solves,
so ``plan`` returns ``None`` and the table is assembled in ``reduce``.
"""

from __future__ import annotations

import numpy as np

from ..constants import UM
from ..core import StochasticLossConfig, StochasticLossModel
from ..stochastic.sparsegrid import smolyak_grid
from ..surfaces import ExtractedCorrelation, GaussianCorrelation
from .base import Experiment, ExperimentResult, warn_deprecated_run
from .presets import QUICK, Scale
from .registry import register

MC_REFERENCE = 5000  # the paper's MC convergence budget


@register
class Table1SamplingCounts(Experiment):
    """Sampling-point economics of SSCM vs Monte-Carlo."""

    name = "table1"
    title = "Table I"

    def plan(self, scale: Scale):
        return None  # KL truncation only: no solver-backed points

    def reduce(self, sweep, scale: Scale) -> ExperimentResult:
        cases = {
            "Gaussian": GaussianCorrelation(sigma=1.0 * UM, eta=1.0 * UM),
            "CF(12)": ExtractedCorrelation(sigma=1.0 * UM, eta1=1.4 * UM,
                                           eta2=0.53 * UM),
        }

        rows = []
        dims = []
        for name, cf in cases.items():
            model = StochasticLossModel(
                cf, StochasticLossConfig(points_per_side=scale.grid_n,
                                         max_modes=scale.max_modes))
            m = model.dimension
            n1 = smolyak_grid(m, 1).n_points
            n2 = smolyak_grid(m, 2).n_points
            rows.append((name, m, MC_REFERENCE, n1, n2,
                         model.kl.captured_fraction))
            dims.append(m)

        result = ExperimentResult(
            experiment=self.title,
            description=(
                "Sampling points: MC vs sparse-grid SSCM "
                f"(KL energy target "
                f"{StochasticLossConfig().energy_fraction:.0%},"
                f" max_modes={scale.max_modes})"),
            x_label="case",
            x=np.arange(len(rows), dtype=np.float64),
        )
        result.add_series("M_kl",
                          np.array([r[1] for r in rows], dtype=float))
        result.add_series("MC", np.array([r[2] for r in rows], dtype=float))
        result.add_series("SSCM_1st",
                          np.array([r[3] for r in rows], dtype=float))
        result.add_series("SSCM_2nd",
                          np.array([r[4] for r in rows], dtype=float))

        for (name, m, mc_n, n1, n2, frac) in rows:
            result.notes.append(
                f"{name}: M={m} (energy {frac:.1%}), MC={mc_n}, "
                f"1st-SSCM={n1}, 2nd-SSCM={n2}")

        result.check("level1_is_2M_plus_1", all(
            r[3] == 2 * r[1] + 1 for r in rows))
        result.check("sscm_orders_of_magnitude_cheaper", all(
            r[3] * 10 <= r[2] and r[4] * 5 <= r[2] for r in rows))
        result.check("extracted_cf_needs_no_fewer_modes",
                     dims[1] >= dims[0])
        return result


def run(scale: Scale = QUICK) -> ExperimentResult:
    """Deprecated shim: use ``repro.api.run("table1", scale=...)``."""
    warn_deprecated_run("table1")
    return Table1SamplingCounts().run(scale)
