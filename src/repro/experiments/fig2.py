"""Fig. 2 — simulated 3D random rough surface (Gaussian CF, sigma=eta=1um).

The paper's figure is a rendering of one realization. The reproducible
content is the *round trip*: synthesize a surface from the target
(sigma, C), then extract (sigma, correlation length, RMS slope) back from
the height map and verify they match. That round trip is exactly the
workflow the paper claims enables "different surface roughness in reality
[to] be reproduced and simulated".

No SWM solves are involved, so :meth:`Fig2SurfaceRoundTrip.plan` returns
``None`` and the whole experiment lives in ``reduce``.
"""

from __future__ import annotations

import numpy as np

from ..surfaces import (
    GaussianCorrelation,
    SurfaceGenerator,
    autocorrelation_2d,
    extract_statistics,
)
from .base import Experiment, ExperimentResult, warn_deprecated_run
from .presets import QUICK, Scale
from .registry import register


@register
class Fig2SurfaceRoundTrip(Experiment):
    """Synthesize surfaces and report recovered statistics vs targets."""

    name = "fig2"
    title = "Fig. 2"

    def __init__(self, sigma_um: float = 1.0, eta_um: float = 1.0,
                 seed: int = 2009, n_realizations: int | None = None
                 ) -> None:
        self.sigma_um = sigma_um
        self.eta_um = eta_um
        self.seed = seed
        self.n_realizations = n_realizations

    def plan(self, scale: Scale):
        return None  # pure surface synthesis: no solver-backed points

    def reduce(self, sweep, scale: Scale) -> ExperimentResult:
        sigma_um, eta_um = self.sigma_um, self.eta_um
        n_real = (self.n_realizations if self.n_realizations is not None
                  else max(8, scale.mc_samples // 4))
        cf_um = GaussianCorrelation(sigma=sigma_um, eta=eta_um)
        period_um = 5.0 * eta_um
        n = max(scale.grid_n, 16)
        gen = SurfaceGenerator(cf_um, period=period_um, n=n, normalize=True)

        rng = np.random.default_rng(self.seed)
        sigmas, etas, slopes = [], [], []
        lags = corr_mean = None
        for _ in range(n_real):
            s = gen.sample(rng)
            st = extract_statistics(s.heights, period_um)
            sigmas.append(st.sigma)
            etas.append(st.correlation_length)
            slopes.append(st.rms_slope)
            lg, corr = autocorrelation_2d(s.heights, period_um)
            if corr_mean is None:
                lags, corr_mean = lg, corr
            else:
                corr_mean = corr_mean + corr
        corr_mean = corr_mean / n_real

        result = ExperimentResult(
            experiment=self.title,
            description=(f"3D Gaussian rough surface, sigma={sigma_um}um, "
                         f"eta={eta_um}um: target vs ensemble-recovered "
                         f"autocorrelation ({n_real} realizations, "
                         f"{n}x{n} grid)"),
            x_label="lag (um)",
            x=lags,
        )
        result.add_series("C_target", cf_um(lags))
        result.add_series("C_recovered", corr_mean)

        sig_mean = float(np.mean(sigmas))
        eta_mean = float(np.mean(etas))
        slope_mean = float(np.mean(slopes))
        target_slope = float(np.sqrt(cf_um.slope_variance_2d()))
        result.notes.append(
            f"sigma: target {sigma_um:.3f}, recovered {sig_mean:.3f}")
        result.notes.append(
            f"eta: target {eta_um:.3f}, recovered {eta_mean:.3f}")
        result.notes.append(
            f"rms slope: target {target_slope:.3f}, "
            f"recovered {slope_mean:.3f}")

        result.check("sigma_recovered",
                     abs(sig_mean - sigma_um) < 0.15 * sigma_um)
        result.check("eta_recovered", abs(eta_mean - eta_um) < 0.25 * eta_um)
        result.check("slope_recovered",
                     abs(slope_mean - target_slope) < 0.25 * target_slope)
        return result


def run(scale: Scale = QUICK, sigma_um: float = 1.0, eta_um: float = 1.0,
        seed: int = 2009, n_realizations: int | None = None
        ) -> ExperimentResult:
    """Deprecated shim: use ``repro.api.run("fig2", scale=...)``."""
    warn_deprecated_run("fig2")
    return Fig2SurfaceRoundTrip(sigma_um=sigma_um, eta_um=eta_um, seed=seed,
                                n_realizations=n_realizations).run(scale)
