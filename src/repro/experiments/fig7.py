"""Fig. 7 — CDF of Pr/Ps: Monte-Carlo vs 1st/2nd-order SSCM.

Paper setting: Gaussian CF with sigma = eta = 1 um, f = 5 GHz; MC with
5000 samples as the reference. Expected shape:

- the 2nd-order SSCM CDF lies on top of the MC CDF;
- the 1st-order SSCM CDF is visibly off (here: the loss factor is nearly
  an even functional of the Gaussian surface, so the order-1 chaos
  surrogate collapses to almost a point mass — a vivid version of the
  paper's "1st SSCM insufficient" message);
- SSCM needs an order of magnitude fewer solver calls than MC (Table I).

All three estimators run against one scenario in one sweep (MC, SSCM-1,
SSCM-2 are three jobs of the same spec); ``reduce`` rebuilds the chaos
surrogates by re-projecting the cached sparse-grid node values — no
solver call happens outside the engine.
"""

from __future__ import annotations

import numpy as np

from ..constants import GHZ, UM
from ..core import StochasticLossConfig
from ..stochastic.montecarlo import MonteCarloResult
from ..stochastic.sscm import reproject_node_values
from ..surfaces import GaussianCorrelation
from .base import Experiment, ExperimentResult, warn_deprecated_run
from .presets import QUICK, Scale
from .registry import register


def _cdf_on_grid(samples: np.ndarray, grid: np.ndarray) -> np.ndarray:
    s = np.sort(np.asarray(samples, dtype=np.float64))
    return np.searchsorted(s, grid, side="right") / s.size


@register
class Fig7LossCDF(Experiment):
    """MC-vs-SSCM distribution comparison at one frequency."""

    name = "fig7"
    title = "Fig. 7"

    def __init__(self, frequency_hz: float = 5.0 * GHZ,
                 seed: int = 2009) -> None:
        self.frequency_hz = frequency_hz
        self.seed = seed

    def _mc_estimator(self, scale: Scale):
        from ..engine import EstimatorSpec

        return EstimatorSpec(kind="montecarlo", n_samples=scale.mc_samples,
                             seed=self.seed)

    def plan(self, scale: Scale):
        from ..engine import EstimatorSpec, StochasticScenario, SweepSpec

        scenario = StochasticScenario(
            "model", GaussianCorrelation(sigma=1.0 * UM, eta=1.0 * UM),
            StochasticLossConfig(points_per_side=scale.grid_n,
                                 max_modes=scale.max_modes))
        return SweepSpec(
            scenarios=scenario,
            frequencies_hz=self.frequency_hz,
            estimators=(self._mc_estimator(scale),
                        EstimatorSpec(kind="sscm", order=1),
                        EstimatorSpec(kind="sscm", order=2)),
            tags={"experiment": self.name, "scale": scale.name})

    def reduce(self, sweep, scale: Scale) -> ExperimentResult:
        from ..engine import EstimatorSpec
        from ..errors import StochasticError

        mc_point = sweep.point("model",
                               estimator=self._mc_estimator(scale).label)
        mc = MonteCarloResult(samples=mc_point.values, seed=self.seed)
        p1 = sweep.point(
            "model", estimator=EstimatorSpec(kind="sscm", order=1).label)
        p2 = sweep.point(
            "model", estimator=EstimatorSpec(kind="sscm", order=2).label)
        # The retained KL dimension M follows from the level-1 sparse
        # grid's exact 2M + 1 size law (Table I). The reprojection
        # below re-checks both node counts against the actual grids, so
        # a changed sparse-grid growth rule fails loudly, but surface
        # the inference explicitly here rather than deep in project().
        dimension = (p1.values.size - 1) // 2
        if p1.values.size != 2 * dimension + 1:
            raise StochasticError(
                f"level-1 node count {p1.values.size} does not follow "
                "the 2M + 1 law; cannot infer the KL dimension"
            )
        ss1 = reproject_node_values(p1.values, dimension, 1)
        ss2 = reproject_node_values(p2.values, dimension, 2)

        lo = min(mc.samples.min(), ss2.mean - 4 * max(ss2.std, 1e-6))
        hi = max(mc.samples.max(), ss2.mean + 4 * max(ss2.std, 1e-6))
        grid = np.linspace(lo, hi, 60)

        f_mc = _cdf_on_grid(mc.samples, grid)
        f_ss1 = _cdf_on_grid(
            ss1.sample_surrogate(scale.surrogate_samples, self.seed), grid)
        f_ss2 = _cdf_on_grid(
            ss2.sample_surrogate(scale.surrogate_samples, self.seed), grid)

        result = ExperimentResult(
            experiment=self.title,
            description=(f"CDF of Pr/Ps at {self.frequency_hz / GHZ:g} GHz, "
                         f"sigma=eta=1um; MC({mc.n_samples}) vs "
                         f"SSCM1({ss1.n_samples} solves) vs "
                         f"SSCM2({ss2.n_samples} solves)"),
            x_label="Pr/Ps",
            x=grid,
        )
        result.add_series(f"MC({mc.n_samples})", f_mc)
        result.add_series("1st SSCM", f_ss1)
        result.add_series("2nd SSCM", f_ss2)

        ks2 = float(np.max(np.abs(f_ss2 - f_mc)))
        ks1 = float(np.max(np.abs(f_ss1 - f_mc)))
        # MC CDF of S samples has KS fluctuation ~ 1.36/sqrt(S) at 95%.
        tol = 2.2 / np.sqrt(mc.n_samples) + 0.06
        result.check("sscm2_matches_mc", ks2 < tol)
        result.check("sscm1_worse_than_sscm2", ks1 >= ks2)
        result.check("means_agree", abs(ss2.mean - mc.mean)
                     < 4 * mc.stderr + 0.02)
        result.check("sscm_cheaper_than_mc", ss2.n_samples < mc.n_samples
                     or mc.n_samples < 200)  # quick scale shrinks MC
        result.notes.append(
            f"means: MC {mc.mean:.4f} +/- {mc.stderr:.4f}, "
            f"SSCM1 {ss1.mean:.4f}, SSCM2 {ss2.mean:.4f}")
        result.notes.append(f"KS distances: SSCM1 {ks1:.3f}, SSCM2 {ks2:.3f}")
        result.notes.append(
            f"std: MC {mc.std:.4f}, SSCM1 {ss1.std:.4f}, SSCM2 {ss2.std:.4f}")
        return result


def run(scale: Scale = QUICK, frequency_hz: float = 5.0 * GHZ,
        seed: int = 2009) -> ExperimentResult:
    """Deprecated shim: use ``repro.api.run("fig7", scale=...)``."""
    warn_deprecated_run("fig7")
    return Fig7LossCDF(frequency_hz=frequency_hz, seed=seed).run(scale)
