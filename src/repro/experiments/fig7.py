"""Fig. 7 — CDF of Pr/Ps: Monte-Carlo vs 1st/2nd-order SSCM.

Paper setting: Gaussian CF with sigma = eta = 1 um, f = 5 GHz; MC with
5000 samples as the reference. Expected shape:

- the 2nd-order SSCM CDF lies on top of the MC CDF;
- the 1st-order SSCM CDF is visibly off (here: the loss factor is nearly
  an even functional of the Gaussian surface, so the order-1 chaos
  surrogate collapses to almost a point mass — a vivid version of the
  paper's "1st SSCM insufficient" message);
- SSCM needs an order of magnitude fewer solver calls than MC (Table I).
"""

from __future__ import annotations

import numpy as np

from ..constants import GHZ, UM
from ..core import StochasticLossConfig, StochasticLossModel
from ..surfaces import GaussianCorrelation
from .base import ExperimentResult
from .presets import QUICK, Scale


def _cdf_on_grid(samples: np.ndarray, grid: np.ndarray) -> np.ndarray:
    s = np.sort(np.asarray(samples, dtype=np.float64))
    return np.searchsorted(s, grid, side="right") / s.size


def run(scale: Scale = QUICK, frequency_hz: float = 5.0 * GHZ,
        seed: int = 2009) -> ExperimentResult:
    cf = GaussianCorrelation(sigma=1.0 * UM, eta=1.0 * UM)
    model = StochasticLossModel(
        cf, StochasticLossConfig(points_per_side=scale.grid_n,
                                 max_modes=scale.max_modes))

    mc = model.montecarlo(frequency_hz, scale.mc_samples, seed=seed)
    ss1 = model.sscm(frequency_hz, order=1)
    ss2 = model.sscm(frequency_hz, order=2)

    lo = min(mc.samples.min(), ss2.mean - 4 * max(ss2.std, 1e-6))
    hi = max(mc.samples.max(), ss2.mean + 4 * max(ss2.std, 1e-6))
    grid = np.linspace(lo, hi, 60)

    f_mc = _cdf_on_grid(mc.samples, grid)
    f_ss1 = _cdf_on_grid(ss1.sample_surrogate(scale.surrogate_samples, seed),
                         grid)
    f_ss2 = _cdf_on_grid(ss2.sample_surrogate(scale.surrogate_samples, seed),
                         grid)

    result = ExperimentResult(
        experiment="Fig. 7",
        description=(f"CDF of Pr/Ps at {frequency_hz / GHZ:g} GHz, "
                     f"sigma=eta=1um; MC({mc.n_samples}) vs "
                     f"SSCM1({ss1.n_samples} solves) vs "
                     f"SSCM2({ss2.n_samples} solves)"),
        x_label="Pr/Ps",
        x=grid,
    )
    result.add_series(f"MC({mc.n_samples})", f_mc)
    result.add_series("1st SSCM", f_ss1)
    result.add_series("2nd SSCM", f_ss2)

    ks2 = float(np.max(np.abs(f_ss2 - f_mc)))
    ks1 = float(np.max(np.abs(f_ss1 - f_mc)))
    # MC CDF of S samples has KS fluctuation ~ 1.36/sqrt(S) at 95%.
    tol = 2.2 / np.sqrt(mc.n_samples) + 0.06
    result.check("sscm2_matches_mc", ks2 < tol)
    result.check("sscm1_worse_than_sscm2", ks1 >= ks2)
    result.check("means_agree", abs(ss2.mean - mc.mean)
                 < 4 * mc.stderr + 0.02)
    result.check("sscm_cheaper_than_mc", ss2.n_samples < mc.n_samples
                 or mc.n_samples < 200)  # quick scale shrinks MC
    result.notes.append(
        f"means: MC {mc.mean:.4f} +/- {mc.stderr:.4f}, "
        f"SSCM1 {ss1.mean:.4f}, SSCM2 {ss2.mean:.4f}")
    result.notes.append(f"KS distances: SSCM1 {ks1:.3f}, SSCM2 {ks2:.3f}")
    result.notes.append(
        f"std: MC {mc.std:.4f}, SSCM1 {ss1.std:.4f}, SSCM2 {ss2.std:.4f}")
    return result
