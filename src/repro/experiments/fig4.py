"""Fig. 4 — SWM vs SPM2 with the measurement-extracted CF of eq. (12).

Paper setting: sigma = 1 um, eta1 = 1.4 um, eta2 = 0.53 um, f = 0.1-10
GHz. This roughness is small (ref. [4] showed SPM2 is accurate here), so
SWM and SPM2 should agree across the band — the paper's second
small-roughness validation.
"""

from __future__ import annotations

import numpy as np

from ..constants import GHZ, UM
from ..core import StochasticLossConfig
from ..models.spm2 import spm2_enhancement
from ..surfaces import ExtractedCorrelation
from .base import Experiment, ExperimentResult, warn_deprecated_run
from .presets import QUICK, Scale
from .registry import register

#: Relative SWM-vs-SPM2 agreement tolerance per scale (coarse grids and
#: aggressive KL truncation bias the SWM mean low).
_AGREE_TOL = {"quick": 0.35, "standard": 0.25, "paper": 0.15}

#: Lowest swept frequency per scale: the paper starts at 0.1 GHz, but at
#: 0.1 GHz the physical excess (~2%) is below the discretization error of
#: sub-paper grids, so the reduced scales start higher.
_F_MIN_GHZ = {"quick": 1.0, "standard": 0.5, "paper": 0.1}


@register
class Fig4ExtractedCF(Experiment):
    """SWM vs SPM2 under the measurement-extracted correlation."""

    name = "fig4"
    title = "Fig. 4"

    def __init__(self, sigma_um: float = 1.0, eta1_um: float = 1.4,
                 eta2_um: float = 0.53) -> None:
        self.sigma_um = sigma_um
        self.eta1_um = eta1_um
        self.eta2_um = eta2_um

    def _correlation(self) -> ExtractedCorrelation:
        return ExtractedCorrelation(sigma=self.sigma_um * UM,
                                    eta1=self.eta1_um * UM,
                                    eta2=self.eta2_um * UM)

    def _frequencies_hz(self, scale: Scale) -> np.ndarray:
        return scale.frequency_grid_hz(_F_MIN_GHZ.get(scale.name, 1.0),
                                       min(10.0, 2.0 * scale.f_max_ghz))

    def _grid_points(self, scale: Scale, f_top_hz: float) -> int:
        ref_um = self._correlation().reference_length / UM
        return scale.points_for(5.0 * ref_um, ref_um, f_top_hz)

    def plan(self, scale: Scale):
        from ..engine import EstimatorSpec, StochasticScenario, SweepSpec

        freqs = self._frequencies_hz(scale)
        n = self._grid_points(scale, float(freqs[-1]))
        scenario = StochasticScenario(
            "extracted", self._correlation(),
            StochasticLossConfig(points_per_side=n,
                                 max_modes=scale.max_modes))
        return SweepSpec(
            scenarios=scenario,
            frequencies_hz=freqs,
            estimators=EstimatorSpec(kind="sscm", order=1),
            tags={"experiment": self.name, "scale": scale.name})

    def reduce(self, sweep, scale: Scale) -> ExperimentResult:
        freqs = self._frequencies_hz(scale)
        n = self._grid_points(scale, float(freqs[-1]))
        cf = self._correlation()
        swm = sweep.mean_curve("extracted")
        spm = spm2_enhancement(freqs, cf)

        result = ExperimentResult(
            experiment=self.title,
            description=(f"SWM vs SPM2, extracted CF eq.(12): "
                         f"sigma={self.sigma_um}um, eta1={self.eta1_um}um, "
                         f"eta2={self.eta2_um}um ({n}x{n} grid)"),
            x_label="f (GHz)",
            x=freqs / GHZ,
        )
        result.add_series("SWM", swm)
        result.add_series("SPM2", spm)

        rel_gap = np.abs(swm - spm) / spm
        result.check("good_agreement",
                     float(np.max(rel_gap)) < _AGREE_TOL.get(scale.name,
                                                             0.35))
        result.check("both_rise", bool(swm[-1] > swm[0] and spm[-1] > spm[0]))
        result.check("enhancement_above_one", bool(
            np.all(swm >= 0.97) and np.all(spm >= 1.0)))
        result.notes.append(
            f"max relative SWM/SPM2 gap: {np.max(rel_gap):.3f}")
        return result


def run(scale: Scale = QUICK, sigma_um: float = 1.0, eta1_um: float = 1.4,
        eta2_um: float = 0.53) -> ExperimentResult:
    """Deprecated shim: use ``repro.api.run("fig4", scale=...)``."""
    warn_deprecated_run("fig4")
    return Fig4ExtractedCF(sigma_um=sigma_um, eta1_um=eta1_um,
                           eta2_um=eta2_um).run(scale)
