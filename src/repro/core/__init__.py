"""High-level pipelines: the paper's methodology end-to-end.

:class:`StochasticLossModel` wires together the pieces exactly as the
paper does: stochastic surface characterization (Section II) -> KL
reduction -> deterministic SWM solves (Section III) -> SSCM or
Monte-Carlo statistics (Section III-D).
"""

from .pipeline import (
    DeterministicLossModel,
    StochasticLossConfig,
    StochasticLossModel,
)

__all__ = [
    "DeterministicLossModel",
    "StochasticLossConfig",
    "StochasticLossModel",
]
