"""End-to-end loss pipelines (surface model -> SWM -> statistics).

This module is the public face of the reproduction: given a correlation
function (in SI meters) it reproduces the paper's methodology —

1. sample/parameterize the doubly-periodic random surface;
2. Karhunen-Loeve-reduce the correlated heights to M independent normals;
3. solve the deterministic SWM problem per sample (kernel tables cached
   per frequency, which is what makes collocation sweeps cheap);
4. compute statistics by SSCM (sparse-grid collocation + Hermite chaos)
   or Monte-Carlo.

The paper's default geometry is used when not overridden: patch period
``L = 5 eta`` and grid step ``eta / 8``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..constants import METER_TO_UM
from ..errors import ConfigurationError
from ..materials import PAPER_SYSTEM, TwoMediumSystem
from ..stochastic.montecarlo import MonteCarloResult
from ..stochastic.sscm import SSCMEstimator, SSCMResult
from ..surfaces.correlation import CorrelationFunction
from ..surfaces.kl import KLExpansion, build_kl
from ..swm.solver import SWMOptions, SWMResult, SWMSolver3D


@dataclass(frozen=True)
class StochasticLossConfig:
    """Geometry/reduction configuration of the stochastic pipeline.

    Lengths are in meters (SI). ``points_per_side = None`` uses the
    paper's ``L / (eta/8)`` with ``L = 5 eta`` => 40, capped at
    ``max_points_per_side`` for tractability (DESIGN.md documents the
    resolution/accuracy trade).
    """

    period_m: float | None = None
    points_per_side: int | None = None
    max_points_per_side: int = 24
    energy_fraction: float = 0.95
    max_modes: int = 20
    #: Project out the constant-offset (DC) covariance mode: a rigid
    #: height shift leaves Pr/Ps unchanged, so spending a stochastic
    #: dimension on it is pure waste (and the paper's surfaces have their
    #: mean plane pinned at f = 0).
    remove_mean_mode: bool = True

    def resolve(self, correlation: CorrelationFunction) -> tuple[float, int]:
        """(period_m, n) for a given correlation function."""
        ref = correlation.reference_length
        period = self.period_m if self.period_m is not None else 5.0 * ref
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if self.points_per_side is not None:
            n = self.points_per_side
        else:
            n = int(round(period / (ref / 8.0)))
            n = min(n, self.max_points_per_side)
        if n < 4:
            raise ConfigurationError(f"resolved grid too small: {n}")
        return float(period), int(n)


class DeterministicLossModel:
    """SWM enhancement of explicit (deterministic) surfaces.

    Thin convenience wrapper around :class:`SWMSolver3D` for the
    deterministic experiments (e.g. the Fig. 5 half-spheroid).
    Frequency sweeps route through :mod:`repro.engine`, so they can run
    on any executor and replay from the result cache.
    """

    def __init__(self, system: TwoMediumSystem = PAPER_SYSTEM,
                 options: SWMOptions | None = None) -> None:
        self.system = system
        self.options = options
        self.solver = SWMSolver3D(system, options)

    def enhancement(self, heights_m: np.ndarray, period_m: float,
                    frequencies_hz: np.ndarray, executor=None, cache=None,
                    progress: Callable[[int, int], None] | None = None
                    ) -> np.ndarray:
        """Pr/Ps over a frequency sweep for one surface."""
        from ..engine import DeterministicScenario, SweepSpec, run_sweep

        spec = SweepSpec(
            scenarios=DeterministicScenario(
                "surface", np.asarray(heights_m, dtype=np.float64),
                float(period_m), self.system, self.options),
            frequencies_hz=frequencies_hz)
        result = run_sweep(spec, executor=executor, cache=cache,
                           progress=progress)
        return result.mean_curve("surface")

    def solve(self, heights_m: np.ndarray, period_m: float,
              frequency_hz: float) -> SWMResult:
        return self.solver.solve(heights_m, period_m, frequency_hz)


class StochasticLossModel:
    """The paper's full stochastic methodology for one surface process.

    Parameters
    ----------
    correlation:
        Correlation function with lengths in **meters** (e.g.
        ``GaussianCorrelation(sigma=1e-6, eta=1e-6)``).
    config:
        Geometry/KL-truncation configuration.
    system:
        Dielectric/conductor pair (paper defaults).
    options:
        SWM numerical options.

    Examples
    --------
    >>> from repro.constants import UM, GHZ
    >>> from repro.surfaces import GaussianCorrelation
    >>> from repro.core import StochasticLossModel, StochasticLossConfig
    >>> model = StochasticLossModel(
    ...     GaussianCorrelation(sigma=1 * UM, eta=1 * UM),
    ...     StochasticLossConfig(points_per_side=10, max_modes=6))
    >>> res = model.sscm(5 * GHZ, order=1)
    >>> res.mean > 1.0
    True
    """

    def __init__(self, correlation: CorrelationFunction,
                 config: StochasticLossConfig | None = None,
                 system: TwoMediumSystem = PAPER_SYSTEM,
                 options: SWMOptions | None = None) -> None:
        self.correlation = correlation
        self.config = config or StochasticLossConfig()
        self.system = system
        self.options = options
        self.solver = SWMSolver3D(system, options)

        period_m, n = self.config.resolve(correlation)
        self.period_m = period_m
        self.n = n
        self.period_um = period_m * METER_TO_UM

        # Grid points (um) and the KL expansion of the periodic covariance.
        step_um = self.period_um / n
        coords = np.arange(n) * step_um
        xx, yy = np.meshgrid(coords, coords, indexing="ij")
        pts_um = np.column_stack([xx.ravel(), yy.ravel()])
        # Covariance evaluated in um: scale CF lags from um to meters.
        cov = correlation.periodic_covariance_matrix(
            pts_um / METER_TO_UM, self.period_m)
        cov = 0.5 * (cov + cov.T) * METER_TO_UM ** 2  # heights in um
        if self.config.remove_mean_mode:
            npts = cov.shape[0]
            row_mean = cov @ np.ones(npts) / npts
            total_mean = float(np.ones(npts) @ row_mean / npts)
            cov = (cov - row_mean[:, None] - row_mean[None, :] + total_mean)
            cov = 0.5 * (cov + cov.T)
        self.kl: KLExpansion = build_kl(
            cov, energy_fraction=self.config.energy_fraction,
            max_modes=self.config.max_modes)

    # ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Retained stochastic dimension M."""
        return self.kl.dimension

    def surface_from_xi(self, xi: np.ndarray) -> np.ndarray:
        """Height map (um) for a standard-normal vector (length M)."""
        return self.kl.realize(xi).reshape(self.n, self.n)

    def enhancement_model(self, frequency_hz: float
                          ) -> Callable[[np.ndarray], float]:
        """The deterministic map ``xi -> Pr/Ps`` at one frequency."""
        def model(xi: np.ndarray) -> float:
            heights_um = self.surface_from_xi(xi)
            res = self.solver.solve_um(heights_um, self.period_um,
                                       frequency_hz)
            return res.enhancement
        return model

    def enhancement_batch_model(self, frequency_hz: float
                                ) -> Callable[[np.ndarray], np.ndarray]:
        """Vectorized :meth:`enhancement_model`: ``(S, M) -> (S,)``.

        Realizes every sample surface and solves them as one stacked
        batch (:meth:`SWMSolver3D.solve_many_um`), sharing the
        per-frequency kernel tables. Bit-identical to mapping
        :meth:`enhancement_model` over the rows — surfaces are realized
        per sample on purpose (a gemm-based batched KL realize is *not*
        bit-identical to the per-sample gemv), and the batched solve is.
        """
        def batch_model(xis: np.ndarray) -> np.ndarray:
            xis = np.atleast_2d(np.asarray(xis, dtype=np.float64))
            heights_um = np.stack([self.surface_from_xi(xi) for xi in xis])
            results = self.solver.solve_many_um(heights_um, self.period_um,
                                                frequency_hz)
            return np.array([r.enhancement for r in results],
                            dtype=np.float64)
        return batch_model

    # ------------------------------------------------------------------

    def sscm_direct(self, frequency_hz: float, order: int = 2,
                    progress: Callable[[int, int], None] | None = None,
                    batch_size: int | None = None) -> SSCMResult:
        """SSCM statistics computed in-process (no engine routing).

        This is the raw evaluation the engine's workers run; prefer
        :meth:`sscm`, which adds caching and executor policy on top.
        ``progress`` here counts individual solver calls (sparse-grid
        nodes). ``batch_size`` solves that many nodes per stacked dense
        factorization (bit-identical node values).
        """
        est = SSCMEstimator(self.enhancement_model(frequency_hz),
                            self.dimension, order=order,
                            batch_model=self.enhancement_batch_model(
                                frequency_hz))
        return est.run(progress=progress, batch_size=batch_size)

    def sscm(self, frequency_hz: float, order: int = 2,
             progress: Callable[[int, int], None] | None = None,
             executor=None, cache=None,
             batch_size: int | None = None) -> SSCMResult:
        """SSCM statistics of Pr/Ps at one frequency.

        Routed through :mod:`repro.engine`: the node values are content
        addressed, so a repeated call (same physics inputs) replays from
        cache with zero solves, and the surrogate is re-projected from
        the stored values. ``progress`` counts sweep points (here: 1),
        matching :meth:`montecarlo`. ``batch_size`` stacks that many
        sparse-grid node solves per dense factorization (bit-identical
        results; excluded from the content hash).
        """
        from ..engine import EstimatorSpec, SweepSpec, run_sweep
        from ..stochastic.sscm import reproject_node_values

        spec = SweepSpec(
            scenarios=self.scenario(),
            frequencies_hz=frequency_hz,
            estimators=EstimatorSpec(kind="sscm", order=order,
                                     batch_size=batch_size))
        result = run_sweep(spec, executor=executor, cache=cache,
                           progress=progress)
        return reproject_node_values(result.points[0].values,
                                     self.dimension, order)

    def scenario(self, name: str = "model"):
        """This model as a declarative engine scenario (hash-stable).

        The engine runtime is pre-seeded with ``self``, so same-process
        execution reuses this model instead of rebuilding the KL
        expansion from the spec.
        """
        from ..engine import StochasticScenario
        from ..engine.runtime import seed_model

        scenario = StochasticScenario(name, self.correlation, self.config,
                                      self.system, self.options)
        seed_model(scenario, self)
        return scenario

    def montecarlo(self, frequency_hz: float, n_samples: int,
                   seed: int | None = 0,
                   progress: Callable[[int, int], None] | None = None,
                   executor=None, cache=None,
                   batch_size: int | None = None) -> MonteCarloResult:
        """Monte-Carlo statistics of Pr/Ps at one frequency.

        Routed through :mod:`repro.engine`: seeded runs are content
        addressed (a repeated call replays from cache), unseeded runs
        always recompute. ``progress`` counts sweep points, not samples.
        ``batch_size`` stacks that many sample solves per dense
        factorization (bit-identical results and seed stream; excluded
        from the content hash, so batched and per-sample runs share
        cache entries).
        """
        from ..engine import EstimatorSpec, SweepSpec, run_sweep

        spec = SweepSpec(
            scenarios=self.scenario(),
            frequencies_hz=frequency_hz,
            estimators=EstimatorSpec(kind="montecarlo",
                                     n_samples=n_samples, seed=seed,
                                     batch_size=batch_size))
        result = run_sweep(spec, executor=executor, cache=cache,
                           progress=progress)
        return MonteCarloResult(samples=result.points[0].values, seed=seed)

    def mean_enhancement(self, frequencies_hz: np.ndarray, order: int = 1,
                         executor=None, cache=None,
                         progress: Callable[[int, int], None] | None = None,
                         batch_size: int | None = None) -> np.ndarray:
        """Mean Pr/Ps over a frequency sweep via SSCM (the Fig. 3/4/6
        quantity: 'the mean values computed by SSCM').

        Each frequency is one engine job, so the sweep parallelizes over
        ``executor`` (or the active :func:`repro.engine.engine_session`)
        and replays from the result cache when warm. ``batch_size``
        batches the per-frequency node solves (bit-identical results).
        """
        from ..engine import EstimatorSpec, SweepSpec, run_sweep

        spec = SweepSpec(
            scenarios=self.scenario(),
            frequencies_hz=frequencies_hz,
            estimators=EstimatorSpec(kind="sscm", order=order,
                                     batch_size=batch_size))
        result = run_sweep(spec, executor=executor, cache=cache,
                           progress=progress)
        return result.mean_curve("model")
