"""Stochastic machinery: Monte-Carlo, Hermite chaos, sparse grids, SSCM.

These implement Section III-D of the paper: the statistical model of the
rough-surface loss, computed either by brute-force Monte-Carlo or by the
spectral stochastic collocation method (SSCM) with an order-of-magnitude
fewer solver calls (Table I).
"""

from .hermite import (
    chaos_basis_matrix,
    hermite_he,
    hermite_he_normalized,
    total_degree_indices,
)
from .montecarlo import MonteCarloEstimator, MonteCarloResult
from .quadrature import gauss_hermite_rule, level_to_size, rule_for_level
from .sparsegrid import SparseGrid, smolyak_grid, sparse_grid_size
from .sscm import SSCMEstimator, SSCMResult

__all__ = [
    "MonteCarloEstimator",
    "MonteCarloResult",
    "SSCMEstimator",
    "SSCMResult",
    "SparseGrid",
    "chaos_basis_matrix",
    "gauss_hermite_rule",
    "hermite_he",
    "hermite_he_normalized",
    "level_to_size",
    "rule_for_level",
    "smolyak_grid",
    "sparse_grid_size",
    "total_degree_indices",
]
