"""Smolyak sparse-grid quadrature for Gaussian measures.

This is the Sparse Grid (SG) half of the paper's SSCM (Section III-D,
following its ref. [9]): the coefficients of the Homogeneous Chaos
expansion are computed with a sparse tensorization of 1D Gauss-Hermite
rules, whose node count grows polynomially (not exponentially) with the
stochastic dimension M.

Combination technique: with 1D rules ``U_l`` (level l, size m(l)),

    A(q, M) = sum_{q-M+1 <= |i| <= q} (-1)^{q-|i|} C(M-1, q-|i|)
              (U_{i_1} x ... x U_{i_M})

where ``i`` ranges over M-tuples of levels >= 1. We parameterize by
``level = q - M`` (level 0 = single node, level 1 = 2M+1 nodes with the
default growth, matching the paper's Table I).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import StochasticError
from .quadrature import rule_for_level


@dataclass(frozen=True)
class SparseGrid:
    """A set of quadrature nodes/weights for the N(0, I_M) measure."""

    nodes: np.ndarray    # (S, M)
    weights: np.ndarray  # (S,)

    @property
    def n_points(self) -> int:
        return int(self.weights.size)

    @property
    def dimension(self) -> int:
        return int(self.nodes.shape[1])

    def integrate(self, values: np.ndarray) -> float:
        """Weighted sum of model evaluations at the nodes."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_points,):
            raise StochasticError(
                f"values must have shape ({self.n_points},), got {values.shape}"
            )
        return float(np.dot(self.weights, values))


def _level_multi_indices(dim: int, level: int):
    """Multi-indices i (each >= 1) with q - M + 1 <= |i| <= q, q = M + level.

    Equivalently: excess ``e = |i| - M`` between ``max(0, level - M + 1)``
    and ``level``. Yields (index_tuple, smolyak_coefficient).
    """
    q = dim + level
    for excess in range(max(0, level - dim + 1), level + 1):
        coef = (-1) ** (level - excess) * math.comb(dim - 1, level - excess)
        if coef == 0:
            continue
        # distribute `excess` over up to `excess` distinct dimensions
        for n_active in range(0, excess + 1):
            if n_active == 0:
                if excess == 0:
                    yield tuple([1] * dim), coef
                continue
            for dims in itertools.combinations(range(dim), n_active):
                # compositions of `excess` into n_active positive parts
                for cuts in itertools.combinations(range(1, excess), n_active - 1):
                    parts = []
                    prev = 0
                    for c in cuts:
                        parts.append(c - prev)
                        prev = c
                    parts.append(excess - prev)
                    idx = [1] * dim
                    for d, p in zip(dims, parts):
                        idx[d] = 1 + p
                    yield tuple(idx), coef


def smolyak_grid(dim: int, level: int) -> SparseGrid:
    """Build the Smolyak sparse Gauss-Hermite grid.

    Parameters
    ----------
    dim:
        Stochastic dimension M (number of retained KL modes).
    level:
        Sparse-grid level; level p integrates total-degree polynomials of
        order ``2p + 1`` exactly, which is what an order-p chaos
        projection needs. Level 1 has ``2M + 1`` nodes.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    if level < 0:
        raise StochasticError(f"level must be >= 0, got {level}")

    merged: dict[tuple[float, ...], float] = {}
    for idx, coef in _level_multi_indices(dim, level):
        rules = [rule_for_level(l) for l in idx]
        # Tensor product over only the non-trivial dimensions.
        active = [d for d, l in enumerate(idx) if l > 1]
        base_nodes = np.zeros(dim)
        base_weight = 1.0
        for d, l in enumerate(idx):
            if l == 1:
                nodes_d, weights_d = rules[d]
                base_nodes[d] = nodes_d[0]
                base_weight *= weights_d[0]
        if not active:
            key = tuple(np.round(base_nodes, 12))
            merged[key] = merged.get(key, 0.0) + coef * base_weight
            continue
        grids = [rules[d] for d in active]
        for combo in itertools.product(*[range(g[0].size) for g in grids]):
            node = base_nodes.copy()
            weight = base_weight
            for (d, g, c) in zip(active, grids, combo):
                node[d] = g[0][c]
                weight *= g[1][c]
            key = tuple(np.round(node, 12))
            merged[key] = merged.get(key, 0.0) + coef * weight

    # Drop numerically-cancelled nodes.
    items = [(k, w) for k, w in merged.items() if abs(w) > 1e-14]
    items.sort()
    nodes = np.array([k for k, _ in items], dtype=np.float64)
    weights = np.array([w for _, w in items], dtype=np.float64)
    if nodes.ndim == 1:
        nodes = nodes.reshape(-1, dim)
    return SparseGrid(nodes=nodes, weights=weights)


def sparse_grid_size(dim: int, level: int) -> int:
    """Node count of :func:`smolyak_grid` (the Table I quantity)."""
    return smolyak_grid(dim, level).n_points
