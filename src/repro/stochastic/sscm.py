"""Spectral Stochastic Collocation Method (SSCM) — Section III-D.

Pipeline (exactly the paper's): KL-reduce the correlated surface heights
to M independent standard normals -> evaluate the deterministic solver at
the Smolyak sparse-grid nodes -> project onto the order-p Homogeneous
(Hermite) Chaos basis -> read statistics off the cheap surrogate.

The surrogate makes the CDF of Fig. 7 nearly free: 10^5 surrogate
evaluations instead of 10^5 boundary-element solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import StochasticError
from .hermite import chaos_basis_matrix, total_degree_indices
from .sparsegrid import SparseGrid, smolyak_grid


@dataclass(frozen=True)
class SSCMResult:
    """Chaos surrogate of the stochastic loss factor."""

    order: int
    indices: list
    coefficients: np.ndarray
    grid: SparseGrid
    node_values: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of deterministic solves used (the Table I column)."""
        return self.grid.n_points

    @property
    def mean(self) -> float:
        """Chaos mean = coefficient of the constant basis function."""
        return float(self.coefficients[0])

    @property
    def variance(self) -> float:
        """Chaos variance = sum of squared non-constant coefficients."""
        return float(np.sum(self.coefficients[1:] ** 2))

    @property
    def std(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))

    def evaluate(self, xi: np.ndarray) -> np.ndarray:
        """Evaluate the surrogate at (S, M) standard-normal points."""
        psi = chaos_basis_matrix(self.indices, np.atleast_2d(xi))
        return psi @ self.coefficients

    def sample_surrogate(self, n_samples: int = 100000,
                         seed: int | None = 0) -> np.ndarray:
        """Cheap Monte-Carlo on the surrogate (for CDFs/quantiles)."""
        rng = np.random.default_rng(seed)
        xi = rng.standard_normal((n_samples, self.grid.dimension))
        return self.evaluate(xi)

    def cdf(self, n_samples: int = 100000, seed: int | None = 0
            ) -> tuple[np.ndarray, np.ndarray]:
        """Surrogate CDF ``(x, F(x))`` — Fig. 7's SSCM curves."""
        vals = np.sort(self.sample_surrogate(n_samples, seed))
        f = np.arange(1, vals.size + 1) / vals.size
        return vals, f


class SSCMEstimator:
    """Order-p SSCM over a ``xi -> scalar`` model.

    Parameters
    ----------
    model:
        Deterministic map from the length-M standard-normal vector to the
        quantity of interest (for the paper: KL surface -> SWM -> Pr/Ps).
    dimension:
        Stochastic dimension M (retained KL modes).
    order:
        Chaos order p; the sparse-grid level equals p (level p integrates
        total degree ``2p + 1``, enough for the order-p projection).
    batch_model:
        Optional vectorized model mapping an ``(S, M)`` block of points
        to ``(S,)`` values (e.g. a batched SWM solve); enables the
        ``batch_size`` fast path of :meth:`run`, which evaluates the
        sparse-grid nodes in stacked blocks.
    """

    def __init__(self, model: Callable[[np.ndarray], float], dimension: int,
                 order: int = 2,
                 batch_model: Callable[[np.ndarray], np.ndarray] | None = None
                 ) -> None:
        if dimension < 1:
            raise StochasticError(f"dimension must be >= 1, got {dimension}")
        if order < 1:
            raise StochasticError(f"order must be >= 1, got {order}")
        self.model = model
        self.dimension = int(dimension)
        self.order = int(order)
        self.batch_model = batch_model

    def run(self, progress: Callable[[int, int], None] | None = None,
            batch_size: int | None = None) -> SSCMResult:
        """Evaluate the model at the sparse-grid nodes and project.

        ``batch_size`` evaluates nodes in stacked blocks through
        ``batch_model`` (ignored when no batch model was provided); a
        batch model consistent with ``model`` gives bit-identical node
        values. ``progress`` counts evaluated nodes in both modes.
        """
        if batch_size is not None and batch_size < 1:
            raise StochasticError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        grid = smolyak_grid(self.dimension, self.order)
        values = np.empty(grid.n_points, dtype=np.float64)
        if batch_size is not None and self.batch_model is not None:
            done = 0
            while done < grid.n_points:
                take = min(batch_size, grid.n_points - done)
                block = np.asarray(
                    self.batch_model(grid.nodes[done:done + take]),
                    dtype=np.float64)
                if block.shape != (take,):
                    raise StochasticError(
                        f"batch model returned shape {block.shape} for a "
                        f"({take}, {self.dimension}) input; expected "
                        f"({take},)"
                    )
                values[done:done + take] = block
                done += take
                if progress is not None:
                    progress(done, grid.n_points)
        else:
            for s in range(grid.n_points):
                values[s] = float(self.model(grid.nodes[s]))
                if progress is not None:
                    progress(s + 1, grid.n_points)
        return self.project(grid, values)

    def project(self, grid: SparseGrid, values: np.ndarray) -> SSCMResult:
        """Project precomputed node values onto the chaos basis."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (grid.n_points,):
            raise StochasticError(
                f"values shape {values.shape} does not match grid size "
                f"{grid.n_points}"
            )
        indices = total_degree_indices(self.dimension, self.order)
        psi = chaos_basis_matrix(indices, grid.nodes)
        coeffs = psi.T @ (grid.weights * values)
        return SSCMResult(order=self.order, indices=indices,
                          coefficients=coeffs, grid=grid,
                          node_values=values)


def reproject_node_values(values: np.ndarray, dimension: int,
                          order: int) -> SSCMResult:
    """Rebuild an :class:`SSCMResult` from stored sparse-grid values.

    The projection is pure linear algebra over ``values`` — no model
    evaluation happens — so a surrogate rebuilt from cached node values
    (e.g. a sweep-engine payload) is bit-identical to the one the
    original run produced.
    """
    grid = smolyak_grid(dimension, order)
    estimator = SSCMEstimator(_never_evaluated, dimension, order=order)
    return estimator.project(grid, np.asarray(values, dtype=np.float64))


def _never_evaluated(xi: np.ndarray) -> float:
    raise StochasticError(
        "reprojection must not evaluate the model; the node values are "
        "already known"
    )
