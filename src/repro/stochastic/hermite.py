"""Probabilists' Hermite polynomials and multivariate chaos bases.

The Homogeneous Chaos expansion of SSCM (Section III-D) expands the
stochastic solution in orthonormal Hermite polynomials of independent
standard normals:

    y(xi) ~ sum_alpha c_alpha * Psi_alpha(xi),
    Psi_alpha(xi) = prod_j He_{alpha_j}(xi_j) / sqrt(alpha_j!)

with E[Psi_alpha Psi_beta] = delta_{alpha beta} under the Gaussian
measure. Index sets are total-degree: ``|alpha| <= order``.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..errors import StochasticError


def hermite_he(n: int, x: np.ndarray) -> np.ndarray:
    """Probabilists' Hermite polynomial ``He_n(x)`` (three-term recurrence).

    ``He_0 = 1, He_1 = x, He_{k+1} = x He_k - k He_{k-1}``.
    """
    if n < 0:
        raise StochasticError(f"Hermite order must be >= 0, got {n}")
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.ones_like(x)
    if n == 1:
        return x.copy()
    prev = np.ones_like(x)
    cur = x.copy()
    for k in range(1, n):
        prev, cur = cur, x * cur - k * prev
    return cur


def hermite_he_normalized(n: int, x: np.ndarray) -> np.ndarray:
    """Orthonormal Hermite ``He_n / sqrt(n!)`` (unit variance under N(0,1))."""
    return hermite_he(n, x) / math.sqrt(math.factorial(n))


def total_degree_indices(dim: int, order: int) -> list[tuple[int, ...]]:
    """All multi-indices alpha with ``|alpha| <= order``, graded order.

    The count is ``C(dim + order, order)`` — e.g. 1 + M for order 1,
    1 + M + M(M+1)/2 for order 2.
    """
    if dim < 1:
        raise StochasticError(f"dimension must be >= 1, got {dim}")
    if order < 0:
        raise StochasticError(f"order must be >= 0, got {order}")
    out: list[tuple[int, ...]] = []
    for total in range(order + 1):
        # compositions of `total` into `dim` nonnegative parts
        for cuts in itertools.combinations(range(total + dim - 1), dim - 1):
            parts = []
            prev = -1
            for c in cuts:
                parts.append(c - prev - 1)
                prev = c
            parts.append(total + dim - 2 - prev)
            out.append(tuple(parts))
    return out


def chaos_basis_matrix(indices: list[tuple[int, ...]],
                       xi: np.ndarray) -> np.ndarray:
    """Evaluate the orthonormal chaos basis at sample points.

    Parameters
    ----------
    indices:
        List of P multi-indices (each length M).
    xi:
        (S, M) array of standard-normal sample points.

    Returns
    -------
    (S, P) matrix ``Psi[s, p] = Psi_{alpha_p}(xi_s)``.
    """
    xi = np.atleast_2d(np.asarray(xi, dtype=np.float64))
    s, m = xi.shape
    if any(len(a) != m for a in indices):
        raise StochasticError("multi-index length does not match xi dimension")
    max_deg = max((max(a) if a else 0) for a in indices)
    # Precompute He_n(xi_j) for all n, j once.
    uni = np.empty((max_deg + 1, s, m), dtype=np.float64)
    for n in range(max_deg + 1):
        uni[n] = hermite_he_normalized(n, xi)
    out = np.empty((s, len(indices)), dtype=np.float64)
    for p, alpha in enumerate(indices):
        acc = np.ones(s, dtype=np.float64)
        for j, n in enumerate(alpha):
            if n:
                acc = acc * uni[n, :, j]
        out[:, p] = acc
    return out
