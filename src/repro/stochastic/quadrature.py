"""1D Gauss-Hermite quadrature rules for the standard normal measure.

``gauss_hermite_rule(n)`` integrates polynomials up to degree ``2n - 1``
exactly against the N(0, 1) density. The Smolyak construction consumes
these through a level -> size map ``m(1) = 1, m(l) = 2^(l-1) + 1`` (sizes
1, 3, 5, 9, ...), the standard choice that gives the ``2M + 1`` level-1
sparse-grid size the paper's Table I reports.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from ..errors import StochasticError


@lru_cache(maxsize=64)
def gauss_hermite_rule(n_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Nodes/weights integrating exactly degree ``2n - 1`` against N(0,1).

    Built from the probabilists' Hermite-e Gauss rule; weights are
    normalized to sum to 1 (the Gaussian measure is a probability).
    """
    if n_points < 1:
        raise StochasticError(f"rule size must be >= 1, got {n_points}")
    if n_points == 1:
        return np.zeros(1), np.ones(1)
    nodes, weights = np.polynomial.hermite_e.hermegauss(n_points)
    weights = weights / math.sqrt(2.0 * math.pi)
    return nodes, weights


def level_to_size(level: int) -> int:
    """Rule-size growth ``m(1) = 1, m(l) = 2^(l-1) + 1``."""
    if level < 1:
        raise StochasticError(f"level must be >= 1, got {level}")
    if level == 1:
        return 1
    return 2 ** (level - 1) + 1


def rule_for_level(level: int) -> tuple[np.ndarray, np.ndarray]:
    """1D Gauss-Hermite rule at the given Smolyak level."""
    return gauss_hermite_rule(level_to_size(level))
