"""Monte-Carlo estimation of the stochastic loss factor (the baseline
SSCM is compared against in Fig. 7 / Table I).

Generic over the model: any callable mapping a standard-normal vector
``xi`` (length M) to a scalar. Seeded, batched, with running confidence
intervals and the empirical CDF the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import StochasticError


@dataclass(frozen=True)
class MonteCarloResult:
    """Ensemble summary of a Monte-Carlo run."""

    samples: np.ndarray
    seed: int | None

    @property
    def n_samples(self) -> int:
        return int(self.samples.size)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / np.sqrt(self.n_samples)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean (default 95%)."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF ``(x, F(x))`` — the paper's Fig. 7 curves."""
        x = np.sort(self.samples)
        f = (np.arange(1, x.size + 1)) / x.size
        return x, f

    def quantile(self, q: float) -> float:
        """Empirical quantile of the loss factor."""
        if not (0.0 <= q <= 1.0):
            raise StochasticError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))


class MonteCarloEstimator:
    """Plain Monte-Carlo over a ``xi -> scalar`` model.

    Parameters
    ----------
    model:
        Callable mapping a length-``dimension`` standard normal vector to
        a float (e.g. KL realize -> SWM solve -> Pr/Ps).
    dimension:
        Number of independent standard normals.
    """

    def __init__(self, model: Callable[[np.ndarray], float],
                 dimension: int) -> None:
        if dimension < 1:
            raise StochasticError(f"dimension must be >= 1, got {dimension}")
        self.model = model
        self.dimension = int(dimension)

    def run(self, n_samples: int, seed: int | None = None,
            progress: Callable[[int, int], None] | None = None
            ) -> MonteCarloResult:
        """Draw ``n_samples`` evaluations of the model."""
        if n_samples < 2:
            raise StochasticError(f"need >= 2 samples, got {n_samples}")
        rng = np.random.default_rng(seed)
        values = np.empty(n_samples, dtype=np.float64)
        for s in range(n_samples):
            xi = rng.standard_normal(self.dimension)
            values[s] = float(self.model(xi))
            if progress is not None:
                progress(s + 1, n_samples)
        return MonteCarloResult(samples=values, seed=seed)

    def run_until(self, rel_stderr: float, batch: int = 32,
                  max_samples: int = 10000, seed: int | None = None
                  ) -> MonteCarloResult:
        """Sample in batches until the relative standard error target.

        This is the "5000 samples for 1% convergence" cost the paper
        quotes for MC; the adaptive loop lets tests bound runtimes.
        """
        if rel_stderr <= 0.0:
            raise StochasticError(
                f"rel_stderr must be positive, got {rel_stderr}"
            )
        rng = np.random.default_rng(seed)
        values: list[float] = []
        while len(values) < max_samples:
            for _ in range(batch):
                xi = rng.standard_normal(self.dimension)
                values.append(float(self.model(xi)))
            arr = np.asarray(values)
            mean = float(np.mean(arr))
            stderr = float(np.std(arr, ddof=1) / np.sqrt(arr.size))
            if mean != 0.0 and stderr / abs(mean) < rel_stderr:
                break
        return MonteCarloResult(samples=np.asarray(values), seed=seed)
