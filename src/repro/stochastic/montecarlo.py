"""Monte-Carlo estimation of the stochastic loss factor (the baseline
SSCM is compared against in Fig. 7 / Table I).

Generic over the model: any callable mapping a standard-normal vector
``xi`` (length M) to a scalar. Seeded, batched, with running confidence
intervals and the empirical CDF the paper plots.

Vectorized-model protocol: a second callable mapping an ``(S, M)`` block
of standard-normal vectors to ``(S,)`` values (e.g. a batched SWM solve,
:meth:`repro.core.StochasticLossModel.enhancement_batch_model`) can be
attached as ``batch_model``; ``run(..., batch_size=...)`` then evaluates
samples in stacked blocks. The xi stream is drawn block-wise from the
same bit stream the per-sample loop consumes (``standard_normal((S, M))``
fills row-major), so a correct batch model makes batched runs
bit-identical to per-sample runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import StochasticError

#: Vectorized model: an (S, M) block of standard normals -> (S,) values.
BatchModel = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class MonteCarloResult:
    """Ensemble summary of a Monte-Carlo run.

    Requires at least two samples: ``std``/``stderr`` (and hence the
    confidence interval) use ``ddof=1`` and are undefined — silent NaNs —
    for a single sample, so construction validates instead.
    """

    samples: np.ndarray
    seed: int | None

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 1 or samples.size < 2:
            raise StochasticError(
                "MonteCarloResult needs a 1D array of >= 2 samples "
                f"(std/stderr are undefined below that), got shape "
                f"{samples.shape}"
            )
        object.__setattr__(self, "samples", samples)

    @property
    def n_samples(self) -> int:
        return int(self.samples.size)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / np.sqrt(self.n_samples)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean (default 95%)."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF ``(x, F(x))`` — the paper's Fig. 7 curves."""
        x = np.sort(self.samples)
        f = (np.arange(1, x.size + 1)) / x.size
        return x, f

    def quantile(self, q: float) -> float:
        """Empirical quantile of the loss factor."""
        if not (0.0 <= q <= 1.0):
            raise StochasticError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))


class _RunningMoments:
    """Welford running mean/variance (O(1) per sample, numerically stable).

    Replaces the full-array ``np.mean``/``np.std`` recomputation the
    adaptive loop used to do after every batch (O(n^2) over a run).
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    def push_block(self, values: np.ndarray) -> None:
        for x in values:
            self.push(float(x))

    @property
    def stderr(self) -> float:
        """Standard error of the mean (ddof=1); NaN below two samples."""
        if self.count < 2:
            return math.nan
        return math.sqrt(self._m2 / (self.count - 1)) / math.sqrt(self.count)


class MonteCarloEstimator:
    """Plain Monte-Carlo over a ``xi -> scalar`` model.

    Parameters
    ----------
    model:
        Callable mapping a length-``dimension`` standard normal vector to
        a float (e.g. KL realize -> SWM solve -> Pr/Ps).
    dimension:
        Number of independent standard normals.
    batch_model:
        Optional vectorized model mapping an ``(S, M)`` block to ``(S,)``
        values; enables the ``batch_size`` fast path of :meth:`run` and
        block evaluation in :meth:`run_until`.
    """

    def __init__(self, model: Callable[[np.ndarray], float],
                 dimension: int,
                 batch_model: BatchModel | None = None) -> None:
        if dimension < 1:
            raise StochasticError(f"dimension must be >= 1, got {dimension}")
        self.model = model
        self.dimension = int(dimension)
        self.batch_model = batch_model

    def _eval_block(self, rng: np.random.Generator, out: np.ndarray) -> None:
        """Fill ``out`` with ``out.size`` model evaluations.

        Uses the vectorized model when available; either way consumes
        exactly the same xi bit stream as ``out.size`` sequential draws.
        """
        take = out.size
        if self.batch_model is not None:
            xi = rng.standard_normal((take, self.dimension))
            values = np.asarray(self.batch_model(xi), dtype=np.float64)
            if values.shape != (take,):
                raise StochasticError(
                    f"batch model returned shape {values.shape} for an "
                    f"({take}, {self.dimension}) input; expected ({take},)"
                )
            out[:] = values
        else:
            for j in range(take):
                xi = rng.standard_normal(self.dimension)
                out[j] = float(self.model(xi))

    def run(self, n_samples: int, seed: int | None = None,
            progress: Callable[[int, int], None] | None = None,
            batch_size: int | None = None) -> MonteCarloResult:
        """Draw ``n_samples`` evaluations of the model.

        ``batch_size`` evaluates samples in stacked blocks through
        ``batch_model`` (ignored when no batch model was provided);
        results are bit-identical to the per-sample loop for a batch
        model consistent with ``model``. ``progress`` counts samples in
        both modes.
        """
        if n_samples < 2:
            raise StochasticError(f"need >= 2 samples, got {n_samples}")
        if batch_size is not None and batch_size < 1:
            raise StochasticError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        rng = np.random.default_rng(seed)
        values = np.empty(n_samples, dtype=np.float64)
        if batch_size is not None and self.batch_model is not None:
            done = 0
            while done < n_samples:
                take = min(batch_size, n_samples - done)
                self._eval_block(rng, values[done:done + take])
                done += take
                if progress is not None:
                    progress(done, n_samples)
        else:
            for s in range(n_samples):
                xi = rng.standard_normal(self.dimension)
                values[s] = float(self.model(xi))
                if progress is not None:
                    progress(s + 1, n_samples)
        return MonteCarloResult(samples=values, seed=seed)

    def run_until(self, rel_stderr: float, batch: int = 32,
                  max_samples: int = 10000, seed: int | None = None
                  ) -> MonteCarloResult:
        """Sample in batches until the relative standard error target.

        This is the "5000 samples for 1% convergence" cost the paper
        quotes for MC; the adaptive loop lets tests bound runtimes.
        The final batch is clamped so the run never exceeds
        ``max_samples``, and convergence is tracked with running
        (Welford) moments — O(n) over the whole run. When a
        ``batch_model`` is attached, each batch is evaluated as one
        stacked block (same xi stream, bit-identical samples).
        """
        if rel_stderr <= 0.0:
            raise StochasticError(
                f"rel_stderr must be positive, got {rel_stderr}"
            )
        if batch < 1:
            raise StochasticError(f"batch must be >= 1, got {batch}")
        if max_samples < 2:
            raise StochasticError(
                f"max_samples must be >= 2, got {max_samples}"
            )
        rng = np.random.default_rng(seed)
        values = np.empty(max_samples, dtype=np.float64)
        moments = _RunningMoments()
        count = 0
        while count < max_samples:
            take = min(batch, max_samples - count)
            block = values[count:count + take]
            self._eval_block(rng, block)
            moments.push_block(block)
            count += take
            if count >= 2:
                mean, stderr = moments.mean, moments.stderr
                if mean != 0.0 and stderr / abs(mean) < rel_stderr:
                    break
        return MonteCarloResult(samples=values[:count].copy(), seed=seed)
