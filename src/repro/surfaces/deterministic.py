"""Deterministic test surfaces.

The paper's Fig. 5 replaces the random surface by a single deterministic
conducting half-spheroid (the HBM comparison case); Morgan's original 1949
study used periodic 2D ridges. Both are provided here, together with a few
other canonical shapes used in the tests and examples.

All generators return height maps sampled on the same n x n (or n) grid
convention as :class:`repro.surfaces.generation.SurfaceRealization`:
point ``(i, j)`` sits at ``(i * L / n, j * L / n)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError


def _grid(n: int, period: float) -> tuple[np.ndarray, np.ndarray]:
    if n < 4:
        raise ConfigurationError(f"n must be >= 4, got {n}")
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    x = np.arange(n) * (period / n)
    return np.meshgrid(x, x, indexing="ij")


def flat(n: int, period: float) -> np.ndarray:
    """A perfectly smooth surface (the Pr/Ps = 1 reference)."""
    _grid(n, period)
    return np.zeros((n, n), dtype=np.float64)


def half_spheroid(n: int, period: float, height: float,
                  base_diameter: float,
                  center: tuple[float, float] | None = None) -> np.ndarray:
    """A half-spheroid boss: ``f = h sqrt(1 - (rho/a)^2)`` inside ``rho < a``.

    ``a = base_diameter / 2``. This is the Fig. 5 geometry
    (h = 5.8 um, d = 9.4 um in the paper, taken from Hall et al.).
    """
    if height <= 0.0 or base_diameter <= 0.0:
        raise ConfigurationError("height and base_diameter must be positive")
    a = base_diameter / 2.0
    if 2.0 * a > period:
        raise ConfigurationError(
            f"spheroid base (diameter {base_diameter}) exceeds the patch "
            f"period {period}"
        )
    xx, yy = _grid(n, period)
    cx, cy = center if center is not None else (period / 2.0, period / 2.0)
    rho2 = (xx - cx) ** 2 + (yy - cy) ** 2
    inside = np.maximum(0.0, 1.0 - rho2 / (a * a))
    return height * np.sqrt(inside)


def gaussian_bump(n: int, period: float, height: float, width: float,
                  center: tuple[float, float] | None = None) -> np.ndarray:
    """Smooth bump ``f = h exp(-rho^2/w^2)`` (C-infinity test geometry)."""
    if height == 0.0 or width <= 0.0:
        raise ConfigurationError("height must be nonzero and width positive")
    xx, yy = _grid(n, period)
    cx, cy = center if center is not None else (period / 2.0, period / 2.0)
    rho2 = (xx - cx) ** 2 + (yy - cy) ** 2
    return height * np.exp(-rho2 / (width * width))


def cosine_ridges(n: int, period: float, amplitude: float,
                  n_ridges: int = 1, along: str = "x") -> np.ndarray:
    """Morgan's periodic ridges: ``f = A cos(2 pi m u / L)``, uniform in v.

    ``along='x'`` makes the height vary along x (ridges run along y).
    This is the canonical 2D (translationally invariant) roughness used
    to cross-check the 2D SWM against the 3D solver.
    """
    if amplitude <= 0.0:
        raise ConfigurationError(f"amplitude must be positive, got {amplitude}")
    if n_ridges < 1:
        raise ConfigurationError(f"n_ridges must be >= 1, got {n_ridges}")
    if along not in ("x", "y"):
        raise ConfigurationError(f"along must be 'x' or 'y', got {along!r}")
    xx, yy = _grid(n, period)
    u = xx if along == "x" else yy
    return amplitude * np.cos(2.0 * math.pi * n_ridges * u / period)


def cosine_profile(n: int, period: float, amplitude: float,
                   n_ridges: int = 1) -> np.ndarray:
    """1D cosine profile for the 2D SWM solver."""
    if amplitude <= 0.0:
        raise ConfigurationError(f"amplitude must be positive, got {amplitude}")
    x = np.arange(n) * (period / n)
    return amplitude * np.cos(2.0 * math.pi * n_ridges * x / period)


def egg_carton(n: int, period: float, amplitude: float,
               n_cells: int = 1) -> np.ndarray:
    """Doubly-periodic cos*cos surface: the simplest truly-3D roughness."""
    if amplitude <= 0.0:
        raise ConfigurationError(f"amplitude must be positive, got {amplitude}")
    xx, yy = _grid(n, period)
    w = 2.0 * math.pi * n_cells / period
    return amplitude * np.cos(w * xx) * np.cos(w * yy)


def boss_array(n: int, period: float, height: float, base_diameter: float,
               per_side: int = 2) -> np.ndarray:
    """A regular array of half-spheroid bosses (the HBM's mental picture)."""
    if per_side < 1:
        raise ConfigurationError(f"per_side must be >= 1, got {per_side}")
    pitch = period / per_side
    if base_diameter > pitch:
        raise ConfigurationError(
            f"bosses of diameter {base_diameter} overlap at pitch {pitch}"
        )
    total = np.zeros((n, n), dtype=np.float64)
    for i in range(per_side):
        for j in range(per_side):
            cx = (i + 0.5) * pitch
            cy = (j + 0.5) * pitch
            total = np.maximum(
                total,
                half_spheroid(n, period, height, base_diameter, (cx, cy)),
            )
    return total


def extruded_profile(profile: np.ndarray) -> np.ndarray:
    """Extrude a 1D profile along y to an (n, n) y-uniform surface.

    3D SWM on the result should approach the 2D SWM on the profile —
    the consistency check behind Fig. 6.
    """
    profile = np.asarray(profile, dtype=np.float64)
    if profile.ndim != 1:
        raise ConfigurationError("profile must be 1D")
    n = profile.size
    return np.repeat(profile[:, None], n, axis=1)
