"""Periodic Gaussian random rough surface synthesis (the paper's Fig. 2).

Spectral (FFT) synthesis: a real white-noise field is filtered in the
Fourier domain by ``sqrt(W(k))`` so the output is a stationary Gaussian
field with exactly the target power spectrum *and* exact L-periodicity —
matching the doubly-periodic patch assumption of the SWM formulation
(Section III-B of the paper).

The DC (k = 0) mode is zeroed so every realization has zero mean plane,
as in the paper's surface model (eq. (2): mean plane at f = 0). The
variance delivered on a finite grid is

    sigma_grid^2 = sum_{k != 0, k <= Nyquist} W(k) (2 pi / L)^2

which is slightly below ``sigma^2``; :func:`discrete_variance` reports it
and ``normalize=True`` rescales realizations to exact ``sigma``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .correlation import CorrelationFunction


def _wavenumber_grid(n: int, period: float) -> tuple[np.ndarray, np.ndarray]:
    k1 = 2.0 * math.pi * np.fft.fftfreq(n, d=period / n)
    kx, ky = np.meshgrid(k1, k1, indexing="ij")
    return kx, ky


@dataclass(frozen=True)
class SurfaceRealization:
    """A sampled rough surface on an n x n periodic grid of period L.

    ``heights[i, j]`` is ``f(x_i, y_j)`` with ``x_i = i * L / n``. The
    spacing is ``L / n``; the grid is cell-centered from the solver's
    point of view (the SWM mesh samples the same lattice).
    """

    heights: np.ndarray
    period: float

    @property
    def n(self) -> int:
        return self.heights.shape[0]

    @property
    def spacing(self) -> float:
        return self.period / self.n

    def rms(self) -> float:
        """RMS height about the mean plane."""
        h = self.heights - self.heights.mean()
        return float(np.sqrt(np.mean(h * h)))


class SurfaceGenerator:
    """Seeded generator of periodic Gaussian rough surfaces.

    Parameters
    ----------
    correlation:
        Target correlation function (provides the 2D spectrum).
    period:
        Patch period L (the paper uses ``L = 5 * eta``).
    n:
        Grid points per side (the paper uses ``L / (eta/8) = 40``).
    normalize:
        If True, rescale each realization to exactly the target sigma
        (compensating spectral truncation on the finite grid).
    """

    def __init__(self, correlation: CorrelationFunction, period: float,
                 n: int, normalize: bool = False) -> None:
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if n < 4:
            raise ConfigurationError(f"n must be >= 4, got {n}")
        self.correlation = correlation
        self.period = float(period)
        self.n = int(n)
        self.normalize = bool(normalize)
        kx, ky = _wavenumber_grid(self.n, self.period)
        kmag = np.sqrt(kx * kx + ky * ky)
        spec = correlation.spectrum_2d(kmag.ravel()).reshape(kmag.shape)
        spec = np.maximum(spec, 0.0)
        spec[0, 0] = 0.0  # zero-mean plane
        dk = 2.0 * math.pi / self.period
        self._amplitude = np.sqrt(spec) * dk
        self._grid_variance = float(np.sum(spec) * dk * dk)

    def discrete_variance(self) -> float:
        """Variance the finite grid can represent (<= sigma^2)."""
        return self._grid_variance

    def sample(self, rng: np.random.Generator | int | None = None
               ) -> SurfaceRealization:
        """Draw one surface realization."""
        rng = np.random.default_rng(rng)
        white = rng.standard_normal((self.n, self.n))
        heights = self.from_white_noise(white)
        return heights

    def from_white_noise(self, white: np.ndarray) -> SurfaceRealization:
        """Deterministic synthesis from a given white-noise field.

        This is the map used by the stochastic collocation machinery:
        the surface is an explicit linear function of i.i.d. standard
        normals, so collocation nodes in xi-space map directly to
        deterministic surfaces.
        """
        white = np.asarray(white, dtype=np.float64)
        if white.shape != (self.n, self.n):
            raise ConfigurationError(
                f"white noise must have shape {(self.n, self.n)}, "
                f"got {white.shape}"
            )
        spec = np.fft.fft2(white) * self._amplitude
        heights = np.real(np.fft.ifft2(spec)) * self.n
        # Explanation of the scaling: fft2(white) has std n per mode for
        # unit white noise; amplitude sqrt(W dk^2) gives each Fourier mode
        # the target std; ifft2 divides by n^2, hence the factor n.
        if self.normalize and self._grid_variance > 0.0:
            heights = heights * (self.correlation.sigma
                                 / math.sqrt(self._grid_variance))
        return SurfaceRealization(heights=heights, period=self.period)


class ProfileGenerator:
    """1D analogue of :class:`SurfaceGenerator` for the 2D SWM (Fig. 6).

    Generates periodic profiles ``f(x)`` with the CF's *1D* spectrum; the
    2D SWM treats the surface as uniform along y.
    """

    def __init__(self, correlation: CorrelationFunction, period: float,
                 n: int, normalize: bool = False) -> None:
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if n < 4:
            raise ConfigurationError(f"n must be >= 4, got {n}")
        self.correlation = correlation
        self.period = float(period)
        self.n = int(n)
        self.normalize = bool(normalize)
        k = 2.0 * math.pi * np.fft.fftfreq(self.n, d=self.period / self.n)
        spec = correlation.spectrum_1d(np.abs(k))
        spec = np.maximum(spec, 0.0)
        spec[0] = 0.0
        dk = 2.0 * math.pi / self.period
        self._amplitude = np.sqrt(spec * dk)
        self._grid_variance = float(np.sum(spec) * dk)

    def discrete_variance(self) -> float:
        """Variance the finite grid can represent (<= sigma^2)."""
        return self._grid_variance

    def sample(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = np.random.default_rng(rng)
        return self.from_white_noise(rng.standard_normal(self.n))

    def from_white_noise(self, white: np.ndarray) -> np.ndarray:
        white = np.asarray(white, dtype=np.float64)
        if white.shape != (self.n,):
            raise ConfigurationError(
                f"white noise must have shape ({self.n},), got {white.shape}"
            )
        spec = np.fft.fft(white) * self._amplitude
        heights = np.real(np.fft.ifft(spec)) * math.sqrt(self.n)
        if self.normalize and self._grid_variance > 0.0:
            heights = heights * (self.correlation.sigma
                                 / math.sqrt(self._grid_variance))
        return heights
