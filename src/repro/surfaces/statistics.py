"""Estimation of roughness statistics from surface height maps.

This is the reproduction of the paper's claim that "the parameters of the
stochastic process, e.g. sigma and C, can be quantitatively extracted from
real interconnect surface by measuring surface height as a function of
position" (Section II): given a measured (or synthetic) height map, these
estimators recover sigma, the autocorrelation function, the correlation
length and the RMS slope — the inputs the SWM/SSCM pipeline needs.

All estimators assume the map covers one period of an L-periodic patch
(which is exactly what the synthesis in
:mod:`repro.surfaces.generation` produces, and a good approximation for a
measurement window much larger than the correlation length).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RoughnessStatistics:
    """Summary statistics extracted from a height map."""

    mean: float
    sigma: float
    rms_slope: float
    correlation_length: float

    def skin_depth_ratio(self, delta: float) -> float:
        """The key dimensionless roughness measure ``sigma / delta``."""
        return self.sigma / delta


def estimate_sigma(heights: np.ndarray) -> float:
    """RMS height about the mean plane."""
    h = np.asarray(heights, dtype=np.float64)
    h = h - h.mean()
    return float(np.sqrt(np.mean(h * h)))


def autocorrelation_2d(heights: np.ndarray, period: float
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Radially-averaged autocorrelation ``C(d)`` of a periodic height map.

    Returns ``(lags, correlation)`` where ``lags`` are in the same unit as
    ``period``. Computed exactly (for the periodic process) via FFT:
    ``C = ifft2(|fft2(h)|^2) / N``.
    """
    h = np.asarray(heights, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ConfigurationError("heights must be a square 2D array")
    n = h.shape[0]
    h = h - h.mean()
    spec = np.fft.fft2(h)
    corr = np.real(np.fft.ifft2(spec * np.conj(spec))) / (n * n)

    dx = period / n
    idx = np.fft.fftfreq(n, d=1.0 / n)  # 0, 1, ..., -1 in index units
    ix, iy = np.meshgrid(idx, idx, indexing="ij")
    dist = np.sqrt(ix * ix + iy * iy) * dx

    # Radial binning (bin width = one grid spacing).
    nbins = n // 2
    bins = np.floor(dist / dx + 0.5).astype(int)
    valid = bins < nbins
    sums = np.bincount(bins[valid], weights=corr[valid], minlength=nbins)
    counts = np.bincount(bins[valid], minlength=nbins)
    lags = np.arange(nbins) * dx
    with np.errstate(invalid="ignore"):
        radial = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return lags, radial


def autocorrelation_1d(profile: np.ndarray, period: float
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Autocorrelation of a periodic 1D profile (same convention)."""
    h = np.asarray(profile, dtype=np.float64)
    if h.ndim != 1:
        raise ConfigurationError("profile must be a 1D array")
    n = h.shape[0]
    h = h - h.mean()
    spec = np.fft.fft(h)
    corr = np.real(np.fft.ifft(spec * np.conj(spec))) / n
    lags = np.arange(n // 2) * (period / n)
    return lags, corr[: n // 2]


def estimate_correlation_length(lags: np.ndarray, corr: np.ndarray) -> float:
    """Correlation length: first lag where ``C`` falls to ``C(0)/e``.

    Linear interpolation between samples; for a Gaussian CF
    ``C = sigma^2 exp(-d^2/eta^2)`` this returns ``eta``.
    """
    corr = np.asarray(corr, dtype=np.float64)
    lags = np.asarray(lags, dtype=np.float64)
    if corr.shape != lags.shape or corr.size < 2:
        raise ConfigurationError("lags and corr must be equal-length (>= 2)")
    c0 = corr[0]
    if c0 <= 0.0:
        raise ConfigurationError("zero-lag correlation must be positive")
    target = c0 / math.e
    below = np.nonzero(corr < target)[0]
    if below.size == 0:
        # Correlated beyond the window; report the window edge.
        return float(lags[-1])
    i = int(below[0])
    if i == 0:
        return float(lags[0])
    # Linear interpolation between samples i-1 and i.
    c_hi, c_lo = corr[i - 1], corr[i]
    frac = (c_hi - target) / (c_hi - c_lo)
    return float(lags[i - 1] + frac * (lags[i] - lags[i - 1]))


def rms_slope_2d(heights: np.ndarray, period: float) -> float:
    """RMS of ``|grad f|`` computed with spectral (periodic) derivatives."""
    h = np.asarray(heights, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ConfigurationError("heights must be a square 2D array")
    n = h.shape[0]
    k1 = 2.0 * math.pi * np.fft.fftfreq(n, d=period / n)
    kx, ky = np.meshgrid(k1, k1, indexing="ij")
    spec = np.fft.fft2(h)
    fx = np.real(np.fft.ifft2(1j * kx * spec))
    fy = np.real(np.fft.ifft2(1j * ky * spec))
    return float(np.sqrt(np.mean(fx * fx + fy * fy)))


def radial_psd(heights: np.ndarray, period: float
               ) -> tuple[np.ndarray, np.ndarray]:
    """Radially-averaged power spectral density estimate.

    Normalized so that ``sum W(k) dk^2`` over all modes equals the map's
    variance; directly comparable to
    :meth:`repro.surfaces.correlation.CorrelationFunction.spectrum_2d`.
    """
    h = np.asarray(heights, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ConfigurationError("heights must be a square 2D array")
    n = h.shape[0]
    h = h - h.mean()
    dk = 2.0 * math.pi / period
    spec = np.abs(np.fft.fft2(h)) ** 2 / (n ** 4) / (dk * dk)
    k1 = 2.0 * math.pi * np.fft.fftfreq(n, d=period / n)
    kx, ky = np.meshgrid(k1, k1, indexing="ij")
    kmag = np.sqrt(kx * kx + ky * ky)

    nbins = n // 2
    bins = np.floor(kmag / dk + 0.5).astype(int)
    valid = bins < nbins
    sums = np.bincount(bins[valid], weights=spec[valid], minlength=nbins)
    counts = np.bincount(bins[valid], minlength=nbins)
    kcenters = np.arange(nbins) * dk
    with np.errstate(invalid="ignore"):
        w = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return kcenters, w


def extract_statistics(heights: np.ndarray, period: float
                       ) -> RoughnessStatistics:
    """One-call extraction of the summary statistics of a height map."""
    h = np.asarray(heights, dtype=np.float64)
    lags, corr = autocorrelation_2d(h, period)
    return RoughnessStatistics(
        mean=float(h.mean()),
        sigma=estimate_sigma(h),
        rms_slope=rms_slope_2d(h, period),
        correlation_length=estimate_correlation_length(lags, corr),
    )
