"""Spatial correlation functions (CFs) of random rough surfaces.

The paper characterizes a 3D random rough surface as a stationary Gaussian
process with standard deviation ``sigma`` and an isotropic spatial
correlation function ``C(d)`` (its Section II). Three CFs appear:

- :class:`GaussianCorrelation` — ``C(d) = sigma^2 exp(-d^2/eta^2)``
  (Figs. 2, 3, 6, 7, Table I);
- :class:`ExtractedCorrelation` — the measurement-extracted eq. (12)
  ``C(d) = sigma^2 exp{-(d/eta1)[1 - exp(-d/eta2)]}`` (Fig. 4, Table I);
- :class:`ExponentialCorrelation` — classic exponential CF (extension,
  useful for stress-testing SPM2 validity);
- :class:`MaternCorrelation` — Matern family (extension) interpolating
  between exponential and Gaussian smoothness.

Each CF exposes the 2D (isotropic) and 1D roughness power spectra

.. math::

    W_2(k) = \\frac{1}{2\\pi}\\int_0^\\infty C(d)\\,J_0(k d)\\, d\\, \\mathrm{d}d,
    \\qquad
    W_1(k) = \\frac{1}{2\\pi}\\int_{-\\infty}^{\\infty} C(|x|) e^{-jkx} \\mathrm{d}x

normalized so that ``integral W_2 d^2k = integral W_1 dk = sigma^2``.
Analytic forms are used where available; otherwise a cached numerical
Hankel/Fourier transform is used (needed for eq. (12)).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy.special import gamma as gamma_fn
from scipy.special import j0, kv

from ..errors import ConfigurationError


class CorrelationFunction(ABC):
    """Isotropic correlation function of a stationary surface process."""

    def __init__(self, sigma: float) -> None:
        if sigma <= 0.0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    @abstractmethod
    def __call__(self, d: np.ndarray) -> np.ndarray:
        """Correlation ``C(d)`` at (non-negative) lag distances ``d``."""

    @property
    @abstractmethod
    def reference_length(self) -> float:
        """A characteristic lateral scale (used for integration cutoffs)."""

    # ------------------------------------------------------------------
    # Spectra. Subclasses override with analytic forms when available.
    # ------------------------------------------------------------------

    def spectrum_2d(self, k: np.ndarray) -> np.ndarray:
        """Isotropic 2D power spectrum ``W_2(k)`` (numerical Hankel by default)."""
        return self._numeric_spectrum_2d(k)

    def spectrum_1d(self, k: np.ndarray) -> np.ndarray:
        """1D power spectrum ``W_1(k)`` (numerical cosine transform by default)."""
        return self._numeric_spectrum_1d(k)

    def _lag_grid(self) -> tuple[np.ndarray, float]:
        d_max = 40.0 * self.reference_length
        n = 4096
        d = np.linspace(0.0, d_max, n)
        return d, d[1] - d[0]

    def _numeric_spectrum_2d(self, k: np.ndarray) -> np.ndarray:
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        d, dd = self._lag_grid()
        c = self(d)
        # W2(k) = (1/2pi) * int_0^inf C(d) J0(k d) d dd   (trapezoid)
        kern = j0(np.outer(k, d)) * (c * d)[None, :]
        out = np.trapezoid(kern, dx=dd, axis=1) / (2.0 * math.pi)
        return out

    def _numeric_spectrum_1d(self, k: np.ndarray) -> np.ndarray:
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        d, dd = self._lag_grid()
        c = self(d)
        kern = np.cos(np.outer(k, d)) * c[None, :]
        # even integrand: W1 = (1/pi) * int_0^inf C(d) cos(kd) dd
        return np.trapezoid(kern, dx=dd, axis=1) / math.pi

    # ------------------------------------------------------------------
    # Derived quantities used throughout the library.
    # ------------------------------------------------------------------

    def variance(self) -> float:
        """``C(0) = sigma^2``."""
        return self.sigma ** 2

    def slope_variance_2d(self) -> float:
        """Mean-square *total* slope ``<|grad f|^2>`` of the 3D surface.

        Equals ``-laplacian C at 0 = integral k^2 W_2(k) d^2 k``; computed
        spectrally (subclasses may override with closed forms).
        """
        k = np.linspace(0.0, 40.0 / self.reference_length, 8192)
        w = self.spectrum_2d(k)
        return float(np.trapezoid(k ** 3 * w, k) * 2.0 * math.pi)

    def slope_variance_1d(self) -> float:
        """Mean-square slope ``<f_x^2>`` of the 1D profile."""
        k = np.linspace(0.0, 40.0 / self.reference_length, 8192)
        w = self.spectrum_1d(k)
        return float(2.0 * np.trapezoid(k ** 2 * w, k))

    def covariance_matrix(self, points: np.ndarray) -> np.ndarray:
        """Covariance matrix ``C(|p_i - p_j|)`` for an (N, ndim) point set."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ConfigurationError("points must have shape (N, ndim)")
        diff = points[:, None, :] - points[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        return self(dist)

    def periodic_covariance_matrix(self, points: np.ndarray,
                                   period: float) -> np.ndarray:
        """Covariance with the *minimum-image* distance on a periodic patch.

        The doubly-periodic patch assumption (Section III-B of the paper)
        makes the surface process periodic; using the wrapped distance
        keeps the covariance consistent with the periodic synthesis.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ConfigurationError("points must have shape (N, ndim)")
        diff = points[:, None, :] - points[None, :, :]
        diff = diff - period * np.round(diff / period)
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        return self(dist)


class GaussianCorrelation(CorrelationFunction):
    """Gaussian CF ``C(d) = sigma^2 exp(-d^2 / eta^2)`` (the paper's default)."""

    def __init__(self, sigma: float, eta: float) -> None:
        super().__init__(sigma)
        if eta <= 0.0:
            raise ConfigurationError(f"eta must be positive, got {eta}")
        self.eta = float(eta)

    def __call__(self, d: np.ndarray) -> np.ndarray:
        d = np.asarray(d, dtype=np.float64)
        return self.sigma ** 2 * np.exp(-(d / self.eta) ** 2)

    @property
    def reference_length(self) -> float:
        return self.eta

    def spectrum_2d(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        s2, e2 = self.sigma ** 2, self.eta ** 2
        return s2 * e2 / (4.0 * math.pi) * np.exp(-(k ** 2) * e2 / 4.0)

    def spectrum_1d(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        return (self.sigma ** 2 * self.eta / (2.0 * math.sqrt(math.pi))
                * np.exp(-(k ** 2) * self.eta ** 2 / 4.0))

    def slope_variance_2d(self) -> float:
        # -lap C(0) = 4 sigma^2 / eta^2 for the isotropic Gaussian CF.
        return 4.0 * self.sigma ** 2 / self.eta ** 2

    def slope_variance_1d(self) -> float:
        return 2.0 * self.sigma ** 2 / self.eta ** 2

    def __repr__(self) -> str:
        return f"GaussianCorrelation(sigma={self.sigma}, eta={self.eta})"


class ExponentialCorrelation(CorrelationFunction):
    """Exponential CF ``C(d) = sigma^2 exp(-d/eta)``.

    Non-differentiable at 0 (fractal-like surfaces); the slope variance
    diverges, so SWM results are discretization-limited — useful for
    demonstrating where closed-form models are untrustworthy.
    """

    def __init__(self, sigma: float, eta: float) -> None:
        super().__init__(sigma)
        if eta <= 0.0:
            raise ConfigurationError(f"eta must be positive, got {eta}")
        self.eta = float(eta)

    def __call__(self, d: np.ndarray) -> np.ndarray:
        d = np.asarray(d, dtype=np.float64)
        return self.sigma ** 2 * np.exp(-d / self.eta)

    @property
    def reference_length(self) -> float:
        return self.eta

    def spectrum_2d(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        s2, e = self.sigma ** 2, self.eta
        return s2 * e * e / (2.0 * math.pi) * (1.0 + (k * e) ** 2) ** (-1.5)

    def spectrum_1d(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        return self.sigma ** 2 * self.eta / math.pi / (1.0 + (k * self.eta) ** 2)

    def __repr__(self) -> str:
        return f"ExponentialCorrelation(sigma={self.sigma}, eta={self.eta})"


class ExtractedCorrelation(CorrelationFunction):
    """The measurement-extracted CF of the paper's eq. (12).

    ``C(d) = sigma^2 exp{ -(d/eta1) [1 - exp(-d/eta2)] }`` with the Fig. 4
    parameters ``sigma = 1 um``, ``eta1 = 1.4 um``, ``eta2 = 0.53 um``
    (from Braunisch et al., ref. [4]). No closed-form spectrum exists; the
    numerical Hankel transform of the base class is used (and cached).

    Near ``d = 0`` this CF behaves like ``exp(-d^2/(eta1*eta2))``, i.e.
    Gaussian-smooth with effective correlation length
    ``sqrt(eta1 * eta2)``; at large ``d`` it decays exponentially.
    """

    def __init__(self, sigma: float, eta1: float, eta2: float) -> None:
        super().__init__(sigma)
        if eta1 <= 0.0 or eta2 <= 0.0:
            raise ConfigurationError(
                f"eta1 and eta2 must be positive, got {eta1}, {eta2}"
            )
        self.eta1 = float(eta1)
        self.eta2 = float(eta2)
        self._spec2_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._spec1_cache: tuple[np.ndarray, np.ndarray] | None = None

    def __call__(self, d: np.ndarray) -> np.ndarray:
        d = np.asarray(d, dtype=np.float64)
        return self.sigma ** 2 * np.exp(
            -(d / self.eta1) * (1.0 - np.exp(-d / self.eta2))
        )

    @property
    def reference_length(self) -> float:
        return math.sqrt(self.eta1 * self.eta2)

    def _cached(self, which: str, k: np.ndarray) -> np.ndarray:
        """Interpolate the numeric spectrum from a cached dense table."""
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        cache = self._spec2_cache if which == "2d" else self._spec1_cache
        if cache is None:
            kt = np.linspace(0.0, 80.0 / self.reference_length, 4096)
            wt = (self._numeric_spectrum_2d(kt) if which == "2d"
                  else self._numeric_spectrum_1d(kt))
            # Clip tiny negative tail values from the truncated transform.
            wt = np.maximum(wt, 0.0)
            cache = (kt, wt)
            if which == "2d":
                self._spec2_cache = cache
            else:
                self._spec1_cache = cache
        kt, wt = cache
        return np.interp(k, kt, wt, right=0.0)

    def spectrum_2d(self, k: np.ndarray) -> np.ndarray:
        return self._cached("2d", k)

    def spectrum_1d(self, k: np.ndarray) -> np.ndarray:
        return self._cached("1d", k)

    def __repr__(self) -> str:
        return (f"ExtractedCorrelation(sigma={self.sigma}, "
                f"eta1={self.eta1}, eta2={self.eta2})")


class MaternCorrelation(CorrelationFunction):
    """Matern CF (extension): smoothness parameter ``nu`` interpolates
    between exponential (``nu = 1/2``) and Gaussian (``nu -> inf``).

    ``C(d) = sigma^2 * 2^{1-nu}/Gamma(nu) * (sqrt(2 nu) d/eta)^nu
    * K_nu(sqrt(2 nu) d/eta)``.
    """

    def __init__(self, sigma: float, eta: float, nu: float = 1.5) -> None:
        super().__init__(sigma)
        if eta <= 0.0:
            raise ConfigurationError(f"eta must be positive, got {eta}")
        if nu <= 0.0:
            raise ConfigurationError(f"nu must be positive, got {nu}")
        self.eta = float(eta)
        self.nu = float(nu)

    def __call__(self, d: np.ndarray) -> np.ndarray:
        d = np.asarray(d, dtype=np.float64)
        scaled = math.sqrt(2.0 * self.nu) * d / self.eta
        out = np.full(d.shape, self.sigma ** 2, dtype=np.float64)
        pos = scaled > 0.0
        sp = scaled[pos]
        coef = self.sigma ** 2 * 2.0 ** (1.0 - self.nu) / gamma_fn(self.nu)
        out[pos] = coef * sp ** self.nu * kv(self.nu, sp)
        return out

    @property
    def reference_length(self) -> float:
        return self.eta

    def spectrum_2d(self, k: np.ndarray) -> np.ndarray:
        # 2D Matern spectral density:
        # W2(k) = sigma^2 * nu * (2nu/eta^2)^nu * Gamma(nu+1) /
        #         (pi * Gamma(nu) * nu) ... use the standard closed form:
        # W2(k) = sigma^2 * (4 pi nu / eta^2)^... ; we use the general
        # d-dimensional Matern density with d = 2:
        #   W(k) = sigma^2 * Gamma(nu + 1) (2 nu)^nu /
        #          (pi Gamma(nu) eta^{2 nu}) * (2 nu/eta^2 + k^2)^{-(nu+1)}
        k = np.asarray(k, dtype=np.float64)
        a = 2.0 * self.nu / self.eta ** 2
        coef = (self.sigma ** 2 * gamma_fn(self.nu + 1.0) * a ** self.nu
                / (math.pi * gamma_fn(self.nu)))
        return coef * (a + k ** 2) ** (-(self.nu + 1.0))

    def spectrum_1d(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        a = 2.0 * self.nu / self.eta ** 2
        coef = (self.sigma ** 2 * gamma_fn(self.nu + 0.5) * a ** self.nu
                / (math.sqrt(math.pi) * gamma_fn(self.nu)))
        return coef * (a + k ** 2) ** (-(self.nu + 0.5))

    def __repr__(self) -> str:
        return (f"MaternCorrelation(sigma={self.sigma}, eta={self.eta}, "
                f"nu={self.nu})")
