"""3D/1D random rough surface modeling (Section II of the paper).

Characterization (correlation functions and spectra), periodic spectral
synthesis, statistics extraction, Karhunen-Loeve reduction, and the
deterministic test geometries of the paper's experiments.
"""

from . import deterministic
from .correlation import (
    CorrelationFunction,
    ExponentialCorrelation,
    ExtractedCorrelation,
    GaussianCorrelation,
    MaternCorrelation,
)
from .generation import ProfileGenerator, SurfaceGenerator, SurfaceRealization
from .kl import KLExpansion, build_kl, kl_from_correlation
from .statistics import (
    RoughnessStatistics,
    autocorrelation_1d,
    autocorrelation_2d,
    estimate_correlation_length,
    estimate_sigma,
    extract_statistics,
    radial_psd,
    rms_slope_2d,
)

__all__ = [
    "CorrelationFunction",
    "ExponentialCorrelation",
    "ExtractedCorrelation",
    "GaussianCorrelation",
    "KLExpansion",
    "MaternCorrelation",
    "ProfileGenerator",
    "RoughnessStatistics",
    "SurfaceGenerator",
    "SurfaceRealization",
    "autocorrelation_1d",
    "autocorrelation_2d",
    "build_kl",
    "deterministic",
    "estimate_correlation_length",
    "estimate_sigma",
    "extract_statistics",
    "kl_from_correlation",
    "radial_psd",
    "rms_slope_2d",
]
