"""Karhunen-Loeve (KL) expansion of the correlated surface-height vector.

The SSCM (Section III-D of the paper) requires re-expressing the N
correlated Gaussian surface heights in terms of a *small* number M of
independent standard normals. The discrete KL expansion does exactly
this: with covariance matrix ``C = Phi Lambda Phi^T``,

    f = sum_{m=1}^{M} sqrt(lambda_m) * phi_m * xi_m,     xi_m ~ N(0, 1)

and M is chosen as the smallest number of modes capturing a target
fraction of the total variance ``trace(C)``. The retained dimension M is
what sets the sparse-grid sizes reported in the paper's Table I
(level-1 Smolyak has ``2M + 1`` nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StochasticError
from .correlation import CorrelationFunction


@dataclass(frozen=True)
class KLExpansion:
    """Truncated discrete KL expansion on a set of grid points.

    Attributes
    ----------
    eigenvalues:
        The M retained eigenvalues, descending.
    modes:
        (N, M) matrix whose columns are the orthonormal eigenvectors.
    total_variance:
        ``trace(C)`` of the full covariance.
    """

    eigenvalues: np.ndarray
    modes: np.ndarray
    total_variance: float

    @property
    def dimension(self) -> int:
        """Number of retained stochastic dimensions M."""
        return int(self.eigenvalues.size)

    @property
    def captured_fraction(self) -> float:
        """Fraction of the total variance captured by the truncation."""
        return float(np.sum(self.eigenvalues) / self.total_variance)

    def realize(self, xi: np.ndarray) -> np.ndarray:
        """Map independent standard normals ``xi`` (length M) to heights (length N)."""
        xi = np.asarray(xi, dtype=np.float64)
        if xi.shape != (self.dimension,):
            raise StochasticError(
                f"xi must have shape ({self.dimension},), got {xi.shape}"
            )
        return self.modes @ (np.sqrt(self.eigenvalues) * xi)

    def realize_many(self, xi: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`realize` for an (S, M) batch; returns (S, N)."""
        xi = np.asarray(xi, dtype=np.float64)
        if xi.ndim != 2 or xi.shape[1] != self.dimension:
            raise StochasticError(
                f"xi must have shape (S, {self.dimension}), got {xi.shape}"
            )
        return (self.modes @ (np.sqrt(self.eigenvalues)[:, None] * xi.T)).T


def build_kl(covariance: np.ndarray, energy_fraction: float = 0.95,
             max_modes: int | None = None) -> KLExpansion:
    """Eigendecompose a covariance matrix and truncate by energy fraction.

    Parameters
    ----------
    covariance:
        (N, N) symmetric positive semi-definite covariance matrix.
    energy_fraction:
        Keep the smallest M such that the retained eigenvalues sum to at
        least this fraction of ``trace(C)``.
    max_modes:
        Optional hard cap on M (sparse-grid cost grows with M).
    """
    c = np.asarray(covariance, dtype=np.float64)
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise StochasticError("covariance must be square")
    if not (0.0 < energy_fraction <= 1.0):
        raise StochasticError(
            f"energy_fraction must be in (0, 1], got {energy_fraction}"
        )
    if not np.allclose(c, c.T, rtol=0.0, atol=1e-10 * max(1.0, np.abs(c).max())):
        raise StochasticError("covariance must be symmetric")

    evals, evecs = np.linalg.eigh(c)
    order = np.argsort(evals)[::-1]
    evals = evals[order]
    evecs = evecs[:, order]
    evals = np.maximum(evals, 0.0)  # clip numerical negatives

    total = float(np.sum(evals))
    if total <= 0.0:
        raise StochasticError("covariance has no variance")
    cum = np.cumsum(evals) / total
    m = int(np.searchsorted(cum, energy_fraction) + 1)
    m = min(m, evals.size)
    if max_modes is not None:
        if max_modes < 1:
            raise StochasticError(f"max_modes must be >= 1, got {max_modes}")
        m = min(m, int(max_modes))
    return KLExpansion(
        eigenvalues=evals[:m].copy(),
        modes=evecs[:, :m].copy(),
        total_variance=total,
    )


def kl_from_correlation(correlation: CorrelationFunction, points: np.ndarray,
                        period: float | None = None,
                        energy_fraction: float = 0.95,
                        max_modes: int | None = None) -> KLExpansion:
    """Build the KL expansion for a CF sampled at grid ``points``.

    With ``period`` given, the minimum-image (periodic) covariance is used
    for consistency with the doubly-periodic surface model.
    """
    if period is not None:
        cov = correlation.periodic_covariance_matrix(points, period)
    else:
        cov = correlation.covariance_matrix(points)
    # Symmetrize against rounding before eigh.
    cov = 0.5 * (cov + cov.T)
    return build_kl(cov, energy_fraction=energy_fraction, max_modes=max_modes)
