"""Physical constants (SI) and unit helpers.

The library accepts SI units at its public boundary. The BEM kernels work
internally in micrometers so that matrix entries are O(1); the conversion
is done explicitly via :data:`METER_TO_UM` at the solver boundary, never
implicitly.
"""

from __future__ import annotations

import math

#: Vacuum permeability [H/m].
MU_0 = 4.0e-7 * math.pi

#: Vacuum permittivity [F/m].
EPS_0 = 8.8541878128e-12

#: Speed of light in vacuum [m/s].
C_0 = 1.0 / math.sqrt(MU_0 * EPS_0)

#: One micrometer in meters. Surface roughness scales are naturally in um.
UM = 1.0e-6

#: One gigahertz in Hz.
GHZ = 1.0e9

#: Meters -> micrometers conversion factor used at the solver boundary.
METER_TO_UM = 1.0e6

#: Resistivity of annealed copper used throughout the paper [ohm * m]
#: (the paper uses 1.67 uOhm*cm).
COPPER_RESISTIVITY = 1.67e-8

#: Relative permittivity of silicon dioxide used in the paper's experiments.
SIO2_EPS_R = 3.7
