"""repro — Scalar Wave Modeling (SWM) of 3D surface-roughness loss.

A from-scratch Python reproduction of:

    Q. Chen and N. Wong, "New Simulation Methodology of 3D Surface
    Roughness Loss for Interconnects Modeling", DATE 2009, pp. 1184-1189.

Subpackages
-----------
``surfaces``
    Random rough-surface characterization (correlation functions,
    spectral synthesis, statistics extraction, KL reduction) and the
    deterministic test geometries.
``greens``
    Free-space and periodic scalar Green's functions (Ewald method).
``swm``
    The 3D and 2D scalar-wave boundary-element solvers (the paper's
    core contribution).
``models``
    Closed-form baselines: empirical eq. (1), SPM2, HBM, Huray.
``stochastic``
    Monte-Carlo, Hermite chaos, Smolyak sparse grids, SSCM.
``core``
    End-to-end pipelines tying it all together.
``engine``
    Parallel sweep-execution engine with content-addressed result
    caching (``run_sweep`` over scenarios x frequencies x estimators).
``interconnects``
    Transmission-line application layer (RLGC/ABCD/S-parameters with
    roughness-corrected conductor loss).
``experiments``
    One declarative Experiment (plan/reduce over the engine) per
    figure/table of the paper's evaluation.
``api``
    The facade: ``repro.api.run("fig3", scale="quick", jobs=4)``,
    ``repro.api.run_many([...])``, ``repro.api.plan(...)``.

Quickstart
----------
>>> import numpy as np
>>> from repro import GaussianCorrelation, StochasticLossModel
>>> from repro import StochasticLossConfig
>>> from repro.constants import UM, GHZ
>>> model = StochasticLossModel(
...     GaussianCorrelation(sigma=1 * UM, eta=1 * UM),
...     StochasticLossConfig(points_per_side=10, max_modes=6))
>>> stats = model.sscm(5 * GHZ, order=1)
>>> 1.0 < stats.mean < 2.5
True
"""

from . import constants
from .core import (
    DeterministicLossModel,
    StochasticLossConfig,
    StochasticLossModel,
)
from .errors import (
    ConfigurationError,
    ConvergenceError,
    MeshError,
    ReproError,
    SolverError,
    StochasticError,
)
from .materials import (
    PAPER_SYSTEM,
    Conductor,
    Dielectric,
    TwoMediumSystem,
    skin_depth,
)
from .models import (
    HemisphericalBossModel,
    HurayModel,
    hammerstad_enhancement,
    spm2_enhancement,
    spm2_enhancement_profile,
)
from .stochastic import (
    MonteCarloEstimator,
    SSCMEstimator,
    smolyak_grid,
)
from .surfaces import (
    ExponentialCorrelation,
    ExtractedCorrelation,
    GaussianCorrelation,
    MaternCorrelation,
    ProfileGenerator,
    SurfaceGenerator,
    extract_statistics,
)
from .swm import SWMSolver2D, SWMSolver3D

__version__ = "1.0.0"


def __getattr__(name: str):
    # The facade pulls in the whole experiments package; loading it
    # lazily keeps `import repro` (and every pool-worker interpreter)
    # from paying for all seven figure modules up front. NB: must use
    # import_module — `from . import api` here would re-enter this
    # __getattr__ through the fromlist hasattr check and recurse.
    if name == "api":
        import importlib

        return importlib.import_module(".api", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Conductor",
    "ConfigurationError",
    "ConvergenceError",
    "DeterministicLossModel",
    "Dielectric",
    "ExponentialCorrelation",
    "ExtractedCorrelation",
    "GaussianCorrelation",
    "HemisphericalBossModel",
    "HurayModel",
    "MaternCorrelation",
    "MeshError",
    "MonteCarloEstimator",
    "PAPER_SYSTEM",
    "ProfileGenerator",
    "ReproError",
    "SSCMEstimator",
    "SWMSolver2D",
    "SWMSolver3D",
    "SolverError",
    "StochasticError",
    "StochasticLossConfig",
    "StochasticLossModel",
    "SurfaceGenerator",
    "TwoMediumSystem",
    "api",
    "constants",
    "extract_statistics",
    "hammerstad_enhancement",
    "skin_depth",
    "smolyak_grid",
    "spm2_enhancement",
    "spm2_enhancement_profile",
    "__version__",
]
