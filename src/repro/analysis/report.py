"""Text and JSON reporters for analyzer findings.

The JSON document is the CI artifact contract::

    {"format": "repro-analysis", "version": 1,
     "files_scanned": 42,
     "summary": {"findings": 2, "suppressed": 5,
                 "by_rule": {"RPR001": 2}},
     "findings": [{"rule": ..., "path": ..., "line": ..., "col": ...,
                   "message": ..., "suppressed": ...,
                   "suppression_reason": ...}, ...]}

``findings`` includes suppressed entries (flagged as such) so the
artifact doubles as a suppression inventory; ``summary.findings`` and
the process exit code count only the unsuppressed ones.
"""

from __future__ import annotations

import json
from collections import Counter

from .core import Finding

#: Top-level marker of the JSON report.
REPORT_FORMAT = "repro-analysis"

#: Bump when the JSON report schema changes.
REPORT_VERSION = 1


def render_json(findings: list[Finding], files_scanned: int) -> dict:
    """Build the JSON-ready report document."""
    active = [f for f in findings if not f.suppressed]
    by_rule = Counter(f.rule for f in active)
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "summary": {
            "findings": len(active),
            "suppressed": len(findings) - len(active),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [f.to_dict() for f in findings],
    }


def render_json_text(findings: list[Finding], files_scanned: int) -> str:
    return json.dumps(render_json(findings, files_scanned), indent=2,
                      sort_keys=False) + "\n"


def render_text(findings: list[Finding], files_scanned: int,
                verbose: bool = False) -> str:
    """Human-readable report; suppressed findings only with ``verbose``."""
    lines: list[str] = []
    active = [f for f in findings if not f.suppressed]
    shown = findings if verbose else active
    lines.extend(str(f) for f in shown)
    n_sup = len(findings) - len(active)
    if active:
        by_rule = Counter(f.rule for f in active)
        breakdown = ", ".join(f"{rid}: {n}" for rid, n
                              in sorted(by_rule.items()))
        lines.append(
            f"{len(active)} finding{'s' if len(active) != 1 else ''} "
            f"({breakdown}) in {files_scanned} files"
            + (f"; {n_sup} suppressed" if n_sup else ""))
    else:
        lines.append(
            f"clean: {files_scanned} files, 0 findings"
            + (f", {n_sup} suppressed" if n_sup else ""))
    return "\n".join(lines) + "\n"
