"""Rule framework of the invariant linter.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`Finding`\\ s. Rules register under stable IDs
(``RPR001``, ``RPR002``, ...) so suppression comments, configuration
and reports stay valid as the rule set grows.

Per-line suppression::

    risky_call()  # repro: ignore[RPR001] commit path holds the lock

The comment must name the rule ID and carry a non-empty reason; a
bare ``# repro: ignore[RPR001]`` does **not** suppress (the finding is
reported with a note instead). A suppression on its own line applies
to the following statement line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..errors import ConfigurationError
from .config import AnalysisConfig

RULE_ID_RE = re.compile(r"^RPR\d{3}$")

#: ``# repro: ignore[RPR001]`` / ``# repro: ignore[RPR001, RPR002] why``
SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }

    def __str__(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}{mark}")


class ModuleContext:
    """One parsed module plus the helpers rules share.

    ``path`` is the display path (posix, repo-relative when scanned
    from the repo root); glob-scoped rules match it with
    :meth:`matches`.
    """

    def __init__(self, path: str, source: str,
                 config: AnalysisConfig) -> None:
        self.path = path
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: dict[ast.AST, ast.AST] | None = None

    # -- tree helpers ---------------------------------------------------

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST
                           ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Innermost function definition containing ``node``."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    # -- scoping --------------------------------------------------------

    def matches(self, globs: Iterable[str]) -> bool:
        """True when the module path matches any of the globs."""
        posix = self.path.replace("\\", "/")
        return any(fnmatch(posix, g) for g in globs)


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id`` (stable ``RPRnnn``), ``name`` (short
    kebab-case), ``description`` (one line, shown by ``--list-rules``)
    and implement :meth:`check`.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=self.id, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not RULE_ID_RE.match(cls.id or ""):
        raise ConfigurationError(
            f"rule {cls.__name__} has invalid id {cls.id!r} "
            "(expected RPRnnn)"
        )
    if cls.id in _REGISTRY and type(_REGISTRY[cls.id]) is not cls:
        raise ConfigurationError(
            f"rule id {cls.id} already registered "
            f"by {type(_REGISTRY[cls.id]).__name__}"
        )
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, ordered by ID."""
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown rule {rule_id!r} (registered: {sorted(_REGISTRY)})"
        ) from None


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Suppression:
    rules: frozenset[str]
    reason: str


def _parse_suppressions(lines: list[str]) -> dict[int, _Suppression]:
    """Map line number -> suppression in effect on that line.

    A suppression comment on a statement line covers that line; a
    comment-only line covers the next line (so long call chains can
    carry the comment above them).
    """
    out: dict[int, _Suppression] = {}
    for i, line in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(line)
        if m is None:
            continue
        rules = frozenset(
            part.strip() for part in m.group(1).split(",") if part.strip())
        sup = _Suppression(rules=rules, reason=m.group(2).strip())
        target = i + 1 if line.lstrip().startswith("#") else i
        out[target] = sup
    return out


def _apply_suppressions(findings: list[Finding],
                        lines: list[str]) -> list[Finding]:
    table = _parse_suppressions(lines)
    out = []
    for f in findings:
        sup = table.get(f.line)
        if sup is None or f.rule not in sup.rules:
            out.append(f)
        elif not sup.reason:
            out.append(replace(
                f, message=f.message + " [suppression comment present "
                "but carries no reason; add one to silence]"))
        else:
            out.append(replace(f, suppressed=True,
                               suppression_reason=sup.reason))
    return out


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------

def _selected_rules(config: AnalysisConfig,
                    select: Iterable[str] | None = None) -> list[Rule]:
    if select is not None:
        return [get_rule(rid) for rid in select]
    return [r for r in all_rules() if r.id not in config.disable]


def analyze_source(source: str, path: str = "<string>",
                   config: AnalysisConfig | None = None,
                   select: Iterable[str] | None = None) -> list[Finding]:
    """Analyze one module given as a string (the test fixture path)."""
    config = config if config is not None else AnalysisConfig()
    try:
        ctx = ModuleContext(path, source, config)
    except SyntaxError as exc:
        return [Finding(rule="RPR000", path=path,
                        line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        message=f"syntax error: {exc.msg}")]
    findings: list[Finding] = []
    for rule in _selected_rules(config, select):
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return _apply_suppressions(findings, ctx.lines)


def _iter_files(paths: Iterable[str | Path],
                config: AnalysisConfig) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise ConfigurationError(f"no such file or directory: {p}")
    seen: set[Path] = set()
    out: list[Path] = []
    for f in files:
        posix = f.as_posix()
        if f in seen or any(fnmatch(posix, g) for g in config.exclude):
            continue
        seen.add(f)
        out.append(f)
    return out


def analyze_paths(paths: Iterable[str | Path],
                  config: AnalysisConfig | None = None,
                  select: Iterable[str] | None = None,
                  on_file: Callable[[Path], None] | None = None
                  ) -> tuple[list[Finding], int]:
    """Analyze files/directories; returns ``(findings, files_scanned)``."""
    config = config if config is not None else AnalysisConfig()
    findings: list[Finding] = []
    files = _iter_files(paths, config)
    for f in files:
        if on_file is not None:
            on_file(f)
        source = f.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, path=f.as_posix(),
                                       config=config, select=select))
    findings.sort(key=lambda x: (x.path, x.line, x.col, x.rule))
    return findings, len(files)
